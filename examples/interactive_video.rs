//! Interactive video, Fig. 13 style: SCReAM and UDP Prague calls over a
//! shared cell under different channel conditions, with and without
//! L4Span (downlink IP marking only — UDP feedback can't be
//! short-circuited).
//!
//! Run with: `cargo run --release --example interactive_video`

use l4span::cc::WanLink;
use l4span::harness::scenario::{
    l4span_default, ChannelMix, FlowSpec, ScenarioConfig, TrafficKind, UeSpec,
};
use l4span::harness::{self, MarkerKind};
use l4span::sim::{Duration, Instant};

fn video_cell(
    n: usize,
    traffic: &TrafficKind,
    mix: ChannelMix,
    marker: MarkerKind,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(11, Duration::from_secs(10));
    cfg.marker = marker;
    for i in 0..n {
        let snr = 20.0 + 5.0 * (i as f64 * 0.618).fract();
        cfg.ues.push(UeSpec::simple(mix.profile(i), snr));
        cfg.flows.push(FlowSpec {
            ue: i,
            drb: 0,
            traffic: traffic.clone(),
            wan: WanLink::east(),
            start: Instant::from_millis(20 * i as u64),
            stop: None,
        });
    }
    cfg
}

fn main() {
    let n = 8;
    let scream = TrafficKind::Scream {
        min_bps: 0.5e6,
        start_bps: 2.0e6,
        max_bps: 20.0e6,
        fps: 25.0,
    };
    let udp_prague = TrafficKind::UdpPrague {
        min_rate: 6.25e4,
        start_rate: 2.5e5,
        max_rate: 2.5e6,
    };
    println!("== {n} UEs, interactive video (Fig. 13 style) ==");
    println!(
        "{:<12} {:<12} {:<8} {:>12} {:>14}",
        "app", "channel", "l4span", "RTT med(ms)", "per-UE Mbit/s"
    );
    for (app, traffic) in [("scream", &scream), ("udp-prague", &udp_prague)] {
        for (ch_name, mix) in [
            ("static", ChannelMix::Static),
            ("pedestrian", ChannelMix::Pedestrian),
            ("vehicular", ChannelMix::Vehicular),
        ] {
            for (mark, marker) in [("off", MarkerKind::None), ("on", l4span_default())] {
                let r = harness::run(video_cell(n, traffic, mix, marker));
                let flows: Vec<usize> = (0..n).collect();
                let mut rtts = Vec::new();
                for &f in &flows {
                    rtts.extend_from_slice(&r.rtt_ms[f]);
                }
                let rtt = l4span::sim::stats::BoxStats::from_samples(&rtts);
                let per_ue: f64 =
                    flows.iter().map(|&f| r.goodput_total_mbps(f)).sum::<f64>() / n as f64;
                println!(
                    "{app:<12} {ch_name:<12} {mark:<8} {:>12.1} {per_ue:>14.2}",
                    rtt.median
                );
            }
        }
    }
    println!("\nExpected shape (paper Fig. 13): L4Span cuts RTT for both");
    println!("apps in every channel, at a small throughput cost.");
}

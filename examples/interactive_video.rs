//! Interactive video, Fig. 13 style — on the pluggable application API:
//! the same `FramedVideo` source rides (a) the SCReAM media transport
//! and (b) plain TCP Prague, over a shared cell, with and without
//! L4Span. Alongside RTT and goodput, the report's application-level
//! QoE shows what the marker buys *frames*: one-way delay, the
//! deadline-miss rate, and playback stall time.
//!
//! Run with: `cargo run --release --example interactive_video`

use l4span::cc::{CcKind, WanLink};
use l4span::harness::app::{AppProfile, FramedVideoCfg};
use l4span::harness::scenario::{
    l4span_default, ChannelMix, FlowSpec, ScenarioConfig, TransportSpec, UeSpec,
};
use l4span::harness::{self, MarkerKind};
use l4span::sim::{Duration, Instant};

fn video_cell(
    n: usize,
    transport: &TransportSpec,
    mix: ChannelMix,
    marker: MarkerKind,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(11, Duration::from_secs(10));
    cfg.marker = marker;
    // A 25 fps call with an I/P keyframe pattern (one 3× keyframe per
    // second) and a 100 ms per-frame deadline.
    let encoder = FramedVideoCfg::new(25.0, 0.5e6, 2.0e6, 20.0e6).with_keyframes(25, 3.0);
    for i in 0..n {
        let snr = 20.0 + 5.0 * (i as f64 * 0.618).fract();
        cfg.ues.push(UeSpec::simple(mix.profile(i), snr));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::FramedVideo(encoder),
            transport.clone(),
            WanLink::east(),
            Instant::from_millis(20 * i as u64),
        ));
    }
    cfg
}

fn main() {
    let n = 8;
    println!("== {n} UEs, interactive video (Fig. 13 style, app API) ==");
    println!(
        "{:<12} {:<12} {:<8} {:>11} {:>11} {:>8} {:>10} {:>10}",
        "transport", "channel", "l4span", "RTT med", "frame OWD", "miss %", "stall ms", "Mbit/s/UE"
    );
    let transports = [
        ("scream", TransportSpec::scream()),
        ("tcp-prague", TransportSpec::tcp(CcKind::Prague)),
    ];
    for (tname, transport) in &transports {
        for (ch_name, mix) in [
            ("static", ChannelMix::Static),
            ("pedestrian", ChannelMix::Pedestrian),
            ("vehicular", ChannelMix::Vehicular),
        ] {
            for (mark, marker) in [("off", MarkerKind::None), ("on", l4span_default())] {
                let r = harness::run(video_cell(n, transport, mix, marker));
                let flows: Vec<usize> = (0..n).collect();
                let mut rtts = Vec::new();
                for &f in &flows {
                    rtts.extend_from_slice(&r.rtt_ms[f]);
                }
                let rtt = l4span::sim::stats::BoxStats::from_samples(&rtts);
                let fowd = r.frame_owd_stats_pooled(&flows);
                let miss = flows
                    .iter()
                    .filter_map(|&f| r.frame_deadline_miss_rate(f))
                    .sum::<f64>()
                    / n as f64;
                let stall =
                    flows.iter().map(|&f| r.stall_time_ms(f)).sum::<f64>() / n as f64;
                let per_ue: f64 =
                    flows.iter().map(|&f| r.goodput_total_mbps(f)).sum::<f64>() / n as f64;
                println!(
                    "{tname:<12} {ch_name:<12} {mark:<8} {:>11.1} {:>11.1} {:>8.1} {:>10.0} {per_ue:>10.2}",
                    rtt.median,
                    fowd.median,
                    100.0 * miss,
                    stall,
                );
            }
        }
    }
    println!("\nExpected shape (paper Fig. 13): L4Span cuts RTT and frame");
    println!("delay for both transports in every channel, shrinking the");
    println!("deadline-miss rate and stall time at a small throughput cost.");
}

//! Quickstart: one UE, one Prague download, with and without L4Span.
//!
//! Run with: `cargo run --release --example quickstart`

use l4span::cc::WanLink;
use l4span::harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span::harness::{self, MarkerKind};
use l4span::sim::Duration;

fn main() {
    let dur = Duration::from_secs(10);
    println!("== L4Span quickstart: 1 UE, greedy Prague download, 38 ms WAN RTT ==\n");

    for (label, marker) in [
        ("vanilla 5G RAN (no signaling)", MarkerKind::None),
        ("5G RAN + L4Span", l4span_default()),
    ] {
        let cfg = congested_cell(
            1,
            "prague",
            ChannelMix::Static,
            16_384,
            WanLink::east(),
            marker,
            42,
            dur,
        );
        let r = harness::run(cfg);
        let owd = r.owd_stats(0);
        println!("{label}:");
        println!("  goodput        {:>8.2} Mbit/s", r.goodput_total_mbps(0));
        println!(
            "  one-way delay  {:>8.1} ms median  ({:.1}/{:.1} ms p10/p90)",
            owd.median, owd.p10, owd.p90
        );
        println!("  CE marks       {:>8}", r.total_marks);
        println!();
    }
    println!("The marked run should show the paper's headline: the same");
    println!("throughput at a small fraction of the queueing delay.");
}

//! A busy cell, Fig. 9 style: 16 UEs running concurrent downloads with
//! three different congestion controllers, mobile channels, with and
//! without L4Span.
//!
//! Run with: `cargo run --release --example congested_cell`

use l4span::cc::WanLink;
use l4span::harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span::harness::{self, MarkerKind};
use l4span::sim::Duration;

fn main() {
    let n = 16;
    let dur = Duration::from_secs(10);
    println!("== {n} UEs, concurrent greedy downloads, mobile channels ==");
    println!(
        "{:<8} {:<10} {:>14} {:>18}",
        "cc", "l4span", "per-UE Mbit/s", "OWD median (ms)"
    );
    for cc in ["prague", "cubic", "bbr2"] {
        for (mark, marker) in [("off", MarkerKind::None), ("on", l4span_default())] {
            let cfg = congested_cell(
                n,
                cc,
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                marker,
                7,
                dur,
            );
            let r = harness::run(cfg);
            let flows: Vec<usize> = (0..n).collect();
            let owd = r.owd_stats_pooled(&flows);
            let per_ue: f64 =
                flows.iter().map(|&f| r.goodput_total_mbps(f)).sum::<f64>() / n as f64;
            println!("{cc:<8} {mark:<10} {per_ue:>14.2} {:>18.1}", owd.median);
        }
    }
    println!("\nExpected shape (paper Fig. 9): OWD falls by 1-2 orders of");
    println!("magnitude with L4Span while per-UE throughput stays close.");
}

//! Fairness, Fig. 14 style: three staggered flows (Prague/Prague/CUBIC
//! on separate UEs) sharing the cell under L4Span; prints a throughput
//! time series so the convergence to fair share is visible.
//!
//! Run with: `cargo run --release --example fairness`

use l4span::cc::{CcKind, WanLink};
use l4span::harness::app::AppProfile;
use l4span::harness::scenario::{l4span_default, FlowSpec, ScenarioConfig, TransportSpec, UeSpec};
use l4span::harness::{self};
use l4span::ran::ChannelProfile;
use l4span::sim::{Duration, Instant};

fn main() {
    let mut cfg = ScenarioConfig::new(5, Duration::from_secs(60));
    cfg.marker = l4span_default();
    let ccs = [CcKind::Prague, CcKind::Prague, CcKind::Cubic];
    for (i, cc) in ccs.into_iter().enumerate() {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
        cfg.flows.push(
            FlowSpec::new(
                i,
                AppProfile::bulk(),
                TransportSpec::tcp(cc),
                WanLink::east(),
                Instant::from_secs(10 * i as u64),
            )
            .stop_at(Instant::from_secs(60 - 10 * i as u64)),
        );
    }
    let r = harness::run(cfg);

    println!("== Fig. 14(c) style: Prague, Prague, CUBIC; staggered 0/10/20 s ==");
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "t(s)", "prague-1", "prague-2", "cubic"
    );
    let series: Vec<Vec<(f64, f64)>> =
        (0..3).map(|f| r.throughput_series_mbps(f, 10)).collect();
    let len = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in (0..len).step_by(2) {
        let at = |f: usize| -> f64 { series[f].get(i).map(|&(_, m)| m).unwrap_or(0.0) };
        println!(
            "{:<6.0} {:>10.1} {:>10.1} {:>10.1}",
            i as f64,
            at(0),
            at(1),
            at(2)
        );
    }
    // Fair-share check in the fully-overlapped window (25-40 s).
    let from = Instant::from_secs(25);
    let to = Instant::from_secs(40);
    let rates: Vec<f64> = (0..3).map(|f| r.goodput_mbps(f, from, to)).collect();
    println!(
        "\n25-40 s shares: {:.1} / {:.1} / {:.1} Mbit/s",
        rates[0], rates[1], rates[2]
    );
    println!("Expected shape (paper Fig. 14): roughly equal thirds of the cell.");
}

//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` test macro, `prop_assert*!`, `prop_oneof!`,
//! `any::<T>()`, `Just`, range / tuple / vec / option strategies and
//! `.prop_map(..)`. Cases are generated from a deterministic seed derived
//! from the test's file and line, so failures reproduce exactly; there is
//! **no shrinking** — the failing inputs are printed instead.
//!
//! Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable, mirroring upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Error raised by a failing `prop_assert*!` macro.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail<S: Into<String>>(message: S) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies while generating a case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic construction from a 64-bit seed.
    pub fn from_seed_u64(seed: u64) -> TestRng {
        let mut key = [0u8; 32];
        for (i, chunk) in key.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(
                &seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
                    .to_le_bytes(),
            );
        }
        TestRng {
            inner: SmallRng::from_seed(key),
        }
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, well-spread floats (no NaN/inf, matching typical use).
        let v = rng.unit_f64();
        (v - 0.5) * 2.0e9
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for "any value of `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy combinators and implementations.
pub mod strategy {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add((rng.next_u64() % span) as $t)
                    }
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_sint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }
    impl_range_strategy_sint!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * (rng.unit_f64() as f32);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct OneOf<T> {
        /// The alternatives to choose between.
        pub arms: Vec<super::BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.range_usize(0, self.arms.len());
            self.arms[i].generate(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose
    /// length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.range_usize(self.len.start, self.len.end.max(self.len.start));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`: `None` about a quarter of the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wrap a strategy in `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < 0.25 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The case-running machinery behind the `proptest!` macro.
pub mod test_runner {
    use super::{TestCaseResult, TestRng};

    /// FNV-1a over the test's location, so each test gets a stable,
    /// distinct generation stream.
    fn location_seed(file: &str, line: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(line.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Number of cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Run `f` over `case_count()` deterministic cases; panic on the
    /// first failure with its case index (re-running reproduces it).
    pub fn run<F: FnMut(&mut TestRng) -> TestCaseResult>(file: &str, line: u32, mut f: F) {
        let base = location_seed(file, line);
        for case in 0..case_count() {
            let mut rng = TestRng::from_seed_u64(base.wrapping_add(case as u64));
            if let Err(e) = f(&mut rng) {
                panic!(
                    "proptest case {case}/{} failed at {file}:{line}: {}",
                    case_count(),
                    e.message
                );
            }
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(file!(), line!(), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Assert a condition inside a property test; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            arms: vec![$($crate::Strategy::boxed($arm)),+],
        }
    };
}

//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::SmallRng` (xoshiro256++), [`SeedableRng::from_seed`],
//! `Rng::gen::<f64>()` and `Rng::gen_range` over integer / float ranges.
//!
//! The container building this repo has no crates.io access, so the three
//! external dependencies are vendored as small, deterministic,
//! API-compatible stubs. Output streams are *not* bit-identical to
//! upstream `rand`, but they are deterministic across runs and platforms,
//! which is the property the simulator actually relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed;
    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce one uniform sample (the `SampleRange` of
/// upstream `rand`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via widening-multiply with
/// rejection (Lemire's method).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against round-up to the (excluded) end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + (self.end - self.start) * (f64::sample(rng) as f32);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over its whole domain.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator — xoshiro256++, the same
    /// algorithm upstream `rand` 0.8 uses for `SmallRng` on 64-bit
    /// targets (seed expansion differs; see the crate docs).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0xA076_1D64_78BD_642F,
                ];
            }
            let mut rng = SmallRng { s };
            // Decorrelate from the raw seed bytes.
            for _ in 0..8 {
                rng.next_u64();
            }
            rng
        }
    }
}

//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{bench_function,
//! sample_size, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple mean over a capped number of iterations — good
//! enough for quick relative readings and for keeping `cargo test -q`
//! fast; upstream criterion's statistics are intentionally not
//! reproduced. Set `CRITERION_QUICK_ITERS` to change the iteration cap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Re-export of `std::hint::black_box`, criterion-style.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirror upstream's builder entry point (arguments are ignored).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("# group: {name}");
        BenchmarkGroup {
            _criterion: self,
            iters: std::env::var("CRITERION_QUICK_ITERS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Upstream API-compat: bound the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = self.iters.min(n.max(10) as u64);
        self
    }

    /// Measure one benchmark routine and print its mean time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.iters,
            elapsed_ns: 0.0,
            measured: 0,
        };
        f(&mut b);
        if b.measured > 0 {
            println!(
                "{id:<40} {:>12.1} ns/iter ({} iters)",
                b.elapsed_ns / b.measured as f64,
                b.measured
            );
        } else {
            println!("{id:<40} (no measurement)");
        }
        self
    }

    /// Close the group (upstream API-compat; nothing to flush here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    measured: u64,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..self.iters.min(10) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as f64;
        self.measured += self.iters;
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

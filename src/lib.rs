//! # L4Span — reproduction of "Spanning Congestion Signaling over NextG
//! # Networks for Interactive Applications" (CoNEXT 2025)
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`core`] — the L4Span layer itself (packet profile table,
//!   egress-rate estimation, sojourn prediction, ECN marking strategies,
//!   feedback short-circuiting);
//! * [`ran`] — the discrete-event 5G RAN substrate (fading channels,
//!   PHY/MAC/HARQ, RLC AM/UM, PDCP, F1-U, SDAP, gNB, UE);
//! * [`cc`] — transport endpoints (Reno, CUBIC, Prague, BBR, BBRv2 over
//!   a byte-accurate TCP; SCReAM; UDP Prague; WAN links);
//! * [`aqm`] — DualPi2, CoDel/ECN-CoDel, droptail and a bottleneck
//!   router;
//! * [`net`] — IPv4/TCP/UDP wire formats, ECN codepoints, AccECN, RFC
//!   1071 checksums;
//! * [`sim`] — virtual time, the deterministic event queue, seeded RNG,
//!   statistics;
//! * [`harness`] — scenario configs, the end-to-end world, metrics, and
//!   the wired topology of Fig. 2(a).
//!
//! ## Quickstart
//!
//! ```
//! use l4span::harness::{self, scenario};
//! use l4span::cc::WanLink;
//! use l4span::sim::Duration;
//!
//! // Four UEs, greedy Prague downloads, static channel, L4Span on.
//! let cfg = scenario::congested_cell(
//!     4, "prague", scenario::ChannelMix::Static, 16_384,
//!     WanLink::east(), scenario::l4span_default(),
//!     /*seed*/ 1, Duration::from_secs(2),
//! );
//! let report = harness::run(cfg);
//! let owd = report.owd_stats_pooled(&[0, 1, 2, 3]);
//! assert!(owd.median < 200.0, "L4S keeps the RAN queue shallow");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use l4span_aqm as aqm;
pub use l4span_cc as cc;
pub use l4span_core as core;
pub use l4span_harness as harness;
pub use l4span_net as net;
pub use l4span_ran as ran;
pub use l4span_sim as sim;

pub use l4span_harness::{MarkerKind, Report};

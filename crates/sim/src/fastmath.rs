//! Fast trigonometry for the simulator's channel models.
//!
//! The Jakes fader evaluates tens of thousands of sinusoids per simulated
//! second; libm's `sin`/`cos` (correctly rounded over the full range) are
//! the single largest line item in that budget. A channel *model* needs
//! nowhere near correct rounding — [`sin_cos`] here is a Cody–Waite
//! range reduction plus degree-9/8 Taylor polynomials, giving ≈1e-9
//! absolute error (≈1e-8 dB after the SNR log) at a fraction of the
//! cost. It is a pure function, so determinism is unaffected.

/// High part of π/2 for two-step Cody–Waite reduction (the nearest f64,
/// i.e. the standard constant itself).
const PI_2_HI: f64 = core::f64::consts::FRAC_PI_2;
/// Low (residual) part of π/2: `π/2 − PI_2_HI` to extended precision.
const PI_2_LO: f64 = 6.123_233_995_736_766e-17;

/// Sine and cosine of `x` (radians), accurate to ≈1e-9 absolute error
/// for |x| up to ~1e8 radians — far beyond any simulated Doppler phase.
/// Returns `(sin x, cos x)`.
#[inline]
pub fn sin_cos(x: f64) -> (f64, f64) {
    // Reduce x to r ∈ [-π/4, π/4] with x = k·(π/2) + r.
    let kf = (x * core::f64::consts::FRAC_2_PI).round();
    let r = (x - kf * PI_2_HI) - kf * PI_2_LO;
    let k = (kf as i64) & 3;

    let r2 = r * r;
    // sin(r), Taylor to r^11.
    let s = r * (1.0
        + r2 * (-1.0 / 6.0
            + r2 * (1.0 / 120.0
                + r2 * (-1.0 / 5040.0
                    + r2 * (1.0 / 362_880.0 + r2 * (-1.0 / 39_916_800.0))))));
    // cos(r), Taylor to r^12.
    let c = 1.0
        + r2 * (-0.5
            + r2 * (1.0 / 24.0
                + r2 * (-1.0 / 720.0
                    + r2 * (1.0 / 40_320.0
                        + r2 * (-1.0 / 3_628_800.0
                            + r2 * (1.0 / 479_001_600.0))))));

    match k {
        0 => (s, c),
        1 => (c, -s),
        2 => (-s, -c),
        _ => (-c, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_over_small_range() {
        for i in -10_000..10_000 {
            let x = i as f64 * 0.001_3;
            let (s, c) = sin_cos(x);
            assert!((s - x.sin()).abs() < 1e-9, "sin({x}): {s} vs {}", x.sin());
            assert!((c - x.cos()).abs() < 1e-9, "cos({x}): {c} vs {}", x.cos());
        }
    }

    #[test]
    fn matches_libm_at_large_phase() {
        // Doppler phases after minutes of simulated time.
        for i in 0..5_000 {
            let x = 1.0e5 + i as f64 * 7.77;
            let (s, c) = sin_cos(x);
            assert!((s - x.sin()).abs() < 1e-8, "sin({x})");
            assert!((c - x.cos()).abs() < 1e-8, "cos({x})");
        }
    }

    #[test]
    fn pythagorean_identity_holds() {
        for i in 0..1_000 {
            let (s, c) = sin_cos(i as f64 * 1.234_5);
            assert!((s * s + c * c - 1.0).abs() < 1e-9);
        }
    }
}

//! Deterministic random number generation.
//!
//! Every stochastic element of the reproduction — Rayleigh fading phases,
//! HARQ transport-block errors, AQM marking coin flips, workload start
//! jitter — draws from a [`SimRng`] seeded from the scenario seed, so each
//! experiment is exactly repeatable and `--seed` sweeps give independent
//! trials.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seedable deterministic RNG with the distributions the simulator needs.
///
/// Wraps `rand::SmallRng` (xoshiro256++), seeded via SplitMix64 expansion
/// of a single `u64`, so scenario files only carry one number.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// The seed this stream was built from (feeds `derive`).
    seed: u64,
    /// Cached second Box-Muller variate.
    gauss_spare: Option<f64>,
}

/// SplitMix64 step; used to derive independent streams from one seed.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create from a scenario seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
        }
        SimRng {
            inner: SmallRng::from_seed(key),
            seed,
            gauss_spare: None,
        }
    }

    /// Derive an independent child stream (e.g. one per UE) so adding a UE
    /// does not perturb the draws of existing UEs. The child depends on
    /// both the parent's seed and the stream id.
    pub fn derive(&self, stream: u64) -> SimRng {
        // Mix parent seed and stream id through SplitMix64 for dispersion.
        let mut s = self.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        SimRng::new(a ^ b.rotate_left(17))
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0).
        let mut u1 = self.f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.f64();
        }
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = core::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gaussian()
    }

    /// Exponential with the given mean. Returns 0 for non-positive mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let mut u = self.f64();
        while u <= f64::MIN_POSITIVE {
            u = self.f64();
        }
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 5);
    }

    #[test]
    fn derived_streams_are_independent_of_sibling_draws() {
        let root = SimRng::new(7);
        let mut c1 = root.derive(1);
        let first = c1.f64();
        // Drawing from another child must not change child 1's stream.
        let mut c2 = root.derive(2);
        let _ = c2.f64();
        let mut c1_again = root.derive(1);
        assert_eq!(first.to_bits(), c1_again.f64().to_bits());
    }

    #[test]
    fn derived_streams_depend_on_parent_seed() {
        // Regression: derive() once ignored the parent seed entirely,
        // making every scenario's child streams identical.
        let mut a = SimRng::new(1).derive(5);
        let mut b = SimRng::new(2).derive(5);
        let same = (0..50).filter(|_| a.f64() == b.f64()).count();
        assert!(same < 5, "children of different parents must differ");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.gaussian();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < 0.05 * mean, "mean {m}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.index(7);
            assert!(i < 7);
        }
    }
}

//! Statistics helpers for the evaluation harness.
//!
//! The paper reports median / 25th / 75th / 10th / 90th percentile boxes
//! (Fig. 9, Fig. 11, Fig. 24), CDFs (Figs. 15, 17, 18, 20, 21), means
//! (Fig. 10, Fig. 19) and EWMA-smoothed rates (Prague's alpha, PF
//! scheduler averages). Everything here is plain, allocation-conscious
//! code with no external dependencies.

/// Linear-interpolation percentile of a *sorted* slice, `p` in `[0, 100]`.
///
/// Uses the same "linear" method as numpy's default, which is what the
/// paper's matplotlib boxplots use.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted slice (copies and sorts internally).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, p)
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Five-number box summary matching the paper's plots:
/// median, 25/75th percentile box edges, 10/90th percentile whiskers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// 50th percentile.
    pub median: f64,
    /// 25th percentile (box lower edge).
    pub p25: f64,
    /// 75th percentile (box upper edge).
    pub p75: f64,
    /// 10th percentile (lower whisker).
    pub p10: f64,
    /// 90th percentile (upper whisker).
    pub p90: f64,
    /// Arithmetic mean (reported in Fig. 19).
    pub mean: f64,
    /// Number of samples summarised.
    pub n: usize,
}

impl BoxStats {
    /// Summarise a sample set. Returns all-zero stats for an empty input
    /// (an empty measurement is a scenario bug; the harness asserts on it
    /// separately so figures never silently print zeros).
    pub fn from_samples(values: &[f64]) -> BoxStats {
        if values.is_empty() {
            return BoxStats {
                median: 0.0,
                p25: 0.0,
                p75: 0.0,
                p10: 0.0,
                p90: 0.0,
                mean: 0.0,
                n: 0,
            };
        }
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in BoxStats input"));
        BoxStats {
            median: percentile_sorted(&v, 50.0),
            p25: percentile_sorted(&v, 25.0),
            p75: percentile_sorted(&v, 75.0),
            p10: percentile_sorted(&v, 10.0),
            p90: percentile_sorted(&v, 90.0),
            mean: mean(&v),
            n: v.len(),
        }
    }
}

/// Empirical CDF over a sample set.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs are rejected with a panic: they indicate a
    /// metric bug upstream).
    pub fn from_samples(values: &[f64]) -> Cdf {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// `n`-point summary `(value, cumulative_fraction)` for printing a
    /// figure series. Points are evenly spaced in quantile space.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

/// Welford online mean/variance accumulator — used for the estimator's
/// ground-truth egress-rate standard deviation (paper §4.3.3) and for
/// metric aggregation without storing every sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Exponentially-weighted moving average with gain `g`:
/// `v ← (1-g)·v + g·x`. Uninitialised until the first `push`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    gain: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with gain in `(0, 1]`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "EWMA gain out of range");
        Ewma { gain, value: None }
    }

    /// Fold in one observation and return the new average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.gain * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been pushed.
    pub fn get(&self) -> Option<f64> {
        self.value
    }

    /// Current average or the supplied default.
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Reset to the uninitialised state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_linear_interp() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 4.0);
        assert_eq!(percentile_sorted(&v, 50.0), 2.5);
        assert_eq!(percentile_sorted(&v, 25.0), 1.75);
        assert_eq!(percentile_sorted(&[5.0], 73.0), 5.0);
    }

    #[test]
    fn box_stats_shape() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = BoxStats::from_samples(&v);
        assert_eq!(b.n, 100);
        assert!((b.median - 50.5).abs() < 1e-9);
        assert!(b.p10 < b.p25 && b.p25 < b.median);
        assert!(b.median < b.p75 && b.p75 < b.p90);
        assert!((b.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn box_stats_empty_is_zeroed() {
        let b = BoxStats::from_samples(&[]);
        assert_eq!(b.n, 0);
        assert_eq!(b.median, 0.0);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let c = Cdf::from_samples(&v);
        assert_eq!(c.fraction_at(-1.0), 0.0);
        assert_eq!(c.fraction_at(9.0), 1.0);
        assert!((c.fraction_at(4.0) - 0.5).abs() < 1e-9);
        assert_eq!(c.quantile(0.0), 0.0);
        assert_eq!(c.quantile(1.0), 9.0);
        let pts = c.points(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[4].1, 1.0);
    }

    #[test]
    fn running_stats_matches_direct() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &v {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!((rs.variance() - 4.0).abs() < 1e-12);
        assert!((rs.std() - 2.0).abs() < 1e-12);
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        assert_eq!(e.push(10.0), 10.0); // first sample initialises
        assert_eq!(e.push(0.0), 5.0);
        assert_eq!(e.push(0.0), 2.5);
        e.reset();
        assert_eq!(e.get_or(1.25), 1.25);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_bad_gain() {
        let _ = Ewma::new(0.0);
    }
}

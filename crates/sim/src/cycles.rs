//! Per-subsystem wall-clock cycle accounting for the simulator's hot
//! loop.
//!
//! A [`CycleScope`] is a tiny fixed-slot accumulator: the host (the
//! harness world) names its subsystems once, brackets each subsystem
//! call with [`CycleScope::start`]/[`CycleScope::stop`], and reads the
//! totals back as a [`CycleStat`] table at the end of the run. It is the
//! attribution tool behind the `fig_breakdown` bench bin: when a PR
//! regresses events/sec, the table says *where* the cycles went.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A disabled scope's `start` reads one
//!    bool and returns `None`; `stop(None, _)` is a predictable branch.
//!    This is the same convention as the harness's existing
//!    `measure_marker_time` instrumentation, which has never been
//!    measurable in the perf gate.
//! 2. **No effect on simulation state.** The scope only reads the OS
//!    monotonic clock; nothing simulated depends on it, so enabling it
//!    cannot change a fingerprint (asserted by a harness test).
//! 3. **Honest accounting.** Spans are non-overlapping by convention;
//!    whatever the host does not bracket shows up as the difference
//!    between the run's wall time and [`CycleScope::total_ns`]
//!    ("untracked" in the breakdown table) instead of silently inflating
//!    a named bucket.

/// One subsystem's accumulated totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleStat {
    /// Subsystem label (as registered at construction).
    pub label: &'static str,
    /// Total wall-clock nanoseconds spent inside the subsystem's spans.
    pub nanos: u64,
    /// Number of spans recorded.
    pub calls: u64,
}

impl CycleStat {
    /// Mean nanoseconds per span (0 when no spans were recorded).
    pub fn mean_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.nanos as f64 / self.calls as f64
        }
    }
}

/// A fixed-slot per-subsystem wall-clock accumulator. See the module
/// docs for the design constraints.
#[derive(Debug)]
pub struct CycleScope {
    enabled: bool,
    labels: &'static [&'static str],
    nanos: Vec<u64>,
    calls: Vec<u64>,
}

impl CycleScope {
    /// An enabled scope with one slot per label. Slot indices follow
    /// label order; hosts should define named `const` indices.
    pub fn new(labels: &'static [&'static str]) -> CycleScope {
        CycleScope {
            enabled: true,
            labels,
            nanos: vec![0; labels.len()],
            calls: vec![0; labels.len()],
        }
    }

    /// A disabled scope: `start` always returns `None` and nothing is
    /// ever recorded.
    pub fn disabled() -> CycleScope {
        CycleScope {
            enabled: false,
            labels: &[],
            nanos: Vec::new(),
            calls: Vec::new(),
        }
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span. Returns `None` (for free) when disabled.
    #[inline]
    pub fn start(&self) -> Option<std::time::Instant> {
        if self.enabled {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Close a span opened by [`CycleScope::start`], folding its
    /// duration into `slot`. A `None` token (disabled scope) is a no-op.
    #[inline]
    pub fn stop(&mut self, t0: Option<std::time::Instant>, slot: usize) {
        if let Some(t0) = t0 {
            self.nanos[slot] += t0.elapsed().as_nanos() as u64;
            self.calls[slot] += 1;
        }
    }

    /// Totals per slot, in label order. Empty for a disabled scope.
    pub fn report(&self) -> Vec<CycleStat> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &label)| CycleStat {
                label,
                nanos: self.nanos[i],
                calls: self.calls[i],
            })
            .collect()
    }

    /// Sum of all recorded span nanoseconds (the tracked share of the
    /// run; wall time minus this is the untracked remainder).
    pub fn total_ns(&self) -> u64 {
        self.nanos.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LABELS: &[&str] = &["alpha", "beta"];

    #[test]
    fn disabled_scope_records_nothing() {
        let mut s = CycleScope::disabled();
        assert!(!s.enabled());
        let t0 = s.start();
        assert!(t0.is_none());
        s.stop(t0, 0); // must not panic despite zero slots
        assert!(s.report().is_empty());
        assert_eq!(s.total_ns(), 0);
    }

    #[test]
    fn enabled_scope_accumulates_per_slot() {
        let mut s = CycleScope::new(LABELS);
        assert!(s.enabled());
        for _ in 0..3 {
            let t0 = s.start();
            assert!(t0.is_some());
            s.stop(t0, 0);
        }
        let t0 = s.start();
        s.stop(t0, 1);
        let r = s.report();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].label, "alpha");
        assert_eq!(r[0].calls, 3);
        assert_eq!(r[1].label, "beta");
        assert_eq!(r[1].calls, 1);
        assert_eq!(s.total_ns(), r[0].nanos + r[1].nanos);
    }

    #[test]
    fn mean_ns_handles_empty_and_populated() {
        let empty = CycleStat {
            label: "x",
            nanos: 0,
            calls: 0,
        };
        assert_eq!(empty.mean_ns(), 0.0);
        let some = CycleStat {
            label: "x",
            nanos: 90,
            calls: 3,
        };
        assert_eq!(some.mean_ns(), 30.0);
    }
}

//! Virtual time for the discrete-event simulator.
//!
//! [`Instant`] is a nanosecond count since the start of the simulation;
//! [`Duration`] is a nanosecond span. Both are plain `u64` wrappers with
//! the arithmetic the rest of the stack needs. Nanosecond resolution is
//! deliberate: L4Span's event handlers run in under a microsecond (paper
//! Fig. 21), so the profiler in the bench crate needs sub-microsecond
//! ticks, and the PHY slot clock (0.5 ms) divides evenly.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Instant {
    /// The simulation epoch (t = 0).
    pub const ZERO: Instant = Instant(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Construct from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Instant(us * 1_000)
    }

    /// Construct from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Instant(ms * 1_000_000)
    }

    /// Construct from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Instant(s * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the epoch (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the epoch as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future (clock skew cannot happen in the simulator, but the
    /// estimator code subtracts freely and must not panic).
    #[inline]
    pub fn saturating_since(self, earlier: Instant) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: Instant) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration)
    }

    /// Saturating add that never wraps past [`Instant::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Instant {
        Instant(self.0.saturating_add(d.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Largest representable span; used as an "infinite timeout" sentinel.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative input clamps to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float (e.g. scaling an RTT estimate).
    /// Negative factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Duration {
        if k <= 0.0 {
            Duration(0)
        } else {
            Duration((self.0 as f64 * k).round() as u64)
        }
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this is the zero span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, d: Duration) -> Instant {
        Instant(self.0 - d.0)
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, earlier: Instant) -> Duration {
        Duration(self.0 - earlier.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, other: Duration) {
        self.0 += other.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, other: Duration) -> Duration {
        Duration(self.0 - other.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, other: Duration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, k: u64) -> Duration {
        Duration(self.0 / k)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(Instant::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(Instant::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Instant::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_millis(10).as_micros(), 10_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = Instant::from_millis(100);
        let d = Duration::from_millis(25);
        assert_eq!((t + d).as_millis(), 125);
        assert_eq!((t - d).as_millis(), 75);
        assert_eq!(((t + d) - t).as_millis(), 25);
        assert_eq!((d * 4).as_millis(), 100);
        assert_eq!((d / 5).as_millis(), 5);
    }

    #[test]
    fn saturating_since_does_not_panic() {
        let early = Instant::from_millis(10);
        let late = Instant::from_millis(20);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_millis(10));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn float_conversions() {
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Duration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Duration::from_secs_f64(0.001), Duration::from_millis(1));
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = Duration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), Duration::from_micros(25_000));
        assert_eq!(d.mul_f64(-1.0), Duration::ZERO);
        assert_eq!(d.mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Duration::from_millis(1);
        let b = Duration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let t1 = Instant::from_millis(1);
        let t2 = Instant::from_millis(2);
        assert_eq!(t1.min(t2), t1);
        assert_eq!(t1.max(t2), t2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Duration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Duration::from_secs(12)), "12.000s");
    }
}

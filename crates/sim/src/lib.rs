//! Discrete-event simulation substrate for the L4Span reproduction.
//!
//! This crate provides the building blocks every other crate in the
//! workspace rests on:
//!
//! * [`time`] — virtual [`Instant`]/[`Duration`] types with nanosecond
//!   resolution. All timestamps in the simulated 5G network (PDCP ingress
//!   times, RLC transmission times, F1-U feedback timestamps, TCP
//!   timestamps) are expressed in these units.
//! * [`queue`] — a deterministic, stable [`EventQueue`]: events scheduled
//!   for the same instant fire in insertion order, which keeps whole-system
//!   runs bit-for-bit reproducible.
//! * [`rng`] — a seedable deterministic random source ([`SimRng`]) with the
//!   distributions the channel models and AQMs need (uniform, Bernoulli,
//!   Gaussian, exponential).
//! * [`stats`] — statistics used throughout the evaluation harness:
//!   percentiles, box-plot summaries, CDFs, Welford running moments, and
//!   exponentially-weighted moving averages.
//! * [`hash`] — a deterministic fast hasher ([`FxHashMap`]) for the
//!   per-packet lookup tables on the simulator's hot path.
//!
//! * [`cycles`] — an opt-in per-subsystem wall-clock accumulator
//!   ([`CycleScope`]) behind the perf-attribution tooling.
//!
//! The design follows the smoltcp idiom: passive state machines driven by
//! explicit `poll`-style calls with an explicit notion of *now*. Nothing
//! *simulated* ever depends on wall-clock time — the only consumers of the
//! OS clock are the measurement scopes ([`cycles`]), whose readings feed
//! reports, never the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
pub mod fastmath;
pub mod hash;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use cycles::{CycleScope, CycleStat};
pub use hash::{FxHashMap, FxHashSet};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use stats::{BoxStats, Cdf, Ewma, RunningStats};
pub use time::{Duration, Instant};

//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default `RandomState` seeds SipHash per process, which (a)
//! costs ~10× more than needed for the small fixed-size keys the hot
//! path uses (five-tuples, `(ue, drb)` pairs, packet idents) and (b)
//! makes map iteration order vary between processes. The simulator never
//! hashes attacker-controlled input, so a Fowler–Noll–Vo-style
//! multiply-xor hash (the rustc "Fx" construction) is both faster and
//! reproducible: the same build hashing the same keys always produces
//! the same table layout.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash construction (64-bit golden-ratio odd
/// constant, as used by rustc's `FxHasher`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rotate-multiply-xor hasher state.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, no per-map seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the deterministic fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the deterministic fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_hash() {
        let mut m: FxHashMap<(u32, u32, u16, u16, u8), usize> = FxHashMap::default();
        m.insert((1, 2, 3, 4, 5), 7);
        assert_eq!(m.get(&(1, 2, 3, 4, 5)), Some(&7));
        assert_eq!(m.get(&(1, 2, 3, 4, 6)), None);
    }

    #[test]
    fn distributes_small_integers() {
        // Sanity: sequential keys should not all collide into a few
        // buckets (catches a degenerate hasher that ignores input).
        let mut seen = FxHashSet::default();
        for i in 0u64..1024 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1024, "hashes of distinct keys collide");
    }

    #[test]
    fn byte_writes_match_between_calls() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }
}

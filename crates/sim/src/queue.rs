//! Deterministic event queue.
//!
//! A binary heap keyed on `(Instant, sequence)` so that events scheduled
//! for the same instant dequeue in the order they were scheduled. This
//! stability is what makes whole-network runs reproducible: the gNB slot
//! tick, a WAN packet arrival, and a TCP retransmission timer may all fire
//! at the same nanosecond, and their relative order must not depend on
//! heap internals.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Instant;

/// One scheduled entry. Ordered for a *min*-heap via reversed comparison.
struct Entry<E> {
    at: Instant,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A stable, deterministic priority queue of future events.
///
/// `E` is whatever event representation the driver chooses — the harness
/// crate uses a single world-level `enum`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    /// Monotonically non-decreasing time of the last popped event.
    now: Instant,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Instant::ZERO,
        }
    }

    /// An empty queue with room for `cap` pending events before the
    /// backing heap reallocates — drivers that know their steady-state
    /// event population can avoid growth pauses mid-run.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
            now: Instant::ZERO,
        }
    }

    /// Reserve room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a discrete-event
    /// simulation; it is clamped to `now` (fires immediately) so the
    /// simulation stays monotonic rather than panicking deep inside a run.
    pub fn schedule(&mut self, at: Instant, event: E) {
        let at = at.max(self.now);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Time of the earliest pending event, if any.
    pub fn next_at(&self) -> Option<Instant> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event, advancing the queue clock to its time.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now, "event queue went backwards");
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Time of the most recently popped event (the simulation's "now").
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events without advancing time.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Remove every pending event in `(time, sequence)` order without
    /// advancing the queue clock. Re-scheduling the survivors in the
    /// returned order assigns fresh, ascending sequence numbers, so the
    /// relative FIFO order of same-instant events is preserved — this is
    /// what shard installation relies on when it prunes a replica's
    /// queue down to the events its cells own.
    pub fn drain_ordered(&mut self) -> Vec<(Instant, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push((e.at, e.event));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(30), "c");
        q.schedule(Instant::from_millis(10), "a");
        q.schedule(Instant::from_millis(20), "b");
        assert_eq!(q.next_at(), Some(Instant::from_millis(10)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(7), ());
        assert_eq!(q.now(), Instant::ZERO);
        q.pop();
        assert_eq!(q.now(), Instant::from_millis(7));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(10), "late");
        q.pop();
        // Attempt to schedule before `now`; it must fire "now", not panic
        // and not travel back in time.
        q.schedule(Instant::from_millis(1), "clamped");
        let (at, ev) = q.pop().unwrap();
        assert_eq!(ev, "clamped");
        assert_eq!(at, Instant::from_millis(10));
    }

    #[test]
    fn drain_ordered_yields_time_seq_order_and_keeps_clock() {
        let mut q = EventQueue::new();
        let t = Instant::from_millis(4);
        q.schedule(Instant::from_millis(9), "late");
        q.schedule(t, "first");
        q.schedule(t, "second");
        q.schedule(Instant::from_millis(2), "early");
        q.pop(); // advance clock to 2ms
        let drained = q.drain_ordered();
        assert_eq!(
            drained.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            ["first", "second", "late"],
            "drain preserves (time, seq) order"
        );
        assert!(q.is_empty());
        assert_eq!(q.now(), Instant::from_millis(2), "clock untouched");
        // Re-scheduling in drained order keeps same-instant FIFO intact.
        for (at, e) in drained {
            q.schedule(at, e);
        }
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Instant::from_millis(1), 1u32);
        q.schedule(Instant::from_millis(3), 3u32);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(q.now() + Duration::from_millis(1), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }
}

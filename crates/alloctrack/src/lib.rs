//! A counting global allocator for allocation-freedom tests.
//!
//! Wraps the system allocator and counts every `alloc` / `realloc` /
//! `alloc_zeroed` call (frees are not counted — the tests assert that
//! *no new memory is requested* on a hot path, which is the property
//! that makes the path malloc-independent).
//!
//! This is the only crate in the workspace allowed to use `unsafe`: the
//! two unsafe functions below delegate verbatim to [`System`] and add a
//! relaxed atomic increment. Everything else inherits the workspace-wide
//! `unsafe_code = "forbid"`.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`GlobalAlloc`] that counts allocation requests.
///
/// Install with `#[global_allocator]` in a test binary, then diff
/// [`CountingAlloc::count`] around the code under test.
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter (usable in `static` position).
    pub const fn new() -> CountingAlloc {
        CountingAlloc {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total allocation requests (alloc + alloc_zeroed + realloc) so far.
    pub fn count(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

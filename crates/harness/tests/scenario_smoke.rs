//! Smoke test: every canned scenario builder in `scenario.rs`, across
//! every channel mix and every CU marker kind, yields a world that runs
//! a full simulated second without panicking and actually moves bytes.
//!
//! This guards the 17 figure bins (which are built from exactly these
//! builders) without running full figures in CI.

use l4span_cc::WanLink;
use l4span_core::L4SpanConfig;
use l4span_harness::{run, scenario, MarkerKind, Report};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn one_second(cfg: scenario::ScenarioConfig) -> Report {
    assert_eq!(cfg.duration, Duration::from_secs(1));
    run(cfg)
}

fn delivered_something(r: &Report) {
    let total: u64 = r.thr_bins.iter().flatten().sum();
    assert!(total > 0, "a greedy download must deliver bytes");
}

#[test]
fn congested_cell_runs_under_every_marker() {
    let markers = [
        MarkerKind::None,
        scenario::l4span_default(),
        MarkerKind::DualPi2Cu {
            threshold: Duration::from_millis(1),
        },
        MarkerKind::DualPi2Cu {
            threshold: Duration::from_millis(10),
        },
        MarkerKind::TcRan { ecn: false },
        MarkerKind::TcRan { ecn: true },
    ];
    // The whole marker sweep rides the parallel runner (one worker per
    // scenario up to the core count), exactly like the fig bins do.
    let cfgs: Vec<scenario::ScenarioConfig> = markers
        .into_iter()
        .enumerate()
        .map(|(i, marker)| {
            scenario::congested_cell(
                2,
                "prague",
                scenario::ChannelMix::Static,
                16_384,
                WanLink::local(),
                marker,
                40 + i as u64,
                Duration::from_secs(1),
            )
        })
        .collect();
    for r in l4span_harness::run_batch(cfgs) {
        delivered_something(&r);
    }
}

#[test]
fn congested_cell_runs_under_every_channel_mix() {
    let mixes = [
        scenario::ChannelMix::Static,
        scenario::ChannelMix::Pedestrian,
        scenario::ChannelMix::Vehicular,
        scenario::ChannelMix::Mobile,
    ];
    let cfgs: Vec<scenario::ScenarioConfig> = mixes
        .into_iter()
        .enumerate()
        .map(|(i, mix)| {
            scenario::congested_cell(
                2,
                "cubic",
                mix,
                16_384,
                WanLink::east(),
                scenario::l4span_default(),
                50 + i as u64,
                Duration::from_secs(1),
            )
        })
        .collect();
    for r in l4span_harness::run_batch(cfgs) {
        delivered_something(&r);
    }
}

#[test]
fn congested_cell_runs_with_short_rlc_queue_and_west_wan() {
    // The Fig. 9 short-queue variant plus the longest canned WAN.
    let cfg = scenario::congested_cell(
        2,
        "reno",
        scenario::ChannelMix::Mobile,
        256,
        WanLink::west(),
        scenario::l4span_default(),
        60,
        Duration::from_secs(1),
    );
    let r = one_second(cfg);
    delivered_something(&r);
}

#[test]
fn scenario_config_skeleton_runs_empty() {
    // `ScenarioConfig::new` with no UEs/flows is a valid (if silent) world.
    let cfg = scenario::ScenarioConfig::new(1, Duration::from_secs(1));
    let r = one_second(cfg);
    assert_eq!(r.rlc_drops, 0);
}

#[test]
fn ue_spec_simple_and_channel_events_run() {
    // Hand-built scenario: one UE whose channel degrades mid-run, with
    // marker-time instrumentation on — exercises the remaining
    // `ScenarioConfig` knobs the canned builders leave at defaults.
    let mut cfg = scenario::ScenarioConfig::new(2, Duration::from_secs(1));
    cfg.marker = MarkerKind::L4Span(L4SpanConfig::default());
    cfg.measure_marker_time = true;
    cfg.ues
        .push(scenario::UeSpec::simple(ChannelProfile::Pedestrian, 26.0));
    cfg.flows.push(scenario::FlowSpec::new(
        0,
        l4span_harness::app::AppProfile::bulk(),
        scenario::TransportSpec::tcp(l4span_cc::CcKind::Prague),
        WanLink::local(),
        Instant::ZERO,
    ));
    cfg.channel_events
        .push((Instant::from_millis(500), 0, ChannelProfile::Vehicular, 5.0));
    let r = one_second(cfg);
    delivered_something(&r);
}

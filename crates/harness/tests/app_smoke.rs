//! Smoke coverage for the application layer: every built-in
//! `AppProfile` runs a full simulated second over every transport it
//! supports, moves bytes, and populates its QoE channel. Guards the
//! `fig_apps` sweep the same way `scenario_smoke` guards the figure
//! bins.

use l4span_cc::{CcKind, WanLink};
use l4span_harness::app::{AppProfile, FramedVideoCfg};
use l4span_harness::scenario::{l4span_default, FlowSpec, ScenarioConfig, TransportSpec};
use l4span_harness::{run, run_batch, Report, UeSpec};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn one_flow(app: AppProfile, transport: TransportSpec, seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(1));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    cfg.flows.push(FlowSpec::new(
        0,
        app,
        transport,
        WanLink::east(),
        Instant::ZERO,
    ));
    cfg
}

fn delivered_something(r: &Report) {
    let total: u64 = r.thr_bins.iter().flatten().sum();
    assert!(total > 0, "the flow must deliver bytes");
}

#[test]
fn every_app_profile_runs_over_tcp_under_every_cc() {
    let mut cfgs = Vec::new();
    for (i, cc) in CcKind::all().enumerate() {
        for (k, app) in [
            AppProfile::bulk(),
            AppProfile::sized(500_000),
            AppProfile::FramedVideo(
                FramedVideoCfg::new(30.0, 0.5e6, 2.0e6, 8.0e6).with_keyframes(30, 3.0),
            ),
            AppProfile::request_response(100_000, Duration::from_millis(100), None),
            AppProfile::trace(vec![
                (Duration::from_millis(50), 50_000),
                (Duration::from_millis(500), 50_000),
            ]),
        ]
        .into_iter()
        .enumerate()
        {
            cfgs.push(one_flow(
                app,
                TransportSpec::tcp(cc),
                (70 + 10 * i + k) as u64,
            ));
        }
    }
    for r in run_batch(cfgs) {
        delivered_something(&r);
    }
}

#[test]
fn framed_video_over_tcp_populates_frame_qoe() {
    let r = run(one_flow(
        AppProfile::video(30.0, 0.5e6, 2.0e6, 8.0e6),
        TransportSpec::tcp(CcKind::Prague),
        3,
    ));
    delivered_something(&r);
    assert!(r.frames_generated[0] >= 29, "{}", r.frames_generated[0]);
    assert!(r.frames_delivered[0] > 0);
    assert!(!r.frame_owd_ms[0].is_empty());
    assert!(r.frame_owd_stats(0).median > 0.0);
    // Delivered + missed ≥ generated is not an identity (late frames are
    // both delivered and missed), but every generated frame is accounted.
    assert!(r.frames_delivered[0] + r.frames_missed[0] >= r.frames_generated[0]);
}

#[test]
fn framed_video_over_scream_populates_frame_qoe() {
    let r = run(one_flow(
        AppProfile::video(25.0, 0.5e6, 2.0e6, 20.0e6),
        TransportSpec::scream(),
        4,
    ));
    delivered_something(&r);
    assert!(r.frames_generated[0] >= 24, "{}", r.frames_generated[0]);
    assert!(!r.frame_owd_ms[0].is_empty(), "scream frames tracked");
}

#[test]
fn request_response_populates_completions() {
    let r = run(one_flow(
        AppProfile::request_response(50_000, Duration::from_millis(50), None),
        TransportSpec::tcp(CcKind::Cubic),
        5,
    ));
    delivered_something(&r);
    assert!(r.request_ms[0].len() >= 3, "{}", r.request_ms[0].len());
    assert!(r.request_stats(0).median > 0.0);
}

#[test]
fn trace_replay_runs_and_times_bursts() {
    let r = run(one_flow(
        AppProfile::trace(vec![
            (Duration::ZERO, 10_000),
            (Duration::from_millis(200), 20_000),
            (Duration::from_millis(400), 30_000),
        ]),
        TransportSpec::tcp(CcKind::Reno),
        6,
    ));
    delivered_something(&r);
    assert_eq!(r.request_ms[0].len(), 3);
}

#[test]
fn stopped_video_flow_quiesces() {
    let mut cfg = one_flow(
        AppProfile::video(30.0, 0.5e6, 2.0e6, 8.0e6),
        TransportSpec::tcp(CcKind::Prague),
        8,
    );
    cfg.duration = Duration::from_secs(2);
    cfg.flows[0].stop = Some(Instant::from_millis(500));
    let r = run(cfg);
    let early = r.goodput_mbps(0, Instant::from_millis(100), Instant::from_millis(500));
    let late = r.goodput_mbps(0, Instant::from_secs(1), Instant::from_secs(2));
    assert!(early > 0.1, "video ran before stop: {early}");
    assert!(late < 0.05, "encoder stopped offering: {late}");
    // No frames generated after the stop: well under 2 s worth.
    assert!(r.frames_generated[0] <= 16, "{}", r.frames_generated[0]);
}

#[test]
fn flow_stop_quiesces_even_an_app_that_ignores_its_stop_hook() {
    use l4span_harness::app::{AppOffer, AppUnit, Application, UnitKind};
    // A pathological source that never honours `stop()` (the default
    // no-op): the sealed transport must refuse its offers after the
    // scheduled FlowStop, or the stop would be silently violated.
    struct Chatterbox {
        next_at: Instant,
        offered: u64,
    }
    impl Application for Chatterbox {
        fn next_activity(&self) -> Instant {
            self.next_at
        }
        fn on_tick(&mut self, now: Instant) -> AppOffer {
            let mut offer = AppOffer::empty();
            while now >= self.next_at {
                self.offered += 20_000;
                offer.bytes += 20_000;
                offer.units.push(AppUnit {
                    kind: UnitKind::Request,
                    end_byte: self.offered,
                    created: self.next_at,
                    deadline: None,
                });
                self.next_at += Duration::from_millis(20);
            }
            offer
        }
    }
    let mut cfg = one_flow(
        AppProfile::custom("chatterbox", |start| {
            Box::new(Chatterbox {
                next_at: start,
                offered: 0,
            })
        }),
        TransportSpec::tcp(CcKind::Cubic),
        12,
    );
    cfg.duration = Duration::from_secs(2);
    cfg.flows[0].stop = Some(Instant::from_millis(500));
    let r = run(cfg);
    let early = r.goodput_mbps(0, Instant::from_millis(100), Instant::from_millis(500));
    let late = r.goodput_mbps(0, Instant::from_secs(1), Instant::from_secs(2));
    assert!(early > 0.5, "chatterbox ran before stop: {early}");
    assert!(late < 0.05, "sealed stream refuses post-stop offers: {late}");
}

#[test]
fn framed_video_and_scream_agree_on_frame_sizes() {
    // The keyframe sizing arithmetic exists twice — in
    // `FramedVideoCfg::frame_bytes` (FramedVideo-over-TCP) and inside
    // `ScreamSender::poll` (FramedVideo-over-SCReAM). This pins the
    // implicit contract that both produce identical frame sizes, so an
    // edit to one side can't silently diverge the two transports.
    use l4span_cc::scream::ScreamSender;
    for (every, boost) in [(0u32, 1.0f64), (5, 3.0), (30, 3.0), (2, 1.5)] {
        let cfg = FramedVideoCfg::new(25.0, 0.5e6, 2.0e6, 20.0e6)
            .with_keyframes(every, boost);
        let mut sender =
            ScreamSender::new(1, 2, 5004, 5006, 0.5e6, 2.0e6, 20.0e6, 25.0, true)
                .with_keyframes(every, boost);
        // Poll exactly one frame at a time; no feedback arrives, so the
        // target stays at start_bps on both sides. Sizes are read from
        // the encoder's media-byte counter (generation is independent
        // of the window, which a 3× keyframe can exceed).
        let mut at = Instant::ZERO;
        for frame in 0..12u64 {
            let before = sender.media_bytes;
            let _ = sender.poll(at);
            let scream_bytes = (sender.media_bytes - before) as usize;
            assert_eq!(
                scream_bytes,
                cfg.frame_bytes(frame, 2.0e6),
                "frame {frame} under keyframes ({every}, {boost})"
            );
            at += cfg.frame_interval();
        }
    }
}

#[test]
#[should_panic(expected = "unsupported application/transport combination")]
fn invalid_app_transport_combo_is_rejected() {
    let cfg = one_flow(AppProfile::bulk(), TransportSpec::scream(), 9);
    let _ = run(cfg);
}

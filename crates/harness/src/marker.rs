//! CU-side marking adapters: L4Span, the DualPi2-at-CU ablation, the
//! TC-RAN (CoDel) baseline, or nothing.
//!
//! All adapters speak the same three-event interface as L4Span so the
//! world can swap them per scenario. The baselines estimate the RLC
//! sojourn from the age of the oldest unreported SDU in a profile table —
//! the best a fixed-threshold qdisc at the CU can do, and precisely why
//! §6.3.1 finds DualPi2 under-utilises a fading link.

use l4span_aqm::{CoDel, DualPi2, Verdict};
use l4span_core::profile::ProfileTable;
use l4span_core::{DlVerdict, HandoverPolicy, L4SpanConfig, L4SpanLayer};
use l4span_core::{MarkerDrbState, MarkerFlowState};
use l4span_net::{Ecn, FiveTuple, PacketBuf};
use l4span_ran::f1u::DlDataDeliveryStatus;
use l4span_ran::{DrbId, UeId};
use l4span_sim::{Duration, FxHashMap, Instant, SimRng};

/// Which marker the scenario installs at the CU. `#[non_exhaustive]`:
/// match with a wildcard arm so future baselines aren't semver breaks.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum MarkerKind {
    /// Vanilla RAN: no in-network signaling at all (the "5G network" bars
    /// of Fig. 2(b) and the unmarked halves of Fig. 9).
    None,
    /// L4Span with the given configuration.
    L4Span(L4SpanConfig),
    /// DualPi2 transplanted to the CU with the given L-queue step
    /// threshold (1 ms or 10 ms in §6.3.1).
    DualPi2Cu {
        /// Step-marking threshold for L4S packets.
        threshold: Duration,
    },
    /// TC-RAN: CoDel (`ecn = false`) or ECN-CoDel (`ecn = true`) at the
    /// CU with the default 5 ms / 100 ms parameters.
    TcRan {
        /// Mark instead of drop.
        ecn: bool,
    },
}

/// Per-DRB state for the fixed-threshold baselines.
pub struct BaselineDrb {
    profile: ProfileTable,
    dualpi2: DualPi2,
    codel: CoDel,
}

/// The installed marker instance.
pub enum Marker {
    /// No-op.
    None,
    /// The real thing.
    L4Span(L4SpanLayer),
    /// DualPi2 at the CU.
    DualPi2Cu {
        /// Per-DRB queue/PI state.
        drbs: FxHashMap<(UeId, DrbId), BaselineDrb>,
        /// L-queue step threshold new DRBs get.
        threshold: Duration,
        /// Marking-coin RNG.
        rng: SimRng,
    },
    /// CoDel / ECN-CoDel at the CU.
    TcRan {
        /// Per-DRB queue/CoDel state.
        drbs: FxHashMap<(UeId, DrbId), BaselineDrb>,
        /// Mark instead of drop.
        ecn: bool,
    },
}

impl MarkerKind {
    /// The variant of this marker installed at the **UE side** for the
    /// uplink data queue: L4Span runs with
    /// [`L4SpanConfig::for_uplink`] (no ACK short-circuiting — uplink
    /// feedback already rides the fast downlink), the fixed-threshold
    /// baselines are unchanged. The marker API is direction-agnostic:
    /// "a packet enters the RAN queue", "granted bytes left it".
    pub fn uplink(&self) -> MarkerKind {
        match self {
            MarkerKind::L4Span(cfg) => MarkerKind::L4Span(cfg.for_uplink()),
            other => other.clone(),
        }
    }
}

impl Marker {
    /// Instantiate a marker.
    pub fn new(kind: &MarkerKind, rng: SimRng) -> Marker {
        match kind {
            MarkerKind::None => Marker::None,
            MarkerKind::L4Span(cfg) => Marker::L4Span(L4SpanLayer::new(cfg.clone(), rng)),
            MarkerKind::DualPi2Cu { threshold } => Marker::DualPi2Cu {
                drbs: FxHashMap::default(),
                threshold: *threshold,
                rng,
            },
            MarkerKind::TcRan { ecn } => Marker::TcRan {
                drbs: FxHashMap::default(),
                ecn: *ecn,
            },
        }
    }

    /// Downlink event. May rewrite the ECN field; returns whether to
    /// forward or drop.
    pub fn on_dl(
        &mut self,
        ue: UeId,
        drb: DrbId,
        pkt: &mut PacketBuf,
        now: Instant,
    ) -> DlVerdict {
        match self {
            Marker::None => DlVerdict::Forward,
            Marker::L4Span(l) => l.on_dl_packet(ue, drb, pkt, now),
            Marker::DualPi2Cu {
                drbs,
                threshold,
                rng,
            } => {
                let d = baseline_drb(drbs, ue, drb, *threshold);
                d.profile.on_ingress(pkt.wire_len(), now);
                if pkt.payload_len() == 0 {
                    return DlVerdict::Forward;
                }
                let sojourn = d
                    .profile
                    .head_ingress()
                    .map(|t| now.saturating_since(t))
                    .unwrap_or(Duration::ZERO);
                d.dualpi2.update(sojourn, now);
                match d.dualpi2.decide(pkt.ecn(), sojourn, rng) {
                    Verdict::Mark => {
                        let ce = pkt.ecn().remark_to(Ecn::Ce);
                        pkt.set_ecn(ce);
                        DlVerdict::Forward
                    }
                    Verdict::Drop => DlVerdict::Drop,
                    Verdict::Pass => DlVerdict::Forward,
                }
            }
            Marker::TcRan { drbs, ecn } => {
                let d = baseline_drb(drbs, ue, drb, Duration::from_millis(1));
                d.profile.on_ingress(pkt.wire_len(), now);
                if pkt.payload_len() == 0 {
                    return DlVerdict::Forward;
                }
                let sojourn = d
                    .profile
                    .head_ingress()
                    .map(|t| now.saturating_since(t))
                    .unwrap_or(Duration::ZERO);
                let verdict = d.codel.decide(sojourn, now);
                // ECN-CoDel variant: once the control law is in its
                // dropping state, every ECT packet is marked (TC-RAN's
                // fixed-threshold behaviour that §6.2.2 contrasts with
                // L4Span's rate-adaptive marking).
                if *ecn && pkt.ecn().is_ect() {
                    if verdict != Verdict::Pass || d.codel.dropping() {
                        let ce = pkt.ecn().remark_to(Ecn::Ce);
                        pkt.set_ecn(ce);
                    }
                    return DlVerdict::Forward;
                }
                match verdict {
                    Verdict::Mark | Verdict::Drop => DlVerdict::Drop,
                    Verdict::Pass => DlVerdict::Forward,
                }
            }
        }
    }

    /// F1-U feedback event.
    pub fn on_feedback(&mut self, msg: &DlDataDeliveryStatus, now: Instant) {
        match self {
            Marker::None => {}
            Marker::L4Span(l) => l.on_ran_feedback(msg, now),
            Marker::DualPi2Cu { drbs, .. } | Marker::TcRan { drbs, .. } => {
                if let Some(d) = drbs.get_mut(&(msg.ue, msg.drb)) {
                    d.profile.on_feedback(
                        msg.highest_txed_sn,
                        msg.highest_delivered_sn,
                        msg.timestamp,
                    );
                }
            }
        }
    }

    /// Uplink packet event (short-circuiting; only L4Span acts).
    pub fn on_ul(&mut self, pkt: &mut PacketBuf, now: Instant) {
        if let Marker::L4Span(l) = self {
            l.on_ul_packet(pkt, now);
        }
    }

    /// The UE carrying `drb` handed over to another cell: apply the
    /// scenario's marker policy to that DRB's estimation state. For the
    /// fixed-threshold baselines, `ColdStart` resets the control-law
    /// state (PI integrator / CoDel dropping episode); the profile
    /// table's SN mirror always survives, for the same PDCP-continuity
    /// reason as in L4Span proper.
    pub fn on_handover(&mut self, ue: UeId, drb: DrbId, policy: HandoverPolicy) {
        match self {
            Marker::None => {}
            Marker::L4Span(l) => l.on_handover(ue, drb, policy),
            Marker::DualPi2Cu { drbs, threshold, .. } => {
                if policy == HandoverPolicy::ColdStart {
                    if let Some(d) = drbs.get_mut(&(ue, drb)) {
                        d.dualpi2 = DualPi2::new(Duration::from_millis(15), *threshold);
                    }
                }
            }
            Marker::TcRan { drbs, .. } => {
                if policy == HandoverPolicy::ColdStart {
                    if let Some(d) = drbs.get_mut(&(ue, drb)) {
                        d.codel = CoDel::new(true);
                    }
                }
            }
        }
    }

    /// Borrow the L4Span layer if this marker is one.
    pub fn as_l4span(&self) -> Option<&L4SpanLayer> {
        match self {
            Marker::L4Span(l) => Some(l),
            _ => None,
        }
    }

    /// Lift every piece of state this instance holds for `ue` out, for
    /// Xn migration to the target cell's marker instance (per-cell CU-UP
    /// deployments). `drbs` names the UE's bearers; `tuples` the
    /// five-tuples of its flows as seen in the *downlink* direction —
    /// the reversed tuple is extracted too, because a CU instance
    /// observes uplink flows through their downlink-travelling feedback
    /// and keys that state by the feedback's own tuple.
    pub fn extract_ue(
        &mut self,
        ue: UeId,
        drbs: &[DrbId],
        tuples: &[FiveTuple],
    ) -> MarkerCarry {
        let mut carry = MarkerCarry {
            ue,
            drbs: Vec::new(),
            flows: Vec::new(),
            baseline: Vec::new(),
        };
        match self {
            Marker::None => {}
            Marker::L4Span(l) => {
                for &d in drbs {
                    if let Some(st) = l.extract_drb_state(ue, d) {
                        carry.drbs.push((d, st));
                    }
                }
                for t in tuples {
                    if let Some(st) = l.extract_flow_state(t) {
                        carry.flows.push((*t, st));
                    }
                    let rev = t.reversed();
                    if let Some(st) = l.extract_flow_state(&rev) {
                        carry.flows.push((rev, st));
                    }
                }
            }
            Marker::DualPi2Cu { drbs: map, .. } | Marker::TcRan { drbs: map, .. } => {
                for &d in drbs {
                    if let Some(st) = map.remove(&(ue, d)) {
                        carry.baseline.push((d, st));
                    }
                }
            }
        }
        carry
    }

    /// Install a UE's state previously lifted with
    /// [`Marker::extract_ue`]. The carry must come from a marker of the
    /// same kind (the world instantiates every per-cell marker from one
    /// [`MarkerKind`], so this holds by construction); mismatched
    /// payloads are ignored rather than misapplied.
    pub fn absorb_ue(&mut self, carry: MarkerCarry) {
        let ue = carry.ue;
        match self {
            Marker::None => {}
            Marker::L4Span(l) => {
                for (d, st) in carry.drbs {
                    l.reseed_drb_state(ue, d, st);
                }
                for (t, st) in carry.flows {
                    l.reseed_flow_state(t, st);
                }
            }
            Marker::DualPi2Cu { drbs: map, .. } | Marker::TcRan { drbs: map, .. } => {
                for (d, st) in carry.baseline {
                    map.insert((ue, d), st);
                }
            }
        }
    }
}

/// A UE's marker state in flight between two per-cell [`Marker`]
/// instances during handover (the Xn context transfer). Opaque;
/// produced by [`Marker::extract_ue`], consumed by
/// [`Marker::absorb_ue`].
pub struct MarkerCarry {
    ue: UeId,
    drbs: Vec<(DrbId, MarkerDrbState)>,
    flows: Vec<(FiveTuple, MarkerFlowState)>,
    baseline: Vec<(DrbId, BaselineDrb)>,
}

fn baseline_drb(
    drbs: &mut FxHashMap<(UeId, DrbId), BaselineDrb>,
    ue: UeId,
    drb: DrbId,
    threshold: Duration,
) -> &mut BaselineDrb {
    drbs.entry((ue, drb)).or_insert_with(|| BaselineDrb {
        profile: ProfileTable::new(),
        dualpi2: DualPi2::new(Duration::from_millis(15), threshold),
        codel: CoDel::new(true),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn udp(ecn: Ecn) -> PacketBuf {
        PacketBuf::udp(1, 2, ecn, 0, 5004, 6000, 1200)
    }

    fn fb(ue: UeId, drb: DrbId, high: u64, t: Instant) -> DlDataDeliveryStatus {
        DlDataDeliveryStatus {
            ue,
            drb,
            highest_txed_sn: Some(high),
            highest_delivered_sn: None,
            timestamp: t,
            desired_buffer_size: 0,
        }
    }

    #[test]
    fn none_marker_is_transparent() {
        let mut m = Marker::new(&MarkerKind::None, SimRng::new(1));
        let mut p = udp(Ecn::Ect1);
        assert_eq!(
            m.on_dl(UeId(0), DrbId(0), &mut p, Instant::ZERO),
            DlVerdict::Forward
        );
        assert_eq!(p.ecn(), Ecn::Ect1);
    }

    #[test]
    fn dualpi2_cu_step_marks_stale_queue() {
        let mut m = Marker::new(
            &MarkerKind::DualPi2Cu {
                threshold: Duration::from_millis(1),
            },
            SimRng::new(1),
        );
        // Build a queue with no feedback: head age grows.
        let mut first = udp(Ecn::Ect1);
        m.on_dl(UeId(0), DrbId(0), &mut first, Instant::ZERO);
        let mut later = udp(Ecn::Ect1);
        m.on_dl(UeId(0), DrbId(0), &mut later, Instant::from_millis(5));
        assert_eq!(later.ecn(), Ecn::Ce, "head is 5 ms old > 1 ms step");
        // Feedback drains the profile: marking stops.
        m.on_feedback(&fb(UeId(0), DrbId(0), 1, Instant::from_millis(6)), Instant::from_millis(6));
        let mut fresh = udp(Ecn::Ect1);
        m.on_dl(UeId(0), DrbId(0), &mut fresh, Instant::from_millis(7));
        assert_eq!(fresh.ecn(), Ecn::Ect1, "fresh head, no mark");
    }

    #[test]
    fn tcran_codel_marks_after_interval() {
        let mut m = Marker::new(&MarkerKind::TcRan { ecn: true }, SimRng::new(1));
        // Keep a stale head for > 100 ms of packets.
        let mut marked = 0;
        let mut first = udp(Ecn::Ect0);
        m.on_dl(UeId(0), DrbId(0), &mut first, Instant::ZERO);
        for ms in 1..300u64 {
            let mut p = udp(Ecn::Ect0);
            m.on_dl(UeId(0), DrbId(0), &mut p, Instant::from_millis(ms));
            if p.ecn() == Ecn::Ce {
                marked += 1;
            }
        }
        assert!(marked > 0, "ECN-CoDel marks a standing queue");
    }

    #[test]
    fn l4span_marker_roundtrip() {
        let mut m = Marker::new(
            &MarkerKind::L4Span(L4SpanConfig::default()),
            SimRng::new(1),
        );
        let mut p = udp(Ecn::Ect1);
        assert_eq!(
            m.on_dl(UeId(0), DrbId(0), &mut p, Instant::ZERO),
            DlVerdict::Forward
        );
        assert!(m.as_l4span().is_some());
        assert_eq!(m.as_l4span().unwrap().stats().dl_packets, 1);
    }
}

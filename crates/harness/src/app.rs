//! The pluggable application/workload layer.
//!
//! L4Span's whole point is serving *interactive applications* over NextG
//! links, so the harness separates **what bytes are offered and when**
//! (the [`Application`]) from **how they cross the network** (the
//! `TransportSpec` in [`crate::scenario`]). A flow is now an
//! `(application, transport)` pair instead of a closed traffic enum:
//!
//! * [`AppProfile::Bulk`] — a greedy or size-limited download (the
//!   iperf3 workloads of §6.2);
//! * [`AppProfile::FramedVideo`] — a frame-paced encoder with an I/P
//!   keyframe pattern and a transport-rate adaptation hook (the SCReAM
//!   media source of §6.2.3, generalised so it also rides TCP);
//! * [`AppProfile::RequestResponse`] — RPC/web sessions: a response
//!   burst, a think time, repeat;
//! * [`AppProfile::TraceReplay`] — deterministic on/off bursts from an
//!   inline trace;
//! * [`AppProfile::Custom`] — any user [`Application`] implementation.
//!
//! Applications emit [`AppUnit`] boundaries (frames, requests) in their
//! byte stream; the world tracks each unit to its UE-side delivery and
//! reports application-level QoE — per-frame one-way delay, deadline
//! miss rate, stall time, request completion times — alongside the
//! packet-level series.

use std::fmt;
use std::sync::Arc;

use l4span_sim::{Duration, Instant};

/// Offer granularity of an unlimited [`Bulk`](AppProfile::Bulk) app when
/// it is driven through the generic application machinery.
const BULK_CHUNK: u64 = 4 << 20;

/// What an application handed to its transport in one tick: a number of
/// newly offered stream bytes plus the logical-unit boundaries inside
/// them.
#[derive(Debug, Default, Clone)]
pub struct AppOffer {
    /// Newly offered payload bytes (appended to the app's byte stream).
    pub bytes: u64,
    /// Logical units completed *in the offered prefix*, in stream order.
    pub units: Vec<AppUnit>,
}

impl AppOffer {
    /// An offer of nothing.
    pub fn empty() -> AppOffer {
        AppOffer::default()
    }
}

/// What kind of logical unit a boundary closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// A media frame: contributes to the frame OWD distribution, the
    /// deadline-miss rate, and stall time.
    Frame,
    /// A request/response (or trace burst): contributes to the
    /// completion-time distribution.
    Request,
}

/// A logical unit (frame, request) in an application's byte stream. The
/// unit spans up to `end_byte` (exclusive) of the app's cumulative
/// offered bytes; it completes when the receiver's in-order delivery
/// watermark passes `end_byte`.
#[derive(Debug, Clone, Copy)]
pub struct AppUnit {
    /// Frame or request.
    pub kind: UnitKind,
    /// End offset (exclusive) in the app's cumulative byte stream.
    pub end_byte: u64,
    /// Creation (capture / issue) timestamp: QoE latency is measured
    /// from here to UE-side delivery.
    pub created: Instant,
    /// Optional delivery deadline; a unit delivered later (or never)
    /// counts as a deadline miss.
    pub deadline: Option<Duration>,
}

/// A traffic source: decides *what* bytes are offered to the transport
/// and *when*. The transport (TCP under any [`l4span_cc::CcKind`], or
/// the self-clocked UDP transports) decides how they cross the network.
///
/// The harness drives an application with three signals: it calls
/// [`Application::on_tick`] at [`Application::next_activity`], reports
/// in-order delivery progress via [`Application::on_delivered`], and
/// (for adaptive sources) feeds transport rate estimates to
/// [`Application::on_rate_estimate`]. All state must derive from these
/// inputs only, so a scenario stays bit-reproducible regardless of
/// worker threads.
///
/// # Implementing a custom application
///
/// A telemetry beacon that offers one 256-byte sample every 20 ms:
///
/// ```
/// use l4span_harness::app::{Application, AppOffer, AppProfile, AppUnit, UnitKind};
/// use l4span_harness::scenario::{FlowSpec, ScenarioConfig, TransportSpec};
/// use l4span_harness::UeSpec;
/// use l4span_cc::{CcKind, WanLink};
/// use l4span_ran::ChannelProfile;
/// use l4span_sim::{Duration, Instant};
///
/// struct Beacon {
///     next_at: Instant,
///     offered: u64,
/// }
///
/// impl Application for Beacon {
///     fn next_activity(&self) -> Instant {
///         self.next_at
///     }
///     fn on_tick(&mut self, now: Instant) -> AppOffer {
///         let mut offer = AppOffer::empty();
///         while now >= self.next_at {
///             self.offered += 256;
///             offer.bytes += 256;
///             offer.units.push(AppUnit {
///                 kind: UnitKind::Request,
///                 end_byte: self.offered,
///                 created: self.next_at,
///                 deadline: Some(Duration::from_millis(250)),
///             });
///             self.next_at += Duration::from_millis(20);
///         }
///         offer
///     }
/// }
///
/// let mut cfg = ScenarioConfig::new(7, Duration::from_secs(1));
/// cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
/// cfg.flows.push(FlowSpec::new(
///     0,
///     AppProfile::custom("beacon", |start| {
///         Box::new(Beacon { next_at: start, offered: 0 })
///     }),
///     TransportSpec::tcp(CcKind::Cubic),
///     WanLink::east(),
///     Instant::ZERO,
/// ));
/// let report = l4span_harness::run(cfg);
/// // ~50 beacons fit the second; each completion is a request sample.
/// assert!(report.request_ms[0].len() > 20);
/// assert!(report.request_stats(0).median < 250.0);
/// ```
pub trait Application {
    /// Next instant this application wants [`Application::on_tick`];
    /// `Instant::MAX` when it is only waiting on delivery progress (or
    /// has nothing left to do).
    fn next_activity(&self) -> Instant;

    /// Called at (or after) [`Application::next_activity`]: produce the
    /// newly offered bytes and unit boundaries.
    fn on_tick(&mut self, now: Instant) -> AppOffer;

    /// The receiver's in-order delivery watermark advanced to
    /// `delivered` cumulative stream bytes.
    fn on_delivered(&mut self, delivered: u64, now: Instant) {
        let _ = (delivered, now);
    }

    /// The transport estimates it can currently sustain `bps` bit/s
    /// (rate-adaptation hook for encoders).
    fn on_rate_estimate(&mut self, bps: f64, now: Instant) {
        let _ = (bps, now);
    }

    /// `true` once the application will never offer bytes again; the
    /// transport can then treat a fully-acked stream as finished.
    fn done(&self) -> bool {
        false
    }

    /// The scenario's scheduled stop: cease offering new data.
    fn stop(&mut self) {}
}

/// Configuration of a [`FramedVideo`](AppProfile::FramedVideo) source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FramedVideoCfg {
    /// Frames per second.
    pub fps: f64,
    /// Minimum encoder bitrate (bit/s).
    pub min_bps: f64,
    /// Starting encoder bitrate (bit/s).
    pub start_bps: f64,
    /// Maximum encoder bitrate (bit/s).
    pub max_bps: f64,
    /// Every `keyframe_every`-th frame is a keyframe (`0` = uniform
    /// frame sizes).
    pub keyframe_every: u32,
    /// Keyframe size as a multiple of the GOP-average frame size.
    pub keyframe_boost: f64,
    /// Per-frame delivery deadline for QoE accounting.
    pub deadline: Duration,
}

impl FramedVideoCfg {
    /// A plain (uniform-frame) source with the default 100 ms deadline.
    pub fn new(fps: f64, min_bps: f64, start_bps: f64, max_bps: f64) -> FramedVideoCfg {
        FramedVideoCfg {
            fps,
            min_bps,
            start_bps,
            max_bps,
            keyframe_every: 0,
            keyframe_boost: 1.0,
            deadline: Duration::from_millis(100),
        }
    }

    /// Enable an I/P keyframe pattern.
    pub fn with_keyframes(mut self, every: u32, boost: f64) -> FramedVideoCfg {
        self.keyframe_every = every;
        self.keyframe_boost = boost;
        self
    }

    /// Override the per-frame delivery deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> FramedVideoCfg {
        self.deadline = deadline;
        self
    }

    /// Frame cadence.
    pub fn frame_interval(&self) -> Duration {
        Duration::from_secs_f64(1.0 / self.fps)
    }

    /// Size of frame number `frame` (0-based) at `target_bps`, honouring
    /// the keyframe pattern; identical arithmetic to the SCReAM source.
    pub fn frame_bytes(&self, frame: u64, target_bps: f64) -> usize {
        let base = target_bps * self.frame_interval().as_secs_f64() / 8.0;
        let size = if self.keyframe_every >= 2
            && self.keyframe_boost > 1.0
            && self.keyframe_boost < self.keyframe_every as f64
        {
            let k = self.keyframe_every as f64;
            if frame.is_multiple_of(u64::from(self.keyframe_every)) {
                (base * self.keyframe_boost) as usize
            } else {
                (base * (k - self.keyframe_boost) / (k - 1.0)) as usize
            }
        } else {
            base as usize
        };
        size.max(200)
    }
}

/// Configuration of a [`RequestResponse`](AppProfile::RequestResponse)
/// session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestResponseCfg {
    /// Response size in bytes (the downlink burst per request).
    pub response_bytes: u64,
    /// Think time between a response completing and the next request
    /// (the abstracted client round trip + user delay).
    pub think: Duration,
    /// Number of requests; `None` = keep going for the whole run.
    pub count: Option<u32>,
}

/// Configuration of a [`TraceReplay`](AppProfile::TraceReplay) source:
/// bursts at fixed offsets from the flow's start.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReplayCfg {
    /// `(offset from flow start, burst bytes)`, in offset order.
    pub entries: Vec<(Duration, u64)>,
}

/// A cloneable factory for [`Custom`](AppProfile::Custom) applications.
/// The closure receives the flow's start instant and returns a fresh
/// application (one per flow instantiation, so batch runs stay
/// independent).
#[derive(Clone)]
pub struct AppFactory {
    name: &'static str,
    make: Arc<dyn Fn(Instant) -> Box<dyn Application + Send> + Send + Sync>,
}

impl AppFactory {
    /// Wrap a constructor closure under a diagnostic name.
    pub fn new(
        name: &'static str,
        make: impl Fn(Instant) -> Box<dyn Application + Send> + Send + Sync + 'static,
    ) -> AppFactory {
        AppFactory {
            name,
            make: Arc::new(make),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Build one application instance for a flow starting at `start`.
    pub fn build(&self, start: Instant) -> Box<dyn Application + Send> {
        (self.make)(start)
    }
}

impl fmt::Debug for AppFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AppFactory({:?})", self.name)
    }
}

/// What a flow's application is — the declarative half of the
/// [`Application`] layer, carried in scenario configs.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum AppProfile {
    /// A greedy (`bytes: None`) or size-limited download.
    Bulk {
        /// Total payload bytes; `None` = long-lived greedy flow.
        bytes: Option<u64>,
    },
    /// A frame-paced, rate-adaptive video source.
    FramedVideo(FramedVideoCfg),
    /// An RPC/web session of response bursts separated by think times.
    RequestResponse(RequestResponseCfg),
    /// Deterministic bursts replayed from an inline trace.
    TraceReplay(TraceReplayCfg),
    /// A user-supplied [`Application`].
    Custom(AppFactory),
}

impl AppProfile {
    /// A long-lived greedy download.
    pub fn bulk() -> AppProfile {
        AppProfile::Bulk { bytes: None }
    }

    /// A download of exactly `bytes` payload bytes.
    pub fn sized(bytes: u64) -> AppProfile {
        AppProfile::Bulk { bytes: Some(bytes) }
    }

    /// A plain framed-video source (uniform frames, 100 ms deadline).
    pub fn video(fps: f64, min_bps: f64, start_bps: f64, max_bps: f64) -> AppProfile {
        AppProfile::FramedVideo(FramedVideoCfg::new(fps, min_bps, start_bps, max_bps))
    }

    /// An RPC/web session.
    pub fn request_response(
        response_bytes: u64,
        think: Duration,
        count: Option<u32>,
    ) -> AppProfile {
        AppProfile::RequestResponse(RequestResponseCfg {
            response_bytes,
            think,
            count,
        })
    }

    /// A trace replay of `(offset, bytes)` bursts.
    pub fn trace(entries: Vec<(Duration, u64)>) -> AppProfile {
        AppProfile::TraceReplay(TraceReplayCfg { entries })
    }

    /// A custom application built by `make` at flow start.
    pub fn custom(
        name: &'static str,
        make: impl Fn(Instant) -> Box<dyn Application + Send> + Send + Sync + 'static,
    ) -> AppProfile {
        AppProfile::Custom(AppFactory::new(name, make))
    }

    /// Build the runtime [`Application`] for a flow starting at `start`.
    pub fn instantiate(&self, start: Instant) -> Box<dyn Application + Send> {
        match self {
            AppProfile::Bulk { bytes } => Box::new(Bulk::new(*bytes, start)),
            AppProfile::FramedVideo(cfg) => Box::new(FramedVideo::new(*cfg, start)),
            AppProfile::RequestResponse(cfg) => Box::new(RequestResponse::new(*cfg, start)),
            AppProfile::TraceReplay(cfg) => Box::new(TraceReplay::new(cfg.clone(), start)),
            AppProfile::Custom(factory) => factory.build(start),
        }
    }
}

// ---------------------------------------------------------------------
// The built-in implementations
// ---------------------------------------------------------------------

/// Greedy or size-limited download (see [`AppProfile::Bulk`]).
#[derive(Debug)]
pub struct Bulk {
    limit: Option<u64>,
    offered: u64,
    tick_at: Instant,
    closed: bool,
    stopped: bool,
}

impl Bulk {
    /// `limit: None` = greedy; `Some(n)` = exactly `n` bytes.
    pub fn new(limit: Option<u64>, start: Instant) -> Bulk {
        Bulk {
            limit,
            offered: 0,
            tick_at: start,
            closed: false,
            stopped: false,
        }
    }
}

impl Application for Bulk {
    fn next_activity(&self) -> Instant {
        self.tick_at
    }

    fn on_tick(&mut self, now: Instant) -> AppOffer {
        if self.stopped || now < self.tick_at {
            return AppOffer::empty();
        }
        self.tick_at = Instant::MAX;
        match self.limit {
            Some(n) => {
                if self.closed {
                    return AppOffer::empty();
                }
                self.closed = true;
                self.offered = n;
                AppOffer {
                    bytes: n,
                    units: vec![AppUnit {
                        kind: UnitKind::Request,
                        end_byte: n,
                        created: now,
                        deadline: None,
                    }],
                }
            }
            None => {
                self.offered += BULK_CHUNK;
                AppOffer {
                    bytes: BULK_CHUNK,
                    units: Vec::new(),
                }
            }
        }
    }

    fn on_delivered(&mut self, delivered: u64, now: Instant) {
        // Greedy mode: top the transport back up before it drains.
        if self.limit.is_none()
            && !self.stopped
            && delivered + BULK_CHUNK / 2 >= self.offered
        {
            self.tick_at = self.tick_at.min(now);
        }
    }

    fn done(&self) -> bool {
        self.closed
    }

    fn stop(&mut self) {
        self.stopped = true;
        self.tick_at = Instant::MAX;
    }
}

/// Frame-paced adaptive video (see [`AppProfile::FramedVideo`]).
#[derive(Debug)]
pub struct FramedVideo {
    cfg: FramedVideoCfg,
    target_bps: f64,
    next_frame_at: Instant,
    frame_count: u64,
    offered: u64,
    stopped: bool,
}

impl FramedVideo {
    /// Source starting its frame clock at `start`.
    pub fn new(cfg: FramedVideoCfg, start: Instant) -> FramedVideo {
        FramedVideo {
            cfg,
            target_bps: cfg.start_bps,
            next_frame_at: start,
            frame_count: 0,
            offered: 0,
            stopped: false,
        }
    }

    /// Current encoder target (bit/s).
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }
}

impl Application for FramedVideo {
    fn next_activity(&self) -> Instant {
        if self.stopped {
            Instant::MAX
        } else {
            self.next_frame_at
        }
    }

    fn on_tick(&mut self, now: Instant) -> AppOffer {
        let mut offer = AppOffer::empty();
        while !self.stopped && now >= self.next_frame_at {
            let size = self.cfg.frame_bytes(self.frame_count, self.target_bps) as u64;
            self.offered += size;
            offer.bytes += size;
            offer.units.push(AppUnit {
                kind: UnitKind::Frame,
                end_byte: self.offered,
                created: self.next_frame_at,
                deadline: Some(self.cfg.deadline),
            });
            self.frame_count += 1;
            self.next_frame_at += self.cfg.frame_interval();
        }
        offer
    }

    fn on_rate_estimate(&mut self, bps: f64, _now: Instant) {
        // Track the transport with 15% headroom, smoothed so a single
        // outlier ACK burst doesn't whiplash the encoder.
        let want = 0.85 * bps;
        self.target_bps =
            (0.9 * self.target_bps + 0.1 * want).clamp(self.cfg.min_bps, self.cfg.max_bps);
    }

    fn stop(&mut self) {
        self.stopped = true;
    }
}

/// RPC/web session (see [`AppProfile::RequestResponse`]).
#[derive(Debug)]
pub struct RequestResponse {
    cfg: RequestResponseCfg,
    /// Requests still allowed to issue (`None` = unlimited).
    remaining: Option<u32>,
    /// Next request issue time; `Instant::MAX` while awaiting delivery
    /// or after the session ends.
    issue_at: Instant,
    /// End offset of the in-flight response (`None` = none in flight).
    awaiting: Option<u64>,
    offered: u64,
    ended: bool,
}

impl RequestResponse {
    /// Session issuing its first request at `start`.
    pub fn new(cfg: RequestResponseCfg, start: Instant) -> RequestResponse {
        let none_allowed = cfg.count == Some(0);
        RequestResponse {
            cfg,
            remaining: cfg.count,
            issue_at: if none_allowed { Instant::MAX } else { start },
            awaiting: None,
            offered: 0,
            ended: none_allowed,
        }
    }
}

impl Application for RequestResponse {
    fn next_activity(&self) -> Instant {
        self.issue_at
    }

    fn on_tick(&mut self, now: Instant) -> AppOffer {
        if self.ended || now < self.issue_at || self.awaiting.is_some() {
            return AppOffer::empty();
        }
        self.issue_at = Instant::MAX;
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        self.offered += self.cfg.response_bytes;
        self.awaiting = Some(self.offered);
        AppOffer {
            bytes: self.cfg.response_bytes,
            units: vec![AppUnit {
                kind: UnitKind::Request,
                end_byte: self.offered,
                created: now,
                deadline: None,
            }],
        }
    }

    fn on_delivered(&mut self, delivered: u64, now: Instant) {
        if let Some(end) = self.awaiting {
            if delivered >= end {
                self.awaiting = None;
                if self.remaining == Some(0) {
                    self.ended = true;
                } else {
                    self.issue_at = now + self.cfg.think;
                }
            }
        }
    }

    fn done(&self) -> bool {
        self.ended
    }

    fn stop(&mut self) {
        self.ended = true;
        self.issue_at = Instant::MAX;
    }
}

/// Deterministic trace replay (see [`AppProfile::TraceReplay`]).
#[derive(Debug)]
pub struct TraceReplay {
    cfg: TraceReplayCfg,
    start: Instant,
    idx: usize,
    offered: u64,
    stopped: bool,
}

impl TraceReplay {
    /// Replay `cfg.entries` relative to `start`.
    pub fn new(cfg: TraceReplayCfg, start: Instant) -> TraceReplay {
        TraceReplay {
            cfg,
            start,
            idx: 0,
            offered: 0,
            stopped: false,
        }
    }
}

impl Application for TraceReplay {
    fn next_activity(&self) -> Instant {
        if self.stopped {
            return Instant::MAX;
        }
        match self.cfg.entries.get(self.idx) {
            Some(&(off, _)) => self.start + off,
            None => Instant::MAX,
        }
    }

    fn on_tick(&mut self, now: Instant) -> AppOffer {
        let mut offer = AppOffer::empty();
        while !self.stopped {
            let Some(&(off, bytes)) = self.cfg.entries.get(self.idx) else {
                break;
            };
            let at = self.start + off;
            if now < at {
                break;
            }
            self.idx += 1;
            if bytes == 0 {
                continue;
            }
            self.offered += bytes;
            offer.bytes += bytes;
            offer.units.push(AppUnit {
                kind: UnitKind::Request,
                end_byte: self.offered,
                created: at,
                deadline: None,
            });
        }
        offer
    }

    fn done(&self) -> bool {
        self.stopped || self.idx >= self.cfg.entries.len()
    }

    fn stop(&mut self) {
        self.stopped = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive an app through a fixed schedule, returning the `(tick time,
    /// offered bytes, unit count)` transcript.
    fn transcript(app: &mut dyn Application, until: Instant) -> Vec<(u64, u64, usize)> {
        let mut out = Vec::new();
        loop {
            let at = app.next_activity();
            if at > until {
                break;
            }
            let offer = app.on_tick(at);
            out.push((at.as_nanos(), offer.bytes, offer.units.len()));
            if app.done() {
                break;
            }
        }
        out
    }

    #[test]
    fn framed_video_paces_frames_and_tags_units() {
        let cfg = FramedVideoCfg::new(25.0, 0.5e6, 2.0e6, 20.0e6);
        let mut app = FramedVideo::new(cfg, Instant::ZERO);
        let t = transcript(&mut app, Instant::from_millis(200));
        // 0..200 ms at 25 fps = 6 ticks (0, 40, .., 200).
        assert_eq!(t.len(), 6);
        // 2 Mbit/s at 25 fps = 10 kB frames.
        assert!(t.iter().all(|&(_, b, u)| b == 10_000 && u == 1));
    }

    #[test]
    fn framed_video_keyframes_change_sizes_not_average() {
        let cfg = FramedVideoCfg::new(25.0, 0.5e6, 2.0e6, 20.0e6).with_keyframes(5, 3.0);
        let mut app = FramedVideo::new(cfg, Instant::ZERO);
        let t = transcript(&mut app, Instant::from_millis(160));
        assert_eq!(t.len(), 5);
        assert!(t[0].1 > 2 * t[1].1, "keyframe first: {t:?}");
        let total: u64 = t.iter().map(|&(_, b, _)| b).sum();
        assert!((total as i64 - 50_000).unsigned_abs() < 1_000, "{total}");
    }

    #[test]
    fn framed_video_adapts_rate_within_bounds() {
        let cfg = FramedVideoCfg::new(25.0, 0.5e6, 2.0e6, 20.0e6);
        let mut app = FramedVideo::new(cfg, Instant::ZERO);
        for _ in 0..200 {
            app.on_rate_estimate(40.0e6, Instant::ZERO);
        }
        assert!((app.target_bps() - 20.0e6).abs() < 1e-6, "max clamp");
        for _ in 0..200 {
            app.on_rate_estimate(0.1e6, Instant::ZERO);
        }
        assert!((app.target_bps() - 0.5e6).abs() < 1e-6, "min clamp");
    }

    #[test]
    fn request_response_waits_for_delivery_then_thinks() {
        let cfg = RequestResponseCfg {
            response_bytes: 50_000,
            think: Duration::from_millis(100),
            count: Some(2),
        };
        let mut app = RequestResponse::new(cfg, Instant::ZERO);
        let first = app.on_tick(Instant::ZERO);
        assert_eq!(first.bytes, 50_000);
        assert_eq!(app.next_activity(), Instant::MAX, "awaiting delivery");
        // Partial delivery is not completion.
        app.on_delivered(10_000, Instant::from_millis(30));
        assert_eq!(app.next_activity(), Instant::MAX);
        app.on_delivered(50_000, Instant::from_millis(80));
        assert_eq!(app.next_activity(), Instant::from_millis(180));
        let second = app.on_tick(Instant::from_millis(180));
        assert_eq!(second.bytes, 50_000);
        assert!(!app.done());
        app.on_delivered(100_000, Instant::from_millis(260));
        assert!(app.done(), "count exhausted after the second response");
    }

    #[test]
    fn trace_replay_is_deterministic_and_finishes() {
        let entries = vec![
            (Duration::from_millis(10), 1_000u64),
            (Duration::from_millis(50), 2_000),
            (Duration::from_millis(50), 3_000),
        ];
        let mk = || TraceReplay::new(TraceReplayCfg { entries: entries.clone() }, Instant::ZERO);
        let a = transcript(&mut mk(), Instant::from_secs(1));
        let b = transcript(&mut mk(), Instant::from_secs(1));
        assert_eq!(a, b, "identical transcripts");
        // The two co-timed bursts coalesce into one tick.
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].1, 5_000);
        assert_eq!(a[1].2, 2, "two units in the coalesced tick");
        let mut app = mk();
        let _ = transcript(&mut app, Instant::from_secs(1));
        assert!(app.done());
    }

    #[test]
    fn bulk_sized_offers_once_greedy_replenishes() {
        let mut sized = Bulk::new(Some(14_000), Instant::ZERO);
        let o = sized.on_tick(Instant::ZERO);
        assert_eq!(o.bytes, 14_000);
        assert!(sized.done());

        let mut greedy = Bulk::new(None, Instant::ZERO);
        let o1 = greedy.on_tick(Instant::ZERO);
        assert_eq!(o1.bytes, BULK_CHUNK);
        assert_eq!(greedy.next_activity(), Instant::MAX);
        greedy.on_delivered(BULK_CHUNK, Instant::from_millis(500));
        assert_eq!(greedy.next_activity(), Instant::from_millis(500));
        assert!(!greedy.done());
    }

    #[test]
    fn profile_instantiation_covers_every_builtin() {
        let start = Instant::from_millis(5);
        for profile in [
            AppProfile::bulk(),
            AppProfile::sized(1_000),
            AppProfile::video(30.0, 1e6, 2e6, 8e6),
            AppProfile::request_response(10_000, Duration::from_millis(50), Some(3)),
            AppProfile::trace(vec![(Duration::ZERO, 500)]),
        ] {
            let app = profile.instantiate(start);
            assert!(app.next_activity() >= start, "{profile:?}");
        }
    }
}

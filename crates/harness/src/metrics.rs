//! Measurement plumbing and the final [`Report`].

use std::collections::BTreeMap;

use l4span_sim::{stats::BoxStats, CycleStat, Duration, Instant};

use crate::impairment::ImpairmentCounters;

/// One congestion-control classic-fallback transition: a Prague sender
/// detected a hostile path (classic-AQM CE pattern or bleached feedback)
/// and switched to Reno-friendly dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FallbackRecord {
    /// Flow index in the scenario's flow list.
    pub flow: u16,
    /// When the transition happened, milliseconds into the run.
    pub at_ms: f64,
    /// Why (`"classic-ecn"` or `"bleached"`).
    pub reason: &'static str,
}

/// Per-packet delay breakdown (Fig. 10's stacked bars), in milliseconds.
#[derive(Debug, Default, Clone, Copy)]
pub struct Breakdown {
    /// WAN + core propagation.
    pub propagation: f64,
    /// RLC queueing: enqueue → head of queue.
    pub queuing: f64,
    /// Scheduling: head of queue → first byte scheduled.
    pub scheduling: f64,
    /// Everything else: transmission, HARQ, reassembly, UE internal.
    pub other: f64,
}

/// Running mean of breakdowns.
#[derive(Debug, Default, Clone, Copy)]
pub struct BreakdownAvg {
    sums: Breakdown,
    n: u64,
}

impl BreakdownAvg {
    /// Fold one packet's breakdown in.
    pub fn push(&mut self, b: Breakdown) {
        self.sums.propagation += b.propagation;
        self.sums.queuing += b.queuing;
        self.sums.scheduling += b.scheduling;
        self.sums.other += b.other;
        self.n += 1;
    }

    /// Mean components (zeros when empty).
    pub fn mean(&self) -> Breakdown {
        if self.n == 0 {
            return Breakdown::default();
        }
        let n = self.n as f64;
        Breakdown {
            propagation: self.sums.propagation / n,
            queuing: self.sums.queuing / n,
            scheduling: self.sums.scheduling / n,
            other: self.sums.other / n,
        }
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// One handover as the world executed it, with the delivery-gap
/// endpoints that define the interruption time.
#[derive(Debug, Default, Clone, Copy)]
pub struct HandoverRecord {
    /// UE that moved.
    pub ue: u16,
    /// When the handover executed.
    pub at: Instant,
    /// Source cell.
    pub from_cell: u8,
    /// Target cell.
    pub to_cell: u8,
    /// Last application delivery to this UE before the switch (`None`
    /// when nothing had been delivered yet).
    pub last_delivery_before: Option<Instant>,
    /// First application delivery after the switch (`None` when the run
    /// ended, or the next handover hit, before service resumed).
    pub first_delivery_after: Option<Instant>,
}

impl HandoverRecord {
    /// Handover interruption time: the gap in delivered bytes around the
    /// switch (3GPP's mobility-interruption metric, measured at the
    /// application). `None` when either endpoint is missing.
    pub fn interruption(&self) -> Option<Duration> {
        match (self.last_delivery_before, self.first_delivery_after) {
            (Some(b), Some(a)) => Some(a.saturating_since(b)),
            _ => None,
        }
    }
}

/// Everything measured in one run. Flows are indexed by their position
/// in the scenario's flow list.
#[derive(Debug, Default)]
pub struct Report {
    /// Scenario duration.
    pub duration: Duration,
    /// Throughput bin width.
    pub bin: Duration,
    /// Per-flow one-way delays (server app → UE app), milliseconds.
    pub owd_ms: Vec<Vec<f64>>,
    /// Timestamps (seconds) of the `owd_ms` samples, for windowed
    /// post-handover delay analysis.
    pub owd_at_s: Vec<Vec<f64>>,
    /// Per-flow **uplink** one-way delays (UE-side sender → server app),
    /// milliseconds. Empty for downlink flows.
    pub ul_owd_ms: Vec<Vec<f64>>,
    /// Timestamps (seconds) of the `ul_owd_ms` samples.
    pub ul_owd_at_s: Vec<Vec<f64>>,
    /// Per-flow smoothed-RTT samples at ACK arrival, milliseconds.
    pub rtt_ms: Vec<Vec<f64>>,
    /// Timestamps (seconds) of the `rtt_ms` samples, for time series.
    pub rtt_at_s: Vec<Vec<f64>>,
    /// Per-flow received payload bytes per bin (UE side).
    pub thr_bins: Vec<Vec<u64>>,
    /// RLC queue-length samples (SDUs) per (ue, drb), read from the UE's
    /// *serving* cell at each tick. A `BTreeMap` so both serialisation
    /// and the fingerprint iterate in key order regardless of hash state.
    pub queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    /// The same queue samples broken out per serving cell: (cell, ue,
    /// drb) → lengths sampled while that cell served the UE. Series
    /// lengths differ per key exactly by attachment time.
    pub cell_queue_series: BTreeMap<(u8, u16, u8), Vec<usize>>,
    /// **Uplink** RLC transmission-queue samples (SDUs) per (ue, drb),
    /// read from the UE-side transmit entity at each tick. Empty unless
    /// the scenario carries uplink data flows.
    pub ul_queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    /// Delivered payload bytes per bin, attributed to the cell serving
    /// the receiving UE at delivery time (per-cell throughput series).
    pub cell_thr_bins: Vec<Vec<u64>>,
    /// Every handover executed, in time order.
    pub handovers: Vec<HandoverRecord>,
    /// Per-flow delay breakdown means.
    pub breakdown: Vec<BreakdownAvg>,
    /// Egress-rate estimation errors in percent (Fig. 20), if L4Span ran.
    pub rate_err_pct: Vec<f64>,
    /// Per-frame one-way delays (encoder capture → complete frame at the
    /// UE application), milliseconds, per flow in delivery order. Empty
    /// for flows without a framed application.
    pub frame_owd_ms: Vec<Vec<f64>>,
    /// Frames the application generated, per flow.
    pub frames_generated: Vec<u64>,
    /// Frames delivered complete to the UE, per flow. Completion is
    /// joined on delivery of the frame's *last* byte/packet; over a
    /// reliable (RLC AM) bearer that implies the whole frame arrived.
    /// Over UM, a mid-frame loss is not detected — the frame counts as
    /// delivered if its final packet arrives.
    pub frames_delivered: Vec<u64>,
    /// Frames that missed their deadline: delivered late, dropped by the
    /// encoder, or never delivered by run end. Per flow.
    pub frames_missed: Vec<u64>,
    /// Playback stall time per flow, milliseconds: the summed deadline
    /// excess of late frames plus one frame interval for every frame
    /// that never arrived.
    pub stall_ms: Vec<f64>,
    /// Request/burst completion times (issue → fully delivered at the
    /// UE), milliseconds, per flow in completion order.
    pub request_ms: Vec<Vec<f64>>,
    /// Per-flow finish time (app-limited flows), milliseconds from start.
    pub finish_ms: Vec<Option<f64>>,
    /// Per-flow start times.
    pub flow_start: Vec<Instant>,
    /// UE index each flow terminates at (joins flows to
    /// [`HandoverRecord::ue`]; empty in hand-built reports, in which
    /// case per-UE attribution is skipped).
    pub flow_ue: Vec<u16>,
    /// CE marks on downlink headers + tentative marks (L4Span), across
    /// both marker instances.
    pub total_marks: u64,
    /// CE marks applied by the **UE-side uplink** marker instance alone
    /// (zero in downlink-only scenarios; a subset of `total_marks`).
    pub ul_marks: u64,
    /// SDUs dropped at full RLC queues.
    pub rlc_drops: u64,
    /// Transport blocks lost after HARQ exhaustion.
    pub tbs_lost: u64,
    /// HARQ retransmission attempts.
    pub harq_retx: u64,
    /// L4Span resident table memory at end of run, bytes (if it ran).
    pub marker_memory: usize,
    /// Wall-clock nanoseconds spent inside marker event handlers,
    /// (dl, ul, feedback) — Fig. 21 / Table 1 material.
    pub marker_time_ns: (Vec<u64>, Vec<u64>, Vec<u64>),
    /// Per-subsystem wall-clock totals recorded when
    /// `ScenarioConfig::measure_cycles` was set (the `fig_breakdown`
    /// attribution table); empty otherwise. Excluded from the
    /// fingerprint for the same reason as `marker_time_ns`: wall-clock
    /// readings legitimately vary between runs.
    pub cycles: Vec<CycleStat>,
    /// Discrete events processed by the world's run loop (deterministic;
    /// the numerator of the perf gate's events/sec metric).
    pub events: u64,
    /// Per-shard execution statistics when the run was sharded
    /// ([`crate::run_sharded`]); empty for classic single-world runs.
    /// Excluded from the fingerprint like `cycles`: the deterministic
    /// `events` column aside, these are wall-clock readings, and the
    /// fingerprint must stay byte-invariant to shard count.
    pub shards: Vec<ShardStat>,
    /// Why [`crate::plan_shards`] refused to shard this run (wired
    /// bottleneck, impairment pipeline, …); `None` when sharding was
    /// never requested or was granted. Excluded from the fingerprint
    /// like `shards`: it describes execution planning, not simulation.
    pub shard_reject: Option<&'static str>,
    /// Cumulative impairment-pipeline counters, present exactly when the
    /// scenario configured an [`crate::ImpairmentSpec`]. Joins the
    /// fingerprint only in that case, so impairment-free runs stay
    /// byte-identical to the pre-impairment corpus.
    pub impairment: Option<ImpairmentCounters>,
    /// Prague classic-fallback transitions, in flow order. Empty unless
    /// a fallback-enabled sender actually fell back; joins the
    /// fingerprint only when non-empty (same reasoning as `impairment`).
    pub fallbacks: Vec<FallbackRecord>,
    /// Per-flow FEC/ARQ media-endpoint ledgers, in flow order. Empty
    /// unless the scenario ran `TransportSpec::FecMedia` flows; joins
    /// the fingerprint only when non-empty (same reasoning as
    /// `impairment`).
    pub fec: Vec<FecStat>,
    /// Per-bonded-flow leg and coupling summaries, in flow order. Empty
    /// unless the scenario bonded flows ([`crate::scenario::FlowSpec::bond`]);
    /// joins the fingerprint only when non-empty.
    pub bonds: Vec<BondStat>,
}

/// End-of-run ledger of one FEC/ARQ media flow: what the codec offered
/// and how every source packet was ultimately resolved at the receiver
/// (conservation: `delivered + repaired + abandoned == offered` once the
/// run is closed out).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FecStat {
    /// Flow index.
    pub flow: u16,
    /// Source packets the sender's codec offered.
    pub offered: u64,
    /// Source packets that arrived on their own.
    pub delivered: u64,
    /// Losses recovered by a repair packet or an ARQ retransmission.
    pub repaired: u64,
    /// Losses past the playout deadline (skipped, unrecoverable).
    pub abandoned: u64,
    /// Duplicate source arrivals (ARQ raced the original).
    pub duplicates: u64,
    /// ARQ retransmissions the sender emitted.
    pub retx: u64,
    /// Sliding-window repair packets the sender emitted.
    pub repairs: u64,
    /// Repair packets that arrived with nothing to repair.
    pub repairs_unused: u64,
}

/// End-of-run summary of one bonded (dual-connectivity) flow.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BondStat {
    /// Flow index.
    pub flow: u16,
    /// Data packets that reached the server per leg (0 = primary UE).
    pub leg_pkts: [u64; 2],
    /// Shared-bottleneck verdict at end of run.
    pub coupled: bool,
    /// Verdict transitions over the run (either direction).
    pub coupled_flips: u64,
    /// Join-buffer gap releases (timeout or occupancy cap); always zero
    /// for FEC media flows, whose receiver is its own join point.
    pub join_flushed: u64,
}

/// Execution statistics of one shard of a sharded run: the replica's
/// event count, its wall-clock busy time summed over epochs, the time
/// spent draining/routing cross-shard mailboxes on its behalf, and how
/// many envelopes it exchanged. `cycles` carries the shard's own
/// per-subsystem attribution when `measure_cycles` was on.
#[derive(Debug, Clone, Default)]
pub struct ShardStat {
    /// Shard index.
    pub shard: usize,
    /// Number of cells this shard owns.
    pub cells: usize,
    /// Events this replica's run loop processed (including its copy of
    /// the replicated housekeeping ticks). Deterministic.
    pub events: u64,
    /// Wall-clock nanoseconds this replica spent inside its epochs.
    pub busy_ns: u64,
    /// Wall-clock nanoseconds spent extracting, sorting, and injecting
    /// cross-shard envelopes for this shard.
    pub drain_ns: u64,
    /// Cross-shard envelopes this shard sent (outbox + migrated events).
    pub mailed: u64,
    /// Per-subsystem cycle attribution of this replica (empty unless
    /// `ScenarioConfig::measure_cycles`).
    pub cycles: Vec<CycleStat>,
}

impl Report {
    /// Mean goodput of a flow over the stated window, in Mbit/s.
    pub fn goodput_mbps(&self, flow: usize, from: Instant, to: Instant) -> f64 {
        let bin_s = self.bin.as_secs_f64();
        let lo = (from.as_nanos() / self.bin.as_nanos().max(1)) as usize;
        let hi = ((to.as_nanos() / self.bin.as_nanos().max(1)) as usize)
            .min(self.thr_bins[flow].len());
        if hi <= lo {
            return 0.0;
        }
        let bytes: u64 = self.thr_bins[flow][lo..hi].iter().sum();
        bytes as f64 * 8.0 / ((hi - lo) as f64 * bin_s) / 1e6
    }

    /// Mean goodput over the whole run.
    pub fn goodput_total_mbps(&self, flow: usize) -> f64 {
        self.goodput_mbps(flow, Instant::ZERO, Instant::ZERO + self.duration)
    }

    /// Throughput time series in Mbit/s, aggregated to `agg` bins.
    pub fn throughput_series_mbps(&self, flow: usize, agg: usize) -> Vec<(f64, f64)> {
        let agg = agg.max(1);
        let bin_s = self.bin.as_secs_f64();
        self.thr_bins[flow]
            .chunks(agg)
            .enumerate()
            .map(|(i, c)| {
                let t = (i * agg) as f64 * bin_s;
                let mbps = c.iter().sum::<u64>() as f64 * 8.0 / (c.len() as f64 * bin_s) / 1e6;
                (t, mbps)
            })
            .collect()
    }

    /// Box statistics of a flow's one-way delay.
    pub fn owd_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(&self.owd_ms[flow])
    }

    /// Box statistics of a flow's RTT samples.
    pub fn rtt_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(&self.rtt_ms[flow])
    }

    /// RTT time series `(t_seconds, rtt_ms)` averaged into `bin_s`-second
    /// bins (Fig. 2's RTT traces).
    pub fn rtt_series(&self, flow: usize, bin_s: f64) -> Vec<(f64, f64)> {
        let mut sums: Vec<(f64, u32)> = Vec::new();
        for (&t, &v) in self.rtt_at_s[flow].iter().zip(&self.rtt_ms[flow]) {
            let idx = (t / bin_s) as usize;
            if sums.len() <= idx {
                sums.resize(idx + 1, (0.0, 0));
            }
            sums[idx].0 += v;
            sums[idx].1 += 1;
        }
        sums.iter()
            .enumerate()
            .filter(|(_, &(_, n))| n > 0)
            .map(|(i, &(s, n))| (i as f64 * bin_s, s / n as f64))
            .collect()
    }

    /// Pooled one-way-delay statistics across a set of flows.
    pub fn owd_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let mut all = Vec::new();
        for &f in flows {
            all.extend_from_slice(&self.owd_ms[f]);
        }
        BoxStats::from_samples(&all)
    }

    /// Box statistics of a flow's uplink one-way delay (empty stats for
    /// downlink flows).
    pub fn ul_owd_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(self.ul_owd_ms.get(flow).map_or(&[][..], |v| &v[..]))
    }

    /// Pooled uplink one-way-delay statistics across a set of flows.
    pub fn ul_owd_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let mut all = Vec::new();
        for &f in flows {
            if let Some(v) = self.ul_owd_ms.get(f) {
                all.extend_from_slice(v);
            }
        }
        BoxStats::from_samples(&all)
    }

    /// Pooled one-way-delay statistics restricted to samples delivered in
    /// `[from, to)` seconds.
    pub fn owd_stats_windowed(&self, flows: &[usize], from_s: f64, to_s: f64) -> BoxStats {
        let mut all = Vec::new();
        for &f in flows {
            for (&t, &v) in self.owd_at_s[f].iter().zip(&self.owd_ms[f]) {
                if t >= from_s && t < to_s {
                    all.push(v);
                }
            }
        }
        BoxStats::from_samples(&all)
    }

    /// Pooled one-way delay over the `window` following each handover —
    /// the metric that separates the `MigrateState` and `ColdStart`
    /// marker policies (a stale migrated estimate under-marks against
    /// the new cell until its peak memory ages out). Each flow's samples
    /// are attributed only to handovers of its *own* UE (when `flow_ue`
    /// is populated) and counted at most once even when staggered
    /// handovers open overlapping windows.
    pub fn post_handover_owd(&self, flows: &[usize], window: Duration) -> BoxStats {
        let w = window.as_secs_f64();
        let mut all = Vec::new();
        for &f in flows {
            let ue = self.flow_ue.get(f).copied();
            let times = &self.owd_at_s[f];
            let mut taken = vec![false; times.len()];
            for h in &self.handovers {
                if ue.is_some_and(|u| u != h.ue) {
                    continue; // another UE moved; this flow is unaffected
                }
                let t0 = h.at.as_secs_f64();
                for (i, &t) in times.iter().enumerate() {
                    if !taken[i] && t >= t0 && t < t0 + w {
                        taken[i] = true;
                        all.push(self.owd_ms[f][i]);
                    }
                }
            }
        }
        BoxStats::from_samples(&all)
    }

    /// Box statistics of a flow's per-frame one-way delay (empty stats
    /// for flows without a framed application).
    pub fn frame_owd_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(
            self.frame_owd_ms.get(flow).map_or(&[][..], |v| &v[..]),
        )
    }

    /// Pooled per-frame one-way-delay statistics across flows.
    pub fn frame_owd_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let mut all = Vec::new();
        for &f in flows {
            if let Some(v) = self.frame_owd_ms.get(f) {
                all.extend_from_slice(v);
            }
        }
        BoxStats::from_samples(&all)
    }

    /// Fraction of a flow's frames that missed their deadline (late,
    /// dropped, or never delivered). `None` when the flow generated no
    /// frames.
    pub fn frame_deadline_miss_rate(&self, flow: usize) -> Option<f64> {
        let generated = *self.frames_generated.get(flow)?;
        if generated == 0 {
            return None;
        }
        Some(*self.frames_missed.get(flow)? as f64 / generated as f64)
    }

    /// Playback stall time of a flow, milliseconds.
    pub fn stall_time_ms(&self, flow: usize) -> f64 {
        self.stall_ms.get(flow).copied().unwrap_or(0.0)
    }

    /// Box statistics of a flow's request completion times.
    pub fn request_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(
            self.request_ms.get(flow).map_or(&[][..], |v| &v[..]),
        )
    }

    /// Mean handover interruption time in milliseconds over the records
    /// that resolved (`None` when no handover resolved at all).
    pub fn mean_interruption_ms(&self) -> Option<f64> {
        let gaps: Vec<f64> = self
            .handovers
            .iter()
            .filter_map(|h| h.interruption())
            .map(|d| d.as_millis_f64())
            .collect();
        if gaps.is_empty() {
            return None;
        }
        Some(gaps.iter().sum::<f64>() / gaps.len() as f64)
    }

    /// Mean goodput served by one cell over the whole run, in Mbit/s.
    pub fn cell_goodput_mbps(&self, cell: usize) -> f64 {
        let bytes: u64 = self.cell_thr_bins.get(cell).map_or(0, |b| b.iter().sum());
        bytes as f64 * 8.0 / self.duration.as_secs_f64() / 1e6
    }

    /// A byte-exact textual digest of every *simulation-derived* field,
    /// for determinism tests: two runs of the same seeded scenario must
    /// produce identical fingerprints.
    ///
    /// `marker_time_ns` and `cycles` are excluded (they measure
    /// wall-clock time, which legitimately varies between runs), and
    /// `queue_series` is emitted in sorted key order so the digest does
    /// not depend on hash-map iteration order. Floats are formatted with
    /// `{:?}` (shortest round-trip), so equal fingerprints imply
    /// bit-identical values.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "duration={:?};bin={:?};owd={:?};owd_at={:?};rtt={:?};rtt_at={:?};thr={:?};cthr={:?};",
            self.duration,
            self.bin,
            self.owd_ms,
            self.owd_at_s,
            self.rtt_ms,
            self.rtt_at_s,
            self.thr_bins,
            self.cell_thr_bins
        );
        let _ = write!(
            s,
            "ulowd={:?};ulowd_at={:?};",
            self.ul_owd_ms, self.ul_owd_at_s
        );
        for (k, v) in &self.queue_series {
            let _ = write!(s, "q{:?}={:?};", k, v);
        }
        for (k, v) in &self.cell_queue_series {
            let _ = write!(s, "cq{:?}={:?};", k, v);
        }
        for (k, v) in &self.ul_queue_series {
            let _ = write!(s, "uq{:?}={:?};", k, v);
        }
        for h in &self.handovers {
            let _ = write!(s, "ho={:?};", h);
        }
        for b in &self.breakdown {
            let _ = write!(s, "bd={:?}/{};", b.mean(), b.count());
        }
        let _ = write!(
            s,
            "fowd={:?};fgen={:?};fdel={:?};fmiss={:?};stall={:?};req={:?};",
            self.frame_owd_ms,
            self.frames_generated,
            self.frames_delivered,
            self.frames_missed,
            self.stall_ms,
            self.request_ms
        );
        let _ = write!(
            s,
            "err={:?};fin={:?};start={:?};fue={:?};marks={};ulmarks={};rlc_drops={};tbs_lost={};harq={};mem={};ev={}",
            self.rate_err_pct,
            self.finish_ms,
            self.flow_start,
            self.flow_ue,
            self.total_marks,
            self.ul_marks,
            self.rlc_drops,
            self.tbs_lost,
            self.harq_retx,
            self.marker_memory,
            self.events
        );
        // Impairment-era fields are appended *conditionally* so every
        // impairment-free run fingerprints byte-identically to the
        // pre-impairment corpus (both gates are deterministic: the
        // counters exist iff the config asked for a pipeline, and
        // fallback transitions are seeded-simulation outcomes).
        if let Some(imp) = &self.impairment {
            let _ = write!(
                s,
                ";imp=bleached:{},remarked:{},ect_dropped:{},qmarks:{},qdrops:{}",
                imp.bleached, imp.remarked, imp.ect_dropped, imp.queue_marks, imp.queue_drops
            );
        }
        if !self.fallbacks.is_empty() {
            for f in &self.fallbacks {
                let _ = write!(s, ";fb={},{:?},{}", f.flow, f.at_ms, f.reason);
            }
        }
        // Bonding-era fields follow the same conditional rule: they are
        // non-empty exactly when the scenario ran FecMedia or bonded
        // flows, so every pre-bonding run keeps its corpus fingerprint.
        for f in &self.fec {
            let _ = write!(
                s,
                ";fec={},{},{},{},{},{},{},{},{}",
                f.flow,
                f.offered,
                f.delivered,
                f.repaired,
                f.abandoned,
                f.duplicates,
                f.retx,
                f.repairs,
                f.repairs_unused
            );
        }
        for b in &self.bonds {
            let _ = write!(
                s,
                ";bond={},{:?},{},{},{}",
                b.flow, b.leg_pkts, b.coupled, b.coupled_flips, b.join_flushed
            );
        }
        s
    }

    /// A compact, stable 64-bit digest of [`Report::fingerprint`]
    /// (FNV-1a over the fingerprint bytes), rendered as 16 lowercase hex
    /// digits. This is what the golden-fingerprint regression corpus
    /// checks in: equal digests ⇒ byte-identical fingerprints for all
    /// practical purposes, and the corpus file stays reviewable.
    pub fn fingerprint_digest(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.fingerprint().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        format!("{h:016x}")
    }

    /// Pooled throughput box stats (per-bin Mbit/s across flows).
    pub fn throughput_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let bin_s = self.bin.as_secs_f64();
        let mut all = Vec::new();
        for &f in flows {
            // Skip bins before flow start and leading zeros (handshake).
            let start_bin =
                (self.flow_start[f].as_nanos() / self.bin.as_nanos().max(1)) as usize + 1;
            for &b in self.thr_bins[f].iter().skip(start_bin) {
                all.push(b as f64 * 8.0 / bin_s / 1e6);
            }
        }
        BoxStats::from_samples(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_mean() {
        let mut avg = BreakdownAvg::default();
        avg.push(Breakdown {
            propagation: 10.0,
            queuing: 20.0,
            scheduling: 2.0,
            other: 4.0,
        });
        avg.push(Breakdown {
            propagation: 10.0,
            queuing: 40.0,
            scheduling: 4.0,
            other: 8.0,
        });
        let m = avg.mean();
        assert_eq!(m.propagation, 10.0);
        assert_eq!(m.queuing, 30.0);
        assert_eq!(m.scheduling, 3.0);
        assert_eq!(m.other, 6.0);
        assert_eq!(avg.count(), 2);
    }

    #[test]
    fn rtt_series_bins_and_averages() {
        let r = Report {
            rtt_ms: vec![vec![10.0, 20.0, 40.0]],
            rtt_at_s: vec![vec![0.1, 0.4, 1.2]],
            ..Report::default()
        };
        let s = r.rtt_series(0, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0.0, 15.0)); // two samples in the first second
        assert_eq!(s[1], (1.0, 40.0));
    }

    #[test]
    fn handover_record_interruption_and_windowed_owd() {
        let h = HandoverRecord {
            ue: 0,
            at: Instant::from_millis(1000),
            from_cell: 0,
            to_cell: 1,
            last_delivery_before: Some(Instant::from_millis(990)),
            first_delivery_after: Some(Instant::from_millis(1045)),
        };
        assert_eq!(h.interruption(), Some(Duration::from_millis(55)));
        let unresolved = HandoverRecord {
            first_delivery_after: None,
            ..h
        };
        assert_eq!(unresolved.interruption(), None);

        let r = Report {
            owd_ms: vec![vec![10.0, 80.0, 20.0]],
            owd_at_s: vec![vec![0.5, 1.02, 2.0]],
            handovers: vec![h],
            ..Report::default()
        };
        assert_eq!(r.mean_interruption_ms(), Some(55.0));
        // Only the 80 ms sample falls in the 100 ms post-HO window.
        let post = r.post_handover_owd(&[0], Duration::from_millis(100));
        assert_eq!(post.median, 80.0);
        let win = r.owd_stats_windowed(&[0], 0.0, 1.0);
        assert_eq!(win.median, 10.0);
    }

    #[test]
    fn qoe_helpers_handle_populated_and_absent_flows() {
        let r = Report {
            frame_owd_ms: vec![vec![20.0, 120.0, 40.0]],
            frames_generated: vec![5],
            frames_delivered: vec![3],
            frames_missed: vec![3], // 1 late + 2 undelivered
            stall_ms: vec![53.3],
            request_ms: vec![vec![80.0, 120.0]],
            ..Report::default()
        };
        assert_eq!(r.frame_owd_stats(0).median, 40.0);
        assert_eq!(r.frame_deadline_miss_rate(0), Some(0.6));
        assert_eq!(r.stall_time_ms(0), 53.3);
        assert_eq!(r.request_stats(0).median, 100.0);
        // Out-of-range / absent flows degrade gracefully.
        assert_eq!(r.frame_deadline_miss_rate(7), None);
        assert_eq!(r.stall_time_ms(7), 0.0);
        assert_eq!(r.frame_owd_stats(7).n, 0);
        // The QoE fields are part of the determinism fingerprint.
        let fp = r.fingerprint();
        assert!(fp.contains("fowd=") && fp.contains("stall="), "{fp}");
    }

    #[test]
    fn ul_owd_helpers_and_digest_are_stable() {
        let r = Report {
            ul_owd_ms: vec![vec![5.0, 15.0, 10.0]],
            ul_owd_at_s: vec![vec![0.1, 0.2, 0.3]],
            ..Report::default()
        };
        assert_eq!(r.ul_owd_stats(0).median, 10.0);
        assert_eq!(r.ul_owd_stats_pooled(&[0]).n, 3);
        assert_eq!(r.ul_owd_stats(5).n, 0, "absent flows degrade gracefully");
        let fp = r.fingerprint();
        assert!(fp.contains("ulowd="), "{fp}");
        // The digest is a pure function of the fingerprint.
        assert_eq!(r.fingerprint_digest(), r.fingerprint_digest());
        assert_eq!(r.fingerprint_digest().len(), 16);
        let other = Report {
            ul_owd_ms: vec![vec![5.0, 15.0, 10.1]],
            ..Report::default()
        };
        assert_ne!(r.fingerprint_digest(), other.fingerprint_digest());
    }

    #[test]
    fn goodput_from_bins() {
        let mut r = Report {
            bin: Duration::from_millis(100),
            duration: Duration::from_secs(1),
            thr_bins: vec![vec![125_000u64; 10]], // 10 Mbit/s
            flow_start: vec![Instant::ZERO],
            ..Report::default()
        };
        r.owd_ms = vec![vec![]];
        let g = r.goodput_total_mbps(0);
        assert!((g - 10.0).abs() < 1e-9, "{g}");
        let series = r.throughput_series_mbps(0, 5);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 10.0).abs() < 1e-9);
    }
}

//! Measurement plumbing and the final [`Report`].

use std::collections::BTreeMap;

use l4span_sim::{stats::BoxStats, Duration, Instant};

/// Per-packet delay breakdown (Fig. 10's stacked bars), in milliseconds.
#[derive(Debug, Default, Clone, Copy)]
pub struct Breakdown {
    /// WAN + core propagation.
    pub propagation: f64,
    /// RLC queueing: enqueue → head of queue.
    pub queuing: f64,
    /// Scheduling: head of queue → first byte scheduled.
    pub scheduling: f64,
    /// Everything else: transmission, HARQ, reassembly, UE internal.
    pub other: f64,
}

/// Running mean of breakdowns.
#[derive(Debug, Default, Clone, Copy)]
pub struct BreakdownAvg {
    sums: Breakdown,
    n: u64,
}

impl BreakdownAvg {
    /// Fold one packet's breakdown in.
    pub fn push(&mut self, b: Breakdown) {
        self.sums.propagation += b.propagation;
        self.sums.queuing += b.queuing;
        self.sums.scheduling += b.scheduling;
        self.sums.other += b.other;
        self.n += 1;
    }

    /// Mean components (zeros when empty).
    pub fn mean(&self) -> Breakdown {
        if self.n == 0 {
            return Breakdown::default();
        }
        let n = self.n as f64;
        Breakdown {
            propagation: self.sums.propagation / n,
            queuing: self.sums.queuing / n,
            scheduling: self.sums.scheduling / n,
            other: self.sums.other / n,
        }
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Everything measured in one run. Flows are indexed by their position
/// in the scenario's flow list.
#[derive(Debug, Default)]
pub struct Report {
    /// Scenario duration.
    pub duration: Duration,
    /// Throughput bin width.
    pub bin: Duration,
    /// Per-flow one-way delays (server app → UE app), milliseconds.
    pub owd_ms: Vec<Vec<f64>>,
    /// Per-flow smoothed-RTT samples at ACK arrival, milliseconds.
    pub rtt_ms: Vec<Vec<f64>>,
    /// Timestamps (seconds) of the `rtt_ms` samples, for time series.
    pub rtt_at_s: Vec<Vec<f64>>,
    /// Per-flow received payload bytes per bin (UE side).
    pub thr_bins: Vec<Vec<u64>>,
    /// RLC queue-length samples (SDUs) per (ue, drb). A `BTreeMap` so
    /// both serialisation and the fingerprint iterate in key order
    /// regardless of hash state.
    pub queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    /// Per-flow delay breakdown means.
    pub breakdown: Vec<BreakdownAvg>,
    /// Egress-rate estimation errors in percent (Fig. 20), if L4Span ran.
    pub rate_err_pct: Vec<f64>,
    /// Per-flow finish time (app-limited flows), milliseconds from start.
    pub finish_ms: Vec<Option<f64>>,
    /// Per-flow start times.
    pub flow_start: Vec<Instant>,
    /// CE marks on downlink headers + tentative marks (L4Span).
    pub total_marks: u64,
    /// SDUs dropped at full RLC queues.
    pub rlc_drops: u64,
    /// Transport blocks lost after HARQ exhaustion.
    pub tbs_lost: u64,
    /// HARQ retransmission attempts.
    pub harq_retx: u64,
    /// L4Span resident table memory at end of run, bytes (if it ran).
    pub marker_memory: usize,
    /// Wall-clock nanoseconds spent inside marker event handlers,
    /// (dl, ul, feedback) — Fig. 21 / Table 1 material.
    pub marker_time_ns: (Vec<u64>, Vec<u64>, Vec<u64>),
    /// Discrete events processed by the world's run loop (deterministic;
    /// the numerator of the perf gate's events/sec metric).
    pub events: u64,
}

impl Report {
    /// Mean goodput of a flow over the stated window, in Mbit/s.
    pub fn goodput_mbps(&self, flow: usize, from: Instant, to: Instant) -> f64 {
        let bin_s = self.bin.as_secs_f64();
        let lo = (from.as_nanos() / self.bin.as_nanos().max(1)) as usize;
        let hi = ((to.as_nanos() / self.bin.as_nanos().max(1)) as usize)
            .min(self.thr_bins[flow].len());
        if hi <= lo {
            return 0.0;
        }
        let bytes: u64 = self.thr_bins[flow][lo..hi].iter().sum();
        bytes as f64 * 8.0 / ((hi - lo) as f64 * bin_s) / 1e6
    }

    /// Mean goodput over the whole run.
    pub fn goodput_total_mbps(&self, flow: usize) -> f64 {
        self.goodput_mbps(flow, Instant::ZERO, Instant::ZERO + self.duration)
    }

    /// Throughput time series in Mbit/s, aggregated to `agg` bins.
    pub fn throughput_series_mbps(&self, flow: usize, agg: usize) -> Vec<(f64, f64)> {
        let agg = agg.max(1);
        let bin_s = self.bin.as_secs_f64();
        self.thr_bins[flow]
            .chunks(agg)
            .enumerate()
            .map(|(i, c)| {
                let t = (i * agg) as f64 * bin_s;
                let mbps = c.iter().sum::<u64>() as f64 * 8.0 / (c.len() as f64 * bin_s) / 1e6;
                (t, mbps)
            })
            .collect()
    }

    /// Box statistics of a flow's one-way delay.
    pub fn owd_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(&self.owd_ms[flow])
    }

    /// Box statistics of a flow's RTT samples.
    pub fn rtt_stats(&self, flow: usize) -> BoxStats {
        BoxStats::from_samples(&self.rtt_ms[flow])
    }

    /// RTT time series `(t_seconds, rtt_ms)` averaged into `bin_s`-second
    /// bins (Fig. 2's RTT traces).
    pub fn rtt_series(&self, flow: usize, bin_s: f64) -> Vec<(f64, f64)> {
        let mut sums: Vec<(f64, u32)> = Vec::new();
        for (&t, &v) in self.rtt_at_s[flow].iter().zip(&self.rtt_ms[flow]) {
            let idx = (t / bin_s) as usize;
            if sums.len() <= idx {
                sums.resize(idx + 1, (0.0, 0));
            }
            sums[idx].0 += v;
            sums[idx].1 += 1;
        }
        sums.iter()
            .enumerate()
            .filter(|(_, &(_, n))| n > 0)
            .map(|(i, &(s, n))| (i as f64 * bin_s, s / n as f64))
            .collect()
    }

    /// Pooled one-way-delay statistics across a set of flows.
    pub fn owd_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let mut all = Vec::new();
        for &f in flows {
            all.extend_from_slice(&self.owd_ms[f]);
        }
        BoxStats::from_samples(&all)
    }

    /// A byte-exact textual digest of every *simulation-derived* field,
    /// for determinism tests: two runs of the same seeded scenario must
    /// produce identical fingerprints.
    ///
    /// `marker_time_ns` is excluded (it measures wall-clock time inside
    /// the marker, which legitimately varies between runs), and
    /// `queue_series` is emitted in sorted key order so the digest does
    /// not depend on hash-map iteration order. Floats are formatted with
    /// `{:?}` (shortest round-trip), so equal fingerprints imply
    /// bit-identical values.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "duration={:?};bin={:?};owd={:?};rtt={:?};rtt_at={:?};thr={:?};",
            self.duration, self.bin, self.owd_ms, self.rtt_ms, self.rtt_at_s, self.thr_bins
        );
        for (k, v) in &self.queue_series {
            let _ = write!(s, "q{:?}={:?};", k, v);
        }
        for b in &self.breakdown {
            let _ = write!(s, "bd={:?}/{};", b.mean(), b.count());
        }
        let _ = write!(
            s,
            "err={:?};fin={:?};start={:?};marks={};rlc_drops={};tbs_lost={};harq={};mem={};ev={}",
            self.rate_err_pct,
            self.finish_ms,
            self.flow_start,
            self.total_marks,
            self.rlc_drops,
            self.tbs_lost,
            self.harq_retx,
            self.marker_memory,
            self.events
        );
        s
    }

    /// Pooled throughput box stats (per-bin Mbit/s across flows).
    pub fn throughput_stats_pooled(&self, flows: &[usize]) -> BoxStats {
        let bin_s = self.bin.as_secs_f64();
        let mut all = Vec::new();
        for &f in flows {
            // Skip bins before flow start and leading zeros (handshake).
            let start_bin =
                (self.flow_start[f].as_nanos() / self.bin.as_nanos().max(1)) as usize + 1;
            for &b in self.thr_bins[f].iter().skip(start_bin) {
                all.push(b as f64 * 8.0 / bin_s / 1e6);
            }
        }
        BoxStats::from_samples(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_mean() {
        let mut avg = BreakdownAvg::default();
        avg.push(Breakdown {
            propagation: 10.0,
            queuing: 20.0,
            scheduling: 2.0,
            other: 4.0,
        });
        avg.push(Breakdown {
            propagation: 10.0,
            queuing: 40.0,
            scheduling: 4.0,
            other: 8.0,
        });
        let m = avg.mean();
        assert_eq!(m.propagation, 10.0);
        assert_eq!(m.queuing, 30.0);
        assert_eq!(m.scheduling, 3.0);
        assert_eq!(m.other, 6.0);
        assert_eq!(avg.count(), 2);
    }

    #[test]
    fn rtt_series_bins_and_averages() {
        let r = Report {
            rtt_ms: vec![vec![10.0, 20.0, 40.0]],
            rtt_at_s: vec![vec![0.1, 0.4, 1.2]],
            ..Report::default()
        };
        let s = r.rtt_series(0, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], (0.0, 15.0)); // two samples in the first second
        assert_eq!(s[1], (1.0, 40.0));
    }

    #[test]
    fn goodput_from_bins() {
        let mut r = Report {
            bin: Duration::from_millis(100),
            duration: Duration::from_secs(1),
            thr_bins: vec![vec![125_000u64; 10]], // 10 Mbit/s
            flow_start: vec![Instant::ZERO],
            ..Report::default()
        };
        r.owd_ms = vec![vec![]];
        let g = r.goodput_total_mbps(0);
        assert!((g - 10.0).abs() < 1e-9, "{g}");
        let series = r.throughput_series_mbps(0, 5);
        assert_eq!(series.len(), 2);
        assert!((series[0].1 - 10.0).abs() < 1e-9);
    }
}

//! Mid-path internet impairments: the hostile middle between the content
//! server and the core.
//!
//! Every simulated path in earlier revisions was ECN-faithful: the
//! codepoint the server wrote was the codepoint the RAN saw. Measurement
//! ("A Fresh Look at ECN Traversal in the Wild") says real internet
//! paths are not like that — middleboxes bleach ECT to Not-ECT, mangle
//! codepoints, drop ECT traffic outright, and legacy RFC 3168 routers
//! mark `ECT(1)` with classic (deep-queue) semantics. This module models
//! that middle as a composable pipeline of [`StageSpec`] stages inserted
//! between server egress and the core, so scenarios can ask the
//! deployment question the paper leaves open: how much of the marker's
//! benefit survives a hostile path?
//!
//! ```text
//! server ──WAN──▶ [stage 0] ─▶ [stage 1] ─▶ … ─▶ (bottleneck?) ─▶ CU
//!                  bleach       RFC 3168 hop
//! ```
//!
//! Stage order matters and is preserved: bleaching *before* the classic
//! queue turns would-be CE marks into drops (the queue sees Not-ECT),
//! while bleaching *after* it erases the queue's marks. Stateless stages
//! (bleach / remark / drop) apply instantaneously; the
//! [`StageSpec::ClassicQueue`] stage is a real rate-served [`Router`]
//! running the RFC 3168 [`Red`] AQM on one shared FIFO, so it adds
//! queueing delay and is where L4S and classic flows collide.
//!
//! Each stage draws from its own derived RNG stream, so impairment
//! decisions are deterministic, independent of worker count, and
//! independent of every pre-existing stream in the world.

use l4span_aqm::{Red, Router, RouterAqm};
use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Instant, SimRng};

/// One configured impairment policy, applied in pipeline order.
#[derive(Debug, Clone, PartialEq)]
pub enum StageSpec {
    /// Rewrite ECT/CE to Not-ECT with probability `prob` per packet —
    /// the most common impairment measured in the wild. Not-ECT packets
    /// pass untouched (and uncounted).
    Bleach {
        /// Per-packet bleaching probability in `[0, 1]`.
        prob: f64,
    },
    /// Rewrite codepoint `from` to `to` with probability `prob` per
    /// packet (middlebox mangling, e.g. `ECT(1)` → `ECT(0)`). The
    /// transition must be legal per [`Ecn::transition_legal`];
    /// [`ImpairmentSpec::validate`] rejects illegal ones.
    Remark {
        /// Codepoint the stage rewrites.
        from: Ecn,
        /// Codepoint it rewrites to.
        to: Ecn,
        /// Per-packet rewrite probability in `[0, 1]`.
        prob: f64,
    },
    /// Drop ECT-marked packets with probability `prob` per packet (the
    /// ECT-hostile firewall behaviour). Not-ECT passes untouched.
    EctDrop {
        /// Per-packet drop probability in `[0, 1]`.
        prob: f64,
    },
    /// A full RFC 3168 classic-ECN hop: one shared FIFO served at
    /// `rate_bps`, RED-style marking that treats `ECT(1)` exactly like
    /// `ECT(0)` and drops Not-ECT instead of marking. The coexistence
    /// hazard: a scalable flow reads these deep-queue marks as shallow
    /// L4S signals unless it detects the pattern and falls back.
    ClassicQueue {
        /// Service rate of the hop in bits/s.
        rate_bps: f64,
    },
}

/// Queue byte cap of a [`StageSpec::ClassicQueue`] hop (1 MiB — a small
/// legacy-router buffer; the hop is an impairment, not the bottleneck).
const CLASSIC_QUEUE_BYTES: usize = 1 << 20;

/// Ordered impairment pipeline between server egress and the core.
///
/// Build with the named constructors ([`ImpairmentSpec::bleaching`],
/// [`ImpairmentSpec::classic_hop`]) and compose with
/// [`ImpairmentSpec::then`]:
///
/// ```
/// use l4span_harness::impairment::ImpairmentSpec;
/// // Bleach 30% of ECT upstream of an RFC 3168 hop at 95 Mbit/s.
/// let spec = ImpairmentSpec::bleaching(0.3).then_classic_hop(95e6);
/// assert_eq!(spec.stages.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpairmentSpec {
    /// The stages, applied in order.
    pub stages: Vec<StageSpec>,
}

impl ImpairmentSpec {
    /// A single bleaching stage: rewrite ECT/CE to Not-ECT with
    /// probability `prob` per packet.
    pub fn bleaching(prob: f64) -> ImpairmentSpec {
        ImpairmentSpec {
            stages: vec![StageSpec::Bleach { prob }],
        }
    }

    /// A single RFC 3168 classic-ECN hop served at `rate_bps`.
    pub fn classic_hop(rate_bps: f64) -> ImpairmentSpec {
        ImpairmentSpec {
            stages: vec![StageSpec::ClassicQueue { rate_bps }],
        }
    }

    /// A single remarking stage (`from` → `to` with probability `prob`).
    pub fn remarking(from: Ecn, to: Ecn, prob: f64) -> ImpairmentSpec {
        ImpairmentSpec {
            stages: vec![StageSpec::Remark { from, to, prob }],
        }
    }

    /// A single ECT-drop stage.
    pub fn ect_dropping(prob: f64) -> ImpairmentSpec {
        ImpairmentSpec {
            stages: vec![StageSpec::EctDrop { prob }],
        }
    }

    /// Append `stage` to the pipeline.
    #[must_use]
    pub fn then(mut self, stage: StageSpec) -> ImpairmentSpec {
        self.stages.push(stage);
        self
    }

    /// Append a bleaching stage.
    #[must_use]
    pub fn then_bleaching(self, prob: f64) -> ImpairmentSpec {
        self.then(StageSpec::Bleach { prob })
    }

    /// Append an RFC 3168 classic-ECN hop.
    #[must_use]
    pub fn then_classic_hop(self, rate_bps: f64) -> ImpairmentSpec {
        self.then(StageSpec::ClassicQueue { rate_bps })
    }

    /// Check every stage is well-formed: probabilities in `[0, 1]`,
    /// remark transitions legal, queue rates positive. Returns the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.stages.iter().enumerate() {
            match *s {
                StageSpec::Bleach { prob } | StageSpec::EctDrop { prob } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("stage {i}: probability {prob} outside [0,1]"));
                    }
                }
                StageSpec::Remark { from, to, prob } => {
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("stage {i}: probability {prob} outside [0,1]"));
                    }
                    if !Ecn::transition_legal(from, to) {
                        return Err(format!(
                            "stage {i}: illegal ECN transition {from:?} -> {to:?}"
                        ));
                    }
                }
                StageSpec::ClassicQueue { rate_bps } => {
                    if rate_bps <= 0.0 || rate_bps.is_nan() {
                        return Err(format!("stage {i}: queue rate {rate_bps} not positive"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// What the impairment pipeline did, cumulatively. Folded into
/// [`Report::impairment`](crate::metrics::Report) and — because the
/// decisions ride dedicated RNG streams — byte-identical across worker
/// counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairmentCounters {
    /// Packets whose ECT/CE codepoint was rewritten to Not-ECT.
    pub bleached: u64,
    /// Packets remarked by a [`StageSpec::Remark`] stage.
    pub remarked: u64,
    /// Packets dropped by a [`StageSpec::EctDrop`] stage.
    pub ect_dropped: u64,
    /// CE marks applied by classic-queue hops.
    pub queue_marks: u64,
    /// Drops (AQM + tail) at classic-queue hops.
    pub queue_drops: u64,
}

impl ImpairmentCounters {
    /// Total packets removed from the path by the pipeline.
    pub fn total_dropped(&self) -> u64 {
        self.ect_dropped + self.queue_drops
    }
}

/// What one stage did with one packet.
#[derive(Debug)]
pub enum StageOutcome {
    /// The packet continues to the next stage (possibly rewritten).
    Continue(PacketBuf),
    /// The packet was dropped and counted; processing stops.
    Dropped,
    /// The packet entered this stage's queue; it re-emerges from
    /// [`Impairment::poll_queue`] later.
    Queued,
}

/// Runtime stage: the spec plus its RNG stream / router state. The
/// router is boxed to keep the stateless variants small.
#[derive(Debug)]
enum Stage {
    Bleach { prob: f64, rng: SimRng },
    Remark { from: Ecn, to: Ecn, prob: f64, rng: SimRng },
    EctDrop { prob: f64, rng: SimRng },
    ClassicQueue { router: Box<Router>, poll_at: Instant },
}

/// The instantiated pipeline (one per world; see `World::new`).
#[derive(Debug)]
pub struct Impairment {
    stages: Vec<Stage>,
    /// Cumulative counters across all stages.
    pub counters: ImpairmentCounters,
}

impl Impairment {
    /// Instantiate `spec`, drawing one RNG stream per stage from `rngs`
    /// (must supply exactly `spec.stages.len()` streams; queue stages
    /// consume theirs for the AQM).
    ///
    /// # Panics
    /// If `spec` fails [`ImpairmentSpec::validate`] or `rngs` has the
    /// wrong length — both are configuration bugs.
    pub fn new(spec: &ImpairmentSpec, rngs: Vec<SimRng>) -> Impairment {
        if let Err(e) = spec.validate() {
            panic!("invalid ImpairmentSpec: {e}");
        }
        assert_eq!(rngs.len(), spec.stages.len(), "one RNG stream per stage");
        let stages = spec
            .stages
            .iter()
            .zip(rngs)
            .map(|(s, rng)| match *s {
                StageSpec::Bleach { prob } => Stage::Bleach { prob, rng },
                StageSpec::Remark { from, to, prob } => Stage::Remark { from, to, prob, rng },
                StageSpec::EctDrop { prob } => Stage::EctDrop { prob, rng },
                StageSpec::ClassicQueue { rate_bps } => Stage::ClassicQueue {
                    router: Box::new(Router::new(
                        rate_bps,
                        CLASSIC_QUEUE_BYTES,
                        RouterAqm::ClassicEcn(Red::default()),
                        rng,
                    )),
                    poll_at: Instant::MAX,
                },
            })
            .collect();
        Impairment {
            stages,
            counters: ImpairmentCounters::default(),
        }
    }

    /// Number of pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Run stage `i` on `pkt`. Stateless stages decide immediately;
    /// a queue stage takes ownership of the packet (collect departures
    /// with [`Impairment::poll_queue`]).
    pub fn apply(&mut self, i: usize, mut pkt: PacketBuf, now: Instant) -> StageOutcome {
        match &mut self.stages[i] {
            Stage::Bleach { prob, rng } => {
                if pkt.ecn().is_ect() && rng.chance(*prob) {
                    let bleached = pkt.ecn().bleach();
                    pkt.set_ecn(bleached);
                    self.counters.bleached += 1;
                }
                StageOutcome::Continue(pkt)
            }
            Stage::Remark { from, to, prob, rng } => {
                if pkt.ecn() == *from && rng.chance(*prob) {
                    let to = pkt.ecn().remark_to(*to);
                    pkt.set_ecn(to);
                    self.counters.remarked += 1;
                }
                StageOutcome::Continue(pkt)
            }
            Stage::EctDrop { prob, rng } => {
                if pkt.ecn().is_ect() && rng.chance(*prob) {
                    self.counters.ect_dropped += 1;
                    StageOutcome::Dropped
                } else {
                    StageOutcome::Continue(pkt)
                }
            }
            Stage::ClassicQueue { router, .. } => {
                // Counter deltas are folded in at poll time (the router
                // owns the raw drop/mark counts).
                router.enqueue(pkt, now);
                StageOutcome::Queued
            }
        }
    }

    /// Poll queue stage `i`: returns the packets whose service completed
    /// by `now` and the next departure instant, if any. The caller feeds
    /// departures into stage `i + 1` and schedules a poll at the
    /// returned instant (deduplicated internally — a `None` second field
    /// means no new poll is needed).
    pub fn poll_queue(&mut self, i: usize, now: Instant) -> (Vec<PacketBuf>, Option<Instant>) {
        let (marks0, drops0) = match &self.stages[i] {
            Stage::ClassicQueue { router, .. } => (router.marks, router.drops),
            _ => return (Vec::new(), None),
        };
        let Stage::ClassicQueue { router, poll_at } = &mut self.stages[i] else {
            unreachable!("checked above");
        };
        if now >= *poll_at {
            *poll_at = Instant::MAX;
        }
        let out = router.poll(now);
        self.counters.queue_marks += router.marks - marks0;
        self.counters.queue_drops += router.drops - drops0;
        let next = match router.next_departure() {
            Some(d) if d < *poll_at => {
                *poll_at = d;
                Some(d)
            }
            _ => None,
        };
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::TcpHeader;

    fn pkt(ecn: Ecn) -> PacketBuf {
        PacketBuf::tcp(1, 2, ecn, 0, &TcpHeader::default(), 1200)
    }

    fn streams(n: usize) -> Vec<SimRng> {
        let root = SimRng::new(9);
        (0..n).map(|k| root.derive(5000 + k as u64)).collect()
    }

    fn expect_continue(out: StageOutcome) -> PacketBuf {
        match out {
            StageOutcome::Continue(p) => p,
            other => panic!("expected Continue, got {other:?}"),
        }
    }

    #[test]
    fn bleach_stage_rewrites_ect_only() {
        let spec = ImpairmentSpec::bleaching(1.0);
        let mut imp = Impairment::new(&spec, streams(1));
        for ecn in [Ecn::Ect1, Ecn::Ect0, Ecn::Ce] {
            let p = expect_continue(imp.apply(0, pkt(ecn), Instant::ZERO));
            assert_eq!(p.ecn(), Ecn::NotEct);
        }
        let p = expect_continue(imp.apply(0, pkt(Ecn::NotEct), Instant::ZERO));
        assert_eq!(p.ecn(), Ecn::NotEct);
        assert_eq!(imp.counters.bleached, 3, "Not-ECT passes uncounted");
    }

    #[test]
    fn remark_stage_matches_exact_codepoint() {
        let spec = ImpairmentSpec::remarking(Ecn::Ect1, Ecn::Ect0, 1.0);
        let mut imp = Impairment::new(&spec, streams(1));
        let p = expect_continue(imp.apply(0, pkt(Ecn::Ect1), Instant::ZERO));
        assert_eq!(p.ecn(), Ecn::Ect0);
        let q = expect_continue(imp.apply(0, pkt(Ecn::Ect0), Instant::ZERO));
        assert_eq!(q.ecn(), Ecn::Ect0, "non-matching codepoint untouched");
        assert_eq!(imp.counters.remarked, 1);
    }

    #[test]
    fn ect_drop_stage_spares_not_ect() {
        let spec = ImpairmentSpec::ect_dropping(1.0);
        let mut imp = Impairment::new(&spec, streams(1));
        assert!(matches!(
            imp.apply(0, pkt(Ecn::Ect1), Instant::ZERO),
            StageOutcome::Dropped
        ));
        let _ = expect_continue(imp.apply(0, pkt(Ecn::NotEct), Instant::ZERO));
        assert_eq!(imp.counters.ect_dropped, 1);
    }

    #[test]
    fn queue_stage_serves_and_counts() {
        // 9.6 Mbit/s, 1240-byte wire packets ≈ 1.03 ms each.
        let spec = ImpairmentSpec::classic_hop(9.6e6);
        let mut imp = Impairment::new(&spec, streams(1));
        let mut offered = 0;
        for _ in 0..5 {
            assert!(matches!(
                imp.apply(0, pkt(Ecn::Ect1), Instant::ZERO),
                StageOutcome::Queued
            ));
            offered += 1;
        }
        let mut got = 0;
        let mut now = Instant::ZERO;
        let (out, mut next) = imp.poll_queue(0, now);
        got += out.len();
        while let Some(d) = next {
            now = d;
            let (out, n) = imp.poll_queue(0, now);
            got += out.len();
            next = n;
        }
        assert_eq!(
            got as u64 + imp.counters.queue_drops,
            offered,
            "conservation at the hop"
        );
    }

    #[test]
    fn validate_rejects_illegal_remark_and_bad_prob() {
        assert!(ImpairmentSpec::remarking(Ecn::NotEct, Ecn::Ect1, 0.5)
            .validate()
            .is_err());
        assert!(ImpairmentSpec::bleaching(1.5).validate().is_err());
        assert!(ImpairmentSpec::classic_hop(0.0).validate().is_err());
        assert!(ImpairmentSpec::bleaching(0.3)
            .then_classic_hop(50e6)
            .validate()
            .is_ok());
    }
}

//! Dual-connectivity bonding primitives: a deterministic per-leg
//! striper, a receiver-side reorder/join buffer, and an RFC 8382-style
//! shared-bottleneck detector.
//!
//! A bonded flow (see [`crate::scenario::FlowSpec::bond`]) has one
//! transport endpoint whose packets are striped across the uplink
//! grants of **two** UEs homed on different cells, NR dual-connectivity
//! style. Three pieces make that work:
//!
//! * [`BondTx`] — assigns each outgoing packet to a leg. Transports
//!   that are not bonding-aware (the TCP family) get byte-balanced
//!   striping; the FEC media endpoint stripes itself by NADA rate and
//!   does not use this.
//! * [`BondJoin`] — the server-side join point. Legs have independent
//!   radio delays, so packets arrive interleaved out of transmission
//!   order; the join buffer restores order using the IP identification
//!   field (a per-flow monotone counter in this stack) and releases a
//!   stuck head-of-line gap after a bounded timeout so one stalled leg
//!   cannot wedge the flow.
//! * [`SbdDetector`] — decides whether the two legs share a bottleneck
//!   (RFC 8382's premise: summary statistics of one-way delay
//!   correlate when they do). When they correlate, the legs' congestion
//!   controllers must be coupled — otherwise the bond grabs two
//!   bottleneck shares.
//!
//! Everything here is pure deterministic arithmetic over simulated
//! time: no wall clocks, no RNG, so bonded runs stay byte-reproducible
//! across worker counts.

use std::collections::BTreeMap;

use l4span_net::PacketBuf;
use l4span_sim::{Duration, Instant};

/// How long the join buffer waits on a head-of-line gap before
/// releasing what it has. Covers one leg's HARQ retransmission plus
/// scheduling jitter; beyond that the hole is almost certainly loss and
/// the transport's own recovery should see it.
pub const JOIN_GAP_TIMEOUT: Duration = Duration::from_millis(10);

/// Join-buffer occupancy cap. A leg outage can park this many packets
/// behind a gap; past it the buffer force-releases from the lowest
/// sequence so memory stays bounded.
pub const JOIN_CAP: usize = 256;

/// One-way-delay bin width for the shared-bottleneck detector. RFC 8382
/// recommends summary statistics over ~50 ms intervals (T in §4.1).
pub const SBD_BIN: Duration = Duration::from_millis(50);

/// Bins of correlation history the detector keeps (~800 ms of signal).
pub const SBD_HISTORY: usize = 16;

/// Minimum joint bins before the detector renders any verdict.
pub const SBD_MIN_BINS: usize = 8;

/// Correlation above which the legs are declared coupled.
pub const SBD_COUPLE: f64 = 0.6;

/// Correlation below which a coupled pair is released (hysteresis band
/// between the two thresholds, so a verdict does not chatter).
pub const SBD_DECOUPLE: f64 = 0.2;

/// Byte-balanced deterministic striper for transports that are not
/// bonding-aware. Each packet goes to whichever leg has carried fewer
/// bytes so far (ties break to leg 0), which keeps the split exactly
/// even without any randomness.
#[derive(Debug, Default)]
pub struct BondTx {
    bytes: [u64; 2],
}

impl BondTx {
    /// Fresh striper with both legs empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick the leg for a packet of `wire_len` bytes and account it.
    pub fn pick(&mut self, wire_len: usize) -> u8 {
        let leg = u8::from(self.bytes[1] < self.bytes[0]);
        self.bytes[leg as usize] += wire_len as u64;
        leg
    }

    /// Cumulative bytes assigned to each leg.
    pub fn bytes(&self) -> [u64; 2] {
        self.bytes
    }
}

/// Receiver-side reorder/join buffer keyed by the flow's IP
/// identification counter.
///
/// The TCP sender in this stack stamps every transmitted packet —
/// including retransmissions — with a fresh, monotonically increasing
/// 16-bit identification, so unwrapping that counter to 64 bits
/// recovers transmission order across the two legs. Packets older than
/// the release point are handed through immediately (they are late
/// retransmit arrivals the transport's receiver must judge, not ours).
#[derive(Debug)]
pub struct BondJoin {
    /// Next sequence the in-order release point is waiting for; `None`
    /// until the first packet anchors the unwrap reference.
    next: Option<u64>,
    /// Highest unwrapped sequence seen; the unwrap reference.
    high: u64,
    /// Out-of-order packets parked behind a gap.
    buf: BTreeMap<u64, (PacketBuf, Instant)>,
    /// Packets force-released by the gap timeout or the occupancy cap.
    pub flushed: u64,
}

impl BondJoin {
    /// Empty join buffer.
    pub fn new() -> Self {
        Self {
            next: None,
            high: 0,
            buf: BTreeMap::new(),
            flushed: 0,
        }
    }

    /// Unwrap a 16-bit identification to the 64-bit sequence line using
    /// the signed distance from the current high-water mark.
    fn unwrap_seq(&self, ident: u16) -> u64 {
        let delta = ident.wrapping_sub(self.high as u16) as i16 as i64;
        (self.high as i64 + delta).max(0) as u64
    }

    /// Ingest one packet from either leg; in-order releases (possibly
    /// several, if this packet filled a gap) are appended to `out`.
    pub fn on_packet(&mut self, ident: u16, pkt: PacketBuf, now: Instant, out: &mut Vec<PacketBuf>) {
        let Some(next) = self.next else {
            // First packet anchors the sequence line and flows through.
            let seq = ident as u64;
            self.high = seq;
            self.next = Some(seq + 1);
            out.push(pkt);
            return;
        };
        let seq = self.unwrap_seq(ident);
        self.high = self.high.max(seq);
        if seq < next {
            // Late retransmit arrival from the slower leg: the release
            // point already moved past it, so hand it straight to the
            // transport receiver (which dedups by its own sequence
            // space) rather than stalling it here.
            out.push(pkt);
            return;
        }
        self.buf.insert(seq, (pkt, now));
        self.drain_in_order(out);
        if self.buf.len() > JOIN_CAP {
            // Occupancy cap: jump the release point to the lowest
            // buffered sequence and drain the run behind it.
            self.flushed += 1;
            let lowest = *self.buf.keys().next().expect("non-empty");
            self.next = Some(lowest);
            self.drain_in_order(out);
        }
    }

    /// Release the head-of-line gap if its oldest parked packet has
    /// waited longer than [`JOIN_GAP_TIMEOUT`]. Called from the UE poll
    /// cadence so a stalled leg cannot wedge the flow.
    pub fn poll(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        loop {
            let Some((&lowest, &(_, t))) = self.buf.iter().next() else {
                return;
            };
            if now.saturating_since(t) < JOIN_GAP_TIMEOUT {
                return;
            }
            self.flushed += 1;
            self.next = Some(lowest);
            self.drain_in_order(out);
        }
    }

    /// Number of packets currently parked behind a gap.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    fn drain_in_order(&mut self, out: &mut Vec<PacketBuf>) {
        let Some(mut next) = self.next else { return };
        while let Some((pkt, _)) = self.buf.remove(&next) {
            out.push(pkt);
            next += 1;
        }
        self.next = Some(next);
    }
}

impl Default for BondJoin {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-leg one-way-delay bin accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Bin {
    sum_us: u64,
    n: u64,
}

/// RFC 8382-style shared-bottleneck detector over two legs' one-way
/// delays.
///
/// Delay samples are averaged into [`SBD_BIN`]-wide bins per leg; bins
/// where **both** legs produced samples become joint observations, and
/// the Pearson correlation of the last [`SBD_HISTORY`] joint
/// observations drives a hysteretic verdict: correlation above
/// [`SBD_COUPLE`] declares a shared bottleneck, and only a drop below
/// [`SBD_DECOUPLE`] releases it. (RFC 8382 proper uses grouped skewness
/// and variability statistics across many flows; with exactly two legs
/// of one flow, delay correlation is the same signal with less
/// machinery.)
#[derive(Debug)]
pub struct SbdDetector {
    bin_start: Instant,
    cur: [Bin; 2],
    /// Joint (leg0 mean, leg1 mean) observations, oldest first.
    hist: Vec<(f64, f64)>,
    coupled: bool,
    /// Verdict transitions (either direction) since construction.
    pub flips: u64,
}

impl SbdDetector {
    /// Fresh detector; the verdict starts uncoupled.
    pub fn new() -> Self {
        Self {
            bin_start: Instant::ZERO,
            cur: [Bin::default(); 2],
            hist: Vec::new(),
            coupled: false,
            flips: 0,
        }
    }

    /// Feed one one-way-delay sample for `leg` observed at `now`.
    pub fn observe(&mut self, leg: u8, owd: Duration, now: Instant) {
        self.roll(now);
        let b = &mut self.cur[leg as usize];
        b.sum_us += owd.as_micros();
        b.n += 1;
    }

    /// Current verdict: do the legs share a bottleneck?
    pub fn coupled(&self) -> bool {
        self.coupled
    }

    /// Close any bins that `now` has moved past and update the verdict.
    fn roll(&mut self, now: Instant) {
        while now.saturating_since(self.bin_start) >= SBD_BIN {
            if self.cur[0].n > 0 && self.cur[1].n > 0 {
                let m0 = self.cur[0].sum_us as f64 / self.cur[0].n as f64;
                let m1 = self.cur[1].sum_us as f64 / self.cur[1].n as f64;
                if self.hist.len() == SBD_HISTORY {
                    self.hist.remove(0);
                }
                self.hist.push((m0, m1));
                self.update_verdict();
            }
            self.cur = [Bin::default(); 2];
            self.bin_start += SBD_BIN;
        }
    }

    fn update_verdict(&mut self) {
        if self.hist.len() < SBD_MIN_BINS {
            return;
        }
        let r = pearson(&self.hist);
        let next = if self.coupled {
            r >= SBD_DECOUPLE
        } else {
            r > SBD_COUPLE
        };
        if next != self.coupled {
            self.coupled = next;
            self.flips += 1;
        }
    }
}

impl Default for SbdDetector {
    fn default() -> Self {
        Self::new()
    }
}

/// Pearson correlation coefficient of paired samples; 0 when either
/// side is constant (no co-variation signal either way).
fn pearson(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len() as f64;
    let (mut sx, mut sy) = (0.0, 0.0);
    for &(x, y) in pairs {
        sx += x;
        sy += y;
    }
    let (mx, my) = (sx / n, sy / n);
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::Ecn;

    fn pkt(ident: u16) -> PacketBuf {
        PacketBuf::udp(0x0a00_0001, 0x0a00_0101, Ecn::Ect1, ident, 5000, 6000, 100)
    }

    #[test]
    fn bond_tx_balances_bytes_deterministically() {
        let mut tx = BondTx::new();
        // Equal sizes alternate starting at leg 0.
        assert_eq!(tx.pick(100), 0);
        assert_eq!(tx.pick(100), 1);
        assert_eq!(tx.pick(100), 0);
        // After 200/100 the lighter leg 1 takes the jumbo, and then
        // leg 0 absorbs traffic until the byte counts converge again.
        assert_eq!(tx.pick(1000), 1);
        assert_eq!(tx.bytes(), [200, 1100]);
        assert_eq!(tx.pick(100), 0);
        assert_eq!(tx.pick(100), 0);
        assert_eq!(tx.bytes(), [400, 1100]);
    }

    #[test]
    fn join_releases_in_order_across_interleaved_legs() {
        let mut j = BondJoin::new();
        let mut out = Vec::new();
        let t = Instant::ZERO;
        j.on_packet(1, pkt(1), t, &mut out);
        assert_eq!(out.len(), 1);
        // 3 arrives before 2: parked.
        j.on_packet(3, pkt(3), t, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(j.pending(), 1);
        // 2 fills the gap: both release, in order.
        j.on_packet(2, pkt(2), t, &mut out);
        let ids: Vec<u16> = out.iter().map(|p| p.identification()).collect();
        assert_eq!(ids, [1, 2, 3]);
        assert_eq!(j.pending(), 0);
        assert_eq!(j.flushed, 0);
    }

    #[test]
    fn join_gap_timeout_releases_a_stalled_gap() {
        let mut j = BondJoin::new();
        let mut out = Vec::new();
        j.on_packet(10, pkt(10), Instant::ZERO, &mut out);
        j.on_packet(12, pkt(12), Instant::from_millis(1), &mut out);
        j.on_packet(13, pkt(13), Instant::from_millis(2), &mut out);
        assert_eq!(out.len(), 1);
        // Before the timeout nothing moves; after it the gap is
        // abandoned and the parked run releases.
        j.poll(Instant::from_millis(5), &mut out);
        assert_eq!(out.len(), 1);
        j.poll(Instant::from_millis(12), &mut out);
        let ids: Vec<u16> = out.iter().map(|p| p.identification()).collect();
        assert_eq!(ids, [10, 12, 13]);
        assert_eq!(j.flushed, 1);
        // The straggler 11 now arrives late: released immediately.
        j.on_packet(11, pkt(11), Instant::from_millis(13), &mut out);
        assert_eq!(out.last().unwrap().identification(), 11);
    }

    #[test]
    fn join_unwraps_the_ident_counter_across_the_u16_seam() {
        let mut j = BondJoin::new();
        let mut out = Vec::new();
        let t = Instant::ZERO;
        j.on_packet(u16::MAX - 1, pkt(u16::MAX - 1), t, &mut out);
        j.on_packet(u16::MAX, pkt(u16::MAX), t, &mut out);
        // Wrap: 0 and 1 must read as *after* 65535, not a 64k jump back.
        j.on_packet(1, pkt(1), t, &mut out);
        assert_eq!(out.len(), 2, "the wrapped 1 parks behind the missing 0");
        j.on_packet(0, pkt(0), t, &mut out);
        let ids: Vec<u16> = out.iter().map(|p| p.identification()).collect();
        assert_eq!(ids, [u16::MAX - 1, u16::MAX, 0, 1]);
    }

    #[test]
    fn join_cap_bounds_memory_under_a_leg_outage() {
        let mut j = BondJoin::new();
        let mut out = Vec::new();
        let t = Instant::ZERO;
        j.on_packet(0, pkt(0), t, &mut out);
        // Sequence 1 never arrives; park JOIN_CAP + 1 packets behind it.
        for i in 0..=(JOIN_CAP as u16) {
            j.on_packet(2 + i, pkt(2 + i), t, &mut out);
        }
        assert!(j.pending() <= JOIN_CAP);
        assert!(j.flushed >= 1);
        assert!(out.len() > 1, "the cap force-released the parked run");
    }

    #[test]
    fn sbd_couples_on_correlated_owd_and_holds_through_the_band() {
        let mut d = SbdDetector::new();
        // Both legs ride the same sawtooth: strongly correlated.
        for bin in 0..SBD_MIN_BINS as u64 + 2 {
            let t = Instant::from_millis(bin * 50 + 1);
            let owd = Duration::from_millis(10 + (bin % 5) * 4);
            d.observe(0, owd, t);
            d.observe(1, owd + Duration::from_millis(3), t);
        }
        // Verdicts land when a *later* sample rolls the bin closed.
        d.observe(0, Duration::from_millis(10), Instant::from_secs(2));
        d.observe(1, Duration::from_millis(10), Instant::from_secs(2));
        assert!(d.coupled(), "identical sawtooths must read as shared");
        assert_eq!(d.flips, 1);
    }

    #[test]
    fn sbd_stays_uncoupled_on_independent_legs() {
        let mut d = SbdDetector::new();
        for bin in 0..SBD_HISTORY as u64 {
            let t = Instant::from_millis(bin * 50 + 1);
            // Leg 0 rises while leg 1 falls: anticorrelated.
            d.observe(0, Duration::from_millis(5 + bin), t);
            d.observe(1, Duration::from_millis(40 - bin), t);
        }
        d.observe(0, Duration::from_millis(10), Instant::from_secs(2));
        d.observe(1, Duration::from_millis(10), Instant::from_secs(2));
        assert!(!d.coupled());
        assert_eq!(d.flips, 0);
    }

    #[test]
    fn pearson_is_zero_on_constant_series() {
        let flat: Vec<(f64, f64)> = (0..10).map(|i| (5.0, i as f64)).collect();
        assert_eq!(pearson(&flat), 0.0);
    }
}

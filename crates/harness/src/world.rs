//! The discrete-event world: content servers ↔ WAN ↔ (optional wired
//! bottleneck) ↔ CU marker ↔ cells ↔ air ↔ UE stacks ↔ uplink, exactly
//! the end-to-end path of paper Fig. 3 — generalised to an N-cell
//! topology in which UEs hand over between cells at runtime (Xn context
//! transfer, PDCP re-establishment, lossless RLC forwarding, and a
//! marker-state migration policy).

use std::collections::{BTreeMap, VecDeque};

use l4span_aqm::{DualPi2, Router, RouterAqm};
use l4span_cc::scream::{FrameMark, ScreamFeedback, ScreamReceiver, ScreamSender};
use l4span_cc::udp_prague::{PragueFeedback, UdpPragueReceiver, UdpPragueSender};
use l4span_cc::{CcEvent, FecFeedback, FecMediaReceiver, FecMediaSender, TcpReceiver, TcpSender};
use l4span_cc::tcp::TcpConfig;
use l4span_core::DlVerdict;
use l4span_net::{FiveTuple, PacketBuf, Protocol};
use l4span_ran::channel::{ChannelProfile, FadingChannel};
use l4span_ran::config::{RlcMode, SlotRole};
use l4span_ran::ids::Qfi;
use l4span_ran::mac::TransportBlock;
use l4span_ran::rlc::RlcStatus;
use l4span_ran::{DlDataDeliveryStatus, DrbId, Gnb, SlotOutput, UeId, UeStack, UlTbOutcome};
use l4span_sim::{CycleScope, Duration, EventQueue, FxHashMap, Instant, SimRng};

use crate::app::{AppProfile, AppUnit, Application, UnitKind};
use crate::bond::{BondJoin, BondTx, SbdDetector};
use crate::impairment::{Impairment, StageOutcome};
use crate::marker::Marker;
use crate::metrics::{
    BondStat, Breakdown, BreakdownAvg, FallbackRecord, FecStat, HandoverRecord, Report,
};
use crate::scenario::{BottleneckSpec, FlowDir, ScenarioConfig, TransportSpec};

/// Subsystem labels of the world's [`CycleScope`] (the `fig_breakdown`
/// attribution table). Indices are the `CYC_*` constants below; spans
/// are non-overlapping, so their sum plus the untracked event-loop glue
/// (scheduling, tuple lookups, dispatch) accounts for the whole run.
pub const CYCLE_LABELS: &[&str] = &[
    "gnb",         // gNB slot tick + downlink RLC enqueue
    "marker",      // both L4Span instances: DL/UL hooks + feedback
    "ue_stack",    // UE RLC rx/tx entities, polls, UL status handling
    "ul_control",  // UL grant/BSR/status path + per-UE uplink-slot scan
    "wired_core",  // wired-bottleneck router hops
    "transport",   // endpoint senders/receivers (TCP/SCReAM/Prague)
    "metrics",     // QoE/series/ground-truth bookkeeping + sample tick
    "event_queue", // event pop + box recycling in the run loop
];
const CYC_GNB: usize = 0;
const CYC_MARKER: usize = 1;
const CYC_UE: usize = 2;
const CYC_UL: usize = 3;
const CYC_WIRED: usize = 4;
const CYC_TRANSPORT: usize = 5;
const CYC_METRICS: usize = 6;
const CYC_QUEUE: usize = 7;

/// UE IP block.
fn ue_ip(i: usize) -> u32 {
    0xC0A8_0000 + i as u32
}
/// Server IP block (one server per flow).
fn server_ip(f: usize) -> u32 {
    0x0A00_0000 + f as u32
}

/// Feedback payloads of UDP-based protocols, carried alongside the
/// uplink feedback packet (the payload is opaque on the wire).
enum FbData {
    Scream(ScreamFeedback),
    Prague(PragueFeedback),
    Fec(Box<FecFeedback>),
}

enum Endpoint {
    Tcp {
        sender: TcpSender,
        receiver: TcpReceiver,
    },
    Scream {
        sender: ScreamSender,
        receiver: ScreamReceiver,
    },
    UdpPrague {
        sender: UdpPragueSender,
        receiver: UdpPragueReceiver,
    },
    FecMedia {
        sender: Box<FecMediaSender>,
        receiver: Box<FecMediaReceiver>,
    },
}

/// Runtime state of a bonded (dual-connectivity) uplink flow: the
/// secondary leg's UE, the byte-balancing leg picker, the server-side
/// reorder/join buffer (TCP legs only — the FEC media receiver is its
/// own join point), and the RFC 8382-style shared-bottleneck detector
/// fed by per-leg one-way delays.
struct BondState {
    /// Secondary UE (leg 1); the flow's own `ue_idx` is leg 0.
    ue2_idx: usize,
    ue2_id: UeId,
    tx: BondTx,
    join: Option<BondJoin>,
    sbd: SbdDetector,
    /// Data-direction ident → leg it was striped onto (consumed at the
    /// server to attribute OWD samples and route join bookkeeping).
    leg_of: FxHashMap<u16, u8>,
    /// Data packets that reached the server, per leg.
    leg_pkts: [u64; 2],
}

struct Flow {
    ue_idx: usize,
    ue_id: UeId,
    drb: DrbId,
    qfi: Qfi,
    /// The flow's data-direction five-tuple (the `tuple_to_flow` key);
    /// the Xn marker-state migration lifts per-tuple flow state by it.
    tuple: FiveTuple,
    wan_one_way: Duration,
    start: Instant,
    stop: Option<Instant>,
    endpoint: Endpoint,
    started: bool,
    finished_at: Option<Instant>,
    /// Which direction the data travels. For [`FlowDir::Uplink`] the
    /// endpoint roles flip: the sender lives at the UE feeding the UL
    /// PDCP/RLC queue, the receiver at the content server.
    dir: FlowDir,
    /// ident → send time of *data-direction* packets (for OWD).
    sent_at: FxHashMap<u16, Instant>,
    /// ident of uplink feedback packet → its payload.
    fb_pending: FxHashMap<u16, FbData>,
    /// Earliest scheduled FlowTimer (dedupe).
    timer_at: Instant,
    /// The driving [`Application`], for flows whose app is not executed
    /// natively by the transport (`None` = native lowering: greedy/sized
    /// TCP, SCReAM's built-in media source, UDP Prague pacing).
    app: Option<Box<dyn Application + Send>>,
    /// Earliest scheduled AppTick (dedupe).
    app_timer_at: Instant,
    /// Byte-stream units (frames/requests) awaiting UE-side delivery,
    /// in stream order — completed against the TCP receiver's in-order
    /// watermark.
    pending_units: VecDeque<AppUnit>,
    /// SCReAM path: downlink ident of a frame's last packet → encoder
    /// capture time, completed at UE delivery of that packet.
    frame_pending: FxHashMap<u16, Instant>,
    /// Frame cadence + deadline for QoE accounting (framed apps only).
    framed: Option<(Duration, Duration)>,
    /// Dual-connectivity state ([`crate::scenario::FlowSpec::bond`]).
    bond: Option<Box<BondState>>,
}

/// One scheduled occurrence. The queue stores events *boxed* so heap
/// entries stay pointer-sized: several variants inline a ~100-byte
/// `PacketBuf` (or whole segment vectors), and sifting those through a
/// `BinaryHeap` would memmove packet bytes on every reorder. The boxes
/// themselves are pooled by the world (`World::pool`), so scheduling is
/// allocation-free in steady state.
pub(crate) enum Event {
    /// Placeholder left in a recycled box; never scheduled.
    Nop,
    /// One TDD slot of cell `cell` elapses (each cell has its own tick).
    Slot { cell: usize },
    DlAtRouter { pkt: PacketBuf },
    RouterPoll,
    RouterRate { bps: f64 },
    /// A downlink packet reaches impairment-pipeline stage `stage`
    /// (stage 0 = arrival at the hostile middle, after the WAN hop).
    DlAtImpair { stage: u8, pkt: PacketBuf },
    /// Poll the queue at impairment stage `stage` for departures.
    ImpairPoll { stage: u8 },
    DlAtCu { flow: usize, pkt: PacketBuf },
    /// A transport block from `cell` decodes at the UE; dropped mid-air
    /// if the UE handed over while it was in flight.
    TbAtUe { cell: usize, ue: usize, tb: TransportBlock },
    AppDeliver { pkt: PacketBuf, t_cu_ingress: Instant },
    /// An uplink batch transmitted toward `cell` arrives (pooled
    /// buffers; returned to `World::ul_pool` after processing): client
    /// ACKs/feedback, RLC status reports, and — in bidirectional
    /// scenarios — the UE's buffer-status report.
    UlAtGnb {
        cell: usize,
        ue: usize,
        pkts: Vec<PacketBuf>,
        statuses: Vec<(DrbId, RlcStatus)>,
        bsr: Vec<(DrbId, usize)>,
    },
    /// An uplink *data* transport block (grant-driven) arrives at the
    /// gNB PHY; dropped mid-air if the UE handed over while in flight.
    UlTbAtGnb { cell: usize, ue: usize, tb: TransportBlock },
    /// An uplink RLC AM status report travels the downlink control
    /// channel back to the UE's transmit entity.
    UlStatusAtUe { ue: usize, drb: DrbId, status: RlcStatus },
    UlAtServer { flow: usize, pkt: PacketBuf },
    FlowStart { flow: usize },
    FlowStop { flow: usize },
    FlowTimer { flow: usize },
    /// The flow's [`Application`] asked to be woken (app-driven flows
    /// only; natively-lowered flows never schedule one).
    AppTick { flow: usize },
    /// Abrupt channel change on the UE's *serving* cell (the deprecated
    /// `channel_events` shim rides this).
    ChannelChange { ue: usize, profile: ChannelProfile, snr_db: f64 },
    /// A mobility step: the UE now observes (`profile`, `snr_db`) toward
    /// `target_cell`. Same cell → channel replacement; different cell →
    /// full Xn handover.
    Handover { ue: usize, target_cell: usize, profile: ChannelProfile, snr_db: f64 },
    Sample,
    UePoll,
}

/// A pooled triple of uplink-batch buffers (packets, status reports,
/// buffer-status entries).
type UlBatch = (
    Vec<PacketBuf>,
    Vec<(DrbId, RlcStatus)>,
    Vec<(DrbId, usize)>,
);

/// The assembled world. Build with [`World::new`], run with [`World::run`].
pub struct World {
    cfg: ScenarioConfig,
    queue: EventQueue<Box<Event>>,
    /// Recycled event boxes: popped events return their allocation here
    /// and `sched` reuses it, so the steady-state schedule/pop cycle
    /// never touches the allocator. The boxing is the point (pooled
    /// allocations handed back to the queue), so the lint is wrong here.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<Event>>,
    /// The cells. Index = cell id; cell 0 is `ScenarioConfig::cell`.
    gnbs: Vec<Gnb>,
    /// UE → serving-cell attachment table.
    serving: Vec<usize>,
    /// Per-cell sorted attachment lists (the structure-of-arrays index
    /// by attachment): `cell_ues[c]` holds the UEs `serving` maps to
    /// `c`, ascending. The per-slot uplink scan walks this list instead
    /// of filtering all UEs — same iteration order, O(attached) work.
    cell_ues: Vec<Vec<usize>>,
    ues: Vec<UeStack>,
    /// CU-side marker instances. A classic central CU-UP has exactly
    /// one, shared by every cell (the pre-shard layout, byte-for-byte).
    /// With [`ScenarioConfig::cu_per_cell`] each cell runs its own
    /// instance on its own RNG stream — the deployment shape that makes
    /// cells shardable, because no marker state spans cells.
    markers: Vec<Marker>,
    /// The UE-side marker instances for uplink data queues, laid out
    /// exactly like `markers` (one shared, or one per cell), keyed
    /// internally by (ue, drb). Inert in downlink-only scenarios.
    ul_markers: Vec<Marker>,
    /// `Some` once [`World::shard_install`] carved this replica down to
    /// one shard's cells; `None` is the classic whole-world run.
    shard: Option<ShardView>,
    /// Cross-shard envelopes produced this epoch (in-flight uplink ACKs
    /// of flows whose UE migrated away — the only runtime cross-shard
    /// edge). Drained by the coordinator at slot-boundary barriers.
    #[allow(clippy::vec_box)]
    outbox: Vec<(Instant, Box<Event>)>,
    /// Any flow carries uplink data: gates the whole UL data plane so
    /// downlink-only scenarios stay byte-identical.
    has_ul_data: bool,
    /// Any uplink data bearer runs RLC UM (needs the gNB-side
    /// reassembly-timeout poll).
    has_um_ul: bool,
    flows: Vec<Flow>,
    tuple_to_flow: FxHashMap<FiveTuple, usize>,
    router: Option<Router>,
    router_poll_at: Instant,
    /// Mid-path impairment pipeline (bleach/remark/drop stages and the
    /// RFC 3168 classic hop), applied ahead of the bottleneck router.
    /// `None` keeps the wired path byte-identical to the faithful one.
    impair: Option<Impairment>,
    /// UEs with at least one UM DRB (the only ones whose RLC receivers
    /// need the reassembly-timeout poll).
    um_ues: Vec<usize>,
    /// Flows with UDP endpoints (the only ones whose receivers need the
    /// prohibit-interval feedback flush).
    udp_flows: Vec<usize>,
    /// Bonded flows (the only ones whose server-side join buffers need
    /// the gap-timeout flush).
    bond_flows: Vec<usize>,
    /// Reused per-slot gNB output buffers.
    slot_out: SlotOutput,
    /// Recycled uplink-batch buffers: `UlAtGnb` payloads come from and
    /// return to this pool, so the uplink path (like the downlink one)
    /// stops touching the allocator once the buffers reach steady-state
    /// size.
    ul_pool: Vec<UlBatch>,
    /// Scratch buffer for draining SCReAM frame marks (reused).
    mark_scratch: Vec<FrameMark>,
    /// Reused buffer for sender-released packets (poll/ACK hot paths).
    scratch_pkts: Vec<PacketBuf>,
    /// Reused buffer for FEC-media sender releases (leg-tagged).
    scratch_leg_pkts: Vec<(u8, PacketBuf)>,
    /// Reused buffer for join-buffer releases at the server.
    scratch_join: Vec<PacketBuf>,
    /// Reused buffer for UE app deliveries (the per-TB hot path).
    scratch_app_deliv: Vec<l4span_ran::ue::AppDelivery>,
    /// Reused per-UL-slot grant buffer: (ue, granted bytes, cqi).
    scratch_grants: Vec<(UeId, usize, u8)>,
    /// Reused buffer for UE-side granted-bytes feedback messages.
    scratch_ul_f1u: Vec<DlDataDeliveryStatus>,
    /// Reused buffer for gNB-side UL RLC status reports.
    scratch_ul_statuses: Vec<(UeId, DrbId, RlcStatus)>,
    /// Reused buffer for UM reassembly-timeout skips at the gNB.
    scratch_ul_skips: Vec<(UeId, DrbId, l4span_ran::rlc::RxDelivery)>,
    // --- metrics accumulators ---
    owd_ms: Vec<Vec<f64>>,
    owd_at_s: Vec<Vec<f64>>,
    /// Per-flow uplink data one-way delays (UE sender → server).
    ul_owd_ms: Vec<Vec<f64>>,
    ul_owd_at_s: Vec<Vec<f64>>,
    /// UE-side uplink RLC queue samples per (ue, drb).
    ul_queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    /// Per-flow delivered-frame one-way delays (QoE).
    frame_owd_ms: Vec<Vec<f64>>,
    /// Per-flow frames generated by app-driven sources (the SCReAM path
    /// keeps its own counter inside the sender).
    frames_generated: Vec<u64>,
    /// Per-flow frames delivered complete to the UE.
    frames_delivered: Vec<u64>,
    /// Per-flow delivered frames that missed their deadline.
    frame_late_n: Vec<u64>,
    /// Per-flow summed deadline excess of late frames, milliseconds.
    frame_late_excess_ms: Vec<f64>,
    /// Per-flow request/burst completion times (QoE).
    request_ms: Vec<Vec<f64>>,
    rtt_ms: Vec<Vec<f64>>,
    rtt_at_s: Vec<Vec<f64>>,
    thr_bins: Vec<Vec<u64>>,
    cell_thr_bins: Vec<Vec<u64>>,
    queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    cell_queue_series: BTreeMap<(u8, u16, u8), Vec<usize>>,
    /// Per-UE handover history. Kept per UE (not as one flat log) so a
    /// UE's records migrate with it between shard replicas; the report
    /// flattens them sorted by (time, ue) — the classic push order.
    ho_log: Vec<Vec<HandoverRecord>>,
    /// Per-UE time of the last payload-bearing app delivery.
    last_delivery: Vec<Option<Instant>>,
    /// Per-UE index into `ho_log[ue]` of a record still awaiting its
    /// first post-switch delivery.
    pending_ho: Vec<Option<usize>>,
    breakdown: Vec<BreakdownAvg>,
    /// Estimation-error samples keyed by (sample time, (ue, drb)) so
    /// per-shard partitions merge back into the classic push order (a
    /// stable sort on the key; a no-op for single-world runs).
    rate_err: Vec<(Instant, (u16, u8), f64)>,
    /// (ue, drb, sn) → (flow, ident): joins TxRecords to packets.
    sn_map: FxHashMap<(UeId, DrbId, u64), (usize, u16)>,
    /// (flow, ident) → (queuing ms, scheduling ms) awaiting delivery.
    breakdown_pending: FxHashMap<(usize, u16), (f64, f64)>,
    /// Ground-truth egress byte log per DRB (Fig. 20 reference).
    gt_egress: BTreeMap<(u16, u8), VecDeque<(Instant, usize)>>,
    /// Per-DRB first SN not yet logged in `gt_egress`. A forwarded SDU
    /// retransmitted by the target cell emits a second TxRecord for the
    /// same SN; the L4Span estimator's profile table ignores that
    /// non-advancing feedback, so the ground truth must apply the same
    /// SN-monotone dedup or `rate_err_pct` reads systematically negative
    /// after every handover.
    gt_watermark: FxHashMap<(u16, u8), u64>,
    marker_time: (Vec<u64>, Vec<u64>, Vec<u64>),
    /// Transport blocks destroyed mid-air because their UE handed over
    /// before decode; folded into `Report::tbs_lost` (the gNB counts the
    /// HARQ-queue half of handover losses itself).
    ho_tbs_lost: u64,
    /// Events processed by `run` (perf-gate denominator).
    events: u64,
    /// Of `events`, how many were the replicated housekeeping ticks
    /// (`Sample`, `UePoll`). Every shard replica runs them, so the
    /// merged event count keeps one copy and subtracts the rest —
    /// making `Report::events` shard-count-invariant.
    housekeeping: u64,
    /// Per-subsystem cycle accounting (disabled unless
    /// `ScenarioConfig::measure_cycles`; a disabled scope costs one
    /// predictable branch per span).
    cycles: CycleScope,
}

/// Which shard a world replica plays, plus the static cell → shard map.
/// UE and flow ownership derive from it through the `serving` table —
/// which every replica updates at handover barriers, so ownership flips
/// globally and consistently without any mask maintenance.
pub(crate) struct ShardView {
    id: usize,
    of_cell: Vec<usize>,
}

impl World {
    /// Wire up a scenario.
    pub fn new(cfg: ScenarioConfig) -> World {
        let root = SimRng::new(cfg.seed);
        let n_cells = cfg.n_cells();
        // Cell 0 keeps the pre-multi-cell RNG stream (single-cell runs
        // stay byte-identical); extra cells draw from a disjoint range.
        let mut gnbs: Vec<Gnb> = (0..n_cells)
            .map(|c| {
                let rng = if c == 0 {
                    root.derive(1)
                } else {
                    root.derive(10_000 + c as u64)
                };
                Gnb::new(cfg.cell_config(c).clone(), cfg.scheduler, rng)
            })
            .collect();
        let mut ues = Vec::new();
        let mut serving = Vec::new();
        for (i, spec) in cfg.ues.iter().enumerate() {
            let home = spec.initial_cell;
            assert!(home < n_cells, "ue{i}: initial cell {home} out of range");
            for step in &spec.mobility {
                assert!(
                    step.cell < n_cells,
                    "ue{i}: mobility step targets cell {} of {n_cells}",
                    step.cell
                );
            }
            let mut ch_rng = root.derive(1000 + i as u64);
            let channel = FadingChannel::new(
                spec.profile,
                spec.mean_snr_db,
                cfg.cell_config(home).carrier_hz,
                &mut ch_rng,
            );
            let drbs: Vec<(DrbId, _)> =
                spec.drbs.iter().map(|&(d, m)| (DrbId(d), m)).collect();
            gnbs[home].add_ue(UeId(i as u16), channel, &drbs);
            for &(d, _) in &spec.drbs {
                gnbs[home].map_qfi(UeId(i as u16), Qfi(d), DrbId(d));
            }
            ues.push(UeStack::new(
                UeId(i as u16),
                &drbs,
                cfg.cell_config(home).rlc_status_period,
                cfg.cell_config(home).ue_internal_delay,
                cfg.cell_config(home).ul_sr_delay_max,
                root.derive(2000 + i as u64),
            ));
            serving.push(home);
        }
        // Marker deployment shape. The central instance keeps the
        // pre-existing `derive(2)` stream (byte-identical runs); per-cell
        // instances give cell 0 that same legacy stream and draw the rest
        // from a disjoint range, mirroring the gNB convention above.
        let markers: Vec<Marker> = if cfg.cu_per_cell {
            (0..n_cells)
                .map(|c| {
                    let rng = if c == 0 {
                        root.derive(2)
                    } else {
                        root.derive(20_000 + c as u64)
                    };
                    Marker::new(&cfg.marker, rng)
                })
                .collect()
        } else {
            vec![Marker::new(&cfg.marker, root.derive(2))]
        };
        let mut flows = Vec::new();
        let mut tuple_to_flow = FxHashMap::default();
        let mut has_ul_data = false;
        let mut has_um_ul = false;
        for (f, spec) in cfg.flows.iter().enumerate() {
            let sip = server_ip(f);
            let uip = ue_ip(spec.ue);
            // Data-direction addressing: the sender's IP first. For a
            // downlink flow the sender is the content server; for an
            // uplink flow it is the UE, and every constructor below is
            // simply mirrored.
            let (src, dst) = match spec.dir {
                FlowDir::Downlink => (sip, uip),
                FlowDir::Uplink => (uip, sip),
            };
            // Lower the (application, transport) pair onto an endpoint.
            // The combinations the transports execute natively (greedy /
            // sized TCP, SCReAM's built-in media source, UDP Prague
            // pacing) take `app: None` and schedule no application
            // events — which is what keeps pre-split scenarios
            // byte-identical through the `TrafficKind` shims.
            let (endpoint, tuple, app, framed) = match (&spec.app, &spec.transport) {
                (AppProfile::Bulk { bytes }, TransportSpec::Tcp { cc }) => {
                    let controller = cc.make(1400);
                    let mode = controller.ecn_mode();
                    let mut tcfg = TcpConfig::new(src, dst, 443, 50_000 + f as u16);
                    tcfg.app_limit = *bytes;
                    let tuple = tcfg.downlink_tuple();
                    (
                        Endpoint::Tcp {
                            sender: TcpSender::new(tcfg, controller),
                            receiver: TcpReceiver::new(tcfg, mode),
                        },
                        tuple,
                        None,
                        None,
                    )
                }
                (app_profile, TransportSpec::Tcp { cc }) => {
                    // Application-driven TCP: the app owns what bytes are
                    // offered and when; the sender is fed incrementally.
                    let controller = cc.make(1400);
                    let mode = controller.ecn_mode();
                    let tcfg = TcpConfig::new(src, dst, 443, 50_000 + f as u16);
                    let tuple = tcfg.downlink_tuple();
                    let framed = match app_profile {
                        AppProfile::FramedVideo(v) => {
                            Some((v.frame_interval(), v.deadline))
                        }
                        _ => None,
                    };
                    (
                        Endpoint::Tcp {
                            sender: TcpSender::app_driven(tcfg, controller),
                            receiver: TcpReceiver::new(tcfg, mode),
                        },
                        tuple,
                        Some(app_profile.instantiate(spec.start)),
                        framed,
                    )
                }
                (AppProfile::FramedVideo(v), TransportSpec::Scream) => {
                    let sport = 5004u16;
                    let dport = 42_000 + f as u16;
                    let tuple = FiveTuple {
                        src_ip: src,
                        dst_ip: dst,
                        src_port: sport,
                        dst_port: dport,
                        protocol: Protocol::Udp,
                    };
                    (
                        Endpoint::Scream {
                            sender: ScreamSender::new(
                                src, dst, sport, dport, v.min_bps, v.start_bps,
                                v.max_bps, v.fps, true,
                            )
                            .with_keyframes(v.keyframe_every, v.keyframe_boost),
                            receiver: ScreamReceiver::new(dst, src, dport, sport),
                        },
                        tuple,
                        None,
                        Some((v.frame_interval(), v.deadline)),
                    )
                }
                (AppProfile::Bulk { bytes: None }, TransportSpec::UdpPrague {
                    min_rate,
                    start_rate,
                    max_rate,
                }) => {
                    let sport = 5006u16;
                    let dport = 43_000 + f as u16;
                    let tuple = FiveTuple {
                        src_ip: src,
                        dst_ip: dst,
                        src_port: sport,
                        dst_port: dport,
                        protocol: Protocol::Udp,
                    };
                    (
                        Endpoint::UdpPrague {
                            sender: UdpPragueSender::new(
                                src, dst, sport, dport, *min_rate, *start_rate, *max_rate,
                            ),
                            receiver: UdpPragueReceiver::new(dst, src, dport, sport),
                        },
                        tuple,
                        None,
                        None,
                    )
                }
                (AppProfile::Bulk { bytes: None }, TransportSpec::FecMedia {
                    min_rate,
                    start_rate,
                    max_rate,
                    fps,
                }) => {
                    assert_eq!(
                        spec.dir,
                        FlowDir::Uplink,
                        "flow {f}: FecMedia transport is uplink-only"
                    );
                    let sport = 5008u16;
                    let dport = 44_000 + f as u16;
                    let tuple = FiveTuple {
                        src_ip: src,
                        dst_ip: dst,
                        src_port: sport,
                        dst_port: dport,
                        protocol: Protocol::Udp,
                    };
                    let n_legs = 1 + usize::from(spec.bond.is_some());
                    (
                        Endpoint::FecMedia {
                            sender: Box::new(FecMediaSender::new(
                                src, dst, sport, dport, *min_rate, *start_rate, *max_rate,
                                *fps, n_legs,
                            )),
                            receiver: Box::new(FecMediaReceiver::new(dst, src, dport, sport)),
                        },
                        tuple,
                        None,
                        None,
                    )
                }
                (app, transport) => panic!(
                    "flow {f}: unsupported application/transport combination \
                     ({app:?} over {transport:?}); SCReAM requires a FramedVideo \
                     application, UDP Prague and FEC media a greedy Bulk one"
                ),
            };
            if spec.dir == FlowDir::Uplink {
                // Stand up the uplink data plane for this bearer: the
                // UE-side PDCP/RLC transmit entities and the serving
                // cell's receive entities, in the DRB's configured mode.
                has_ul_data = true;
                let ue_id = UeId(spec.ue as u16);
                let home = cfg.ues[spec.ue].initial_cell;
                let mode = cfg.ues[spec.ue]
                    .drbs
                    .iter()
                    .find(|&&(d, _)| d == spec.drb)
                    .map(|&(_, m)| m)
                    .unwrap_or_else(|| {
                        panic!("uplink flow {f}: DRB {} not in UE {} spec", spec.drb, spec.ue)
                    });
                has_um_ul |= mode == RlcMode::Um;
                let cell_cfg = cfg.cell_config(home);
                ues[spec.ue].configure_ul_drb(
                    DrbId(spec.drb),
                    mode,
                    cell_cfg.rlc_queue_sdus,
                    cell_cfg.segment_overhead,
                );
                gnbs[home].ensure_ul_drb(ue_id, DrbId(spec.drb), mode);
            }
            // Bonded (dual-connectivity) leg: stand up the same uplink
            // bearer on the secondary UE, which must sit on a different
            // cell and — like the primary — must not move (the bond pins
            // both attachments for the run).
            let bond = if let Some(ue2) = spec.bond {
                assert_eq!(spec.dir, FlowDir::Uplink, "flow {f}: bonding is uplink-only");
                assert!(
                    matches!(endpoint, Endpoint::Tcp { .. } | Endpoint::FecMedia { .. }),
                    "flow {f}: bonding supports TCP and FEC-media endpoints only"
                );
                assert!(
                    ue2 < cfg.ues.len() && ue2 != spec.ue,
                    "flow {f}: bond UE {ue2} out of range or equal to the primary"
                );
                assert!(
                    cfg.ues[spec.ue].mobility.is_empty() && cfg.ues[ue2].mobility.is_empty(),
                    "flow {f}: bonded UEs must not have mobility trajectories"
                );
                let home2 = cfg.ues[ue2].initial_cell;
                assert_ne!(
                    cfg.ues[spec.ue].initial_cell, home2,
                    "flow {f}: bonded legs must attach to different cells"
                );
                let ue2_id = UeId(ue2 as u16);
                let mode2 = cfg.ues[ue2]
                    .drbs
                    .iter()
                    .find(|&&(d, _)| d == spec.drb)
                    .map(|&(_, m)| m)
                    .unwrap_or_else(|| {
                        panic!("bonded flow {f}: DRB {} not in UE {ue2} spec", spec.drb)
                    });
                has_um_ul |= mode2 == RlcMode::Um;
                let cell_cfg2 = cfg.cell_config(home2);
                ues[ue2].configure_ul_drb(
                    DrbId(spec.drb),
                    mode2,
                    cell_cfg2.rlc_queue_sdus,
                    cell_cfg2.segment_overhead,
                );
                gnbs[home2].ensure_ul_drb(ue2_id, DrbId(spec.drb), mode2);
                Some(Box::new(BondState {
                    ue2_idx: ue2,
                    ue2_id,
                    tx: BondTx::new(),
                    // TCP legs need a server-side reorder/join buffer;
                    // the FEC media receiver sequences for itself.
                    join: matches!(endpoint, Endpoint::Tcp { .. }).then(BondJoin::new),
                    sbd: SbdDetector::new(),
                    leg_of: FxHashMap::default(),
                    leg_pkts: [0; 2],
                }))
            } else {
                None
            };
            tuple_to_flow.insert(tuple, f);
            flows.push(Flow {
                ue_idx: spec.ue,
                ue_id: UeId(spec.ue as u16),
                drb: DrbId(spec.drb),
                qfi: Qfi(spec.drb),
                tuple,
                wan_one_way: spec.wan.one_way,
                start: spec.start,
                stop: spec.stop,
                endpoint,
                started: false,
                finished_at: None,
                dir: spec.dir,
                sent_at: FxHashMap::default(),
                fb_pending: FxHashMap::default(),
                timer_at: Instant::MAX,
                app,
                app_timer_at: Instant::MAX,
                pending_units: VecDeque::new(),
                frame_pending: FxHashMap::default(),
                framed,
                bond,
            });
        }
        let router = cfg.bottleneck.as_ref().map(|b: &BottleneckSpec| {
            let aqm = if b.l4s_aqm {
                RouterAqm::DualPi2(DualPi2::default())
            } else {
                RouterAqm::Droptail
            };
            Router::new(b.rate_bps, 4 << 20, aqm, root.derive(3))
        });
        // Impairment stages draw dedicated streams: derive(5) for stage
        // 0, then a 40_000+ block — disjoint from every stream above, so
        // configuring impairments perturbs nothing else.
        let impair = cfg.impairment.as_ref().map(|spec| {
            let rngs = (0..spec.stages.len())
                .map(|k| {
                    if k == 0 {
                        root.derive(5)
                    } else {
                        root.derive(40_000 + k as u64)
                    }
                })
                .collect();
            Impairment::new(spec, rngs)
        });

        let n = flows.len();
        // UEs that actually need the periodic poll (UM reassembly skips)
        // and flows that need the UDP feedback flush; in an all-AM,
        // all-TCP cell the UePoll tick disappears entirely.
        let um_ues: Vec<usize> = cfg
            .ues
            .iter()
            .enumerate()
            .filter(|(_, s)| s.drbs.iter().any(|&(_, m)| m == RlcMode::Um))
            .map(|(i, _)| i)
            .collect();
        let udp_flows: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| !matches!(f.endpoint, Endpoint::Tcp { .. }))
            .map(|(i, _)| i)
            .collect();
        let bond_flows: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.bond.is_some())
            .map(|(i, _)| i)
            .collect();
        let need_ue_poll =
            !um_ues.is_empty() || !udp_flows.is_empty() || has_um_ul || !bond_flows.is_empty();
        let n_ues = serving.len();
        // The UE-side uplink markers mirror the CU ones (same deployment
        // shape, disjoint stream range); their RNG streams are derived
        // (purely) from the root, so constructing them perturbs nothing
        // in downlink-only scenarios.
        let ul_markers: Vec<Marker> = if cfg.cu_per_cell {
            (0..n_cells)
                .map(|c| {
                    let rng = if c == 0 {
                        root.derive(4)
                    } else {
                        root.derive(30_000 + c as u64)
                    };
                    Marker::new(&cfg.marker.uplink(), rng)
                })
                .collect()
        } else {
            vec![Marker::new(&cfg.marker.uplink(), root.derive(4))]
        };
        // Per-cell attachment lists (UE indices ascend, matching the
        // classic filtered scan's iteration order).
        let mut cell_ues: Vec<Vec<usize>> = vec![Vec::new(); n_cells];
        for (i, &c) in serving.iter().enumerate() {
            cell_ues[c].push(i);
        }
        let cycles = if cfg.measure_cycles {
            CycleScope::new(CYCLE_LABELS)
        } else {
            CycleScope::disabled()
        };
        let mut w = World {
            cfg,
            queue: EventQueue::with_capacity(1024 + 128 * n),
            pool: Vec::with_capacity(1024 + 128 * n),
            gnbs,
            serving,
            cell_ues,
            ues,
            markers,
            ul_markers,
            shard: None,
            outbox: Vec::new(),
            has_ul_data,
            has_um_ul,
            flows,
            tuple_to_flow,
            router,
            router_poll_at: Instant::MAX,
            impair,
            um_ues,
            udp_flows,
            bond_flows,
            slot_out: SlotOutput::default(),
            ul_pool: Vec::new(),
            mark_scratch: Vec::new(),
            scratch_pkts: Vec::new(),
            scratch_leg_pkts: Vec::new(),
            scratch_join: Vec::new(),
            scratch_app_deliv: Vec::new(),
            scratch_grants: Vec::new(),
            scratch_ul_f1u: Vec::new(),
            scratch_ul_statuses: Vec::new(),
            scratch_ul_skips: Vec::new(),
            owd_ms: vec![Vec::new(); n],
            owd_at_s: vec![Vec::new(); n],
            ul_owd_ms: vec![Vec::new(); n],
            ul_owd_at_s: vec![Vec::new(); n],
            ul_queue_series: BTreeMap::new(),
            frame_owd_ms: vec![Vec::new(); n],
            frames_generated: vec![0; n],
            frames_delivered: vec![0; n],
            frame_late_n: vec![0; n],
            frame_late_excess_ms: vec![0.0; n],
            request_ms: vec![Vec::new(); n],
            rtt_ms: vec![Vec::new(); n],
            rtt_at_s: vec![Vec::new(); n],
            thr_bins: vec![Vec::new(); n],
            cell_thr_bins: vec![Vec::new(); n_cells],
            queue_series: BTreeMap::new(),
            cell_queue_series: BTreeMap::new(),
            ho_log: vec![Vec::new(); n_ues],
            last_delivery: vec![None; n_ues],
            pending_ho: vec![None; n_ues],
            breakdown: vec![BreakdownAvg::default(); n],
            rate_err: Vec::new(),
            sn_map: FxHashMap::default(),
            breakdown_pending: FxHashMap::default(),
            gt_egress: BTreeMap::new(),
            gt_watermark: FxHashMap::default(),
            marker_time: (Vec::new(), Vec::new(), Vec::new()),
            ho_tbs_lost: 0,
            events: 0,
            housekeeping: 0,
            cycles,
        };
        for cell in 0..n_cells {
            // Per-cell CU deployments de-synchronise the cells' slot
            // grids by 1 µs per cell index (≪ one slot, invisible to
            // the TDD pattern). Cross-cell event chains — UL feedback,
            // its server echo, the ACK-clocked downlink — then never
            // collide on the same nanosecond, so no cross-cell ordering
            // depends on queue insertion order. That is what lets shard
            // merge points reproduce the single-world order exactly;
            // the classic central deployment keeps frame-synchronous
            // cells, byte-for-byte.
            let phase = if w.cfg.cu_per_cell {
                Duration::from_micros(cell as u64)
            } else {
                Duration::ZERO
            };
            w.sched(Instant::ZERO + phase, Event::Slot { cell });
        }
        // Per-cell CU deployments also nudge the replicated
        // housekeeping ticks half a microsecond off their grids.
        // Mobility steps land on round instants that coincide with the
        // 10 ms sample grid, and a migrated in-flight event at exactly
        // the barrier instant takes a *fresh* sequence number on
        // injection — it would pop after a same-instant `Sample` whose
        // classic sequence number is older, sampling a queue one SDU
        // early. Off-grid ticks make the order a pure function of time,
        // identical at every shard count.
        let hk = if w.cfg.cu_per_cell {
            Duration::from_nanos(500)
        } else {
            Duration::ZERO
        };
        w.sched(Instant::from_millis(10) + hk, Event::Sample);
        if need_ue_poll {
            w.sched(Instant::from_millis(5) + hk, Event::UePoll);
        }
        for f in 0..n {
            let start = w.flows[f].start;
            w.sched(start, Event::FlowStart { flow: f });
            if let Some(stop) = w.flows[f].stop {
                w.sched(stop, Event::FlowStop { flow: f });
            }
        }
        if let Some(b) = w.cfg.bottleneck.clone() {
            for (t, bps) in b.schedule {
                w.sched(t, Event::RouterRate { bps });
            }
        }
        // The deprecated single-cell shim: a channel change on whatever
        // cell serves the UE when the event fires.
        for (t, ue, profile, snr_db) in w.cfg.channel_events.clone() {
            w.sched(
                t,
                Event::ChannelChange {
                    ue,
                    profile,
                    snr_db,
                },
            );
        }
        // Mobility trajectories (the multi-cell DSL that subsumes it).
        for i in 0..w.cfg.ues.len() {
            for k in 0..w.cfg.ues[i].mobility.len() {
                let step = w.cfg.ues[i].mobility[k];
                w.sched(
                    step.at,
                    Event::Handover {
                        ue: i,
                        target_cell: step.cell,
                        profile: step.profile,
                        snr_db: step.snr_db,
                    },
                );
            }
        }
        w
    }

    /// Schedule an event, reusing a pooled box when one is available.
    #[inline]
    fn sched(&mut self, at: Instant, ev: Event) {
        match self.pool.pop() {
            Some(mut b) => {
                *b = ev;
                self.queue.schedule(at, b);
            }
            None => self.queue.schedule(at, Box::new(ev)),
        }
    }

    /// Marker-instance index for `cell`: the shared central instance, or
    /// the cell's own one under `cu_per_cell`.
    #[inline]
    fn mk(&self, cell: usize) -> usize {
        if self.markers.len() == 1 {
            0
        } else {
            cell
        }
    }

    /// Does this replica own `cell`? Classic runs own everything.
    #[inline]
    fn owns_cell(&self, cell: usize) -> bool {
        match &self.shard {
            None => true,
            Some(s) => s.of_cell[cell] == s.id,
        }
    }

    /// Does this replica own `ue` (= its serving cell)?
    #[inline]
    fn owns_ue(&self, ue: usize) -> bool {
        self.owns_cell(self.serving[ue])
    }

    /// Does this replica own `flow` (= its UE)?
    #[inline]
    fn owns_flow(&self, flow: usize) -> bool {
        self.owns_ue(self.flows[flow].ue_idx)
    }

    /// Schedule an `UlAtServer` for `flow`, routing it through the
    /// cross-shard outbox when the flow's UE belongs to another shard —
    /// the in-flight uplink ACKs of a just-migrated UE, the only
    /// runtime cross-shard edge. Classic runs own every flow, so the
    /// hot path costs one predictable branch.
    #[inline]
    fn sched_ul_at_server(&mut self, flow: usize, pkt: PacketBuf, at: Instant) {
        let ev = Event::UlAtServer { flow, pkt };
        if self.owns_flow(flow) {
            self.sched(at, ev);
        } else {
            let bx = match self.pool.pop() {
                Some(mut b) => {
                    *b = ev;
                    b
                }
                None => Box::new(ev),
            };
            self.outbox.push((at, bx));
        }
    }

    /// Flip the attachment table and the per-cell attachment lists.
    /// Also applied to every *other* replica at shard barriers, so
    /// ownership (derived from `serving`) flips globally in lockstep.
    pub(crate) fn set_serving(&mut self, ue: usize, cell: usize) {
        let old = self.serving[ue];
        if old == cell {
            return;
        }
        if let Ok(pos) = self.cell_ues[old].binary_search(&ue) {
            self.cell_ues[old].remove(pos);
        }
        if let Err(pos) = self.cell_ues[cell].binary_search(&ue) {
            self.cell_ues[cell].insert(pos, ue);
        }
        self.serving[ue] = cell;
    }

    /// Execute to the configured duration and produce the report.
    pub fn run(mut self) -> Report {
        let end = Instant::ZERO + self.cfg.duration;
        self.run_until(Instant::MAX, end);
        self.into_report()
    }

    /// Drive the event loop until the next event would fire at or after
    /// `until` (a shard epoch barrier) or after `end`. Events exactly at
    /// `until` stay queued: the coordinator's barrier work (handovers,
    /// mailbox drain) runs *before* anything at the barrier instant —
    /// which is the classic pop order, because an init-scheduled
    /// `Handover` always carries a smaller sequence number than the
    /// runtime-rescheduled events sharing its instant.
    pub(crate) fn run_until(&mut self, until: Instant, end: Instant) {
        while let Some(at) = self.queue.next_at() {
            if at > end || at >= until {
                break;
            }
            let t0 = self.cycles.start();
            let (now, mut bx) = self.queue.pop().expect("peeked");
            // Recycle the box: move the event out, keep the allocation.
            let ev = std::mem::replace(&mut *bx, Event::Nop);
            self.pool.push(bx);
            self.cycles.stop(t0, CYC_QUEUE);
            self.events += 1;
            self.handle(ev, now);
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event, now: Instant) {
        match ev {
            Event::Nop => {}
            Event::Slot { cell } => self.on_slot(cell, now),
            Event::DlAtRouter { pkt } => {
                let t0 = self.cycles.start();
                if let Some(r) = &mut self.router {
                    r.enqueue(pkt, now);
                }
                self.drain_router(now);
                self.cycles.stop(t0, CYC_WIRED);
            }
            Event::RouterPoll => {
                let t0 = self.cycles.start();
                self.router_poll_at = Instant::MAX;
                self.drain_router(now);
                self.cycles.stop(t0, CYC_WIRED);
            }
            Event::RouterRate { bps } => {
                if let Some(r) = &mut self.router {
                    r.set_rate(bps);
                }
            }
            Event::DlAtImpair { stage, pkt } => {
                let t0 = self.cycles.start();
                self.impair_advance(stage as usize, pkt, now);
                self.cycles.stop(t0, CYC_WIRED);
            }
            Event::ImpairPoll { stage } => {
                let t0 = self.cycles.start();
                self.impair_poll(stage as usize, now);
                self.cycles.stop(t0, CYC_WIRED);
            }
            Event::DlAtCu { flow, pkt } => self.on_dl_at_cu(flow, pkt, now),
            Event::TbAtUe { cell, ue, tb } => {
                if self.serving[ue] != cell {
                    // The UE handed over while the block was on the air:
                    // it decodes nothing from the old cell. In AM the
                    // SDUs were forwarded over Xn anyway; in UM they are
                    // genuinely lost, exactly as over the air — and
                    // counted as lost either way.
                    self.ho_tbs_lost += 1;
                    return;
                }
                let t0 = self.cycles.start();
                let mut deliveries = std::mem::take(&mut self.scratch_app_deliv);
                let segs = self.ues[ue].on_transport_block_into(tb, now, &mut deliveries);
                self.gnbs[cell].recycle_segments(segs);
                for d in deliveries.drain(..) {
                    self.sched(
                        d.deliver_at,
                        Event::AppDeliver {
                            pkt: d.pkt,
                            t_cu_ingress: d.t_cu_ingress,
                        },
                    );
                }
                self.scratch_app_deliv = deliveries;
                self.cycles.stop(t0, CYC_UE);
            }
            Event::AppDeliver { pkt, t_cu_ingress } => {
                self.on_app_deliver(pkt, t_cu_ingress, now)
            }
            Event::UlAtGnb { cell, ue, pkts, statuses, bsr } => {
                self.on_ul_at_gnb(cell, ue, pkts, statuses, bsr, now)
            }
            Event::UlTbAtGnb { cell, ue, tb } => self.on_ul_tb_at_gnb(cell, ue, tb, now),
            Event::UlStatusAtUe { ue, drb, status } => {
                // The UE's transmit entity survives handover (it
                // re-establishes in place), so a status from the old
                // cell lands safely: unknown SNs are ignored by ARQ.
                let t0 = self.cycles.start();
                let _ = self.ues[ue].on_ul_status(drb, &status, now);
                self.cycles.stop(t0, CYC_UE);
                self.feed_ul_marker_feedback(ue, now);
            }
            Event::UlAtServer { flow, pkt } => self.on_ul_at_server(flow, pkt, now),
            Event::FlowStart { flow } => self.on_flow_start(flow, now),
            Event::FlowStop { flow } => {
                if let Some(app) = &mut self.flows[flow].app {
                    app.stop();
                }
                match &mut self.flows[flow].endpoint {
                    Endpoint::Tcp { sender, .. } => sender.stop(),
                    Endpoint::Scream { sender, .. } => sender.stop(),
                    Endpoint::UdpPrague { sender, .. } => sender.stop(),
                    Endpoint::FecMedia { sender, .. } => sender.stop(),
                }
            }
            Event::FlowTimer { flow } => {
                self.flows[flow].timer_at = Instant::MAX;
                if !self.flows[flow].started {
                    return;
                }
                let mut outs = std::mem::take(&mut self.scratch_pkts);
                let mut leg_outs = std::mem::take(&mut self.scratch_leg_pkts);
                let t0 = self.cycles.start();
                match &mut self.flows[flow].endpoint {
                    Endpoint::Tcp { sender, .. } => sender.poll_into(now, &mut outs),
                    Endpoint::Scream { sender, .. } => {
                        sender.poll_into(now, &mut outs);
                        sender.take_frame_marks_into(&mut self.mark_scratch);
                    }
                    Endpoint::UdpPrague { sender, .. } => sender.poll_into(now, &mut outs),
                    Endpoint::FecMedia { sender, .. } => sender.poll_into(now, &mut leg_outs),
                }
                self.cycles.stop(t0, CYC_TRANSPORT);
                self.register_frame_marks(flow);
                match self.flows[flow].dir {
                    FlowDir::Downlink => self.route_dl(flow, &mut outs, now),
                    FlowDir::Uplink => self.send_ul_data(flow, &mut outs, now),
                }
                // FEC media pre-stripes itself: each release names its leg.
                for (leg, pkt) in leg_outs.drain(..) {
                    self.send_ul_data_leg(flow, leg, pkt, now);
                }
                self.scratch_pkts = outs;
                self.scratch_leg_pkts = leg_outs;
                self.reschedule_timer(flow, now);
            }
            Event::AppTick { flow } => self.on_app_tick(flow, now),
            Event::ChannelChange { ue, profile, snr_db } => {
                // Intra-cell channel change: the RLC queues and all
                // in-flight state survive; only the radio changes.
                let cell = self.serving[ue];
                let ch = self.fresh_channel(ue, cell, profile, snr_db, now);
                self.gnbs[cell].replace_channel(UeId(ue as u16), ch);
            }
            Event::Handover { ue, target_cell, profile, snr_db } => {
                self.on_handover(ue, target_cell, profile, snr_db, now)
            }
            Event::Sample => {
                self.housekeeping += 1;
                let t0 = self.cycles.start();
                self.on_sample(now);
                self.cycles.stop(t0, CYC_METRICS);
            }
            Event::UePoll => {
                self.housekeeping += 1;
                // Only UEs with UM DRBs have reassembly timers to run.
                let t0 = self.cycles.start();
                let mut deliveries = std::mem::take(&mut self.scratch_app_deliv);
                for k in 0..self.um_ues.len() {
                    let i = self.um_ues[k];
                    if !self.owns_ue(i) {
                        continue;
                    }
                    self.ues[i].poll_into(now, &mut deliveries);
                    for d in deliveries.drain(..) {
                        self.sched(
                            d.deliver_at,
                            Event::AppDeliver {
                                pkt: d.pkt,
                                t_cu_ingress: d.t_cu_ingress,
                            },
                        );
                    }
                }
                self.scratch_app_deliv = deliveries;
                self.cycles.stop(t0, CYC_UE);
                // Flush feedback reports suppressed by the prohibit
                // interval (UDP receivers have no ack clock of their own;
                // without this a window-limited sender can deadlock).
                // Only UDP endpoints ever have anything to flush.
                let t0 = self.cycles.start();
                for k in 0..self.udp_flows.len() {
                    let flow = self.udp_flows[k];
                    if !self.owns_flow(flow) {
                        continue;
                    }
                    let f = &mut self.flows[flow];
                    let ue = f.ue_idx;
                    let dir = f.dir;
                    let pending = match &mut f.endpoint {
                        Endpoint::Scream { receiver, .. } => receiver
                            .poll(now)
                            .map(|(p, fb)| (p, FbData::Scream(fb))),
                        Endpoint::UdpPrague { receiver, .. } => receiver
                            .poll(now)
                            .map(|(p, fb)| (p, FbData::Prague(fb))),
                        Endpoint::FecMedia { receiver, .. } => {
                            receiver.poll(now).map(|(p, fb)| (p, FbData::Fec(Box::new(fb))))
                        }
                        Endpoint::Tcp { .. } => None,
                    };
                    if let Some((fb_pkt, fb)) = pending {
                        let fid = fb_pkt.identification();
                        f.fb_pending.insert(fid, fb);
                        match dir {
                            // Downlink flow: the receiver is at the UE,
                            // its report rides the uplink control path.
                            FlowDir::Downlink => self.ues[ue].enqueue_uplink(fb_pkt, now),
                            // Uplink flow: the receiver is at the
                            // server, its report rides the downlink.
                            FlowDir::Uplink => self.route_dl_pkt(flow, fb_pkt, now),
                        }
                    }
                }
                self.cycles.stop(t0, CYC_TRANSPORT);
                // UM uplink bearers: run the gNB-side reassembly-timeout
                // skip so a lost uplink SDU does not stall later ones.
                if self.has_um_ul {
                    let mut skipped = std::mem::take(&mut self.scratch_ul_skips);
                    for cell in 0..self.gnbs.len() {
                        if !self.owns_cell(cell) {
                            continue;
                        }
                        let core = self.gnbs[cell].config().core_to_cu_delay;
                        skipped.clear();
                        let t0 = self.cycles.start();
                        self.gnbs[cell].poll_ul_rx_into(now, &mut skipped);
                        self.cycles.stop(t0, CYC_UL);
                        for (_ue, _drb, d) in skipped.drain(..) {
                            self.forward_ul_to_server(cell, d.pkt, core, now);
                        }
                    }
                    self.scratch_ul_skips = skipped;
                }
                // Bonded TCP flows: release join-buffered packets whose
                // gap has waited past the reorder timeout, so a lost
                // packet on one leg cannot stall the other indefinitely.
                let mut joined = std::mem::take(&mut self.scratch_join);
                for k in 0..self.bond_flows.len() {
                    let flow = self.bond_flows[k];
                    if !self.owns_flow(flow) {
                        continue;
                    }
                    if let Some(b) = &mut self.flows[flow].bond {
                        if let Some(join) = &mut b.join {
                            join.poll(now, &mut joined);
                        }
                    }
                    for pkt in joined.drain(..) {
                        self.deliver_ul_at_server(flow, pkt, 0, now);
                    }
                }
                self.scratch_join = joined;
                self.sched(now + Duration::from_millis(5), Event::UePoll);
            }
        }
    }

    /// A deterministic per-(seed, ue, time) fading channel toward `cell`.
    fn fresh_channel(
        &self,
        ue: usize,
        cell: usize,
        profile: ChannelProfile,
        snr_db: f64,
        now: Instant,
    ) -> FadingChannel {
        let mut rng = SimRng::new(self.cfg.seed ^ (ue as u64) << 32 ^ now.as_nanos());
        FadingChannel::new(
            profile,
            snr_db,
            self.gnbs[cell].config().carrier_hz,
            &mut rng,
        )
    }

    /// Execute one mobility step: a pure channel change when the target
    /// is already serving, otherwise a full Xn handover — detach with
    /// context serialization at the source, PDCP re-establishment and
    /// lossless SDU forwarding at the target, UE-side re-establishment
    /// (forced status report), the marker's handover policy per DRB, and
    /// the attachment-table flip.
    fn on_handover(
        &mut self,
        ue: usize,
        target_cell: usize,
        profile: ChannelProfile,
        snr_db: f64,
        now: Instant,
    ) {
        let src = self.serving[ue];
        let ch = self.fresh_channel(ue, target_cell, profile, snr_db, now);
        if target_cell == src {
            self.gnbs[src].replace_channel(UeId(ue as u16), ch);
            return;
        }
        let ue_id = UeId(ue as u16);
        let ctx = self.gnbs[src].detach_ue(ue_id);
        let dropped = self.gnbs[target_cell].attach_ue_handover(ue_id, ch, ctx, now);
        // Forwarded SDUs tail-dropped at a congested target will never
        // produce a transmit record: release their per-SDU bookkeeping
        // (and the flow's OWD registration) instead of leaking it.
        for (drb, sn) in dropped {
            if let Some((flow, ident)) = self.sn_map.remove(&(ue_id, drb, sn)) {
                self.flows[flow].sent_at.remove(&ident);
            }
        }
        let tgt_cfg = self.gnbs[target_cell].config();
        let (sp, id, sr) = (
            tgt_cfg.rlc_status_period,
            tgt_cfg.ue_internal_delay,
            tgt_cfg.ul_sr_delay_max,
        );
        self.ues[ue].on_handover(sp, id, sr, now);
        // Per-cell CU deployments first carry the UE's marker state over
        // Xn to the target cell's instance; the classic central instance
        // already holds it. Then the policy runs where the state now is.
        if self.markers.len() > 1 {
            self.migrate_marker_state(ue, src, target_cell);
        }
        let m = self.mk(target_cell);
        for k in 0..self.cfg.ues[ue].drbs.len() {
            let d = self.cfg.ues[ue].drbs[k].0;
            self.markers[m].on_handover(ue_id, DrbId(d), self.cfg.marker_ho_policy);
            // The uplink marker applies the same policy symmetrically:
            // its profile table (SN mirror of the UE-side PDCP, whose
            // numbering is continuous across re-establishment) always
            // survives; MigrateState keeps the grant-rate estimator,
            // ColdStart resets it.
            self.ul_markers[m].on_handover(ue_id, DrbId(d), self.cfg.marker_ho_policy);
        }
        self.set_serving(ue, target_cell);
        self.ho_log[ue].push(HandoverRecord {
            ue: ue as u16,
            at: now,
            from_cell: src as u8,
            to_cell: target_cell as u8,
            last_delivery_before: self.last_delivery[ue],
            first_delivery_after: None,
        });
        self.pending_ho[ue] = Some(self.ho_log[ue].len() - 1);
    }

    /// Move a UE's marker state (both instances) between per-cell
    /// markers over Xn: per-DRB marking state plus per-tuple flow state
    /// for each of the UE's flows.
    fn migrate_marker_state(&mut self, ue: usize, src: usize, dst: usize) {
        let ue_id = UeId(ue as u16);
        let drbs: Vec<DrbId> = self.cfg.ues[ue]
            .drbs
            .iter()
            .map(|&(d, _)| DrbId(d))
            .collect();
        let tuples: Vec<FiveTuple> = self
            .flows
            .iter()
            .filter(|f| f.ue_idx == ue)
            .map(|f| f.tuple)
            .collect();
        let carry = self.markers[src].extract_ue(ue_id, &drbs, &tuples);
        self.markers[dst].absorb_ue(carry);
        let carry = self.ul_markers[src].extract_ue(ue_id, &drbs, &tuples);
        self.ul_markers[dst].absorb_ue(carry);
    }

    fn on_slot(&mut self, cell: usize, now: Instant) {
        // Reuse the slot-output buffers across slots (taken out of self
        // so the marker/metrics borrows below stay disjoint).
        let mut out = std::mem::take(&mut self.slot_out);
        let c0 = self.cycles.start();
        self.gnbs[cell].on_slot_into(now, &mut out);
        self.cycles.stop(c0, CYC_GNB);
        let m = self.mk(cell);
        for msg in &out.f1u {
            let c0 = self.cycles.start();
            let t0 = self.clock_start();
            self.markers[m].on_feedback(msg, now);
            self.clock_stop(t0, 2);
            self.cycles.stop(c0, CYC_MARKER);
        }
        let c0 = self.cycles.start();
        for (ue, drb, rec) in &out.txed_records {
            let watermark = self.gt_watermark.entry((ue.0, drb.0)).or_insert(0);
            if rec.sn >= *watermark {
                *watermark = rec.sn + 1;
                self.gt_egress
                    .entry((ue.0, drb.0))
                    .or_default()
                    .push_back((rec.t_txed, rec.size));
            }
            if let Some((flow, ident)) = self.sn_map.remove(&(*ue, *drb, rec.sn)) {
                let queuing = rec.t_head.saturating_since(rec.t_ingress).as_millis_f64();
                let sched = rec.t_first_tx.saturating_since(rec.t_head).as_millis_f64();
                self.breakdown_pending.insert((flow, ident), (queuing, sched));
            }
        }
        self.cycles.stop(c0, CYC_METRICS);
        let c0 = self.cycles.start();
        for d in out.deliveries.drain(..) {
            let ue = d.tb.ue.0 as usize;
            self.sched(d.deliver_at, Event::TbAtUe { cell, ue, tb: d.tb });
        }
        self.cycles.stop(c0, CYC_GNB);
        if self.has_ul_data {
            // Uplink RLC AM statuses ride the downlink control channel
            // on their own cadence (any slot role).
            let air = self.gnbs[cell].config().slot_duration;
            let c0 = self.cycles.start();
            // `drain(..)` below leaves the scratch vec empty, so the
            // take hands `ul_statuses_into` a clean buffer as-is.
            let mut statuses = std::mem::take(&mut self.scratch_ul_statuses);
            self.gnbs[cell].ul_statuses_into(now, &mut statuses);
            for (ue_id, drb, status) in statuses.drain(..) {
                self.sched(
                    now + air,
                    Event::UlStatusAtUe { ue: ue_id.0 as usize, drb, status },
                );
            }
            self.scratch_ul_statuses = statuses;
            self.cycles.stop(c0, CYC_UL);
        }
        if out.role == Some(SlotRole::Uplink) {
            let air = self.gnbs[cell].config().slot_duration;
            if self.has_ul_data {
                // BSR-driven grant allocation: the scheduler grants
                // against the buffer status it learned from earlier
                // reports; each granted UE packs a transport block that
                // never exceeds its TBS and transmits it this slot.
                let mut grants = std::mem::take(&mut self.scratch_grants);
                let c0 = self.cycles.start();
                self.gnbs[cell].allocate_ul_grants_into(now, &mut grants);
                self.cycles.stop(c0, CYC_UL);
                for &(ue_id, bytes, cqi) in &grants {
                    let i = ue_id.0 as usize;
                    if self.serving[i] != cell {
                        continue;
                    }
                    let c0 = self.cycles.start();
                    if let Some(tb) = self.ues[i].build_ul_tb(bytes, cqi, now) {
                        self.sched(now + air, Event::UlTbAtGnb { cell, ue: i, tb });
                    }
                    self.cycles.stop(c0, CYC_UE);
                    // Granted-bytes history → the uplink marker's
                    // delay predictor (the UE-side F1-U mirror).
                    self.feed_ul_marker_feedback(i, now);
                }
                self.scratch_grants = grants;
            }
            let c0 = self.cycles.start();
            // Walk the cell's sorted attachment list: same ascending UE
            // order as the classic all-UE filtered scan, but O(attached)
            // — in a 50-cell metro the filter itself was the hot path.
            for k in 0..self.cell_ues[cell].len() {
                let i = self.cell_ues[cell][k];
                // Quiet-UE fast path: a UE with nothing to transmit and
                // no status/BSR state transition due this slot is skipped
                // before any pool churn. `ul_slot_pending` is an exact
                // predicate — it returns true whenever any of the calls
                // below would emit *or mutate*, so skipping is
                // behaviour-identical (asserted by a harness test).
                if !self.ues[i].ul_slot_pending(now, self.has_ul_data) {
                    continue;
                }
                let (mut pkts, mut statuses, mut bsr) =
                    self.ul_pool.pop().unwrap_or_default();
                self.ues[i].on_uplink_slot_into(now, &mut pkts, &mut statuses);
                if self.has_ul_data {
                    self.ues[i].ul_bsr_into(now, &mut bsr);
                }
                if !pkts.is_empty() || !statuses.is_empty() || !bsr.is_empty() {
                    self.sched(
                        now + air,
                        Event::UlAtGnb { cell, ue: i, pkts, statuses, bsr },
                    );
                } else {
                    self.ul_pool.push((pkts, statuses, bsr));
                }
            }
            self.cycles.stop(c0, CYC_UL);
        }
        self.slot_out = out;
        self.sched(
            now + self.gnbs[cell].config().slot_duration,
            Event::Slot { cell },
        );
    }

    fn on_dl_at_cu(&mut self, flow: usize, mut pkt: PacketBuf, now: Instant) {
        let (ue_id, qfi) = (self.flows[flow].ue_id, self.flows[flow].qfi);
        let drb = self.flows[flow].drb;
        // `sent_at`/`sn_map` bookkeeping is for downlink *data* only.
        // For an uplink flow this packet is feedback whose ident space
        // belongs to the server-side receiver — it collides with the
        // UE-side sender's data idents, so touching `sent_at` here
        // would erase a pending uplink OWD registration; and its
        // per-SDU breakdown is never consumed.
        let dl = self.flows[flow].dir == FlowDir::Downlink;
        let ident = pkt.identification();
        let cell = self.serving[self.flows[flow].ue_idx];
        let m = self.mk(cell);
        let c0 = self.cycles.start();
        let t0 = self.clock_start();
        let verdict = self.markers[m].on_dl(ue_id, drb, &mut pkt, now);
        self.clock_stop(t0, 0);
        self.cycles.stop(c0, CYC_MARKER);
        if verdict == DlVerdict::Drop {
            if dl {
                self.flows[flow].sent_at.remove(&ident);
            }
            return;
        }
        let c0 = self.cycles.start();
        match self.gnbs[cell].enqueue_downlink(ue_id, qfi, pkt, now) {
            Some((drb, sn)) => {
                if dl {
                    self.sn_map.insert((ue_id, drb, sn), (flow, ident));
                }
            }
            None => {
                // RLC tail drop: the packet is gone; TCP sees the loss.
                if dl {
                    self.flows[flow].sent_at.remove(&ident);
                }
            }
        }
        self.cycles.stop(c0, CYC_GNB);
    }

    fn on_app_deliver(&mut self, pkt: PacketBuf, t_cu_ingress: Instant, now: Instant) {
        let Some(tuple) = pkt.five_tuple() else {
            return;
        };
        // Downlink flows register their (downlink) data tuple, so the
        // direct probe hits. Uplink flows register the uplink data
        // tuple; a downlink delivery for one is its feedback, found
        // under the reversed key.
        let flow = match self.tuple_to_flow.get(&tuple) {
            Some(&f) => f,
            None => match self.tuple_to_flow.get(&tuple.reversed()) {
                Some(&f) if self.flows[f].dir == FlowDir::Uplink => f,
                _ => return,
            },
        };
        if self.flows[flow].dir == FlowDir::Uplink {
            return self.on_ul_feedback_at_ue(flow, pkt, now);
        }
        let ident = pkt.identification();
        let payload = pkt.payload_len();
        let ue = self.flows[flow].ue_idx;
        let c0 = self.cycles.start();
        if let Some(sent) = self.flows[flow].sent_at.remove(&ident) {
            let owd = now.saturating_since(sent).as_millis_f64();
            if payload > 0 {
                self.owd_ms[flow].push(owd);
                self.owd_at_s[flow].push(now.as_secs_f64());
                self.record_thr_bins(flow, ue, payload, now);
                // Handover-interruption accounting: this is a payload
                // delivery to the UE, closing any pending gap.
                self.last_delivery[ue] = Some(now);
                if let Some(h) = self.pending_ho[ue].take() {
                    self.ho_log[ue][h].first_delivery_after = Some(now);
                }
            }
            if let Some((queuing, sched)) = self.breakdown_pending.remove(&(flow, ident)) {
                let core = self.gnbs[self.serving[ue]].config().core_to_cu_delay;
                let prop = (self.flows[flow].wan_one_way + core).as_millis_f64();
                let other = (owd - prop - queuing - sched).max(0.0);
                self.breakdown[flow].push(Breakdown {
                    propagation: prop,
                    queuing,
                    scheduling: sched,
                    other,
                });
            }
        }
        self.cycles.stop(c0, CYC_METRICS);
        let _ = t_cu_ingress;
        // Hand to the client endpoint.
        let c0 = self.cycles.start();
        let mut tcp_watermark = None;
        match &mut self.flows[flow].endpoint {
            Endpoint::Tcp { receiver, .. } => {
                let ack = receiver.on_packet(&pkt, now);
                tcp_watermark = Some(receiver.received);
                if let Some(ack) = ack {
                    self.ues[ue].enqueue_uplink(ack, now);
                }
            }
            Endpoint::Scream { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Scream(fb));
                    self.ues[ue].enqueue_uplink(fb_pkt, now);
                }
            }
            Endpoint::UdpPrague { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Prague(fb));
                    self.ues[ue].enqueue_uplink(fb_pkt, now);
                }
            }
            // Uplink-only endpoint: the early return above already
            // routed its (downlink-riding) feedback to the UE sender.
            Endpoint::FecMedia { .. } => unreachable!("FecMedia flows are uplink-only"),
        }
        self.cycles.stop(c0, CYC_TRANSPORT);
        let c0 = self.cycles.start();
        self.complete_stream_units(flow, tcp_watermark, ident, now);
        self.cycles.stop(c0, CYC_METRICS);
    }

    /// Application-level QoE at the data-direction receiver (the UE for
    /// downlink flows, the content server for uplink ones): complete
    /// stream units against the TCP in-order watermark, or the SCReAM
    /// frame whose last packet this delivery was. Natively-lowered bulk
    /// flows skip all of it.
    fn complete_stream_units(
        &mut self,
        flow: usize,
        tcp_watermark: Option<u64>,
        ident: u16,
        now: Instant,
    ) {
        if let Some(wm) = tcp_watermark {
            if self.flows[flow].app.is_some() || !self.flows[flow].pending_units.is_empty()
            {
                self.on_stream_progress(flow, wm, now);
            }
        } else if let Some(created) = self.flows[flow].frame_pending.remove(&ident) {
            // The join key is the 16-bit IP ident of the frame's last
            // packet. If that packet was lost (RLC UM), its entry can
            // linger until an unrelated packet reuses the ident after
            // the 65 536-packet wrap; a capture timestamp implausibly
            // far in the past identifies such a stale entry, which is
            // dropped (the frame stays counted as never delivered).
            const STALE_FRAME_MARK: Duration = Duration::from_secs(10);
            if now.saturating_since(created) < STALE_FRAME_MARK {
                let deadline = self.flows[flow].framed.map(|(_, d)| d);
                self.record_unit(flow, UnitKind::Frame, created, deadline, now);
            }
        }
    }

    fn on_ul_at_gnb(
        &mut self,
        cell: usize,
        ue: usize,
        mut pkts: Vec<PacketBuf>,
        mut statuses: Vec<(DrbId, RlcStatus)>,
        mut bsr: Vec<(DrbId, usize)>,
        now: Instant,
    ) {
        let ue_id = UeId(ue as u16);
        // Buffer-status reports teach the scheduler how much this UE has
        // buffered; a report addressed to a cell the UE already left
        // dies with it (the re-armed post-handover BSR replaces it).
        if !bsr.is_empty() {
            let c0 = self.cycles.start();
            if self.serving[ue] == cell {
                let total: usize = bsr.iter().map(|&(_, b)| b).sum();
                self.gnbs[cell].on_ul_bsr(ue_id, total);
            }
            bsr.clear();
            self.cycles.stop(c0, CYC_UL);
        }
        // RLC status reports are addressed to the cell the UE transmitted
        // toward; if it handed over while they were on the air, that
        // cell's RLC context is gone and they die with it (the forced
        // post-handover status resynchronises the target instead).
        let m = self.mk(cell);
        if self.serving[ue] == cell {
            for (drb, st) in statuses.drain(..) {
                let c0 = self.cycles.start();
                let (_records, f1u) = self.gnbs[cell].on_rlc_status(ue_id, drb, &st, now);
                self.cycles.stop(c0, CYC_UL);
                if let Some(msg) = f1u {
                    let c0 = self.cycles.start();
                    let t0 = self.clock_start();
                    self.markers[m].on_feedback(&msg, now);
                    self.clock_stop(t0, 2);
                    self.cycles.stop(c0, CYC_MARKER);
                }
            }
        } else {
            statuses.clear();
        }
        // Uplink IP packets were decoded by the old cell before the UE
        // left; they continue to the core (and the CU marker) either way
        // — and when the UE's flows now live on another shard, the
        // scheduled server arrival rides the cross-shard outbox.
        let core = self.gnbs[cell].config().core_to_cu_delay;
        for mut pkt in pkts.drain(..) {
            let c0 = self.cycles.start();
            let t0 = self.clock_start();
            self.markers[m].on_ul(&mut pkt, now);
            self.clock_stop(t0, 1);
            self.cycles.stop(c0, CYC_MARKER);
            let Some(tuple) = pkt.five_tuple() else { continue };
            let Some(&flow) = self.tuple_to_flow.get(&tuple.reversed()) else {
                continue;
            };
            let delay = core + self.flows[flow].wan_one_way;
            self.sched_ul_at_server(flow, pkt, now + delay);
        }
        // All buffers are empty again: back to the pool.
        self.ul_pool.push((pkts, statuses, bsr));
    }

    /// An uplink data transport block decodes (or fails) at the gNB.
    fn on_ul_tb_at_gnb(&mut self, cell: usize, ue: usize, tb: TransportBlock, now: Instant) {
        if self.serving[ue] != cell {
            // Destroyed mid-air by the handover, exactly like a downlink
            // block: in AM the UE's re-established transmit entity
            // retransmits the SDUs at the target anyway.
            self.ho_tbs_lost += 1;
            return;
        }
        let c0 = self.cycles.start();
        let outcome = self.gnbs[cell].receive_ul_tb(tb, now);
        self.cycles.stop(c0, CYC_UL);
        match outcome {
            UlTbOutcome::Retx(tb) => {
                let rtt = self.gnbs[cell].config().harq_rtt;
                self.sched(now + rtt, Event::UlTbAtGnb { cell, ue, tb });
            }
            UlTbOutcome::Lost => {}
            UlTbOutcome::Decoded(deliveries) => {
                let core = self.gnbs[cell].config().core_to_cu_delay;
                for (_drb, d) in deliveries {
                    self.forward_ul_to_server(cell, d.pkt, core, now);
                }
            }
        }
    }

    /// Route one decoded uplink data packet onward to its content
    /// server, through the CU (where `cell`'s downlink marker's uplink
    /// hook sees it, like every packet heading for the core).
    fn forward_ul_to_server(&mut self, cell: usize, mut pkt: PacketBuf, core: Duration, now: Instant) {
        let m = self.mk(cell);
        let c0 = self.cycles.start();
        let t0 = self.clock_start();
        self.markers[m].on_ul(&mut pkt, now);
        self.clock_stop(t0, 1);
        self.cycles.stop(c0, CYC_MARKER);
        let Some(tuple) = pkt.five_tuple() else {
            return;
        };
        // Uplink data tuples are registered in their data direction.
        let Some(&flow) = self.tuple_to_flow.get(&tuple) else {
            return;
        };
        let delay = core + self.flows[flow].wan_one_way;
        self.sched_ul_at_server(flow, pkt, now + delay);
    }

    /// Feed the uplink marker the UE's freshly advanced transmit and
    /// delivery watermarks — the granted-bytes feedback stream that
    /// plays the role F1-U telemetry plays for the CU-side instance.
    fn feed_ul_marker_feedback(&mut self, ue: usize, now: Instant) {
        // The trailing `clear()` below returns the buffer empty, so the
        // take needs no second reset here.
        let mut f1u = std::mem::take(&mut self.scratch_ul_f1u);
        let c0 = self.cycles.start();
        self.ues[ue].ul_f1u_into(now, &mut f1u);
        self.cycles.stop(c0, CYC_UL);
        let m = self.mk(self.serving[ue]);
        for msg in &f1u {
            let c0 = self.cycles.start();
            let t0 = self.clock_start();
            self.ul_markers[m].on_feedback(msg, now);
            self.clock_stop(t0, 2);
            self.cycles.stop(c0, CYC_MARKER);
        }
        f1u.clear();
        self.scratch_ul_f1u = f1u;
    }

    /// Send uplink data packets from a UE-side sender: the uplink
    /// marker sees each packet at queue ingress (event 1, mirrored),
    /// then PDCP numbers it and RLC queues it for grant-driven
    /// transmission. Send times are registered for uplink OWD.
    /// Queue sender-released packets onto the uplink bearer. Drains
    /// `pkts` so callers can reuse the buffer.
    fn send_ul_data(&mut self, flow: usize, pkts: &mut Vec<PacketBuf>, now: Instant) {
        for pkt in pkts.drain(..) {
            // Bonded flows stripe across legs by byte balance; the FEC
            // media sender never comes through here (it pre-stripes).
            let leg = match &mut self.flows[flow].bond {
                Some(b) => b.tx.pick(pkt.wire_len()),
                None => 0,
            };
            self.send_ul_data_leg(flow, leg, pkt, now);
        }
    }

    /// Queue one sender-released packet onto `leg`'s uplink bearer: the
    /// leg's UE-side marker sees it at queue ingress, then PDCP numbers
    /// it and RLC queues it for grant-driven transmission on that leg's
    /// serving cell.
    fn send_ul_data_leg(&mut self, flow: usize, leg: u8, mut pkt: PacketBuf, now: Instant) {
        let ident = pkt.identification();
        let (ue, ue_id, drb) = {
            let f = &self.flows[flow];
            match (&f.bond, leg) {
                (Some(b), 1) => (b.ue2_idx, b.ue2_id, f.drb),
                _ => (f.ue_idx, f.ue_id, f.drb),
            }
        };
        let m = self.mk(self.serving[ue]);
        let c0 = self.cycles.start();
        let t0 = self.clock_start();
        let verdict = self.ul_markers[m].on_dl(ue_id, drb, &mut pkt, now);
        self.clock_stop(t0, 0);
        self.cycles.stop(c0, CYC_MARKER);
        if verdict == DlVerdict::Drop {
            return;
        }
        let c0 = self.cycles.start();
        let queued = self.ues[ue].enqueue_uplink_data(drb, pkt, now).is_some();
        self.cycles.stop(c0, CYC_UE);
        if queued {
            self.flows[flow].sent_at.insert(ident, now);
            if let Some(b) = &mut self.flows[flow].bond {
                b.leg_of.insert(ident, leg);
            }
        }
    }

    fn on_ul_at_server(&mut self, flow: usize, pkt: PacketBuf, now: Instant) {
        if self.flows[flow].dir == FlowDir::Uplink {
            return self.on_ul_data_at_server(flow, pkt, now);
        }
        let mut outs = std::mem::take(&mut self.scratch_pkts);
        self.drive_sender_into(flow, &pkt, now, &mut outs);
        self.route_dl(flow, &mut outs, now);
        self.scratch_pkts = outs;
        self.reschedule_timer(flow, now);
    }

    /// Feed one arriving feedback packet to the flow's sender —
    /// wherever it lives (content server for downlink flows, the UE for
    /// uplink ones) — recording RTT samples, completion, frame marks,
    /// and the application rate-adaptation hook. The data packets the
    /// sender released are appended to `outs`; the caller routes them
    /// in the flow's data direction.
    fn drive_sender_into(
        &mut self,
        flow: usize,
        pkt: &PacketBuf,
        now: Instant,
        outs: &mut Vec<PacketBuf>,
    ) {
        let ident = pkt.identification();
        let mut leg_outs = std::mem::take(&mut self.scratch_leg_pkts);
        let f = &mut self.flows[flow];
        let fb = f.fb_pending.remove(&ident);
        let mut rate_estimate = None;
        let c0 = self.cycles.start();
        match &mut f.endpoint {
            Endpoint::Tcp { sender, .. } => {
                sender.on_packet_into(pkt, now, outs);
                if let Some(srtt) = sender.srtt() {
                    self.rtt_ms[flow].push(srtt.as_millis_f64());
                    self.rtt_at_s[flow].push(now.as_secs_f64());
                }
                if sender.finished() && f.finished_at.is_none() {
                    f.finished_at = Some(now);
                }
                rate_estimate = sender.rate_estimate_bps();
            }
            Endpoint::Scream { sender, .. } => {
                if let Some(FbData::Scream(fb)) = fb {
                    sender.on_feedback(&fb, now);
                    self.rtt_ms[flow].push(sender.srtt().as_millis_f64());
                    self.rtt_at_s[flow].push(now.as_secs_f64());
                }
                sender.poll_into(now, outs);
                sender.take_frame_marks_into(&mut self.mark_scratch);
            }
            Endpoint::UdpPrague { sender, .. } => {
                if let Some(FbData::Prague(fb)) = fb {
                    sender.on_feedback(&fb, now);
                    if let Some(srtt) = sender.srtt() {
                        self.rtt_ms[flow].push(srtt.as_millis_f64());
                        self.rtt_at_s[flow].push(now.as_secs_f64());
                    }
                }
                sender.poll_into(now, outs);
            }
            Endpoint::FecMedia { sender, .. } => {
                if let Some(FbData::Fec(fb)) = fb {
                    sender.on_feedback(&fb, now);
                    if let Some(srtt) = sender.leg_srtt(0) {
                        self.rtt_ms[flow].push(srtt.as_millis_f64());
                        self.rtt_at_s[flow].push(now.as_secs_f64());
                    }
                }
                sender.poll_into(now, &mut leg_outs);
            }
        }
        self.cycles.stop(c0, CYC_TRANSPORT);
        // FEC media releases are leg-tagged and uplink-only: queue them
        // straight onto their bearers (`outs` stays empty for them).
        for (leg, p) in leg_outs.drain(..) {
            self.send_ul_data_leg(flow, leg, p, now);
        }
        self.scratch_leg_pkts = leg_outs;
        self.register_frame_marks(flow);
        // Rate-adaptation hook: let a driving application (e.g. a video
        // encoder over TCP) track what its transport can sustain.
        if let Some(bps) = rate_estimate {
            if let Some(mut app) = self.flows[flow].app.take() {
                app.on_rate_estimate(bps, now);
                self.flows[flow].app = Some(app);
                self.resched_app(flow, now);
            }
        }
    }

    /// Uplink data arrives at the content server: record uplink OWD and
    /// throughput, hand the packet to the server-side receiver, and
    /// route its feedback back down toward the UE. Frame/unit QoE
    /// completes here — the uplink mirror of `on_app_deliver`.
    fn on_ul_data_at_server(&mut self, flow: usize, pkt: PacketBuf, now: Instant) {
        let ident = pkt.identification();
        let payload = pkt.payload_len();
        let ue = self.flows[flow].ue_idx;
        // Attribute the arrival to its bonded leg (0 for unbonded) and
        // feed the per-leg OWD to the shared-bottleneck detector.
        let leg = match &mut self.flows[flow].bond {
            Some(b) => {
                let leg = b.leg_of.remove(&ident).unwrap_or(0);
                b.leg_pkts[leg as usize] += 1;
                leg
            }
            None => 0,
        };
        if let Some(sent) = self.flows[flow].sent_at.remove(&ident) {
            if payload > 0 {
                let owd = now.saturating_since(sent);
                self.ul_owd_ms[flow].push(owd.as_millis_f64());
                self.ul_owd_at_s[flow].push(now.as_secs_f64());
                self.record_thr_bins(flow, ue, payload, now);
                if let Some(b) = &mut self.flows[flow].bond {
                    b.sbd.observe(leg, owd, now);
                }
            }
        }
        // Bonded TCP legs interleave arbitrarily on the air: restore
        // transmission order through the join buffer before the receiver
        // sees the bytes. FEC media sequences for itself; unbonded flows
        // pass straight through.
        let joins = self.flows[flow]
            .bond
            .as_ref()
            .is_some_and(|b| b.join.is_some());
        if joins {
            let mut joined = std::mem::take(&mut self.scratch_join);
            if let Some(b) = &mut self.flows[flow].bond {
                if let Some(join) = &mut b.join {
                    join.on_packet(ident, pkt, now, &mut joined);
                }
            }
            for p in joined.drain(..) {
                self.deliver_ul_at_server(flow, p, leg, now);
            }
            self.scratch_join = joined;
        } else {
            self.deliver_ul_at_server(flow, pkt, leg, now);
        }
    }

    /// Hand one uplink data packet (post-join for bonded TCP flows) to
    /// the server-side receiver and route its ACK/feedback back down
    /// toward the primary UE.
    fn deliver_ul_at_server(&mut self, flow: usize, pkt: PacketBuf, leg: u8, now: Instant) {
        let ident = pkt.identification();
        let mut tcp_watermark = None;
        // The harness-side detector owns the shared-bottleneck verdict;
        // the FEC media receiver echoes it to the sender in feedback.
        let coupled = self.flows[flow].bond.as_ref().map(|b| b.sbd.coupled());
        match &mut self.flows[flow].endpoint {
            Endpoint::Tcp { receiver, .. } => {
                let ack = receiver.on_packet(&pkt, now);
                tcp_watermark = Some(receiver.received);
                if let Some(ack) = ack {
                    self.route_dl_pkt(flow, ack, now);
                }
            }
            Endpoint::Scream { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Scream(fb));
                    self.route_dl_pkt(flow, fb_pkt, now);
                }
            }
            Endpoint::UdpPrague { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Prague(fb));
                    self.route_dl_pkt(flow, fb_pkt, now);
                }
            }
            Endpoint::FecMedia { receiver, .. } => {
                if let Some(c) = coupled {
                    receiver.set_coupled(c);
                }
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, leg, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Fec(Box::new(fb)));
                    self.route_dl_pkt(flow, fb_pkt, now);
                }
            }
        }
        self.complete_stream_units(flow, tcp_watermark, ident, now);
    }

    /// Feedback for an uplink flow delivers at the UE: drive the UE-side
    /// sender — the uplink mirror of the downlink `on_ul_at_server` —
    /// and queue the released data onto the uplink bearer.
    fn on_ul_feedback_at_ue(&mut self, flow: usize, pkt: PacketBuf, now: Instant) {
        let mut outs = std::mem::take(&mut self.scratch_pkts);
        self.drive_sender_into(flow, &pkt, now, &mut outs);
        self.send_ul_data(flow, &mut outs, now);
        self.scratch_pkts = outs;
        self.reschedule_timer(flow, now);
    }

    fn on_flow_start(&mut self, flow: usize, now: Instant) {
        self.flows[flow].started = true;
        let ue = self.flows[flow].ue_idx;
        let dir = self.flows[flow].dir;
        match &mut self.flows[flow].endpoint {
            Endpoint::Tcp { receiver, .. } => {
                // The receiver opens the connection; for an uplink flow
                // it lives at the server, so its SYN rides the downlink.
                let syn = receiver.start(now);
                match dir {
                    FlowDir::Downlink => self.ues[ue].enqueue_uplink(syn, now),
                    FlowDir::Uplink => self.route_dl_pkt(flow, syn, now),
                }
            }
            Endpoint::Scream { .. } | Endpoint::UdpPrague { .. } | Endpoint::FecMedia { .. } => {
                self.sched(now, Event::FlowTimer { flow });
                self.flows[flow].timer_at = now;
            }
        }
        // Application-driven flows: arm the app's own clock.
        if self.flows[flow].app.is_some() {
            self.resched_app(flow, now);
        }
    }

    // ------------------------------------------------------------------
    // Application layer (app-driven flows)
    // ------------------------------------------------------------------

    /// Fire the flow's application clock: collect its offer, feed the
    /// transport, and re-arm.
    fn on_app_tick(&mut self, flow: usize, now: Instant) {
        self.flows[flow].app_timer_at = Instant::MAX;
        let Some(mut app) = self.flows[flow].app.take() else {
            return;
        };
        let offer = app.on_tick(now);
        self.flows[flow].app = Some(app);
        if offer.bytes > 0 {
            let accepted = match &mut self.flows[flow].endpoint {
                Endpoint::Tcp { sender, .. } => sender.offer(offer.bytes),
                _ => false,
            };
            // A sealed stream (FlowStop / close_app) refuses the offer:
            // these bytes — and their units — can never be sent, so an
            // application that ignores its stop() hook still quiesces.
            if accepted {
                for u in &offer.units {
                    if u.kind == UnitKind::Frame {
                        self.frames_generated[flow] += 1;
                    }
                }
                self.flows[flow].pending_units.extend(offer.units);
                if self.flows[flow].started {
                    let mut outs = std::mem::take(&mut self.scratch_pkts);
                    if let Endpoint::Tcp { sender, .. } = &mut self.flows[flow].endpoint {
                        sender.poll_into(now, &mut outs);
                    }
                    match self.flows[flow].dir {
                        FlowDir::Downlink => self.route_dl(flow, &mut outs, now),
                        FlowDir::Uplink => self.send_ul_data(flow, &mut outs, now),
                    }
                    self.scratch_pkts = outs;
                    self.reschedule_timer(flow, now);
                }
            }
        }
        self.resched_app(flow, now);
    }

    /// The TCP receiver's in-order watermark advanced: complete pending
    /// units and let the application react (think timers, replenishment).
    fn on_stream_progress(&mut self, flow: usize, watermark: u64, now: Instant) {
        while let Some(&u) = self.flows[flow].pending_units.front() {
            if u.end_byte > watermark {
                break;
            }
            self.flows[flow].pending_units.pop_front();
            self.record_unit(flow, u.kind, u.created, u.deadline, now);
        }
        let Some(mut app) = self.flows[flow].app.take() else {
            return;
        };
        app.on_delivered(watermark, now);
        self.flows[flow].app = Some(app);
        self.resched_app(flow, now);
    }

    /// Account one delivered data payload into the per-flow and
    /// per-cell throughput bins (both data directions; the cell is the
    /// UE's serving cell at delivery time).
    fn record_thr_bins(&mut self, flow: usize, ue: usize, payload: usize, now: Instant) {
        let bin = (now.as_nanos() / self.cfg.thr_bin.as_nanos().max(1)) as usize;
        let bins = &mut self.thr_bins[flow];
        if bins.len() <= bin {
            bins.resize(bin + 1, 0);
        }
        bins[bin] += payload as u64;
        let cbins = &mut self.cell_thr_bins[self.serving[ue]];
        if cbins.len() <= bin {
            cbins.resize(bin + 1, 0);
        }
        cbins[bin] += payload as u64;
    }

    /// Record a completed logical unit's QoE sample.
    fn record_unit(
        &mut self,
        flow: usize,
        kind: UnitKind,
        created: Instant,
        deadline: Option<Duration>,
        now: Instant,
    ) {
        let ms = now.saturating_since(created).as_millis_f64();
        match kind {
            UnitKind::Frame => {
                self.frame_owd_ms[flow].push(ms);
                self.frames_delivered[flow] += 1;
                if let Some(d) = deadline {
                    let d_ms = d.as_millis_f64();
                    if ms > d_ms {
                        self.frame_late_n[flow] += 1;
                        self.frame_late_excess_ms[flow] += ms - d_ms;
                    }
                }
            }
            UnitKind::Request => self.request_ms[flow].push(ms),
        }
    }

    /// Re-arm the flow's AppTick at the app's next activity; propagate a
    /// finished app into the transport so the flow can report finished.
    fn resched_app(&mut self, flow: usize, now: Instant) {
        let Some(app) = &self.flows[flow].app else {
            return;
        };
        if app.done() {
            if let Endpoint::Tcp { sender, .. } = &mut self.flows[flow].endpoint {
                sender.close_app();
            }
        }
        let at = self.flows[flow]
            .app
            .as_ref()
            .expect("checked above")
            .next_activity()
            .max(now);
        if at < self.flows[flow].app_timer_at && at < Instant::MAX {
            self.flows[flow].app_timer_at = at;
            self.sched(at, Event::AppTick { flow });
        }
    }

    /// Move freshly drained SCReAM frame marks into the flow's pending
    /// table (ident of the frame's last packet → capture time).
    fn register_frame_marks(&mut self, flow: usize) {
        if self.mark_scratch.is_empty() {
            return;
        }
        let mut scratch = std::mem::take(&mut self.mark_scratch);
        for m in scratch.drain(..) {
            self.flows[flow]
                .frame_pending
                .insert((m.wire_seq & 0xFFFF) as u16, m.created);
        }
        self.mark_scratch = scratch;
    }

    /// Register send times and push packets onto the WAN (and through
    /// the wired bottleneck when configured). Drains `pkts` so callers
    /// can reuse the buffer.
    fn route_dl(&mut self, flow: usize, pkts: &mut Vec<PacketBuf>, now: Instant) {
        for pkt in pkts.drain(..) {
            self.route_dl_pkt(flow, pkt, now);
        }
    }

    /// Route one packet downlink toward the UE. For downlink flows this
    /// is the data path and the send time is registered for OWD; for
    /// uplink flows it carries feedback (ACKs, reports), which is not an
    /// OWD sample.
    fn route_dl_pkt(&mut self, flow: usize, pkt: PacketBuf, now: Instant) {
        if self.flows[flow].dir == FlowDir::Downlink {
            let ident = pkt.identification();
            self.flows[flow].sent_at.insert(ident, now);
        }
        let wan = self.flows[flow].wan_one_way;
        if self.impair.is_some() {
            self.sched(now + wan, Event::DlAtImpair { stage: 0, pkt });
        } else if self.router.is_some() {
            self.sched(now + wan, Event::DlAtRouter { pkt });
        } else {
            let cell = self.serving[self.flows[flow].ue_idx];
            let delay = wan + self.gnbs[cell].config().core_to_cu_delay;
            self.sched(now + delay, Event::DlAtCu { flow, pkt });
        }
    }

    /// Push `pkt` through impairment stages starting at `from`. Stateless
    /// stages apply in place; a queue stage absorbs the packet (it
    /// re-emerges via [`World::impair_poll`] at stage `from + 1`). A
    /// packet that clears the whole pipeline continues to the bottleneck
    /// router, or straight to the CU when none is configured.
    fn impair_advance(&mut self, from: usize, pkt: PacketBuf, now: Instant) {
        let Some(imp) = &mut self.impair else { return };
        let mut pkt = pkt;
        let mut i = from;
        while i < imp.n_stages() {
            match imp.apply(i, pkt, now) {
                StageOutcome::Continue(p) => {
                    pkt = p;
                    i += 1;
                }
                StageOutcome::Dropped => return,
                StageOutcome::Queued => {
                    self.impair_poll(i, now);
                    return;
                }
            }
        }
        self.impair_exit(pkt, now);
    }

    /// Poll the queue at impairment stage `i`; departures continue at
    /// stage `i + 1`.
    fn impair_poll(&mut self, i: usize, now: Instant) {
        let Some(imp) = &mut self.impair else { return };
        let (departed, next) = imp.poll_queue(i, now);
        for pkt in departed {
            self.impair_advance(i + 1, pkt, now);
        }
        if let Some(d) = next {
            self.sched(d, Event::ImpairPoll { stage: i as u8 });
        }
    }

    /// A packet cleared the impairment pipeline: hand it to the rest of
    /// the wired path (bottleneck router, or the CU hop directly). The
    /// flow is recovered from the five-tuple exactly as the router's
    /// drain does.
    fn impair_exit(&mut self, pkt: PacketBuf, now: Instant) {
        if self.router.is_some() {
            if let Some(r) = &mut self.router {
                r.enqueue(pkt, now);
            }
            self.drain_router(now);
            return;
        }
        let Some(tuple) = pkt.five_tuple() else { return };
        let flow = match self.tuple_to_flow.get(&tuple) {
            Some(&f) => Some(f),
            None => match self.tuple_to_flow.get(&tuple.reversed()) {
                Some(&f) if self.flows[f].dir == FlowDir::Uplink => Some(f),
                _ => None,
            },
        };
        if let Some(flow) = flow {
            let cell = self.serving[self.flows[flow].ue_idx];
            let core = self.gnbs[cell].config().core_to_cu_delay;
            self.sched(now + core, Event::DlAtCu { flow, pkt });
        }
    }

    fn drain_router(&mut self, now: Instant) {
        let Some(r) = &mut self.router else { return };
        let departed = r.poll(now);
        let next = r.next_departure();
        for pkt in departed {
            if let Some(tuple) = pkt.five_tuple() {
                // Direct hit = downlink data; reversed hit = an uplink
                // flow's feedback heading down to the UE.
                let flow = match self.tuple_to_flow.get(&tuple) {
                    Some(&f) => Some(f),
                    None => match self.tuple_to_flow.get(&tuple.reversed()) {
                        Some(&f) if self.flows[f].dir == FlowDir::Uplink => Some(f),
                        _ => None,
                    },
                };
                if let Some(flow) = flow {
                    let cell = self.serving[self.flows[flow].ue_idx];
                    let core = self.gnbs[cell].config().core_to_cu_delay;
                    self.sched(now + core, Event::DlAtCu { flow, pkt });
                }
            }
        }
        if let Some(d) = next {
            if d < self.router_poll_at {
                self.router_poll_at = d;
                self.sched(d, Event::RouterPoll);
            }
        }
    }

    fn reschedule_timer(&mut self, flow: usize, now: Instant) {
        let c0 = self.cycles.start();
        let na = match &self.flows[flow].endpoint {
            Endpoint::Tcp { sender, .. } => sender.next_activity(),
            Endpoint::Scream { sender, .. } => Some(sender.next_activity()),
            Endpoint::UdpPrague { sender, .. } => Some(sender.next_activity()),
            Endpoint::FecMedia { sender, .. } => Some(sender.next_activity()),
        };
        self.cycles.stop(c0, CYC_TRANSPORT);
        if let Some(at) = na {
            // Record the *clamped* instant: a past-due `next_activity`
            // fires at `now`, and bookkeeping an earlier time would
            // suppress legitimate reschedules until that phantom instant
            // passed (and conversely let duplicate timers pile up).
            let at_eff = at.max(now);
            if at_eff < self.flows[flow].timer_at && at < Instant::MAX {
                self.flows[flow].timer_at = at_eff;
                self.sched(at_eff, Event::FlowTimer { flow });
            }
        }
    }

    fn on_sample(&mut self, now: Instant) {
        // RLC queue lengths, read from each UE's serving cell (and broken
        // out per cell for the per-cell series). Shard replicas sample
        // only the UEs they own; the owner moves with the UE, so every
        // (ue, tick) is sampled exactly once across the fleet.
        for (i, spec) in self.cfg.ues.iter().enumerate() {
            if !self.owns_ue(i) {
                continue;
            }
            let cell = self.serving[i];
            for &(d, _) in &spec.drbs {
                let len = self.gnbs[cell].rlc_queue_len(UeId(i as u16), DrbId(d));
                self.queue_series.entry((i as u16, d)).or_default().push(len);
                self.cell_queue_series
                    .entry((cell as u8, i as u16, d))
                    .or_default()
                    .push(len);
            }
        }
        // UE-side uplink transmit queues (the queue the UL marker
        // manages), sampled on the same tick.
        if self.has_ul_data {
            for i in 0..self.ues.len() {
                if !self.owns_ue(i) {
                    continue;
                }
                for k in 0..self.ues[i].ul_drbs().len() {
                    let d = self.ues[i].ul_drbs()[k];
                    let len = self.ues[i].ul_queue_len_sdus(d);
                    self.ul_queue_series
                        .entry((i as u16, d.0))
                        .or_default()
                        .push(len);
                }
            }
        }
        // Estimation error vs ground truth (L4Span only). The ground
        // truth window is anchored at the newest dequeue event, exactly
        // as Eq. 3 anchors its window at the latest feedback — anchoring
        // at the (arbitrary) sample tick instead would under-count by a
        // partial TDD frame and read as a systematic positive bias.
        if self.markers[0].as_l4span().is_some() {
            let window = self.markers[0]
                .as_l4span()
                .expect("checked above")
                .config()
                .estimation_window;
            let single = self.markers.len() == 1;
            for ((ue, drb), log) in self.gt_egress.iter_mut() {
                while let Some(&(t, _)) = log.front() {
                    if now.saturating_since(t) > window * 4 {
                        log.pop_front();
                    } else {
                        break;
                    }
                }
                let Some(&(anchor, _)) = log.back() else { continue };
                if now.saturating_since(anchor) > window {
                    continue; // stale: DRB idle, nothing to compare
                }
                let bytes: usize = log
                    .iter()
                    .filter(|&&(t, _)| anchor.saturating_since(t) < window)
                    .map(|&(_, b)| b)
                    .sum();
                let gt = bytes as f64 / window.as_secs_f64();
                if gt > 50_000.0 {
                    // The estimate lives in the instance marking the
                    // UE's serving cell (the only instance, centrally).
                    let m = if single { 0 } else { self.serving[*ue as usize] };
                    if let Some(est) = self.markers[m]
                        .as_l4span()
                        .and_then(|l| l.egress_rate(UeId(*ue), DrbId(*drb)))
                    {
                        self.rate_err.push((now, (*ue, *drb), (est - gt) / gt * 100.0));
                    }
                }
            }
        }
        self.sched(now + Duration::from_millis(10), Event::Sample);
    }

    // ------------------------------------------------------------------
    // Shard plumbing (crate::shard drives these)
    // ------------------------------------------------------------------

    /// Install a shard view on this replica: record the cell → shard
    /// map and prune the freshly-initialised queue down to the events
    /// this shard owns. Replicated housekeeping ticks (`Sample`,
    /// `UePoll`) stay in every replica; mobility `Handover` events
    /// leave all queues — the coordinator executes them at barriers.
    pub(crate) fn shard_install(&mut self, id: usize, of_cell: Vec<usize>) {
        self.shard = Some(ShardView { id, of_cell });
        for (at, mut bx) in self.queue.drain_ordered() {
            let keep = match &*bx {
                Event::Sample | Event::UePoll => true,
                Event::Handover { .. } => false,
                ev => self.event_owner(ev) == id,
            };
            if keep {
                self.queue.schedule(at, bx);
            } else {
                *bx = Event::Nop;
                self.pool.push(bx);
            }
        }
    }

    /// The shard that owns an event under the current view. Cell-borne
    /// events follow their cell; everything flow- or UE-scoped follows
    /// the UE's serving cell.
    pub(crate) fn event_owner(&self, ev: &Event) -> usize {
        let s = self.shard.as_ref().expect("sharded world");
        let of_ue = |ue: usize| s.of_cell[self.serving[ue]];
        match ev {
            Event::Slot { cell }
            | Event::TbAtUe { cell, .. }
            | Event::UlAtGnb { cell, .. }
            | Event::UlTbAtGnb { cell, .. } => s.of_cell[*cell],
            Event::DlAtCu { flow, .. }
            | Event::UlAtServer { flow, .. }
            | Event::FlowStart { flow }
            | Event::FlowStop { flow }
            | Event::FlowTimer { flow }
            | Event::AppTick { flow } => of_ue(self.flows[*flow].ue_idx),
            Event::UlStatusAtUe { ue, .. }
            | Event::ChannelChange { ue, .. }
            | Event::Handover { ue, .. } => of_ue(*ue),
            Event::AppDeliver { pkt, .. } => {
                let flow = pkt.five_tuple().and_then(|t| {
                    self.tuple_to_flow
                        .get(&t)
                        .or_else(|| self.tuple_to_flow.get(&t.reversed()))
                        .copied()
                });
                match flow {
                    Some(f) => of_ue(self.flows[f].ue_idx),
                    None => s.id,
                }
            }
            // Wired-core events only exist in ineligible configurations;
            // housekeeping is replicated. Neither ever migrates.
            Event::Nop
            | Event::DlAtRouter { .. }
            | Event::RouterPoll
            | Event::RouterRate { .. }
            | Event::DlAtImpair { .. }
            | Event::ImpairPoll { .. }
            | Event::Sample
            | Event::UePoll => s.id,
        }
    }

    /// After a barrier handover flipped `serving`, pull every queued
    /// event that now belongs to another shard — the migrated UE's
    /// in-flight packets, pending timers, and future flow events — out
    /// of this replica's queue, preserving (time, seq) order.
    #[allow(clippy::vec_box)]
    pub(crate) fn extract_foreign_events(&mut self, out: &mut Vec<(Instant, Box<Event>)>) {
        let id = self.shard.as_ref().expect("sharded world").id;
        for (at, bx) in self.queue.drain_ordered() {
            let keep = match &*bx {
                Event::Sample | Event::UePoll => true,
                ev => self.event_owner(ev) == id,
            };
            if keep {
                self.queue.schedule(at, bx);
            } else {
                out.push((at, bx));
            }
        }
    }

    /// Inject a cross-shard envelope. The fresh sequence number makes
    /// barrier-injected events win same-instant ties against anything
    /// the resumed epoch schedules afterwards — the classic order,
    /// since in the single world they were scheduled earlier.
    pub(crate) fn inject(&mut self, at: Instant, bx: Box<Event>) {
        self.queue.schedule(at, bx);
    }

    /// Move this epoch's cross-shard envelopes out (buffer reuse).
    #[allow(clippy::vec_box)]
    pub(crate) fn take_outbox(&mut self, out: &mut Vec<(Instant, Box<Event>)>) {
        out.append(&mut self.outbox);
    }

    /// Coordinator entry point for a mobility step whose source and
    /// target cells live in the same replica (including pure channel
    /// changes): the intra-world path, verbatim.
    pub(crate) fn apply_mobility_step(
        &mut self,
        ue: usize,
        target_cell: usize,
        profile: ChannelProfile,
        snr_db: f64,
        now: Instant,
    ) {
        self.on_handover(ue, target_cell, profile, snr_db, now);
    }

    /// Serving cell of `ue` (coordinator routing).
    pub(crate) fn serving_cell(&self, ue: usize) -> usize {
        self.serving[ue]
    }

    /// Events this replica processed (shard statistics).
    pub(crate) fn events_processed(&self) -> u64 {
        self.events
    }

    /// Per-subsystem cycle attribution of this replica.
    pub(crate) fn cycles_snapshot(&self) -> Vec<l4span_sim::CycleStat> {
        self.cycles.report()
    }

    /// Execute a cross-shard Xn handover at an epoch barrier: `src_w`
    /// owns the UE (and its serving cell), `dst_w` the target cell.
    /// Mirrors `on_handover` step for step, with the UE's simulation
    /// state migrating between the replicas. The caller flips `serving`
    /// in *every* replica afterwards, then extracts foreign events from
    /// `src_w`.
    pub(crate) fn handover_across(
        src_w: &mut World,
        dst_w: &mut World,
        ue: usize,
        target_cell: usize,
        profile: ChannelProfile,
        snr_db: f64,
        now: Instant,
    ) {
        let src = src_w.serving[ue];
        debug_assert_ne!(src, target_cell, "cross-shard step must change cells");
        let ue_id = UeId(ue as u16);
        let ch = dst_w.fresh_channel(ue, target_cell, profile, snr_db, now);
        let ctx = src_w.gnbs[src].detach_ue(ue_id);
        let dropped = dst_w.gnbs[target_cell].attach_ue_handover(ue_id, ch, ctx, now);
        // Per-SDU bookkeeping of tail-dropped forwarded SDUs still lives
        // in the source replica (the flow cluster migrates below).
        for (drb, sn) in dropped {
            if let Some((flow, ident)) = src_w.sn_map.remove(&(ue_id, drb, sn)) {
                src_w.flows[flow].sent_at.remove(&ident);
            }
        }
        let tgt_cfg = dst_w.gnbs[target_cell].config();
        let (sp, id, sr) = (
            tgt_cfg.rlc_status_period,
            tgt_cfg.ue_internal_delay,
            tgt_cfg.ul_sr_delay_max,
        );
        src_w.ues[ue].on_handover(sp, id, sr, now);
        // Marker state crosses Xn between per-cell instances (shard
        // eligibility guarantees the per-cell deployment), then the
        // policy runs on the target instance — as in the intra-world
        // path.
        let drbs: Vec<DrbId> = src_w.cfg.ues[ue]
            .drbs
            .iter()
            .map(|&(d, _)| DrbId(d))
            .collect();
        let tuples: Vec<FiveTuple> = src_w
            .flows
            .iter()
            .filter(|f| f.ue_idx == ue)
            .map(|f| f.tuple)
            .collect();
        let carry = src_w.markers[src].extract_ue(ue_id, &drbs, &tuples);
        dst_w.markers[target_cell].absorb_ue(carry);
        let carry = src_w.ul_markers[src].extract_ue(ue_id, &drbs, &tuples);
        dst_w.ul_markers[target_cell].absorb_ue(carry);
        for &d in &drbs {
            dst_w.markers[target_cell].on_handover(ue_id, d, dst_w.cfg.marker_ho_policy);
            dst_w.ul_markers[target_cell].on_handover(ue_id, d, dst_w.cfg.marker_ho_policy);
        }
        // The UE's whole simulation cluster follows it into the owning
        // replica; the stale replica state swaps back symmetrically.
        World::swap_ue_cluster(src_w, dst_w, ue);
        dst_w.ho_log[ue].push(HandoverRecord {
            ue: ue as u16,
            at: now,
            from_cell: src as u8,
            to_cell: target_cell as u8,
            last_delivery_before: dst_w.last_delivery[ue],
            first_delivery_after: None,
        });
        dst_w.pending_ho[ue] = Some(dst_w.ho_log[ue].len() - 1);
    }

    /// Swap a UE's entire live state cluster — stack, per-UE series and
    /// logs, its flows, and their per-flow metrics — between two world
    /// replicas. Symmetric by construction: the live copy always sits
    /// in the current owner, so ping-pong migrations stay consistent.
    pub(crate) fn swap_ue_cluster(a: &mut World, b: &mut World, ue: usize) {
        use std::mem::swap;
        swap(&mut a.ues[ue], &mut b.ues[ue]);
        swap(&mut a.last_delivery[ue], &mut b.last_delivery[ue]);
        swap(&mut a.pending_ho[ue], &mut b.pending_ho[ue]);
        swap(&mut a.ho_log[ue], &mut b.ho_log[ue]);
        let ue16 = ue as u16;
        let ue_id = UeId(ue16);
        swap_btree_keys(&mut a.queue_series, &mut b.queue_series, |k| k.0 == ue16);
        swap_btree_keys(&mut a.ul_queue_series, &mut b.ul_queue_series, |k| {
            k.0 == ue16
        });
        swap_btree_keys(&mut a.gt_egress, &mut b.gt_egress, |k| k.0 == ue16);
        swap_map_keys(&mut a.gt_watermark, &mut b.gt_watermark, |k| k.0 == ue16);
        swap_map_keys(&mut a.sn_map, &mut b.sn_map, |k| k.0 == ue_id);
        for f in 0..a.flows.len() {
            if a.flows[f].ue_idx != ue {
                continue;
            }
            swap(&mut a.flows[f], &mut b.flows[f]);
            swap(&mut a.owd_ms[f], &mut b.owd_ms[f]);
            swap(&mut a.owd_at_s[f], &mut b.owd_at_s[f]);
            swap(&mut a.ul_owd_ms[f], &mut b.ul_owd_ms[f]);
            swap(&mut a.ul_owd_at_s[f], &mut b.ul_owd_at_s[f]);
            swap(&mut a.frame_owd_ms[f], &mut b.frame_owd_ms[f]);
            swap(&mut a.frames_generated[f], &mut b.frames_generated[f]);
            swap(&mut a.frames_delivered[f], &mut b.frames_delivered[f]);
            swap(&mut a.frame_late_n[f], &mut b.frame_late_n[f]);
            swap(&mut a.frame_late_excess_ms[f], &mut b.frame_late_excess_ms[f]);
            swap(&mut a.request_ms[f], &mut b.request_ms[f]);
            swap(&mut a.rtt_ms[f], &mut b.rtt_ms[f]);
            swap(&mut a.rtt_at_s[f], &mut b.rtt_at_s[f]);
            swap(&mut a.thr_bins[f], &mut b.thr_bins[f]);
            swap(&mut a.breakdown[f], &mut b.breakdown[f]);
            swap_map_keys(&mut a.breakdown_pending, &mut b.breakdown_pending, |k| {
                k.0 == f
            });
        }
    }

    /// Fold every replica's owned state into the primary (shard 0)
    /// world, so `into_report` runs unchanged on the merged state.
    /// `coordinator_events` are the barrier-executed mobility steps —
    /// the `Handover` pops the classic loop would have counted.
    pub(crate) fn merge_sharded(mut worlds: Vec<World>, coordinator_events: u64) -> World {
        let mut primary = worlds.remove(0);
        let n_cells = primary.gnbs.len();
        assert!(
            primary.outbox.is_empty(),
            "shard 0: undelivered cross-shard mail at merge"
        );
        for mut w in worlds {
            let (sid, of_cell) = {
                let s = w.shard.as_ref().expect("sharded world");
                (s.id, s.of_cell.clone())
            };
            assert!(
                w.outbox.is_empty(),
                "shard {sid}: undelivered cross-shard mail at merge"
            );
            for (c, &owner) in of_cell.iter().enumerate().take(n_cells) {
                if owner != sid {
                    continue;
                }
                std::mem::swap(&mut primary.gnbs[c], &mut w.gnbs[c]);
                std::mem::swap(&mut primary.markers[c], &mut w.markers[c]);
                std::mem::swap(&mut primary.ul_markers[c], &mut w.ul_markers[c]);
                std::mem::swap(&mut primary.cell_thr_bins[c], &mut w.cell_thr_bins[c]);
                let keys: Vec<(u8, u16, u8)> = w
                    .cell_queue_series
                    .keys()
                    .copied()
                    .filter(|k| k.0 as usize == c)
                    .collect();
                for k in keys {
                    let v = w.cell_queue_series.remove(&k).expect("just listed");
                    primary.cell_queue_series.insert(k, v);
                }
            }
            for ue in 0..primary.serving.len() {
                if of_cell[primary.serving[ue]] == sid {
                    World::swap_ue_cluster(&mut primary, &mut w, ue);
                }
            }
            // One copy of the replicated housekeeping ticks (shard 0's)
            // stays in the total; everything else each replica counted
            // is real, disjoint work.
            primary.events += w.events - w.housekeeping;
            primary.ho_tbs_lost += w.ho_tbs_lost;
            primary.rate_err.append(&mut w.rate_err);
            primary.marker_time.0.append(&mut w.marker_time.0);
            primary.marker_time.1.append(&mut w.marker_time.1);
            primary.marker_time.2.append(&mut w.marker_time.2);
        }
        primary.events += coordinator_events;
        primary
    }

    // Wall-clock instrumentation for Fig. 21 / Table 1.
    fn clock_start(&self) -> Option<std::time::Instant> {
        self.cfg
            .measure_marker_time
            .then(std::time::Instant::now)
    }

    fn clock_stop(&mut self, t0: Option<std::time::Instant>, kind: usize) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            match kind {
                0 => self.marker_time.0.push(ns),
                1 => self.marker_time.1.push(ns),
                _ => self.marker_time.2.push(ns),
            }
        }
    }

    pub(crate) fn into_report(mut self) -> Report {
        let mut total_marks = 0;
        let mut marker_memory = 0;
        for m in &self.markers {
            if let Some(l) = m.as_l4span() {
                let s = l.stats();
                total_marks += s.dl_marks + s.tentative_marks;
                marker_memory += l.memory_bytes();
            }
        }
        // The uplink instances' marks and resident tables join the same
        // accounting (only when the uplink data plane actually ran, so
        // downlink-only reports are unchanged) — and are also reported
        // alone, so tests can tell UE-side marking actually happened.
        let mut ul_marks = 0;
        if self.has_ul_data {
            for m in &self.ul_markers {
                if let Some(l) = m.as_l4span() {
                    let s = l.stats();
                    ul_marks += s.dl_marks + s.tentative_marks;
                    marker_memory += l.memory_bytes();
                }
            }
            total_marks += ul_marks;
        }
        // Flatten the per-UE handover logs into the classic global push
        // order: ascending time, ties (distinct UEs stepping on the same
        // instant) in ascending UE order — exactly how the single event
        // loop popped them.
        let mut handovers: Vec<HandoverRecord> =
            std::mem::take(&mut self.ho_log).into_iter().flatten().collect();
        handovers.sort_by_key(|h| (h.at, h.ue));
        // Same for the estimation-error samples: the classic push order
        // is (tick, (ue, drb)) ascending, so the stable sort is a no-op
        // for single-world runs and a correct merge for sharded ones.
        let mut rate_err = std::mem::take(&mut self.rate_err);
        rate_err.sort_by_key(|&(at, key, _)| (at, key));
        let rate_err_pct: Vec<f64> = rate_err.into_iter().map(|(_, _, v)| v).collect();
        // Application QoE roll-up. The SCReAM media source lives inside
        // its sender, so its generation counter is read back here;
        // app-driven flows counted on the world as frames were offered.
        // A frame that never completed by run end (in flight, lost in
        // UM, or discarded by the encoder) is a deadline miss and stalls
        // playback for one frame interval.
        let n = self.flows.len();
        let mut frames_generated = self.frames_generated.clone();
        let mut frames_missed = vec![0u64; n];
        let mut stall_ms = vec![0.0f64; n];
        for (f, fl) in self.flows.iter().enumerate() {
            if let Endpoint::Scream { sender, .. } = &fl.endpoint {
                frames_generated[f] = sender.frames_generated;
            }
            let undelivered = frames_generated[f].saturating_sub(self.frames_delivered[f]);
            frames_missed[f] = self.frame_late_n[f] + undelivered;
            let interval_ms = fl.framed.map_or(0.0, |(i, _)| i.as_millis_f64());
            stall_ms[f] = self.frame_late_excess_ms[f] + undelivered as f64 * interval_ms;
        }
        // Typed congestion-control transitions → fallback records, in
        // flow order (the per-flow event queues are each drained once,
        // so the order is deterministic).
        let mut fallbacks = Vec::new();
        for (f, fl) in self.flows.iter_mut().enumerate() {
            let evs = match &mut fl.endpoint {
                Endpoint::Tcp { sender, .. } => sender.take_cc_events(),
                Endpoint::UdpPrague { sender, .. } => sender.take_events(),
                _ => Vec::new(),
            };
            for ev in evs {
                let CcEvent::ClassicFallback { at, reason } = ev;
                fallbacks.push(FallbackRecord {
                    flow: f as u16,
                    at_ms: at.as_micros() as f64 / 1000.0,
                    reason: reason.as_str(),
                });
            }
        }
        // FEC/ARQ ledgers: close each media stream at run end so the
        // delivered + repaired + abandoned partition covers everything
        // the sender offered, then snapshot both codecs. Bond summaries
        // ride along in the same pass. Both vectors stay empty for every
        // pre-existing scenario, keeping their fingerprints unchanged.
        let end = Instant::ZERO + self.cfg.duration;
        let mut fec = Vec::new();
        let mut bonds = Vec::new();
        for (f, fl) in self.flows.iter_mut().enumerate() {
            if let Endpoint::FecMedia { sender, receiver } = &mut fl.endpoint {
                let offered = sender.codec().offered;
                receiver.close(offered, end);
                let rc = receiver.codec();
                fec.push(FecStat {
                    flow: f as u16,
                    offered,
                    delivered: rc.delivered,
                    repaired: rc.repaired,
                    abandoned: rc.abandoned,
                    duplicates: rc.duplicates,
                    retx: sender.codec().retx,
                    repairs: sender.codec().repairs,
                    repairs_unused: rc.repairs_unused,
                });
            }
            if let Some(b) = &fl.bond {
                bonds.push(BondStat {
                    flow: f as u16,
                    leg_pkts: b.leg_pkts,
                    coupled: b.sbd.coupled(),
                    coupled_flips: b.sbd.flips,
                    join_flushed: b.join.as_ref().map_or(0, |j| j.flushed),
                });
            }
        }
        // Table-1 accounting sums over every cell in the topology.
        let mut g = l4span_ran::gnb::GnbStats::default();
        for gnb in &self.gnbs {
            let s = gnb.stats();
            g.tbs_sent += s.tbs_sent;
            g.harq_retx += s.harq_retx;
            g.tbs_lost += s.tbs_lost;
            g.sdus_enqueued += s.sdus_enqueued;
            g.sdus_dropped += s.sdus_dropped;
        }
        Report {
            duration: self.cfg.duration,
            bin: self.cfg.thr_bin,
            owd_ms: self.owd_ms,
            owd_at_s: self.owd_at_s,
            ul_owd_ms: self.ul_owd_ms,
            ul_owd_at_s: self.ul_owd_at_s,
            ul_queue_series: self.ul_queue_series,
            rtt_ms: self.rtt_ms,
            rtt_at_s: self.rtt_at_s,
            thr_bins: self.thr_bins,
            cell_thr_bins: self.cell_thr_bins,
            queue_series: self.queue_series,
            cell_queue_series: self.cell_queue_series,
            handovers,
            breakdown: self.breakdown,
            rate_err_pct,
            frame_owd_ms: self.frame_owd_ms,
            frames_generated,
            frames_delivered: self.frames_delivered,
            frames_missed,
            stall_ms,
            request_ms: self.request_ms,
            finish_ms: self
                .flows
                .iter()
                .map(|f| {
                    f.finished_at
                        .map(|t| t.saturating_since(f.start).as_millis_f64())
                })
                .collect(),
            flow_start: self.flows.iter().map(|f| f.start).collect(),
            flow_ue: self.flows.iter().map(|f| f.ue_idx as u16).collect(),
            total_marks,
            ul_marks,
            rlc_drops: g.sdus_dropped,
            tbs_lost: g.tbs_lost + self.ho_tbs_lost,
            harq_retx: g.harq_retx,
            marker_memory,
            marker_time_ns: self.marker_time,
            cycles: self.cycles.report(),
            events: self.events,
            shards: Vec::new(),
            shard_reject: None,
            impairment: self.impair.as_ref().map(|i| i.counters),
            fallbacks,
            fec,
            bonds,
        }
    }
}

/// Swap the entries whose key matches `pred` between two BTree maps
/// (either side may be missing a key; present entries cross over).
fn swap_btree_keys<K: Ord + Copy, V>(
    a: &mut BTreeMap<K, V>,
    b: &mut BTreeMap<K, V>,
    pred: impl Fn(&K) -> bool,
) {
    let ka: Vec<K> = a.keys().copied().filter(|k| pred(k)).collect();
    let kb: Vec<K> = b.keys().copied().filter(|k| pred(k)).collect();
    let va: Vec<(K, V)> = ka
        .into_iter()
        .map(|k| (k, a.remove(&k).expect("just listed")))
        .collect();
    let vb: Vec<(K, V)> = kb
        .into_iter()
        .map(|k| (k, b.remove(&k).expect("just listed")))
        .collect();
    for (k, v) in va {
        b.insert(k, v);
    }
    for (k, v) in vb {
        a.insert(k, v);
    }
}

/// [`swap_btree_keys`], for hash maps.
fn swap_map_keys<K: Eq + std::hash::Hash + Copy, V>(
    a: &mut FxHashMap<K, V>,
    b: &mut FxHashMap<K, V>,
    pred: impl Fn(&K) -> bool,
) {
    let ka: Vec<K> = a.keys().copied().filter(|k| pred(k)).collect();
    let kb: Vec<K> = b.keys().copied().filter(|k| pred(k)).collect();
    let va: Vec<(K, V)> = ka
        .into_iter()
        .map(|k| (k, a.remove(&k).expect("just listed")))
        .collect();
    let vb: Vec<(K, V)> = kb
        .into_iter()
        .map(|k| (k, b.remove(&k).expect("just listed")))
        .collect();
    for (k, v) in va {
        b.insert(k, v);
    }
    for (k, v) in vb {
        a.insert(k, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{
        congested_cell, handover_cell, l4span_default, ChannelMix, MobilityStep,
    };
    use l4span_cc::WanLink;
    use l4span_core::HandoverPolicy;

    fn quick(marker: crate::marker::MarkerKind, cc: &str) -> Report {
        let cfg = congested_cell(
            2,
            cc,
            ChannelMix::Static,
            16_384,
            WanLink::east(),
            marker,
            7,
            Duration::from_secs(3),
        );
        World::new(cfg).run()
    }

    #[test]
    fn cubic_without_marker_bloats_the_queue() {
        let r = quick(crate::marker::MarkerKind::None, "cubic");
        // Both flows moved real data…
        for f in 0..2 {
            assert!(
                r.goodput_total_mbps(f) > 2.0,
                "flow {f}: {} Mbit/s",
                r.goodput_total_mbps(f)
            );
        }
        // …and the unmanaged RLC queue inflated the one-way delay far
        // beyond the propagation delay.
        let owd = r.owd_stats_pooled(&[0, 1]);
        assert!(
            owd.median > 100.0,
            "bufferbloat expected without L4Span: median {} ms",
            owd.median
        );
    }

    #[test]
    fn l4span_cuts_cubic_delay_keeps_throughput() {
        let bloat = quick(crate::marker::MarkerKind::None, "cubic");
        let l4s = quick(l4span_default(), "cubic");
        let owd_off = bloat.owd_stats_pooled(&[0, 1]).median;
        let owd_on = l4s.owd_stats_pooled(&[0, 1]).median;
        assert!(
            owd_on < owd_off / 3.0,
            "L4Span must slash OWD: {owd_on} vs {owd_off} ms"
        );
        let thr_off: f64 = (0..2).map(|f| bloat.goodput_total_mbps(f)).sum();
        let thr_on: f64 = (0..2).map(|f| l4s.goodput_total_mbps(f)).sum();
        assert!(
            thr_on > 0.7 * thr_off,
            "throughput preserved: {thr_on} vs {thr_off}"
        );
        assert!(l4s.total_marks > 0, "marks must actually flow");
    }

    #[test]
    fn two_cell_handover_keeps_flows_alive_and_records_interruption() {
        let cfg = handover_cell(
            2,
            "cubic",
            Duration::from_secs(1),
            HandoverPolicy::MigrateState,
            l4span_default(),
            11,
            Duration::from_secs(4),
        );
        let r = World::new(cfg).run();
        // Every UE handed over at least once…
        for ue in 0..2u16 {
            assert!(
                r.handovers.iter().filter(|h| h.ue == ue).count() >= 1,
                "ue{ue} must hand over"
            );
        }
        // …the switches actually moved cells and resolved their gaps…
        assert!(r.handovers.iter().all(|h| h.from_cell != h.to_cell));
        let gap = r.mean_interruption_ms().expect("service resumed post-HO");
        assert!((0.0..1000.0).contains(&gap), "interruption {gap} ms");
        // …both cells served traffic…
        assert!(r.cell_goodput_mbps(0) > 0.5, "{}", r.cell_goodput_mbps(0));
        assert!(r.cell_goodput_mbps(1) > 0.5, "{}", r.cell_goodput_mbps(1));
        // …and the flows kept moving end to end across the switches.
        for f in 0..2 {
            assert!(
                r.goodput_total_mbps(f) > 1.0,
                "flow {f}: {}",
                r.goodput_total_mbps(f)
            );
        }
        // Per-cell accounting tallies with the per-flow accounting.
        let per_cell: u64 = r.cell_thr_bins.iter().flatten().sum();
        let per_flow: u64 = r.thr_bins.iter().flatten().sum();
        assert_eq!(per_cell, per_flow);
    }

    #[test]
    fn handover_to_the_serving_cell_is_a_channel_change() {
        // A mobility step naming the serving cell must not produce a
        // handover record (it degrades to replace_channel).
        let mut cfg = congested_cell(
            1,
            "cubic",
            ChannelMix::Static,
            16_384,
            WanLink::east(),
            l4span_default(),
            5,
            Duration::from_secs(2),
        );
        cfg.ues[0].mobility = vec![MobilityStep::new(
            Instant::from_secs(1),
            0,
            l4span_ran::ChannelProfile::Vehicular,
            8.0,
        )];
        let r = World::new(cfg).run();
        assert!(r.handovers.is_empty());
        assert!(r.goodput_total_mbps(0) > 1.0);
    }

    #[test]
    fn channel_events_shim_matches_equivalent_mobility_step() {
        // The deprecated single-cell `channel_events` field and a
        // MobilitySpec step naming the serving cell must produce
        // byte-identical runs.
        let base = |seed| {
            congested_cell(
                2,
                "prague",
                ChannelMix::Static,
                16_384,
                WanLink::east(),
                l4span_default(),
                seed,
                Duration::from_secs(2),
            )
        };
        let mut via_shim = base(9);
        via_shim
            .channel_events
            .push((Instant::from_secs(1), 0, ChannelProfile::Vehicular, 9.0));
        let mut via_dsl = base(9);
        via_dsl.ues[0].mobility = vec![MobilityStep::new(
            Instant::from_secs(1),
            0,
            ChannelProfile::Vehicular,
            9.0,
        )];
        let a = World::new(via_shim).run();
        let b = World::new(via_dsl).run();
        assert_eq!(a.fingerprint(), b.fingerprint(), "shim ≡ DSL");
    }

    #[test]
    fn heterogeneous_cells_run_and_adopt_target_timing() {
        // Cell 1 is narrower and slower-reporting than cell 0; a UE
        // migrating onto it must keep working under the target's
        // configuration (and back).
        let mut cfg = congested_cell(
            1,
            "cubic",
            ChannelMix::Static,
            16_384,
            WanLink::east(),
            l4span_default(),
            21,
            Duration::from_secs(3),
        );
        let small = l4span_ran::CellConfig {
            n_prbs: 24,
            rlc_status_period: Duration::from_millis(20),
            ..l4span_ran::CellConfig::default()
        };
        cfg.add_cell(small);
        cfg.ues[0].mobility = vec![
            MobilityStep::new(Instant::from_secs(1), 1, ChannelProfile::Static, 20.0),
            MobilityStep::new(Instant::from_secs(2), 0, ChannelProfile::Static, 24.0),
        ];
        let r = World::new(cfg).run();
        assert_eq!(r.handovers.len(), 2);
        assert!(r.goodput_total_mbps(0) > 1.0, "{}", r.goodput_total_mbps(0));
        // The narrow cell served the middle second.
        assert!(r.cell_goodput_mbps(1) > 0.1, "{}", r.cell_goodput_mbps(1));
    }

    #[test]
    fn marker_policies_diverge_after_handover() {
        let mk = |policy| {
            let cfg = handover_cell(
                2,
                "prague",
                Duration::from_secs(1),
                policy,
                l4span_default(),
                13,
                Duration::from_secs(4),
            );
            World::new(cfg).run()
        };
        let migrate = mk(HandoverPolicy::MigrateState);
        let cold = mk(HandoverPolicy::ColdStart);
        // The policies must actually change the simulation, visibly in
        // the post-handover delay distribution.
        assert_ne!(migrate.fingerprint(), cold.fingerprint());
        let w = Duration::from_millis(500);
        let m = migrate.post_handover_owd(&[0, 1], w).median;
        let c = cold.post_handover_owd(&[0, 1], w).median;
        assert!(
            (m - c).abs() > 1e-6,
            "policies must separate post-HO OWD: migrate {m} vs cold {c}"
        );
    }

    #[test]
    fn bidirectional_call_moves_data_both_ways() {
        let cfg = crate::scenario::video_call_bidir(
            2,
            "prague",
            l4span_default(),
            7,
            Duration::from_secs(3),
        );
        let r = World::new(cfg).run();
        // Flows alternate DL, UL per call.
        for call in 0..2 {
            let (dl, ul) = (2 * call, 2 * call + 1);
            assert!(
                r.frames_delivered[dl] > 30,
                "call {call}: DL leg delivered {} frames",
                r.frames_delivered[dl]
            );
            assert!(
                r.frames_delivered[ul] > 30,
                "call {call}: UL leg delivered {} frames",
                r.frames_delivered[ul]
            );
            assert!(
                !r.ul_owd_ms[ul].is_empty(),
                "call {call}: UL leg must record uplink OWD samples"
            );
            assert!(
                r.ul_owd_ms[dl].is_empty(),
                "call {call}: DL leg must not record uplink OWD"
            );
            assert!(r.goodput_total_mbps(ul) > 0.3, "{}", r.goodput_total_mbps(ul));
        }
        // The UE-side queues were sampled.
        assert!(!r.ul_queue_series.is_empty());
    }

    #[test]
    fn uplink_marker_cuts_uplink_queuing_delay() {
        let mk = |marker| {
            let cfg = crate::scenario::video_call_bidir(
                3,
                "prague",
                marker,
                11,
                Duration::from_secs(4),
            );
            World::new(cfg).run()
        };
        let off = mk(crate::marker::MarkerKind::None);
        let on = mk(l4span_default());
        let ul: Vec<usize> = (0..6).filter(|f| f % 2 == 1).collect();
        let owd_off = off.ul_owd_stats_pooled(&ul).median;
        let owd_on = on.ul_owd_stats_pooled(&ul).median;
        assert!(
            owd_on < owd_off,
            "uplink L4Span must cut UL OWD: {owd_on} vs {owd_off} ms"
        );
    }

    #[test]
    fn prague_with_l4span_is_low_latency() {
        let r = quick(l4span_default(), "prague");
        let owd = r.owd_stats_pooled(&[0, 1]);
        // 19 ms propagation + core + a small RAN component: well under
        // the bufferbloat regime.
        assert!(
            owd.median < 120.0,
            "prague+L4Span median OWD {} ms",
            owd.median
        );
        let thr: f64 = (0..2).map(|f| r.goodput_total_mbps(f)).sum();
        assert!(thr > 5.0, "cell should still be well used: {thr}");
    }
}

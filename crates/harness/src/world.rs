//! The discrete-event world: content servers ↔ WAN ↔ (optional wired
//! bottleneck) ↔ CU marker ↔ gNB ↔ air ↔ UE stacks ↔ uplink, exactly the
//! end-to-end path of paper Fig. 3.

use std::collections::{BTreeMap, VecDeque};

use l4span_aqm::{DualPi2, Router, RouterAqm};
use l4span_cc::scream::{ScreamFeedback, ScreamReceiver, ScreamSender};
use l4span_cc::udp_prague::{PragueFeedback, UdpPragueReceiver, UdpPragueSender};
use l4span_cc::{make_cc, TcpReceiver, TcpSender};
use l4span_cc::tcp::TcpConfig;
use l4span_core::DlVerdict;
use l4span_net::{FiveTuple, PacketBuf, Protocol};
use l4span_ran::channel::{ChannelProfile, FadingChannel};
use l4span_ran::config::{RlcMode, SlotRole};
use l4span_ran::ids::Qfi;
use l4span_ran::mac::TransportBlock;
use l4span_ran::rlc::RlcStatus;
use l4span_ran::{DrbId, Gnb, SlotOutput, UeId, UeStack};
use l4span_sim::{Duration, EventQueue, FxHashMap, Instant, SimRng};

use crate::marker::Marker;
use crate::metrics::{Breakdown, BreakdownAvg, Report};
use crate::scenario::{BottleneckSpec, ScenarioConfig, TrafficKind};

/// UE IP block.
fn ue_ip(i: usize) -> u32 {
    0xC0A8_0000 + i as u32
}
/// Server IP block (one server per flow).
fn server_ip(f: usize) -> u32 {
    0x0A00_0000 + f as u32
}

/// Feedback payloads of UDP-based protocols, carried alongside the
/// uplink feedback packet (the payload is opaque on the wire).
enum FbData {
    Scream(ScreamFeedback),
    Prague(PragueFeedback),
}

enum Endpoint {
    Tcp {
        sender: TcpSender,
        receiver: TcpReceiver,
    },
    Scream {
        sender: ScreamSender,
        receiver: ScreamReceiver,
    },
    UdpPrague {
        sender: UdpPragueSender,
        receiver: UdpPragueReceiver,
    },
}

struct Flow {
    ue_idx: usize,
    ue_id: UeId,
    drb: DrbId,
    qfi: Qfi,
    wan_one_way: Duration,
    start: Instant,
    stop: Option<Instant>,
    endpoint: Endpoint,
    started: bool,
    finished_at: Option<Instant>,
    /// ident → send time of downlink packets (for OWD).
    sent_at: FxHashMap<u16, Instant>,
    /// ident of uplink feedback packet → its payload.
    fb_pending: FxHashMap<u16, FbData>,
    /// Earliest scheduled FlowTimer (dedupe).
    timer_at: Instant,
}

/// One scheduled occurrence. The queue stores events *boxed* so heap
/// entries stay pointer-sized: several variants inline a ~100-byte
/// `PacketBuf` (or whole segment vectors), and sifting those through a
/// `BinaryHeap` would memmove packet bytes on every reorder. The boxes
/// themselves are pooled by the world (`World::pool`), so scheduling is
/// allocation-free in steady state.
enum Event {
    /// Placeholder left in a recycled box; never scheduled.
    Nop,
    Slot,
    DlAtRouter { pkt: PacketBuf },
    RouterPoll,
    RouterRate { bps: f64 },
    DlAtCu { flow: usize, pkt: PacketBuf },
    TbAtUe { ue: usize, tb: TransportBlock },
    AppDeliver { pkt: PacketBuf, t_cu_ingress: Instant },
    UlAtGnb { ue: usize, pkts: Vec<PacketBuf>, statuses: Vec<(DrbId, RlcStatus)> },
    UlAtServer { flow: usize, pkt: PacketBuf },
    FlowStart { flow: usize },
    FlowStop { flow: usize },
    FlowTimer { flow: usize },
    ChannelChange { ue: usize, profile: ChannelProfile, snr_db: f64 },
    Sample,
    UePoll,
}

/// The assembled world. Build with [`World::new`], run with [`World::run`].
pub struct World {
    cfg: ScenarioConfig,
    queue: EventQueue<Box<Event>>,
    /// Recycled event boxes: popped events return their allocation here
    /// and `sched` reuses it, so the steady-state schedule/pop cycle
    /// never touches the allocator. The boxing is the point (pooled
    /// allocations handed back to the queue), so the lint is wrong here.
    #[allow(clippy::vec_box)]
    pool: Vec<Box<Event>>,
    gnb: Gnb,
    ues: Vec<UeStack>,
    marker: Marker,
    flows: Vec<Flow>,
    tuple_to_flow: FxHashMap<FiveTuple, usize>,
    router: Option<Router>,
    router_poll_at: Instant,
    /// UEs with at least one UM DRB (the only ones whose RLC receivers
    /// need the reassembly-timeout poll).
    um_ues: Vec<usize>,
    /// Flows with UDP endpoints (the only ones whose receivers need the
    /// prohibit-interval feedback flush).
    udp_flows: Vec<usize>,
    /// Reused per-slot gNB output buffers.
    slot_out: SlotOutput,
    // --- metrics accumulators ---
    owd_ms: Vec<Vec<f64>>,
    rtt_ms: Vec<Vec<f64>>,
    rtt_at_s: Vec<Vec<f64>>,
    thr_bins: Vec<Vec<u64>>,
    queue_series: BTreeMap<(u16, u8), Vec<usize>>,
    breakdown: Vec<BreakdownAvg>,
    rate_err_pct: Vec<f64>,
    /// (ue, drb, sn) → (flow, ident): joins TxRecords to packets.
    sn_map: FxHashMap<(UeId, DrbId, u64), (usize, u16)>,
    /// (flow, ident) → (queuing ms, scheduling ms) awaiting delivery.
    breakdown_pending: FxHashMap<(usize, u16), (f64, f64)>,
    /// Ground-truth egress byte log per DRB (Fig. 20 reference).
    gt_egress: BTreeMap<(u16, u8), VecDeque<(Instant, usize)>>,
    marker_time: (Vec<u64>, Vec<u64>, Vec<u64>),
    /// Events processed by `run` (perf-gate denominator).
    events: u64,
}

impl World {
    /// Wire up a scenario.
    pub fn new(cfg: ScenarioConfig) -> World {
        let root = SimRng::new(cfg.seed);
        let gnb_rng = root.derive(1);
        let marker_rng = root.derive(2);
        let mut gnb = Gnb::new(cfg.cell.clone(), cfg.scheduler, gnb_rng);
        let mut ues = Vec::new();
        for (i, spec) in cfg.ues.iter().enumerate() {
            let mut ch_rng = root.derive(1000 + i as u64);
            let channel = FadingChannel::new(
                spec.profile,
                spec.mean_snr_db,
                cfg.cell.carrier_hz,
                &mut ch_rng,
            );
            let drbs: Vec<(DrbId, _)> =
                spec.drbs.iter().map(|&(d, m)| (DrbId(d), m)).collect();
            gnb.add_ue(UeId(i as u16), channel, &drbs);
            for &(d, _) in &spec.drbs {
                gnb.map_qfi(UeId(i as u16), Qfi(d), DrbId(d));
            }
            ues.push(UeStack::new(
                UeId(i as u16),
                &drbs,
                cfg.cell.rlc_status_period,
                cfg.cell.ue_internal_delay,
                cfg.cell.ul_sr_delay_max,
                root.derive(2000 + i as u64),
            ));
        }
        let marker = Marker::new(&cfg.marker, marker_rng);
        let mut flows = Vec::new();
        let mut tuple_to_flow = FxHashMap::default();
        for (f, spec) in cfg.flows.iter().enumerate() {
            let sip = server_ip(f);
            let uip = ue_ip(spec.ue);
            let (endpoint, tuple) = match &spec.traffic {
                TrafficKind::Tcp { cc, app_limit } => {
                    let controller = make_cc(cc, 1400);
                    let mode = controller.ecn_mode();
                    let mut tcfg = TcpConfig::new(sip, uip, 443, 50_000 + f as u16);
                    tcfg.app_limit = *app_limit;
                    let tuple = tcfg.downlink_tuple();
                    (
                        Endpoint::Tcp {
                            sender: TcpSender::new(tcfg, controller),
                            receiver: TcpReceiver::new(tcfg, mode),
                        },
                        tuple,
                    )
                }
                TrafficKind::Scream {
                    min_bps,
                    start_bps,
                    max_bps,
                    fps,
                } => {
                    let sport = 5004u16;
                    let dport = 42_000 + f as u16;
                    let tuple = FiveTuple {
                        src_ip: sip,
                        dst_ip: uip,
                        src_port: sport,
                        dst_port: dport,
                        protocol: Protocol::Udp,
                    };
                    (
                        Endpoint::Scream {
                            sender: ScreamSender::new(
                                sip, uip, sport, dport, *min_bps, *start_bps, *max_bps,
                                *fps, true,
                            ),
                            receiver: ScreamReceiver::new(uip, sip, dport, sport),
                        },
                        tuple,
                    )
                }
                TrafficKind::UdpPrague {
                    min_rate,
                    start_rate,
                    max_rate,
                } => {
                    let sport = 5006u16;
                    let dport = 43_000 + f as u16;
                    let tuple = FiveTuple {
                        src_ip: sip,
                        dst_ip: uip,
                        src_port: sport,
                        dst_port: dport,
                        protocol: Protocol::Udp,
                    };
                    (
                        Endpoint::UdpPrague {
                            sender: UdpPragueSender::new(
                                sip, uip, sport, dport, *min_rate, *start_rate, *max_rate,
                            ),
                            receiver: UdpPragueReceiver::new(uip, sip, dport, sport),
                        },
                        tuple,
                    )
                }
            };
            tuple_to_flow.insert(tuple, f);
            flows.push(Flow {
                ue_idx: spec.ue,
                ue_id: UeId(spec.ue as u16),
                drb: DrbId(spec.drb),
                qfi: Qfi(spec.drb),
                wan_one_way: spec.wan.one_way,
                start: spec.start,
                stop: spec.stop,
                endpoint,
                started: false,
                finished_at: None,
                sent_at: FxHashMap::default(),
                fb_pending: FxHashMap::default(),
                timer_at: Instant::MAX,
            });
        }
        let router = cfg.bottleneck.as_ref().map(|b: &BottleneckSpec| {
            let aqm = if b.l4s_aqm {
                RouterAqm::DualPi2(DualPi2::default())
            } else {
                RouterAqm::Droptail
            };
            Router::new(b.rate_bps, 4 << 20, aqm, root.derive(3))
        });

        let n = flows.len();
        // UEs that actually need the periodic poll (UM reassembly skips)
        // and flows that need the UDP feedback flush; in an all-AM,
        // all-TCP cell the UePoll tick disappears entirely.
        let um_ues: Vec<usize> = cfg
            .ues
            .iter()
            .enumerate()
            .filter(|(_, s)| s.drbs.iter().any(|&(_, m)| m == RlcMode::Um))
            .map(|(i, _)| i)
            .collect();
        let udp_flows: Vec<usize> = flows
            .iter()
            .enumerate()
            .filter(|(_, f)| !matches!(f.endpoint, Endpoint::Tcp { .. }))
            .map(|(i, _)| i)
            .collect();
        let need_ue_poll = !um_ues.is_empty() || !udp_flows.is_empty();
        let mut w = World {
            cfg,
            queue: EventQueue::with_capacity(1024 + 128 * n),
            pool: Vec::with_capacity(1024 + 128 * n),
            gnb,
            ues,
            marker,
            flows,
            tuple_to_flow,
            router,
            router_poll_at: Instant::MAX,
            um_ues,
            udp_flows,
            slot_out: SlotOutput::default(),
            owd_ms: vec![Vec::new(); n],
            rtt_ms: vec![Vec::new(); n],
            rtt_at_s: vec![Vec::new(); n],
            thr_bins: vec![Vec::new(); n],
            queue_series: BTreeMap::new(),
            breakdown: vec![BreakdownAvg::default(); n],
            rate_err_pct: Vec::new(),
            sn_map: FxHashMap::default(),
            breakdown_pending: FxHashMap::default(),
            gt_egress: BTreeMap::new(),
            marker_time: (Vec::new(), Vec::new(), Vec::new()),
            events: 0,
        };
        w.sched(Instant::ZERO, Event::Slot);
        w.sched(Instant::from_millis(10), Event::Sample);
        if need_ue_poll {
            w.sched(Instant::from_millis(5), Event::UePoll);
        }
        for f in 0..n {
            let start = w.flows[f].start;
            w.sched(start, Event::FlowStart { flow: f });
            if let Some(stop) = w.flows[f].stop {
                w.sched(stop, Event::FlowStop { flow: f });
            }
        }
        if let Some(b) = w.cfg.bottleneck.clone() {
            for (t, bps) in b.schedule {
                w.sched(t, Event::RouterRate { bps });
            }
        }
        for (t, ue, profile, snr_db) in w.cfg.channel_events.clone() {
            w.sched(
                t,
                Event::ChannelChange {
                    ue,
                    profile,
                    snr_db,
                },
            );
        }
        w
    }

    /// Schedule an event, reusing a pooled box when one is available.
    #[inline]
    fn sched(&mut self, at: Instant, ev: Event) {
        match self.pool.pop() {
            Some(mut b) => {
                *b = ev;
                self.queue.schedule(at, b);
            }
            None => self.queue.schedule(at, Box::new(ev)),
        }
    }

    /// Execute to the configured duration and produce the report.
    pub fn run(mut self) -> Report {
        let end = Instant::ZERO + self.cfg.duration;
        while let Some(at) = self.queue.next_at() {
            if at > end {
                break;
            }
            let (now, mut bx) = self.queue.pop().expect("peeked");
            // Recycle the box: move the event out, keep the allocation.
            let ev = std::mem::replace(&mut *bx, Event::Nop);
            self.pool.push(bx);
            self.events += 1;
            self.handle(ev, now);
        }
        self.into_report()
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event, now: Instant) {
        match ev {
            Event::Nop => {}
            Event::Slot => self.on_slot(now),
            Event::DlAtRouter { pkt } => {
                if let Some(r) = &mut self.router {
                    r.enqueue(pkt, now);
                }
                self.drain_router(now);
            }
            Event::RouterPoll => {
                self.router_poll_at = Instant::MAX;
                self.drain_router(now);
            }
            Event::RouterRate { bps } => {
                if let Some(r) = &mut self.router {
                    r.set_rate(bps);
                }
            }
            Event::DlAtCu { flow, pkt } => self.on_dl_at_cu(flow, pkt, now),
            Event::TbAtUe { ue, tb } => {
                let deliveries = self.ues[ue].on_transport_block(tb, now);
                for d in deliveries {
                    self.sched(
                        d.deliver_at,
                        Event::AppDeliver {
                            pkt: d.pkt,
                            t_cu_ingress: d.t_cu_ingress,
                        },
                    );
                }
            }
            Event::AppDeliver { pkt, t_cu_ingress } => {
                self.on_app_deliver(pkt, t_cu_ingress, now)
            }
            Event::UlAtGnb { ue, pkts, statuses } => self.on_ul_at_gnb(ue, pkts, statuses, now),
            Event::UlAtServer { flow, pkt } => self.on_ul_at_server(flow, pkt, now),
            Event::FlowStart { flow } => self.on_flow_start(flow, now),
            Event::FlowStop { flow } => {
                match &mut self.flows[flow].endpoint {
                    Endpoint::Tcp { sender, .. } => sender.stop(),
                    Endpoint::Scream { sender, .. } => sender.stop(),
                    Endpoint::UdpPrague { sender, .. } => sender.stop(),
                }
            }
            Event::FlowTimer { flow } => {
                self.flows[flow].timer_at = Instant::MAX;
                if !self.flows[flow].started {
                    return;
                }
                let outs = match &mut self.flows[flow].endpoint {
                    Endpoint::Tcp { sender, .. } => sender.poll(now),
                    Endpoint::Scream { sender, .. } => sender.poll(now),
                    Endpoint::UdpPrague { sender, .. } => sender.poll(now),
                };
                self.route_dl(flow, outs, now);
                self.reschedule_timer(flow, now);
            }
            Event::ChannelChange { ue, profile, snr_db } => {
                // Handover / abrupt channel change: the RLC queues and
                // all in-flight state survive; only the radio changes.
                let mut rng = SimRng::new(self.cfg.seed ^ (ue as u64) << 32 ^ now.as_nanos());
                let ch = FadingChannel::new(
                    profile,
                    snr_db,
                    self.cfg.cell.carrier_hz,
                    &mut rng,
                );
                self.gnb.replace_channel(UeId(ue as u16), ch);
            }
            Event::Sample => self.on_sample(now),
            Event::UePoll => {
                // Only UEs with UM DRBs have reassembly timers to run.
                for k in 0..self.um_ues.len() {
                    let i = self.um_ues[k];
                    let deliveries = self.ues[i].poll(now);
                    for d in deliveries {
                        self.sched(
                            d.deliver_at,
                            Event::AppDeliver {
                                pkt: d.pkt,
                                t_cu_ingress: d.t_cu_ingress,
                            },
                        );
                    }
                }
                // Flush feedback reports suppressed by the prohibit
                // interval (UDP receivers have no ack clock of their own;
                // without this a window-limited sender can deadlock).
                // Only UDP endpoints ever have anything to flush.
                for k in 0..self.udp_flows.len() {
                    let flow = self.udp_flows[k];
                    let f = &mut self.flows[flow];
                    let ue = f.ue_idx;
                    let pending = match &mut f.endpoint {
                        Endpoint::Scream { receiver, .. } => receiver
                            .poll(now)
                            .map(|(p, fb)| (p, FbData::Scream(fb))),
                        Endpoint::UdpPrague { receiver, .. } => receiver
                            .poll(now)
                            .map(|(p, fb)| (p, FbData::Prague(fb))),
                        Endpoint::Tcp { .. } => None,
                    };
                    if let Some((fb_pkt, fb)) = pending {
                        let fid = fb_pkt.identification();
                        f.fb_pending.insert(fid, fb);
                        self.ues[ue].enqueue_uplink(fb_pkt, now);
                    }
                }
                self.sched(now + Duration::from_millis(5), Event::UePoll);
            }
        }
    }

    fn on_slot(&mut self, now: Instant) {
        // Reuse the slot-output buffers across slots (taken out of self
        // so the marker/metrics borrows below stay disjoint).
        let mut out = std::mem::take(&mut self.slot_out);
        self.gnb.on_slot_into(now, &mut out);
        for msg in &out.f1u {
            let t0 = self.clock_start();
            self.marker.on_feedback(msg, now);
            self.clock_stop(t0, 2);
        }
        for (ue, drb, rec) in &out.txed_records {
            self.gt_egress
                .entry((ue.0, drb.0))
                .or_default()
                .push_back((rec.t_txed, rec.size));
            if let Some((flow, ident)) = self.sn_map.remove(&(*ue, *drb, rec.sn)) {
                let queuing = rec.t_head.saturating_since(rec.t_ingress).as_millis_f64();
                let sched = rec.t_first_tx.saturating_since(rec.t_head).as_millis_f64();
                self.breakdown_pending.insert((flow, ident), (queuing, sched));
            }
        }
        for d in out.deliveries.drain(..) {
            let ue = d.tb.ue.0 as usize;
            self.sched(d.deliver_at, Event::TbAtUe { ue, tb: d.tb });
        }
        if out.role == Some(SlotRole::Uplink) {
            let air = self.cfg.cell.slot_duration;
            for i in 0..self.ues.len() {
                let (pkts, statuses) = self.ues[i].on_uplink_slot(now);
                if !pkts.is_empty() || !statuses.is_empty() {
                    self.sched(now + air, Event::UlAtGnb { ue: i, pkts, statuses });
                }
            }
        }
        self.slot_out = out;
        self.sched(now + self.cfg.cell.slot_duration, Event::Slot);
    }

    fn on_dl_at_cu(&mut self, flow: usize, mut pkt: PacketBuf, now: Instant) {
        let (ue_id, qfi) = (self.flows[flow].ue_id, self.flows[flow].qfi);
        let drb = self.flows[flow].drb;
        let ident = pkt.identification();
        let t0 = self.clock_start();
        let verdict = self.marker.on_dl(ue_id, drb, &mut pkt, now);
        self.clock_stop(t0, 0);
        if verdict == DlVerdict::Drop {
            self.flows[flow].sent_at.remove(&ident);
            return;
        }
        match self.gnb.enqueue_downlink(ue_id, qfi, pkt, now) {
            Some((drb, sn)) => {
                self.sn_map.insert((ue_id, drb, sn), (flow, ident));
            }
            None => {
                // RLC tail drop: the packet is gone; TCP sees the loss.
                self.flows[flow].sent_at.remove(&ident);
            }
        }
    }

    fn on_app_deliver(&mut self, pkt: PacketBuf, t_cu_ingress: Instant, now: Instant) {
        let Some(tuple) = pkt.five_tuple() else {
            return;
        };
        let Some(&flow) = self.tuple_to_flow.get(&tuple) else {
            return;
        };
        let ident = pkt.identification();
        let payload = pkt.payload_len();
        let ue = self.flows[flow].ue_idx;
        if let Some(sent) = self.flows[flow].sent_at.remove(&ident) {
            let owd = now.saturating_since(sent).as_millis_f64();
            if payload > 0 {
                self.owd_ms[flow].push(owd);
                let bin =
                    (now.as_nanos() / self.cfg.thr_bin.as_nanos().max(1)) as usize;
                let bins = &mut self.thr_bins[flow];
                if bins.len() <= bin {
                    bins.resize(bin + 1, 0);
                }
                bins[bin] += payload as u64;
            }
            if let Some((queuing, sched)) = self.breakdown_pending.remove(&(flow, ident)) {
                let prop = (self.flows[flow].wan_one_way + self.cfg.cell.core_to_cu_delay)
                    .as_millis_f64();
                let other = (owd - prop - queuing - sched).max(0.0);
                self.breakdown[flow].push(Breakdown {
                    propagation: prop,
                    queuing,
                    scheduling: sched,
                    other,
                });
            }
        }
        let _ = t_cu_ingress;
        // Hand to the client endpoint.
        match &mut self.flows[flow].endpoint {
            Endpoint::Tcp { receiver, .. } => {
                if let Some(ack) = receiver.on_packet(&pkt, now) {
                    self.ues[ue].enqueue_uplink(ack, now);
                }
            }
            Endpoint::Scream { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Scream(fb));
                    self.ues[ue].enqueue_uplink(fb_pkt, now);
                }
            }
            Endpoint::UdpPrague { receiver, .. } => {
                if let Some((fb_pkt, fb)) = receiver.on_packet(&pkt, now) {
                    let fid = fb_pkt.identification();
                    self.flows[flow].fb_pending.insert(fid, FbData::Prague(fb));
                    self.ues[ue].enqueue_uplink(fb_pkt, now);
                }
            }
        }
    }

    fn on_ul_at_gnb(
        &mut self,
        ue: usize,
        pkts: Vec<PacketBuf>,
        statuses: Vec<(DrbId, RlcStatus)>,
        now: Instant,
    ) {
        let ue_id = UeId(ue as u16);
        for (drb, st) in &statuses {
            let (_records, f1u) = self.gnb.on_rlc_status(ue_id, *drb, st, now);
            if let Some(msg) = f1u {
                let t0 = self.clock_start();
                self.marker.on_feedback(&msg, now);
                self.clock_stop(t0, 2);
            }
        }
        for mut pkt in pkts {
            let t0 = self.clock_start();
            self.marker.on_ul(&mut pkt, now);
            self.clock_stop(t0, 1);
            let Some(tuple) = pkt.five_tuple() else { continue };
            let Some(&flow) = self.tuple_to_flow.get(&tuple.reversed()) else {
                continue;
            };
            let delay = self.cfg.cell.core_to_cu_delay + self.flows[flow].wan_one_way;
            self.sched(now + delay, Event::UlAtServer { flow, pkt });
        }
    }

    fn on_ul_at_server(&mut self, flow: usize, pkt: PacketBuf, now: Instant) {
        let ident = pkt.identification();
        let f = &mut self.flows[flow];
        let fb = f.fb_pending.remove(&ident);
        let outs = match &mut f.endpoint {
            Endpoint::Tcp { sender, .. } => {
                let outs = sender.on_packet(&pkt, now);
                if let Some(srtt) = sender.srtt() {
                    self.rtt_ms[flow].push(srtt.as_millis_f64());
                    self.rtt_at_s[flow].push(now.as_secs_f64());
                }
                if sender.finished() && f.finished_at.is_none() {
                    f.finished_at = Some(now);
                }
                outs
            }
            Endpoint::Scream { sender, .. } => {
                if let Some(FbData::Scream(fb)) = fb {
                    sender.on_feedback(&fb, now);
                    self.rtt_ms[flow].push(sender.srtt().as_millis_f64());
                    self.rtt_at_s[flow].push(now.as_secs_f64());
                }
                sender.poll(now)
            }
            Endpoint::UdpPrague { sender, .. } => {
                if let Some(FbData::Prague(fb)) = fb {
                    sender.on_feedback(&fb, now);
                    if let Some(srtt) = sender.srtt() {
                        self.rtt_ms[flow].push(srtt.as_millis_f64());
                        self.rtt_at_s[flow].push(now.as_secs_f64());
                    }
                }
                sender.poll(now)
            }
        };
        self.route_dl(flow, outs, now);
        self.reschedule_timer(flow, now);
    }

    fn on_flow_start(&mut self, flow: usize, now: Instant) {
        self.flows[flow].started = true;
        let ue = self.flows[flow].ue_idx;
        match &mut self.flows[flow].endpoint {
            Endpoint::Tcp { receiver, .. } => {
                let syn = receiver.start(now);
                self.ues[ue].enqueue_uplink(syn, now);
            }
            Endpoint::Scream { .. } | Endpoint::UdpPrague { .. } => {
                self.sched(now, Event::FlowTimer { flow });
                self.flows[flow].timer_at = now;
            }
        }
    }

    /// Register send times and push packets onto the WAN (and through
    /// the wired bottleneck when configured).
    fn route_dl(&mut self, flow: usize, pkts: Vec<PacketBuf>, now: Instant) {
        for pkt in pkts {
            let ident = pkt.identification();
            self.flows[flow].sent_at.insert(ident, now);
            let wan = self.flows[flow].wan_one_way;
            if self.router.is_some() {
                self.sched(now + wan, Event::DlAtRouter { pkt });
            } else {
                let delay = wan + self.cfg.cell.core_to_cu_delay;
                self.sched(now + delay, Event::DlAtCu { flow, pkt });
            }
        }
    }

    fn drain_router(&mut self, now: Instant) {
        let Some(r) = &mut self.router else { return };
        let departed = r.poll(now);
        let core = self.cfg.cell.core_to_cu_delay;
        let next = r.next_departure();
        for pkt in departed {
            if let Some(tuple) = pkt.five_tuple() {
                if let Some(&flow) = self.tuple_to_flow.get(&tuple) {
                    self.sched(now + core, Event::DlAtCu { flow, pkt });
                }
            }
        }
        if let Some(d) = next {
            if d < self.router_poll_at {
                self.router_poll_at = d;
                self.sched(d, Event::RouterPoll);
            }
        }
    }

    fn reschedule_timer(&mut self, flow: usize, now: Instant) {
        let na = match &self.flows[flow].endpoint {
            Endpoint::Tcp { sender, .. } => sender.next_activity(),
            Endpoint::Scream { sender, .. } => Some(sender.next_activity()),
            Endpoint::UdpPrague { sender, .. } => Some(sender.next_activity()),
        };
        if let Some(at) = na {
            // Record the *clamped* instant: a past-due `next_activity`
            // fires at `now`, and bookkeeping an earlier time would
            // suppress legitimate reschedules until that phantom instant
            // passed (and conversely let duplicate timers pile up).
            let at_eff = at.max(now);
            if at_eff < self.flows[flow].timer_at && at < Instant::MAX {
                self.flows[flow].timer_at = at_eff;
                self.sched(at_eff, Event::FlowTimer { flow });
            }
        }
    }

    fn on_sample(&mut self, now: Instant) {
        // RLC queue lengths.
        for (i, spec) in self.cfg.ues.iter().enumerate() {
            for &(d, _) in &spec.drbs {
                let len = self.gnb.rlc_queue_len(UeId(i as u16), DrbId(d));
                self.queue_series.entry((i as u16, d)).or_default().push(len);
            }
        }
        // Estimation error vs ground truth (L4Span only). The ground
        // truth window is anchored at the newest dequeue event, exactly
        // as Eq. 3 anchors its window at the latest feedback — anchoring
        // at the (arbitrary) sample tick instead would under-count by a
        // partial TDD frame and read as a systematic positive bias.
        if let Some(l4span) = self.marker.as_l4span() {
            let window = l4span.config().estimation_window;
            for ((ue, drb), log) in self.gt_egress.iter_mut() {
                while let Some(&(t, _)) = log.front() {
                    if now.saturating_since(t) > window * 4 {
                        log.pop_front();
                    } else {
                        break;
                    }
                }
                let Some(&(anchor, _)) = log.back() else { continue };
                if now.saturating_since(anchor) > window {
                    continue; // stale: DRB idle, nothing to compare
                }
                let bytes: usize = log
                    .iter()
                    .filter(|&&(t, _)| anchor.saturating_since(t) < window)
                    .map(|&(_, b)| b)
                    .sum();
                let gt = bytes as f64 / window.as_secs_f64();
                if gt > 50_000.0 {
                    if let Some(est) = l4span.egress_rate(UeId(*ue), DrbId(*drb)) {
                        self.rate_err_pct.push((est - gt) / gt * 100.0);
                    }
                }
            }
        }
        self.sched(now + Duration::from_millis(10), Event::Sample);
    }

    // Wall-clock instrumentation for Fig. 21 / Table 1.
    fn clock_start(&self) -> Option<std::time::Instant> {
        self.cfg
            .measure_marker_time
            .then(std::time::Instant::now)
    }

    fn clock_stop(&mut self, t0: Option<std::time::Instant>, kind: usize) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            match kind {
                0 => self.marker_time.0.push(ns),
                1 => self.marker_time.1.push(ns),
                _ => self.marker_time.2.push(ns),
            }
        }
    }

    fn into_report(self) -> Report {
        let mut total_marks = 0;
        let mut marker_memory = 0;
        if let Some(l) = self.marker.as_l4span() {
            let s = l.stats();
            total_marks = s.dl_marks + s.tentative_marks;
            marker_memory = l.memory_bytes();
        }
        let g = self.gnb.stats();
        Report {
            duration: self.cfg.duration,
            bin: self.cfg.thr_bin,
            owd_ms: self.owd_ms,
            rtt_ms: self.rtt_ms,
            rtt_at_s: self.rtt_at_s,
            thr_bins: self.thr_bins,
            queue_series: self.queue_series,
            breakdown: self.breakdown,
            rate_err_pct: self.rate_err_pct,
            finish_ms: self
                .flows
                .iter()
                .map(|f| {
                    f.finished_at
                        .map(|t| t.saturating_since(f.start).as_millis_f64())
                })
                .collect(),
            flow_start: self.flows.iter().map(|f| f.start).collect(),
            total_marks,
            rlc_drops: g.sdus_dropped,
            tbs_lost: g.tbs_lost,
            harq_retx: g.harq_retx,
            marker_memory,
            marker_time_ns: self.marker_time,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{congested_cell, l4span_default, ChannelMix};
    use l4span_cc::WanLink;

    fn quick(marker: crate::marker::MarkerKind, cc: &str) -> Report {
        let cfg = congested_cell(
            2,
            cc,
            ChannelMix::Static,
            16_384,
            WanLink::east(),
            marker,
            7,
            Duration::from_secs(3),
        );
        World::new(cfg).run()
    }

    #[test]
    fn cubic_without_marker_bloats_the_queue() {
        let r = quick(crate::marker::MarkerKind::None, "cubic");
        // Both flows moved real data…
        for f in 0..2 {
            assert!(
                r.goodput_total_mbps(f) > 2.0,
                "flow {f}: {} Mbit/s",
                r.goodput_total_mbps(f)
            );
        }
        // …and the unmanaged RLC queue inflated the one-way delay far
        // beyond the propagation delay.
        let owd = r.owd_stats_pooled(&[0, 1]);
        assert!(
            owd.median > 100.0,
            "bufferbloat expected without L4Span: median {} ms",
            owd.median
        );
    }

    #[test]
    fn l4span_cuts_cubic_delay_keeps_throughput() {
        let bloat = quick(crate::marker::MarkerKind::None, "cubic");
        let l4s = quick(l4span_default(), "cubic");
        let owd_off = bloat.owd_stats_pooled(&[0, 1]).median;
        let owd_on = l4s.owd_stats_pooled(&[0, 1]).median;
        assert!(
            owd_on < owd_off / 3.0,
            "L4Span must slash OWD: {owd_on} vs {owd_off} ms"
        );
        let thr_off: f64 = (0..2).map(|f| bloat.goodput_total_mbps(f)).sum();
        let thr_on: f64 = (0..2).map(|f| l4s.goodput_total_mbps(f)).sum();
        assert!(
            thr_on > 0.7 * thr_off,
            "throughput preserved: {thr_on} vs {thr_off}"
        );
        assert!(l4s.total_marks > 0, "marks must actually flow");
    }

    #[test]
    fn prague_with_l4span_is_low_latency() {
        let r = quick(l4span_default(), "prague");
        let owd = r.owd_stats_pooled(&[0, 1]);
        // 19 ms propagation + core + a small RAN component: well under
        // the bufferbloat regime.
        assert!(
            owd.median < 120.0,
            "prague+L4Span median OWD {} ms",
            owd.median
        );
        let thr: f64 = (0..2).map(|f| r.goodput_total_mbps(f)).sum();
        assert!(thr > 5.0, "cell should still be well used: {thr}");
    }
}

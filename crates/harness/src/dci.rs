//! Synthetic DCI/MCS traces and the channel stable-period statistic of
//! Fig. 18.
//!
//! The paper validates its τ_c/2 estimation window against NR-Scope
//! telemetry from two commercial cells (600 MHz FDD, 2.5 GHz TDD),
//! counting as one "stable period" any maximal interval during which the
//! observed MCS index deviates by at most 5. Without the proprietary
//! traces we generate DCI streams from the same Jakes channel model the
//! simulator uses (a slowly moving scatter environment) and apply the
//! identical statistic — the point being that >90% of stable periods
//! exceed the 12.45 ms estimation window, which carrier scaling
//! preserves.

use l4span_ran::channel::{ChannelProfile, FadingChannel};
use l4span_ran::phy;
use l4span_sim::{Duration, Instant, SimRng};

/// A synthetic cell to trace.
#[derive(Debug, Clone, Copy)]
pub struct CellTraceSpec {
    /// Carrier frequency in Hz.
    pub carrier_hz: f64,
    /// DCI cadence (slot length — 1 ms FDD@15 kHz, 0.5 ms TDD@30 kHz).
    pub slot: Duration,
    /// Mean SNR of the observed UE.
    pub mean_snr_db: f64,
}

impl CellTraceSpec {
    /// The 600 MHz FDD cell of Fig. 18.
    pub fn fdd_600mhz() -> CellTraceSpec {
        CellTraceSpec {
            carrier_hz: 600e6,
            slot: Duration::from_millis(1),
            mean_snr_db: 18.0,
        }
    }

    /// The 2.5 GHz TDD cell of Fig. 18.
    pub fn tdd_2_5ghz() -> CellTraceSpec {
        CellTraceSpec {
            carrier_hz: 2.5e9,
            slot: Duration::from_micros(500),
            mean_snr_db: 18.0,
        }
    }
}

/// Generate an MCS index trace of `duration` from the fading model.
pub fn mcs_trace(spec: CellTraceSpec, duration: Duration, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    // Pedestrian-scale motion: commercial-cell observations include
    // environmental scatter even for a stationary probe.
    let ch = FadingChannel::new(
        ChannelProfile::Pedestrian,
        spec.mean_snr_db,
        spec.carrier_hz,
        &mut rng,
    );
    let slots = duration.as_nanos() / spec.slot.as_nanos().max(1);
    (0..slots)
        .map(|k| {
            let t = Instant::ZERO + spec.slot * k;
            phy::select_mcs(ch.snr_db(t), 0.0)
        })
        .collect()
}

/// Stable periods (in milliseconds) of an MCS trace: maximal runs whose
/// max-min MCS spread stays ≤ `deviation`. Periods longer than `cap_ms`
/// are clipped to `cap_ms` (the paper includes only periods < 1 s).
pub fn stable_periods_ms(trace: &[u8], slot: Duration, deviation: u8, cap_ms: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let slot_ms = slot.as_millis_f64();
    let mut start = 0usize;
    let mut lo = u8::MAX;
    let mut hi = u8::MIN;
    for (i, &m) in trace.iter().enumerate() {
        lo = lo.min(m);
        hi = hi.max(m);
        if hi - lo > deviation {
            let len_ms = (i - start) as f64 * slot_ms;
            out.push(len_ms.min(cap_ms));
            start = i;
            lo = m;
            hi = m;
        }
    }
    if start < trace.len() {
        let len_ms = (trace.len() - start) as f64 * slot_ms;
        out.push(len_ms.min(cap_ms));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_sim::stats::Cdf;

    #[test]
    fn traces_have_sane_mcs_values() {
        let tr = mcs_trace(CellTraceSpec::tdd_2_5ghz(), Duration::from_secs(5), 1);
        assert!(!tr.is_empty());
        assert!(tr.iter().all(|&m| m <= 15));
        // The channel fades: MCS must actually vary.
        let min = *tr.iter().min().unwrap();
        let max = *tr.iter().max().unwrap();
        assert!(max > min, "MCS must vary under fading");
    }

    #[test]
    fn stable_period_segmentation() {
        // Hand-built trace: 5 slots stable, jump, 3 slots stable.
        let trace = [10, 10, 11, 12, 10, 2, 2, 3];
        let p = stable_periods_ms(&trace, Duration::from_millis(1), 5, 1e9);
        assert_eq!(p, vec![5.0, 3.0]);
    }

    #[test]
    fn lower_carrier_is_more_stable() {
        let dur = Duration::from_secs(30);
        let fdd = mcs_trace(CellTraceSpec::fdd_600mhz(), dur, 7);
        let tdd = mcs_trace(CellTraceSpec::tdd_2_5ghz(), dur, 7);
        let p_fdd = stable_periods_ms(&fdd, CellTraceSpec::fdd_600mhz().slot, 5, 1000.0);
        let p_tdd = stable_periods_ms(&tdd, CellTraceSpec::tdd_2_5ghz().slot, 5, 1000.0);
        let med_fdd = Cdf::from_samples(&p_fdd).quantile(0.5);
        let med_tdd = Cdf::from_samples(&p_tdd).quantile(0.5);
        assert!(
            med_fdd > med_tdd,
            "600 MHz stable periods ({med_fdd} ms) must exceed 2.5 GHz ({med_tdd} ms)"
        );
    }

    #[test]
    fn most_periods_exceed_estimation_window() {
        // The Fig. 18 claim: >90% of stable periods are longer than the
        // 12.45 ms estimation window.
        let dur = Duration::from_secs(30);
        for spec in [CellTraceSpec::fdd_600mhz(), CellTraceSpec::tdd_2_5ghz()] {
            let tr = mcs_trace(spec, dur, 11);
            let p = stable_periods_ms(&tr, spec.slot, 5, 1000.0);
            let cdf = Cdf::from_samples(&p);
            let frac_below = cdf.fraction_at(12.45);
            assert!(
                frac_below < 0.35,
                "carrier {:.0e}: {:.0}% below the window",
                spec.carrier_hz,
                frac_below * 100.0
            );
        }
    }
}

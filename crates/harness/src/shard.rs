//! Intra-scenario sharding: per-cell shards with deterministic
//! slot-boundary exchange.
//!
//! A shard is a full [`World`] replica pruned down to the events its
//! cells own ([`World::shard_install`]). Because a per-cell CU
//! deployment (`cu_per_cell`) keeps *all* marker, RLC, and channel
//! state cell-local, the only couplings between cells are:
//!
//! 1. **Handover** — Xn context transfer plus the UE's whole state
//!    cluster, executed by this coordinator at the step's barrier
//!    ([`World::handover_across`]);
//! 2. **In-flight events of a migrated UE** — queued packets and
//!    timers extracted in `(time, seq)` order right after the flip
//!    ([`World::extract_foreign_events`]);
//! 3. **Post-handover uplink stragglers** — feedback that was on the
//!    air toward the old cell when the UE left; the old cell still
//!    processes it (exactly as in one world), and the resulting server
//!    arrival rides the source shard's outbox.
//!
//! Between barriers the replicas are completely independent, so epochs
//! run in parallel (`L4SPAN_THREADS`, the PR 2 convention). Envelopes
//! drain in `(slot-boundary time, source shard, sequence)` order, and
//! barrier-injected events take fresh sequence numbers *before* the
//! receiving epoch resumes — reproducing the single-world FIFO order,
//! which is what makes [`Report::fingerprint`] byte-invariant to the
//! shard count. Mobility steps the coordinator executes are counted
//! into the merged event total exactly like the `Handover` pops of the
//! classic loop.
//!
//! Anything outside the eligible shape — a central CU marker, a wired
//! bottleneck (whose router serializes all flows), or a single cell —
//! runs the classic whole-world path untouched.

use std::collections::BTreeSet;

use l4span_sim::Instant;

use crate::metrics::{Report, ShardStat};
use crate::runner::default_threads;
use crate::scenario::{MobilityStep, ScenarioConfig};
use crate::world::{Event, World};

/// How many shards a scenario actually supports: `want`, capped at the
/// cell count — or 1 when the scenario is ineligible (central CU
/// marker, wired bottleneck, impairment pipeline, or a single cell), in
/// which case [`run_sharded`] takes the classic whole-world code path.
pub fn plan_shards(cfg: &ScenarioConfig, want: usize) -> usize {
    plan_shards_reason(cfg, want).0
}

/// [`plan_shards`] plus *why* a scenario was forced to one shard: the
/// shape property that makes cells non-independent, surfaced in
/// [`Report::shard_reject`] and the perf-gate table so a scenario
/// silently falling off the parallel path is visible. `None` when the
/// plan honored the request (including the trivial `want <= 1`).
pub fn plan_shards_reason(cfg: &ScenarioConfig, want: usize) -> (usize, Option<&'static str>) {
    if want <= 1 {
        return (1, None);
    }
    if cfg.impairment.is_some() {
        return (1, Some("impairment pipeline"));
    }
    if cfg.flows.iter().any(|f| f.bond.is_some()) {
        // A bonded flow spans two cells by construction (the legs feed
        // one sender/receiver pair), so its cells can never simulate
        // independently.
        return (1, Some("bonded flow"));
    }
    if !cfg.cu_per_cell {
        return (1, Some("central CU marker"));
    }
    if cfg.bottleneck.is_some() {
        return (1, Some("wired bottleneck"));
    }
    if cfg.n_cells() < 2 {
        return (1, Some("single cell"));
    }
    (want.min(cfg.n_cells()), None)
}

/// Run `cfg` across `want` per-cell shards (cells assigned round-robin)
/// and return the merged report, with [`Report::shards`] carrying the
/// per-shard statistics. One shard — requested or forced by
/// [`plan_shards`] — is the exact classic [`World::run`] path.
pub fn run_sharded(cfg: ScenarioConfig, want: usize) -> Report {
    let (n, reject) = plan_shards_reason(&cfg, want);
    if n <= 1 {
        let mut report = World::new(cfg).run();
        report.shard_reject = reject;
        return report;
    }
    let end = Instant::ZERO + cfg.duration;
    let n_cells = cfg.n_cells();
    let of_cell: Vec<usize> = (0..n_cells).map(|c| c % n).collect();
    // Flush horizon: one cell slot. Straggler feedback toward an old
    // cell is all in flight at handover time, so it lands within one
    // air hop (< a slot) of the barrier; two flush barriers per step
    // collect the resulting mail long before its server-arrival time.
    let slot = (0..n_cells)
        .map(|c| cfg.cell_config(c).slot_duration)
        .max()
        .expect("at least one cell");

    // The coordinator's mobility schedule: every step the classic loop
    // would pop (at ≤ end), grouped per barrier instant in UE order —
    // the order their init-scheduled `Handover` events carry.
    let mut steps: Vec<(Instant, usize, MobilityStep)> = Vec::new();
    for (ue, spec) in cfg.ues.iter().enumerate() {
        for st in &spec.mobility {
            if st.at <= end {
                steps.push((st.at, ue, *st));
            }
        }
    }
    steps.sort_by_key(|&(at, ue, _)| (at, ue));
    let mut barriers: BTreeSet<Instant> = BTreeSet::new();
    for &(at, _, _) in &steps {
        barriers.insert(at);
        barriers.insert(at + slot);
        barriers.insert(at + slot + slot);
    }

    let mut worlds: Vec<World> = (0..n)
        .map(|s| {
            let mut w = World::new(cfg.clone());
            w.shard_install(s, of_cell.clone());
            w
        })
        .collect();
    let parallel = default_threads() > 1;
    let mut busy = vec![0u64; n];
    let mut drain = vec![0u64; n];
    let mut mailed = vec![0u64; n];
    let mut coordinator_events = 0u64;
    #[allow(clippy::vec_box)]
    let mut moved: Vec<(Instant, Box<Event>)> = Vec::new();
    #[allow(clippy::vec_box)]
    let mut envelopes: Vec<(Instant, usize, usize, Box<Event>)> = Vec::new();

    let mut step_idx = 0;
    for &barrier in &barriers {
        run_epoch(&mut worlds, barrier, end, parallel, &mut busy);
        deliver_mail(&mut worlds, barrier, &mut envelopes, &mut mailed, &mut drain);
        while step_idx < steps.len() && steps[step_idx].0 == barrier {
            let (at, ue, st) = steps[step_idx];
            step_idx += 1;
            // The classic loop pops one `Handover` event per step; its
            // init-time sequence number makes it pop *before* any
            // same-instant runtime event — exactly this barrier point.
            coordinator_events += 1;
            apply_step(
                &mut worlds,
                &of_cell,
                ue,
                st,
                at,
                &mut moved,
                &mut mailed,
                &mut drain,
            );
        }
    }
    run_epoch(&mut worlds, Instant::MAX, end, parallel, &mut busy);
    // Transient post-handover mail was all collected by the flush
    // barriers; whatever a replica's final epoch still produced can
    // only target events beyond the run end (delivered for the merge
    // invariant, never popped).
    deliver_mail(&mut worlds, end, &mut envelopes, &mut mailed, &mut drain);

    let stats: Vec<ShardStat> = worlds
        .iter()
        .enumerate()
        .map(|(s, w)| ShardStat {
            shard: s,
            cells: of_cell.iter().filter(|&&o| o == s).count(),
            events: w.events_processed(),
            busy_ns: busy[s],
            drain_ns: drain[s],
            mailed: mailed[s],
            cycles: w.cycles_snapshot(),
        })
        .collect();
    let merged = World::merge_sharded(worlds, coordinator_events);
    let mut report = merged.into_report();
    report.shards = stats;
    report
}

/// Run every replica up to (not including) `until`, in parallel when
/// the thread budget allows. Per-replica wall time accumulates into
/// `busy` — under parallel execution each entry is still that shard's
/// own busy time, which is what the aggregate-rate computation needs.
fn run_epoch(worlds: &mut [World], until: Instant, end: Instant, parallel: bool, busy: &mut [u64]) {
    if parallel {
        std::thread::scope(|sc| {
            for (w, b) in worlds.iter_mut().zip(busy.iter_mut()) {
                sc.spawn(move || {
                    let t0 = std::time::Instant::now();
                    w.run_until(until, end);
                    *b += t0.elapsed().as_nanos() as u64;
                });
            }
        });
    } else {
        for (w, b) in worlds.iter_mut().zip(busy.iter_mut()) {
            let t0 = std::time::Instant::now();
            w.run_until(until, end);
            *b += t0.elapsed().as_nanos() as u64;
        }
    }
}

/// Drain every replica's outbox and inject the envelopes at their
/// targets in `(time, source shard, sequence)` order. The order is a
/// pure function of those three keys — the mailbox contract the
/// property test pins down.
#[allow(clippy::vec_box)]
fn deliver_mail(
    worlds: &mut [World],
    barrier: Instant,
    envelopes: &mut Vec<(Instant, usize, usize, Box<Event>)>,
    mailed: &mut [u64],
    drain: &mut [u64],
) {
    envelopes.clear();
    let mut buf = Vec::new();
    for (s, w) in worlds.iter_mut().enumerate() {
        let t0 = std::time::Instant::now();
        w.take_outbox(&mut buf);
        for (k, (at, bx)) in buf.drain(..).enumerate() {
            mailed[s] += 1;
            envelopes.push((at, s, k, bx));
        }
        drain[s] += t0.elapsed().as_nanos() as u64;
    }
    if envelopes.is_empty() {
        return;
    }
    // Unstable sort: the key is strictly total (no two envelopes share
    // `(at, s, k)`), and unlike the stable sort it never allocates.
    envelopes.sort_unstable_by_key(|&(at, s, k, _)| (at, s, k));
    for (at, s, _, bx) in envelopes.drain(..) {
        // An envelope in the past would be silently clamped by the
        // queue — a protocol bug (a flush barrier missed it), so fail
        // loudly instead.
        assert!(
            at >= barrier,
            "cross-shard envelope for t={at:?} delivered late at barrier {barrier:?}"
        );
        let t0 = std::time::Instant::now();
        let dst = worlds[s].event_owner(&bx);
        worlds[dst].inject(at, bx);
        drain[dst] += t0.elapsed().as_nanos() as u64;
    }
}

/// Execute one mobility step at its barrier. Same-cell and same-shard
/// steps take the intra-world path verbatim; a cross-shard handover
/// runs the Xn transfer across the two replicas, flips the attachment
/// in every replica, then re-homes the UE's queued events.
#[allow(clippy::too_many_arguments, clippy::vec_box)]
fn apply_step(
    worlds: &mut [World],
    of_cell: &[usize],
    ue: usize,
    st: MobilityStep,
    now: Instant,
    moved: &mut Vec<(Instant, Box<Event>)>,
    mailed: &mut [u64],
    drain: &mut [u64],
) {
    let src_cell = worlds[0].serving_cell(ue);
    let src_s = of_cell[src_cell];
    let dst_s = of_cell[st.cell];
    if src_cell == st.cell || src_s == dst_s {
        worlds[src_s].apply_mobility_step(ue, st.cell, st.profile, st.snr_db, now);
        if src_cell != st.cell {
            for (s, w) in worlds.iter_mut().enumerate() {
                if s != src_s {
                    w.set_serving(ue, st.cell);
                }
            }
        }
        return;
    }
    let (src_w, dst_w) = pair_mut(worlds, src_s, dst_s);
    World::handover_across(src_w, dst_w, ue, st.cell, st.profile, st.snr_db, now);
    // The flip reaches every replica (ownership is derived from
    // `serving`) *before* events re-route, so extraction and mail
    // routing below already see the new owner.
    for w in worlds.iter_mut() {
        w.set_serving(ue, st.cell);
    }
    let t0 = std::time::Instant::now();
    moved.clear();
    worlds[src_s].extract_foreign_events(moved);
    for (at, bx) in moved.drain(..) {
        mailed[src_s] += 1;
        let dst = worlds[src_s].event_owner(&bx);
        worlds[dst].inject(at, bx);
    }
    drain[src_s] += t0.elapsed().as_nanos() as u64;
}

/// Disjoint mutable borrows of two distinct slice elements.
fn pair_mut(v: &mut [World], i: usize, j: usize) -> (&mut World, &mut World) {
    debug_assert_ne!(i, j);
    if i < j {
        let (l, r) = v.split_at_mut(j);
        (&mut l[i], &mut r[0])
    } else {
        let (l, r) = v.split_at_mut(i);
        (&mut r[0], &mut l[j])
    }
}

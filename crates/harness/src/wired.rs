//! The wired-only topology of Fig. 2(a): content server(s) → an L4S
//! (DualPi2) router at a fixed line rate → fixed-delay link → client.
//! Demonstrates the status-quo baseline L4Span wants to extend into the
//! RAN: Prague at line rate with ~1 ms queue, CUBIC at the classic
//! ~15–20 ms PI target.

use std::collections::HashMap;

use l4span_aqm::{DualPi2, Router, RouterAqm};
use l4span_cc::tcp::TcpConfig;
use l4span_cc::{CcKind, TcpReceiver, TcpSender};
use l4span_net::PacketBuf;
use l4span_sim::{Duration, EventQueue, Instant, SimRng};

use crate::metrics::Report;

/// Configuration of a wired run.
#[derive(Debug, Clone)]
pub struct WiredConfig {
    /// RNG seed.
    pub seed: u64,
    /// Run length.
    pub duration: Duration,
    /// Router line rate in bit/s (40 Mbit/s matches the cell).
    pub rate_bps: f64,
    /// One-way propagation delay on each side of the router.
    pub one_way: Duration,
    /// Flows: (typed congestion controller, start time).
    pub flows: Vec<(CcKind, Instant)>,
    /// Throughput bin.
    pub thr_bin: Duration,
}

enum Event {
    AtRouter { pkt: PacketBuf },
    RouterPoll,
    AtClient { flow: usize, pkt: PacketBuf },
    AtServer { flow: usize, pkt: PacketBuf },
    Timer { flow: usize },
    Start { flow: usize },
}

struct WFlow {
    sender: TcpSender,
    receiver: TcpReceiver,
    sent_at: HashMap<u16, Instant>,
    timer_at: Instant,
}

/// Run the wired scenario.
pub fn run_wired(cfg: WiredConfig) -> Report {
    let root = SimRng::new(cfg.seed);
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut router = Router::new(
        cfg.rate_bps,
        2 << 20,
        RouterAqm::DualPi2(DualPi2::default()),
        root.derive(1),
    );
    let mut flows = Vec::new();
    let mut tuple_to_flow = HashMap::new();
    for (f, (cc, start)) in cfg.flows.iter().enumerate() {
        let controller = cc.make(1400);
        let mode = controller.ecn_mode();
        let tcfg = TcpConfig::new(0x0A00_0000 + f as u32, 0xC0A8_0000, 443, 50_000 + f as u16);
        let tuple = tcfg.downlink_tuple();
        tuple_to_flow.insert(tuple, f);
        flows.push(WFlow {
            sender: TcpSender::new(tcfg, controller),
            receiver: TcpReceiver::new(tcfg, mode),
            sent_at: HashMap::new(),
            timer_at: Instant::MAX,
        });
        queue.schedule(*start, Event::Start { flow: f });
    }

    let n = flows.len();
    let mut owd_ms = vec![Vec::new(); n];
    let mut rtt_ms = vec![Vec::new(); n];
    let mut rtt_at_s = vec![Vec::new(); n];
    let mut thr_bins = vec![Vec::new(); n];
    let mut router_poll_at = Instant::MAX;
    let end = Instant::ZERO + cfg.duration;

    // Helper closures are awkward with borrows; use a small macro-like fn.
    fn route_dl(
        queue: &mut EventQueue<Event>,
        flows: &mut [WFlow],
        flow: usize,
        pkts: Vec<PacketBuf>,
        one_way: Duration,
        now: Instant,
    ) {
        for pkt in pkts {
            flows[flow].sent_at.insert(pkt.ip().identification, now);
            queue.schedule(now + one_way, Event::AtRouter { pkt });
        }
    }

    while let Some(at) = queue.next_at() {
        if at > end {
            break;
        }
        let (now, ev) = queue.pop().expect("peeked");
        match ev {
            Event::Start { flow } => {
                let syn = flows[flow].receiver.start(now);
                // Client→server path doesn't cross the bottleneck.
                queue.schedule(now + cfg.one_way * 2, Event::AtServer { flow, pkt: syn });
            }
            Event::AtRouter { pkt } => {
                router.enqueue(pkt, now);
                let departed = router.poll(now);
                for pkt in departed {
                    if let Some(&flow) =
                        pkt.five_tuple().and_then(|t| tuple_to_flow.get(&t))
                    {
                        queue.schedule(now + cfg.one_way, Event::AtClient { flow, pkt });
                    }
                }
                if let Some(d) = router.next_departure() {
                    if d < router_poll_at {
                        router_poll_at = d;
                        queue.schedule(d, Event::RouterPoll);
                    }
                }
            }
            Event::RouterPoll => {
                router_poll_at = Instant::MAX;
                let departed = router.poll(now);
                for pkt in departed {
                    if let Some(&flow) =
                        pkt.five_tuple().and_then(|t| tuple_to_flow.get(&t))
                    {
                        queue.schedule(now + cfg.one_way, Event::AtClient { flow, pkt });
                    }
                }
                if let Some(d) = router.next_departure() {
                    if d < router_poll_at {
                        router_poll_at = d;
                        queue.schedule(d, Event::RouterPoll);
                    }
                }
            }
            Event::AtClient { flow, pkt } => {
                let ident = pkt.ip().identification;
                if let Some(sent) = flows[flow].sent_at.remove(&ident) {
                    let owd = now.saturating_since(sent).as_millis_f64();
                    if pkt.payload_len() > 0 {
                        owd_ms[flow].push(owd);
                        let bin =
                            (now.as_nanos() / cfg.thr_bin.as_nanos().max(1)) as usize;
                        if thr_bins[flow].len() <= bin {
                            thr_bins[flow].resize(bin + 1, 0);
                        }
                        thr_bins[flow][bin] += pkt.payload_len() as u64;
                    }
                }
                if let Some(ack) = flows[flow].receiver.on_packet(&pkt, now) {
                    queue.schedule(now + cfg.one_way * 2, Event::AtServer { flow, pkt: ack });
                }
            }
            Event::AtServer { flow, pkt } => {
                let outs = flows[flow].sender.on_packet(&pkt, now);
                if let Some(srtt) = flows[flow].sender.srtt() {
                    rtt_ms[flow].push(srtt.as_millis_f64());
                    rtt_at_s[flow].push(now.as_secs_f64());
                }
                route_dl(&mut queue, &mut flows, flow, outs, cfg.one_way, now);
                let na = flows[flow].sender.next_activity();
                if let Some(at) = na {
                    if at < flows[flow].timer_at {
                        flows[flow].timer_at = at;
                        queue.schedule(at.max(now), Event::Timer { flow });
                    }
                }
            }
            Event::Timer { flow } => {
                flows[flow].timer_at = Instant::MAX;
                let outs = flows[flow].sender.poll(now);
                route_dl(&mut queue, &mut flows, flow, outs, cfg.one_way, now);
                if let Some(at) = flows[flow].sender.next_activity() {
                    if at < flows[flow].timer_at {
                        flows[flow].timer_at = at;
                        queue.schedule(at.max(now), Event::Timer { flow });
                    }
                }
            }
        }
    }

    Report {
        duration: cfg.duration,
        bin: cfg.thr_bin,
        flow_start: cfg.flows.iter().map(|&(_, s)| s).collect(),
        owd_ms,
        rtt_ms,
        rtt_at_s,
        thr_bins,
        finish_ms: vec![None; n],
        ..Report::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wired_l4s_matches_fig2a() {
        // One Prague and one CUBIC flow through a 40 Mbit/s DualPi2
        // router with 10 ms base RTT, as in Fig. 2(a).
        let cfg = WiredConfig {
            seed: 3,
            duration: Duration::from_secs(8),
            rate_bps: 40e6,
            one_way: Duration::from_millis(2),
            flows: vec![
                (CcKind::Prague, Instant::from_millis(0)),
                (CcKind::Cubic, Instant::from_millis(100)),
            ],
            thr_bin: Duration::from_millis(100),
        };
        let r = run_wired(cfg);
        // Prague: RTT stays near the base (~8 ms) + L-queue ~1 ms.
        let prague_rtt = l4span_sim::stats::BoxStats::from_samples(&r.rtt_ms[0]);
        assert!(
            prague_rtt.median < 25.0,
            "prague wired RTT {} ms",
            prague_rtt.median
        );
        // CUBIC: the PI controller holds around its 15 ms target, far
        // below bufferbloat but above Prague.
        let cubic_rtt = l4span_sim::stats::BoxStats::from_samples(&r.rtt_ms[1]);
        assert!(
            cubic_rtt.median > prague_rtt.median,
            "cubic {} vs prague {}",
            cubic_rtt.median,
            prague_rtt.median
        );
        assert!(
            cubic_rtt.median < 120.0,
            "cubic held near target: {} ms",
            cubic_rtt.median
        );
        // Together they fill the 40 Mbit/s line.
        let total: f64 = (0..2)
            .map(|f| r.goodput_mbps(f, Instant::from_secs(2), Instant::from_secs(8)))
            .sum();
        assert!(total > 28.0, "line utilisation {total} Mbit/s");
    }
}

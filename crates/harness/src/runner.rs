//! Parallel scenario execution.
//!
//! Every scenario is an independent, self-seeded simulation, so a batch
//! of them (a figure's parameter grid, the smoke suite, the determinism
//! matrix) is embarrassingly parallel. [`run_batch`] fans a batch out
//! over scoped worker threads and returns reports **in input order**.
//!
//! ## Determinism contract
//!
//! * Each scenario derives all randomness from its own
//!   [`ScenarioConfig::seed`]; the runner never injects any.
//! * Workers pull jobs from a shared counter, so *which thread* runs a
//!   scenario depends on scheduling — but a scenario's result does not:
//!   `Report::fingerprint()` is byte-identical whether a batch runs on
//!   one thread or many (asserted by `tests/determinism.rs`).
//! * Results are collected by job index, so the returned `Vec<Report>`
//!   lines up with the input order regardless of completion order.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be pinned with the `L4SPAN_THREADS` environment variable (useful
//! for benchmarking and for CI determinism checks).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics::Report;
use crate::scenario::ScenarioConfig;

/// Worker threads to use by default: `L4SPAN_THREADS` if set and
/// positive, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("L4SPAN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Run a batch of scenarios across [`default_threads`] workers,
/// returning reports in input order.
pub fn run_batch(cfgs: Vec<ScenarioConfig>) -> Vec<Report> {
    run_batch_on(cfgs, default_threads())
}

/// Run a batch of scenarios across exactly `threads` workers, returning
/// reports in input order. `threads` is clamped to `[1, cfgs.len()]`.
pub fn run_batch_on(cfgs: Vec<ScenarioConfig>, threads: usize) -> Vec<Report> {
    let n = cfgs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        // Sequential fast path: no locking, same results by contract.
        return cfgs.into_iter().map(crate::run).collect();
    }
    let jobs: Vec<Mutex<Option<ScenarioConfig>>> =
        cfgs.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let results: Vec<Mutex<Option<Report>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let cfg = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let report = crate::run(cfg);
                *results[i].lock().expect("result mutex poisoned") = Some(report);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result mutex poisoned")
                .expect("every job completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{congested_cell, l4span_default, ChannelMix};
    use l4span_cc::WanLink;
    use l4span_sim::Duration;

    fn cfg(seed: u64) -> ScenarioConfig {
        congested_cell(
            2,
            "cubic",
            ChannelMix::Static,
            4096,
            WanLink::east(),
            l4span_default(),
            seed,
            Duration::from_millis(300),
        )
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(Vec::new()).is_empty());
    }

    #[test]
    fn results_are_in_input_order_and_thread_count_invariant() {
        let seeds = [3u64, 5, 7, 11, 13];
        let seq = run_batch_on(seeds.iter().map(|&s| cfg(s)).collect(), 1);
        let par = run_batch_on(seeds.iter().map(|&s| cfg(s)).collect(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "parallel runner must not perturb results"
            );
        }
        // Different seeds must actually differ (order would show a swap).
        assert_ne!(par[0].fingerprint(), par[1].fingerprint());
    }

    #[test]
    fn more_threads_than_jobs_is_clamped() {
        let r = run_batch_on(vec![cfg(1)], 64);
        assert_eq!(r.len(), 1);
    }
}

//! Experiment harness: scenario construction, the discrete-event world,
//! metrics collection, and canned scenario builders for every figure in
//! the paper's evaluation (§6).
//!
//! * [`app`] — the pluggable application layer: the [`Application`]
//!   trait plus the built-in Bulk / FramedVideo / RequestResponse /
//!   TraceReplay workloads and their QoE unit tagging;
//! * [`scenario`] — declarative scenario configs (cells, UEs, flows as
//!   application × transport pairs, marker, channel profiles, mobility
//!   trajectories, wired bottlenecks);
//! * [`world`] — the event loop wiring content servers, WAN links, an
//!   optional wired router, the CU marker (L4Span or a baseline), an
//!   N-cell RAN with runtime handover, and the UE stacks — carrying
//!   data in **both directions**: downlink flows from content servers,
//!   and uplink flows whose senders live at the UE behind grant/BSR-
//!   driven uplink slots with a UE-side L4Span marker instance;
//! * [`marker`] — the CU-side marking adapters: L4Span, DualPi2-at-CU
//!   (§6.3.1 ablation), TC-RAN CoDel/ECN-CoDel (§6.2.2 baseline), or
//!   nothing;
//! * [`metrics`] — one-way delay, RTT, throughput time series, RLC queue
//!   CDFs, delay breakdowns, estimation-error samples;
//! * [`impairment`] — mid-path internet impairments between server
//!   egress and the core: ECT bleaching, codepoint remarking, ECT drop,
//!   and an RFC 3168 classic-ECN single-queue hop;
//! * [`wired`] — the wired-only topology of Fig. 2(a);
//! * [`dci`] — synthetic DCI/MCS traces and the channel stable-period
//!   CDF of Fig. 18;
//! * [`runner`] — parallel execution of independent scenario batches
//!   with a strict determinism contract (per-scenario seeds, results in
//!   input order, fingerprints independent of worker-thread count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod bond;
pub mod dci;
pub mod impairment;
pub mod marker;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod wired;
pub mod world;

pub use app::{AppProfile, Application};
pub use bond::{BondJoin, BondTx, SbdDetector};
pub use impairment::{ImpairmentCounters, ImpairmentSpec, StageSpec};
pub use marker::MarkerKind;
pub use metrics::{BondStat, FallbackRecord, FecStat, HandoverRecord, Report, ShardStat};
pub use runner::{run_batch, run_batch_on};
pub use scenario::{
    ChannelMix, FlowDir, FlowSpec, MobilitySpec, MobilityStep, ScenarioConfig, TransportSpec,
    UeSpec,
};
#[allow(deprecated)]
pub use scenario::TrafficKind;
pub use shard::{plan_shards, plan_shards_reason, run_sharded};
pub use world::World;

/// Run a scenario to completion and return its report.
pub fn run(cfg: ScenarioConfig) -> Report {
    World::new(cfg).run()
}

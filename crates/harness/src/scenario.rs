//! Declarative scenario descriptions plus canned builders for the
//! paper's experiments.

use l4span_cc::{CcKind, WanLink};
use l4span_core::{HandoverPolicy, L4SpanConfig};
use l4span_ran::config::{CellConfig, RlcMode, SchedulerKind};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

use crate::app::{AppProfile, FramedVideoCfg};
use crate::impairment::ImpairmentSpec;
use crate::marker::MarkerKind;

/// How UEs' channel profiles are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelMix {
    /// Everyone static.
    Static,
    /// Everyone pedestrian.
    Pedestrian,
    /// Everyone vehicular.
    Vehicular,
    /// The paper's "mobile": half pedestrian, half vehicular.
    Mobile,
}

impl ChannelMix {
    /// Profile of the `i`-th UE under this mix.
    pub fn profile(self, i: usize) -> ChannelProfile {
        match self {
            ChannelMix::Static => ChannelProfile::Static,
            ChannelMix::Pedestrian => ChannelProfile::Pedestrian,
            ChannelMix::Vehicular => ChannelProfile::Vehicular,
            ChannelMix::Mobile => {
                if i.is_multiple_of(2) {
                    ChannelProfile::Pedestrian
                } else {
                    ChannelProfile::Vehicular
                }
            }
        }
    }
}

/// One step of a UE's mobility trajectory: at `at`, the UE observes the
/// given channel `profile`/`snr_db` toward cell `cell`. If `cell` differs
/// from the UE's serving cell at that moment, the step is a **handover**
/// (Xn context transfer, PDCP re-establishment, lossless RLC forwarding,
/// marker-state policy applied); if it names the serving cell, it is a
/// pure channel change on the existing attachment — which is how the
/// deprecated single-cell `channel_events` field is subsumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityStep {
    /// When the step occurs.
    pub at: Instant,
    /// Target cell index (into the scenario's cell list).
    pub cell: usize,
    /// Channel profile toward that cell.
    pub profile: ChannelProfile,
    /// Mean SNR in dB toward that cell.
    pub snr_db: f64,
}

impl MobilityStep {
    /// Shorthand constructor: `(t, cell, profile, snr)`.
    pub fn new(at: Instant, cell: usize, profile: ChannelProfile, snr_db: f64) -> MobilityStep {
        MobilityStep {
            at,
            cell,
            profile,
            snr_db,
        }
    }
}

/// A UE's whole trajectory: mobility steps in time order. An empty spec
/// means the UE never moves from its initial cell.
pub type MobilitySpec = Vec<MobilityStep>;

/// One UE in the topology.
#[derive(Debug, Clone)]
pub struct UeSpec {
    /// Channel profile toward the initial serving cell.
    pub profile: ChannelProfile,
    /// Mean SNR in dB (cell-edge vs cell-centre diversity).
    pub mean_snr_db: f64,
    /// DRBs to configure (id, RLC mode). The first is the default.
    pub drbs: Vec<(u8, RlcMode)>,
    /// Cell the UE starts attached to (index into the cell list).
    pub initial_cell: usize,
    /// Mobility trajectory (`ues[i].mobility = [(t, cell, profile, snr)]`).
    pub mobility: MobilitySpec,
}

impl UeSpec {
    /// A single-AM-DRB UE on cell 0, the common case.
    pub fn simple(profile: ChannelProfile, mean_snr_db: f64) -> UeSpec {
        UeSpec {
            profile,
            mean_snr_db,
            drbs: vec![(0, RlcMode::Am)],
            initial_cell: 0,
            mobility: Vec::new(),
        }
    }

    /// Start on a specific cell.
    pub fn on_cell(mut self, cell: usize) -> UeSpec {
        self.initial_cell = cell;
        self
    }

    /// Attach a mobility trajectory.
    pub fn with_mobility(mut self, mobility: MobilitySpec) -> UeSpec {
        self.mobility = mobility;
        self
    }
}

/// How a flow's bytes cross the network (the transport half of a flow;
/// the *what/when* half is its [`AppProfile`]).
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum TransportSpec {
    /// TCP under a typed congestion controller.
    Tcp {
        /// The congestion controller (typed; parse names via
        /// [`CcKind::from_str`](std::str::FromStr)).
        cc: CcKind,
    },
    /// SCReAM RTP/UDP media transport (RFC 8298 flavour, L4S-aware).
    /// Requires an [`AppProfile::FramedVideo`] application, whose
    /// encoder bounds and frame cadence it executes.
    Scream,
    /// Self-clocked UDP Prague (byte/s rate bounds). Carries a greedy
    /// [`AppProfile::Bulk`] application.
    UdpPrague {
        /// Minimum rate in bytes/s.
        min_rate: f64,
        /// Starting rate in bytes/s.
        start_rate: f64,
        /// Maximum rate in bytes/s.
        max_rate: f64,
    },
    /// The loss-resilient FEC/ARQ media endpoint under NADA (RFC 8698)
    /// rate control: a frame-paced UDP sender interleaving sliding-
    /// window repair packets with deadline-bounded NACK retransmission.
    /// Generates its own frames (the codec is the application), so it
    /// carries an [`AppProfile::Bulk`] placeholder; uplink-direction
    /// only. On a bonded flow ([`FlowSpec::bond`]) the sender stripes
    /// frames across both legs by their NADA rates and couples the two
    /// controllers when shared-bottleneck detection fires.
    FecMedia {
        /// Minimum media rate in bytes/s.
        min_rate: f64,
        /// Starting media rate in bytes/s.
        start_rate: f64,
        /// Maximum media rate in bytes/s.
        max_rate: f64,
        /// Frames per second.
        fps: f64,
    },
}

impl TransportSpec {
    /// TCP under `cc`.
    pub fn tcp(cc: CcKind) -> TransportSpec {
        TransportSpec::Tcp { cc }
    }

    /// TCP under the named controller; unknown names are a typed error.
    pub fn tcp_named(name: &str) -> Result<TransportSpec, l4span_cc::UnknownCc> {
        Ok(TransportSpec::Tcp { cc: name.parse()? })
    }

    /// The SCReAM media transport.
    pub fn scream() -> TransportSpec {
        TransportSpec::Scream
    }

    /// UDP Prague with the given byte/s rate bounds.
    pub fn udp_prague(min_rate: f64, start_rate: f64, max_rate: f64) -> TransportSpec {
        TransportSpec::UdpPrague {
            min_rate,
            start_rate,
            max_rate,
        }
    }

    /// The FEC/ARQ media endpoint with the given byte/s rate bounds and
    /// frame cadence.
    pub fn fec_media(min_rate: f64, start_rate: f64, max_rate: f64, fps: f64) -> TransportSpec {
        TransportSpec::FecMedia {
            min_rate,
            start_rate,
            max_rate,
            fps,
        }
    }
}

/// What a flow sends — the **deprecated** closed traffic enum that
/// predates the open application/transport split. Each variant lowers
/// onto an `(AppProfile, TransportSpec)` pair via [`TrafficKind::lower`]
/// (used by [`FlowSpec::from_traffic`]); the lowering is asserted
/// byte-identical to the equivalent new-API scenario.
#[non_exhaustive]
#[derive(Debug, Clone)]
#[deprecated(
    since = "0.1.0",
    note = "use `AppProfile` (what/when bytes are offered) plus \
            `TransportSpec` (how they cross the network) instead"
)]
pub enum TrafficKind {
    /// A greedy (or size-limited) TCP download using the named congestion
    /// control ("prague", "cubic", "bbr2", "bbr", "reno").
    Tcp {
        /// Congestion control name.
        cc: String,
        /// Payload limit in bytes; `None` = long-lived greedy flow.
        app_limit: Option<u64>,
    },
    /// SCReAM interactive video (bit/s bounds and frame rate).
    Scream {
        /// Minimum media bitrate.
        min_bps: f64,
        /// Starting media bitrate.
        start_bps: f64,
        /// Maximum media bitrate.
        max_bps: f64,
        /// Frames per second.
        fps: f64,
    },
    /// UDP Prague (byte/s rate bounds).
    UdpPrague {
        /// Minimum rate in bytes/s.
        min_rate: f64,
        /// Starting rate in bytes/s.
        start_rate: f64,
        /// Maximum rate in bytes/s.
        max_rate: f64,
    },
}

#[allow(deprecated)]
impl TrafficKind {
    /// Lower onto the new application/transport split.
    ///
    /// # Panics
    ///
    /// On an unknown congestion-control name, exactly like the old
    /// stringly construction did (new code should parse a [`CcKind`]
    /// and get the typed error instead).
    pub fn lower(&self) -> (AppProfile, TransportSpec) {
        match self {
            TrafficKind::Tcp { cc, app_limit } => {
                let cc: CcKind = match cc.parse() {
                    Ok(k) => k,
                    Err(e) => panic!("{e}"),
                };
                (
                    AppProfile::Bulk { bytes: *app_limit },
                    TransportSpec::Tcp { cc },
                )
            }
            TrafficKind::Scream {
                min_bps,
                start_bps,
                max_bps,
                fps,
            } => (
                AppProfile::FramedVideo(FramedVideoCfg::new(
                    *fps, *min_bps, *start_bps, *max_bps,
                )),
                TransportSpec::Scream,
            ),
            TrafficKind::UdpPrague {
                min_rate,
                start_rate,
                max_rate,
            } => (
                AppProfile::bulk(),
                TransportSpec::UdpPrague {
                    min_rate: *min_rate,
                    start_rate: *start_rate,
                    max_rate: *max_rate,
                },
            ),
        }
    }
}

/// Direction a flow's *data* travels. The opposite direction always
/// carries that flow's feedback (ACKs, RTCP-like reports).
///
/// * [`Downlink`](FlowDir::Downlink) — the classic shape: a content
///   server sends toward the UE; feedback rides the UE's uplink
///   control path.
/// * [`Uplink`](FlowDir::Uplink) — the sender lives **at the UE**,
///   feeding the per-DRB uplink PDCP/RLC queue; transmission is
///   BSR-solicited and grant-driven, feedback returns on the downlink.
///   The UE-side L4Span instance marks at this queue.
///
/// A *paired* DL+UL application (a video call with both legs) is two
/// flows built together — see [`video_call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowDir {
    /// Server → UE data (the pre-bidirectional default).
    #[default]
    Downlink,
    /// UE → server data (uploads, call/gaming uplink legs).
    Uplink,
}

/// One end-to-end flow: an application over a transport, terminating at
/// a UE, behind a WAN segment.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Index into [`ScenarioConfig::ues`].
    pub ue: usize,
    /// DRB id the flow rides (must exist in the UE's spec).
    pub drb: u8,
    /// The application: what bytes are offered and when.
    pub app: AppProfile,
    /// The transport carrying them.
    pub transport: TransportSpec,
    /// WAN segment between this flow's server and the 5G core.
    pub wan: WanLink,
    /// When the client opens the connection.
    pub start: Instant,
    /// Optional stop time (sender quiesces).
    pub stop: Option<Instant>,
    /// Which direction the data travels (default: downlink).
    pub dir: FlowDir,
    /// Bonded (dual-connectivity) secondary leg: the index of a second
    /// UE — on a **different** cell — whose uplink grants also carry
    /// this flow's packets. `None` = the ordinary single-leg flow.
    /// Bonded flows must be uplink-direction, and neither UE may have a
    /// mobility trajectory (the bond pins both attachments). The server
    /// side joins/reorders the legs and runs RFC 8382-style shared-
    /// bottleneck detection over their one-way delays — see
    /// [`crate::bond`].
    pub bond: Option<usize>,
}

impl FlowSpec {
    /// A downlink flow on the UE's default DRB 0.
    pub fn new(
        ue: usize,
        app: AppProfile,
        transport: TransportSpec,
        wan: WanLink,
        start: Instant,
    ) -> FlowSpec {
        FlowSpec {
            ue,
            drb: 0,
            app,
            transport,
            wan,
            start,
            stop: None,
            dir: FlowDir::Downlink,
            bond: None,
        }
    }

    /// An uplink flow on the UE's default DRB 0: the application and
    /// transport sender live at the UE, data rides grant-driven uplink
    /// slots, feedback returns on the downlink.
    pub fn uplink(
        ue: usize,
        app: AppProfile,
        transport: TransportSpec,
        wan: WanLink,
        start: Instant,
    ) -> FlowSpec {
        FlowSpec::new(ue, app, transport, wan, start).direction(FlowDir::Uplink)
    }

    /// Set the data direction.
    pub fn direction(mut self, dir: FlowDir) -> FlowSpec {
        self.dir = dir;
        self
    }

    /// Ride a specific DRB.
    pub fn on_drb(mut self, drb: u8) -> FlowSpec {
        self.drb = drb;
        self
    }

    /// Quiesce the sender at `stop`.
    pub fn stop_at(mut self, stop: Instant) -> FlowSpec {
        self.stop = Some(stop);
        self
    }

    /// Bond this (uplink) flow across a second UE's grants — see
    /// [`FlowSpec::bond`].
    pub fn bonded(mut self, secondary_ue: usize) -> FlowSpec {
        self.bond = Some(secondary_ue);
        self
    }

    /// **Deprecated** shim: build a flow from the old [`TrafficKind`]
    /// enum. Lowers onto the new API; asserted byte-identical to the
    /// equivalent `(AppProfile, TransportSpec)` construction.
    #[deprecated(
        since = "0.1.0",
        note = "construct with `FlowSpec::new(ue, app, transport, wan, start)`"
    )]
    #[allow(deprecated)]
    pub fn from_traffic(
        ue: usize,
        drb: u8,
        traffic: TrafficKind,
        wan: WanLink,
        start: Instant,
        stop: Option<Instant>,
    ) -> FlowSpec {
        let (app, transport) = traffic.lower();
        FlowSpec {
            ue,
            drb,
            app,
            transport,
            wan,
            start,
            stop,
            dir: FlowDir::Downlink,
            bond: None,
        }
    }
}

/// Both legs of one interactive call as a single app-level construct:
/// a downlink [`FramedVideoCfg`] leg and an uplink one on the same UE,
/// DRB, transport, and WAN segment, starting together. Returns
/// `(downlink_leg, uplink_leg)` — push both into
/// [`ScenarioConfig::flows`].
pub fn video_call(
    ue: usize,
    dl: FramedVideoCfg,
    ul: FramedVideoCfg,
    cc: CcKind,
    wan: WanLink,
    start: Instant,
) -> (FlowSpec, FlowSpec) {
    (
        FlowSpec::new(
            ue,
            AppProfile::FramedVideo(dl),
            TransportSpec::tcp(cc),
            wan,
            start,
        ),
        FlowSpec::uplink(
            ue,
            AppProfile::FramedVideo(ul),
            TransportSpec::tcp(cc),
            wan,
            start,
        ),
    )
}

/// A wired bottleneck between the servers and the core (Fig. 2's
/// middlebox). `schedule` entries change the rate mid-run.
#[derive(Debug, Clone)]
pub struct BottleneckSpec {
    /// Initial service rate in bit/s.
    pub rate_bps: f64,
    /// (time, new rate) pairs.
    pub schedule: Vec<(Instant, f64)>,
    /// Run DualPi2 on it (an "L4S+" middlebox) instead of droptail.
    pub l4s_aqm: bool,
}

/// A complete experiment description.
///
/// Construct with [`ScenarioConfig::new`] and mutate fields; the struct
/// is `#[non_exhaustive]` so future knobs aren't semver breaks.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed (every stochastic element derives from it).
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Configuration of cell 0 (and the template the canned single-cell
    /// builders populate).
    pub cell: CellConfig,
    /// Configurations of cells 1.. — push one per additional cell (or use
    /// [`ScenarioConfig::add_cell`]). UEs migrate between cells per their
    /// [`UeSpec::mobility`] trajectories.
    pub extra_cells: Vec<CellConfig>,
    /// MAC scheduler (all cells).
    pub scheduler: SchedulerKind,
    /// The UEs.
    pub ues: Vec<UeSpec>,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// CU marker.
    pub marker: MarkerKind,
    /// What the marker does with a DRB's estimation state at handover.
    pub marker_ho_policy: HandoverPolicy,
    /// Optional wired bottleneck.
    pub bottleneck: Option<BottleneckSpec>,
    /// Optional mid-path impairment pipeline between server egress and
    /// the core (ECT bleaching / remarking / drop, RFC 3168 classic
    /// hop). `None` keeps the path ECN-faithful and byte-identical to
    /// the pre-impairment world.
    pub impairment: Option<ImpairmentSpec>,
    /// Deploy one CU-UP marker instance **per cell** instead of a single
    /// central one (and likewise per-cell UE-side uplink markers). This
    /// is the distributed CU-UP deployment of §5 — marker state follows
    /// the UE across cells via Xn context transfer at handover — and the
    /// property that makes a scenario shardable by cell: with per-cell
    /// instances, no RNG stream or table is shared across cells, so
    /// per-cell event order alone determines every marking decision.
    /// Defaults to `false`, which keeps the original single-instance
    /// topology (and its RNG streams) byte-for-byte.
    pub cu_per_cell: bool,
    /// Throughput bin width for the report.
    pub thr_bin: Duration,
    /// Record wall-clock processing time of each marker event (the
    /// Fig. 21 / Table 1 instrumentation; off by default as it perturbs
    /// nothing but costs two clock reads per packet).
    pub measure_marker_time: bool,
    /// Record per-subsystem wall-clock cycle totals (gNB slot tick, UE
    /// stacks, UL grant/BSR path, marker, wired core, transport,
    /// metrics bookkeeping) into [`crate::Report::cycles`] via a
    /// [`l4span_sim::CycleScope`]. The attribution tool behind the
    /// `fig_breakdown` bench bin; off by default — a disabled scope
    /// costs one predictable branch per span — and, like
    /// `measure_marker_time`, it reads only the OS clock, so enabling
    /// it never changes a fingerprint.
    pub measure_cycles: bool,
    /// **Deprecated** single-cell shim: mid-run channel replacements as
    /// (time, ue index, new profile, new mean SNR dB), applied to the
    /// UE's *serving* cell. Equivalent to a [`MobilityStep`] naming the
    /// serving cell; kept so pre-multi-cell scenarios run with unchanged
    /// semantics. New code should use [`UeSpec::mobility`], which also
    /// expresses genuine inter-cell handover.
    pub channel_events: Vec<(Instant, usize, ChannelProfile, f64)>,
}

impl ScenarioConfig {
    /// A skeleton with sane defaults, one cell, and no UEs/flows.
    pub fn new(seed: u64, duration: Duration) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            duration,
            cell: CellConfig::default(),
            extra_cells: Vec::new(),
            scheduler: SchedulerKind::RoundRobin,
            ues: Vec::new(),
            flows: Vec::new(),
            marker: MarkerKind::None,
            marker_ho_policy: HandoverPolicy::default(),
            bottleneck: None,
            impairment: None,
            cu_per_cell: false,
            thr_bin: Duration::from_millis(100),
            measure_marker_time: false,
            measure_cycles: false,
            channel_events: Vec::new(),
        }
    }

    /// Number of cells in the topology.
    pub fn n_cells(&self) -> usize {
        1 + self.extra_cells.len()
    }

    /// Configuration of cell `c`.
    pub fn cell_config(&self, c: usize) -> &CellConfig {
        if c == 0 {
            &self.cell
        } else {
            &self.extra_cells[c - 1]
        }
    }

    /// Append another cell; returns its index.
    pub fn add_cell(&mut self, cfg: CellConfig) -> usize {
        self.extra_cells.push(cfg);
        self.extra_cells.len()
    }
}

/// The Fig. 9 style workload: `n` UEs, one greedy TCP download each.
///
/// Mean SNRs spread deterministically between 19 and 27 dB so the cell
/// has centre and edge users.
#[allow(clippy::too_many_arguments)] // positional form is part of the documented quickstart
pub fn congested_cell(
    n_ues: usize,
    cc: &str,
    mix: ChannelMix,
    rlc_queue_sdus: usize,
    wan: WanLink,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.cell.rlc_queue_sdus = rlc_queue_sdus;
    cfg.marker = marker;
    let cc = parse_cc(cc);
    for i in 0..n_ues {
        let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
        cfg.ues.push(UeSpec::simple(mix.profile(i), snr));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::bulk(),
            TransportSpec::tcp(cc),
            wan,
            // Stagger starts inside the first 200 ms so handshakes don't
            // collide on slot boundaries.
            Instant::from_millis(3 * i as u64 % 200),
        ));
    }
    cfg
}

/// The deployment-question workload: [`congested_cell`] behind an
/// impaired Internet path. The pipeline sits between server egress and
/// the core, so every downlink data packet crosses it before the RAN;
/// pass e.g. `ImpairmentSpec::bleaching(0.25).then_classic_hop(2e8)`
/// to model an ECT-bleaching middlebox feeding an RFC 3168 single-queue
/// hop.
pub fn impaired_path_cell(
    n_ues: usize,
    cc: &str,
    impairment: ImpairmentSpec,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = congested_cell(
        n_ues,
        cc,
        ChannelMix::Mobile,
        16_384,
        WanLink::east(),
        marker,
        seed,
        duration,
    );
    cfg.impairment = Some(impairment);
    cfg
}

/// Parse a congestion-control name for a canned builder.
///
/// # Panics
///
/// On unknown names — the canned builders take paper names for
/// quickstart ergonomics; the typed error path is
/// `name.parse::<CcKind>()`.
fn parse_cc(cc: &str) -> CcKind {
    match cc.parse() {
        Ok(k) => k,
        Err(e) => panic!("{e}"),
    }
}

/// An L4Span marker with the paper's defaults.
pub fn l4span_default() -> MarkerKind {
    MarkerKind::L4Span(L4SpanConfig::default())
}

/// The mobility workload: two identical cells, `n_ues` UEs with one
/// greedy TCP download each, every UE ping-ponging between the cells
/// with period `ho_period` (staggered across UEs so handovers don't
/// synchronise). Cell 0 is the "good" side (≈21–29 dB), cell 1 the
/// "bad" one (≈12–20 dB), so every other handover is the paper's
/// "channel sharply turns bad" — the regime where the marker's
/// [`HandoverPolicy`] choice shows up in post-handover delay.
pub fn handover_cell(
    n_ues: usize,
    cc: &str,
    ho_period: Duration,
    policy: HandoverPolicy,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.marker = marker;
    cfg.marker_ho_policy = policy;
    let second = cfg.cell.clone();
    cfg.add_cell(second);
    for i in 0..n_ues {
        let jitter = 8.0 * (i as f64 * 0.6180339887).fract();
        let snr_toward = |cell: usize| if cell == 0 { 21.0 + jitter } else { 12.0 + jitter };
        let home = i % 2;
        let mut steps = Vec::new();
        let mut cur = home;
        let mut t = ho_period + Duration::from_millis(50 * i as u64);
        while t < duration {
            cur = 1 - cur;
            steps.push(MobilityStep::new(
                Instant::ZERO + t,
                cur,
                ChannelProfile::Pedestrian,
                snr_toward(cur),
            ));
            t += ho_period;
        }
        cfg.ues.push(
            UeSpec::simple(ChannelProfile::Pedestrian, snr_toward(home))
                .on_cell(home)
                .with_mobility(steps),
        );
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::bulk(),
            TransportSpec::tcp(parse_cc(cc)),
            WanLink::east(),
            Instant::from_millis(3 * i as u64 % 200),
        ));
    }
    cfg
}

/// The interactive-applications workload: `n_groups` groups of three
/// UEs — a frame-paced video call (30 fps, keyframes, 0.5–8 Mbit/s
/// encoder), a web/RPC session (256 kB responses, 200 ms think), and a
/// greedy bulk download — all over TCP under `cc`, sharing one cell.
/// This is the canonical mixed-QoE scenario: the video flows populate
/// the frame OWD / deadline-miss / stall metrics, the web flows the
/// request-completion distribution, and the bulk flows keep the cell
/// congested so the marker has work to do.
pub fn interactive_apps_mixed(
    n_groups: usize,
    cc: &str,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.marker = marker;
    let cc = parse_cc(cc);
    for g in 0..n_groups {
        for (k, app) in [
            AppProfile::FramedVideo(
                FramedVideoCfg::new(30.0, 0.5e6, 2.0e6, 8.0e6).with_keyframes(30, 3.0),
            ),
            AppProfile::request_response(256 * 1024, Duration::from_millis(200), None),
            AppProfile::bulk(),
        ]
        .into_iter()
        .enumerate()
        {
            let i = 3 * g + k;
            let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
            cfg.ues.push(UeSpec::simple(ChannelMix::Mobile.profile(i), snr));
            cfg.flows.push(FlowSpec::new(
                i,
                app,
                TransportSpec::tcp(cc),
                WanLink::east(),
                Instant::from_millis(3 * i as u64 % 200),
            ));
        }
    }
    cfg
}

/// The bidirectional-call workload: `n_calls` UEs each running a full
/// two-way video call — a 30 fps downlink leg *and* a 30 fps uplink leg
/// (0.5–8 Mbit/s encoders with keyframes) over TCP under `cc`, sharing
/// one cell. The TDD pattern gives the uplink only one slot in five
/// (≈11 Mbit/s shared), so the uplink legs congest the UE-side queues
/// well before the downlink ones congest the cell: this is the scenario
/// where the UE-side L4Span instance (SR/BSR-and-grant-driven delay
/// prediction) earns its keep, and the canonical perf-gate entry for
/// the bidirectional data path.
pub fn video_call_bidir(
    n_calls: usize,
    cc: &str,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.marker = marker;
    let cc = parse_cc(cc);
    let leg = FramedVideoCfg::new(30.0, 0.5e6, 2.0e6, 8.0e6).with_keyframes(30, 3.0);
    for i in 0..n_calls {
        let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
        cfg.ues.push(UeSpec::simple(ChannelMix::Mobile.profile(i), snr));
        let start = Instant::from_millis(3 * i as u64 % 200);
        let (dl, ul) = video_call(i, leg, leg, cc, WanLink::east(), start);
        cfg.flows.push(dl);
        cfg.flows.push(ul);
    }
    cfg
}

/// The metro-scale workload: `n_cells` cells, `ues_per_cell` UEs each
/// (UE `i` homes on cell `i % n_cells`), running the interactive-apps
/// traffic mix — every third UE a frame-paced video call, every third a
/// web/RPC session, every third a greedy bulk download, all downlink
/// TCP under `cc`. Every fourth UE is a *mover*: it ping-pongs between
/// its home cell and the next cell over every 400 ms, with per-UE phase
/// offsets so churn is continuous rather than synchronised.
///
/// Built for intra-scenario sharding (`cu_per_cell = true`, one marker
/// instance per cell), with two deterministic alignment rules that keep
/// the fingerprint byte-invariant to shard count:
///
/// * mobility times sit on slot boundaries but ≡ 2.5 ms (mod 5 ms), so
///   a handover barrier never coincides with a Sample or UePoll tick;
/// * flow starts sit at ≡ 137 µs (mod 1 ms), so they never coincide
///   with a slot boundary or a mobility step.
pub fn metro_city(
    n_cells: usize,
    ues_per_cell: usize,
    cc: &str,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    assert!(n_cells >= 2, "metro needs at least two cells");
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.marker = marker;
    cfg.cu_per_cell = true;
    let template = cfg.cell.clone();
    for _ in 1..n_cells {
        cfg.add_cell(template.clone());
    }
    let cc = parse_cc(cc);
    let n_ues = n_cells * ues_per_cell;
    for i in 0..n_ues {
        let home = i % n_cells;
        let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
        let app = match i % 3 {
            0 => AppProfile::FramedVideo(
                FramedVideoCfg::new(30.0, 0.5e6, 2.0e6, 8.0e6).with_keyframes(30, 3.0),
            ),
            1 => AppProfile::request_response(256 * 1024, Duration::from_millis(200), None),
            _ => AppProfile::bulk(),
        };
        let mut steps = Vec::new();
        if i % 40 == 0 {
            // Mover: ping-pong home ↔ next cell on a 2 s period. Phases
            // are slot-aligned and staggered 62.5 ms apart so no two
            // movers ever share a handover barrier — each barrier costs
            // a source-shard queue drain, so churn is deliberately ~a
            // dozen handovers per simulated second, not per UE.
            let neighbour = (home + 1) % n_cells;
            let mut t = Duration::from_micros(152_500 + (i as u64 / 40) * 62_500);
            let mut cur = home;
            while t < duration {
                cur = if cur == home { neighbour } else { home };
                let toward = if cur == home { snr } else { snr - 3.0 };
                steps.push(MobilityStep::new(
                    Instant::ZERO + t,
                    cur,
                    ChannelMix::Mobile.profile(i),
                    toward,
                ));
                t += Duration::from_secs(2);
            }
        }
        cfg.ues.push(
            UeSpec::simple(ChannelMix::Mobile.profile(i), snr)
                .on_cell(home)
                .with_mobility(steps),
        );
        cfg.flows.push(FlowSpec::new(
            i,
            app,
            TransportSpec::tcp(cc),
            WanLink::east(),
            Instant::from_micros((3_000 * i as u64) % 200_000 + 137),
        ));
    }
    cfg
}

/// The XR-upload bonding workload: two cells and `n_devices` head-
/// mounted devices, each running one **uplink** media flow. With
/// `bonded = false` device `i` is a single UE homed on cell `i % 2`;
/// with `bonded = true` each device owns two radios — a primary UE on
/// cell `i % 2` and a secondary on the *other* cell — and its flow is
/// striped across both legs dual-connectivity style ([`FlowSpec::bond`]
/// names the secondary).
///
/// The transport follows the controller name: `"fec-media"` gets the
/// native [`TransportSpec::FecMedia`] endpoint (60 fps, 1.2–20 Mbit/s
/// encoder bounds, sliding-window FEC + NACK repair); any TCP-family
/// name (`"nada"`, `"prague"`, `"cubic"`, …) gets a 60 fps
/// [`AppProfile::FramedVideo`] over [`TransportSpec::Tcp`] with the
/// same encoder bounds, so the `fig_bonding` sweep compares controllers
/// on identical offered load.
///
/// `cu_per_cell` is on (one marker instance per cell) and nobody moves:
/// a bond pins both attachments, and keeping the single-leg variant on
/// the same topology keeps the comparison clean.
pub fn xr_bonding_cell(
    n_devices: usize,
    cc: &str,
    marker: MarkerKind,
    bonded: bool,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.marker = marker;
    cfg.cu_per_cell = true;
    let second = cfg.cell.clone();
    cfg.add_cell(second);
    // 1.2–20 Mbit/s @ 60 fps: the XR split-rendering upload envelope.
    let (min_bps, start_bps, max_bps, fps) = (1.2e6, 4.0e6, 20.0e6, 60.0);
    let (app, transport) = if cc == "fec-media" {
        (
            AppProfile::bulk(),
            TransportSpec::fec_media(min_bps / 8.0, start_bps / 8.0, max_bps / 8.0, fps),
        )
    } else {
        (
            AppProfile::FramedVideo(FramedVideoCfg::new(fps, min_bps, start_bps, max_bps)),
            TransportSpec::tcp(parse_cc(cc)),
        )
    };
    for i in 0..n_devices {
        let home = i % 2;
        let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
        cfg.ues.push(UeSpec::simple(ChannelMix::Mobile.profile(i), snr).on_cell(home));
        let mut flow = FlowSpec::uplink(
            i,
            app.clone(),
            transport.clone(),
            WanLink::east(),
            // Same start alignment as the metro world: ≡137 µs (mod
            // 1 ms), never on a slot boundary.
            Instant::from_micros((3_000 * i as u64) % 200_000 + 137),
        );
        if bonded {
            flow = flow.bonded(n_devices + i);
        }
        cfg.flows.push(flow);
    }
    if bonded {
        // Secondary radios, each on the other cell from its device's
        // primary, with a slightly worse channel (the secondary leg is
        // the opportunistic one).
        for i in 0..n_devices {
            let away = 1 - i % 2;
            let snr = 16.0 + 8.0 * (i as f64 * 0.6180339887).fract();
            cfg.ues
                .push(UeSpec::simple(ChannelMix::Mobile.profile(i + 1), snr).on_cell(away));
        }
    }
    cfg
}

/// The canonical bonding scenario: 8 XR devices, each bonded across
/// the two cells, running the FEC/ARQ media endpoint under NADA with
/// the L4Span marker per cell. The perf-gate row for the bonded
/// uplink data path; bonded flows serialize the world (the two legs
/// couple the cells), so the shard planner must reject sharding it.
pub fn bonded_xr_8ue(seed: u64, duration: Duration) -> ScenarioConfig {
    xr_bonding_cell(8, "fec-media", l4span_default(), true, seed, duration)
}

/// The canonical metro world: 50 cells × 20 UEs = 1000 UEs of mixed
/// interactive traffic with continuous handover churn, sharded per cell
/// (`cu_per_cell`). The perf-gate scenario for the ≥10M aggregate
/// events/sec bar.
pub fn metro_1000ue_50cell(cc: &str, seed: u64, duration: Duration) -> ScenarioConfig {
    metro_city(50, 20, cc, l4span_default(), seed, duration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mix_assignment() {
        assert_eq!(ChannelMix::Static.profile(3), ChannelProfile::Static);
        assert_eq!(ChannelMix::Mobile.profile(0), ChannelProfile::Pedestrian);
        assert_eq!(ChannelMix::Mobile.profile(1), ChannelProfile::Vehicular);
    }

    #[test]
    fn handover_cell_builder_shapes() {
        let cfg = handover_cell(
            4,
            "cubic",
            Duration::from_secs(1),
            HandoverPolicy::ColdStart,
            l4span_default(),
            3,
            Duration::from_secs(4),
        );
        assert_eq!(cfg.n_cells(), 2);
        assert_eq!(cfg.ues.len(), 4);
        assert_eq!(cfg.marker_ho_policy, HandoverPolicy::ColdStart);
        for (i, ue) in cfg.ues.iter().enumerate() {
            assert_eq!(ue.initial_cell, i % 2);
            assert!(
                ue.mobility.len() >= 2,
                "ue{i}: at least one handover per second of slack"
            );
            // Every step flips the cell relative to the previous one.
            let mut cur = ue.initial_cell;
            for s in &ue.mobility {
                assert_ne!(s.cell, cur, "ping-pong trajectory");
                assert!(s.cell < cfg.n_cells());
                cur = s.cell;
            }
        }
    }

    #[test]
    fn add_cell_and_cell_config_indexing() {
        let mut cfg = ScenarioConfig::new(1, Duration::from_secs(1));
        let small = CellConfig {
            n_prbs: 24,
            ..CellConfig::default()
        };
        let idx = cfg.add_cell(small);
        assert_eq!(idx, 1);
        assert_eq!(cfg.n_cells(), 2);
        assert_eq!(cfg.cell_config(0).n_prbs, 51);
        assert_eq!(cfg.cell_config(1).n_prbs, 24);
    }

    #[test]
    fn interactive_apps_mixed_builder_shapes() {
        let cfg = interactive_apps_mixed(
            2,
            "prague",
            l4span_default(),
            3,
            Duration::from_secs(2),
        );
        assert_eq!(cfg.ues.len(), 6);
        assert_eq!(cfg.flows.len(), 6);
        let videos = cfg
            .flows
            .iter()
            .filter(|f| matches!(f.app, AppProfile::FramedVideo(_)))
            .count();
        let webs = cfg
            .flows
            .iter()
            .filter(|f| matches!(f.app, AppProfile::RequestResponse(_)))
            .count();
        assert_eq!((videos, webs), (2, 2));
        assert!(cfg
            .flows
            .iter()
            .all(|f| matches!(f.transport, TransportSpec::Tcp { cc: CcKind::Prague })));
    }

    #[test]
    #[allow(deprecated)]
    fn traffic_kind_lowering_maps_every_variant() {
        let (app, tr) = TrafficKind::Tcp {
            cc: "cubic".into(),
            app_limit: Some(14_000),
        }
        .lower();
        assert!(matches!(app, AppProfile::Bulk { bytes: Some(14_000) }));
        assert!(matches!(tr, TransportSpec::Tcp { cc: CcKind::Cubic }));

        let (app, tr) = TrafficKind::Scream {
            min_bps: 1.0,
            start_bps: 2.0,
            max_bps: 3.0,
            fps: 25.0,
        }
        .lower();
        match app {
            AppProfile::FramedVideo(v) => {
                assert_eq!((v.min_bps, v.start_bps, v.max_bps, v.fps), (1.0, 2.0, 3.0, 25.0));
                assert_eq!(v.keyframe_every, 0, "the shim has no keyframe pattern");
            }
            other => panic!("expected FramedVideo, got {other:?}"),
        }
        assert!(matches!(tr, TransportSpec::Scream));

        let (app, tr) = TrafficKind::UdpPrague {
            min_rate: 1.0,
            start_rate: 2.0,
            max_rate: 3.0,
        }
        .lower();
        assert!(matches!(app, AppProfile::Bulk { bytes: None }));
        assert!(matches!(tr, TransportSpec::UdpPrague { .. }));
    }

    #[test]
    #[should_panic(expected = "unknown congestion control")]
    #[allow(deprecated)]
    fn traffic_kind_lowering_panics_on_unknown_cc_like_the_old_path() {
        let _ = TrafficKind::Tcp {
            cc: "vegas".into(),
            app_limit: None,
        }
        .lower();
    }

    #[test]
    fn video_call_bidir_builder_pairs_legs() {
        let cfg = video_call_bidir(3, "prague", l4span_default(), 5, Duration::from_secs(2));
        assert_eq!(cfg.ues.len(), 3);
        assert_eq!(cfg.flows.len(), 6, "one DL and one UL leg per call");
        for (i, pair) in cfg.flows.chunks(2).enumerate() {
            assert_eq!(pair[0].dir, FlowDir::Downlink);
            assert_eq!(pair[1].dir, FlowDir::Uplink);
            assert_eq!(pair[0].ue, i);
            assert_eq!(pair[1].ue, i);
            assert_eq!(pair[0].start, pair[1].start, "legs start together");
            assert!(matches!(pair[1].app, AppProfile::FramedVideo(_)));
        }
    }

    #[test]
    fn xr_bonding_builder_shapes() {
        let single = xr_bonding_cell(
            8,
            "prague",
            l4span_default(),
            false,
            7,
            Duration::from_secs(2),
        );
        assert_eq!(single.n_cells(), 2);
        assert_eq!(single.ues.len(), 8);
        assert_eq!(single.flows.len(), 8);
        assert!(single.flows.iter().all(|f| f.bond.is_none()));
        assert!(single
            .flows
            .iter()
            .all(|f| f.dir == FlowDir::Uplink && matches!(f.app, AppProfile::FramedVideo(_))));

        let bonded = bonded_xr_8ue(7, Duration::from_secs(2));
        assert_eq!(bonded.n_cells(), 2);
        assert_eq!(bonded.ues.len(), 16, "8 primaries + 8 secondaries");
        assert_eq!(bonded.flows.len(), 8, "one flow per device, not per leg");
        assert!(bonded.cu_per_cell);
        for (i, f) in bonded.flows.iter().enumerate() {
            assert_eq!(f.ue, i);
            assert_eq!(f.bond, Some(8 + i), "secondary is the i-th extra UE");
            assert_eq!(f.dir, FlowDir::Uplink);
            assert!(matches!(f.transport, TransportSpec::FecMedia { .. }));
            // The two legs home on different cells and neither moves.
            let (p, s) = (&bonded.ues[f.ue], &bonded.ues[f.bond.unwrap()]);
            assert_ne!(p.initial_cell, s.initial_cell);
            assert!(p.mobility.is_empty() && s.mobility.is_empty());
        }
    }

    #[test]
    fn congested_cell_builder_shapes() {
        let cfg = congested_cell(
            16,
            "prague",
            ChannelMix::Mobile,
            256,
            WanLink::east(),
            l4span_default(),
            1,
            Duration::from_secs(10),
        );
        assert_eq!(cfg.ues.len(), 16);
        assert_eq!(cfg.flows.len(), 16);
        assert_eq!(cfg.cell.rlc_queue_sdus, 256);
        // SNRs differ across UEs.
        assert_ne!(cfg.ues[0].mean_snr_db, cfg.ues[1].mean_snr_db);
    }
}

//! Declarative scenario descriptions plus canned builders for the
//! paper's experiments.

use l4span_cc::WanLink;
use l4span_core::L4SpanConfig;
use l4span_ran::config::{CellConfig, RlcMode, SchedulerKind};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

use crate::marker::MarkerKind;

/// How UEs' channel profiles are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelMix {
    /// Everyone static.
    Static,
    /// Everyone pedestrian.
    Pedestrian,
    /// Everyone vehicular.
    Vehicular,
    /// The paper's "mobile": half pedestrian, half vehicular.
    Mobile,
}

impl ChannelMix {
    /// Profile of the `i`-th UE under this mix.
    pub fn profile(self, i: usize) -> ChannelProfile {
        match self {
            ChannelMix::Static => ChannelProfile::Static,
            ChannelMix::Pedestrian => ChannelProfile::Pedestrian,
            ChannelMix::Vehicular => ChannelProfile::Vehicular,
            ChannelMix::Mobile => {
                if i.is_multiple_of(2) {
                    ChannelProfile::Pedestrian
                } else {
                    ChannelProfile::Vehicular
                }
            }
        }
    }
}

/// One UE in the cell.
#[derive(Debug, Clone)]
pub struct UeSpec {
    /// Channel profile.
    pub profile: ChannelProfile,
    /// Mean SNR in dB (cell-edge vs cell-centre diversity).
    pub mean_snr_db: f64,
    /// DRBs to configure (id, RLC mode). The first is the default.
    pub drbs: Vec<(u8, RlcMode)>,
}

impl UeSpec {
    /// A single-AM-DRB UE, the common case.
    pub fn simple(profile: ChannelProfile, mean_snr_db: f64) -> UeSpec {
        UeSpec {
            profile,
            mean_snr_db,
            drbs: vec![(0, RlcMode::Am)],
        }
    }
}

/// What a flow sends.
#[derive(Debug, Clone)]
pub enum TrafficKind {
    /// A greedy (or size-limited) TCP download using the named congestion
    /// control ("prague", "cubic", "bbr2", "bbr", "reno").
    Tcp {
        /// Congestion control name.
        cc: String,
        /// Payload limit in bytes; `None` = long-lived greedy flow.
        app_limit: Option<u64>,
    },
    /// SCReAM interactive video (bit/s bounds and frame rate).
    Scream {
        /// Minimum media bitrate.
        min_bps: f64,
        /// Starting media bitrate.
        start_bps: f64,
        /// Maximum media bitrate.
        max_bps: f64,
        /// Frames per second.
        fps: f64,
    },
    /// UDP Prague (byte/s rate bounds).
    UdpPrague {
        /// Minimum rate in bytes/s.
        min_rate: f64,
        /// Starting rate in bytes/s.
        start_rate: f64,
        /// Maximum rate in bytes/s.
        max_rate: f64,
    },
}

/// One end-to-end flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Index into [`ScenarioConfig::ues`].
    pub ue: usize,
    /// DRB id the flow rides (must exist in the UE's spec).
    pub drb: u8,
    /// Traffic generator.
    pub traffic: TrafficKind,
    /// WAN segment between this flow's server and the 5G core.
    pub wan: WanLink,
    /// When the client opens the connection.
    pub start: Instant,
    /// Optional stop time (sender quiesces).
    pub stop: Option<Instant>,
}

/// A wired bottleneck between the servers and the core (Fig. 2's
/// middlebox). `schedule` entries change the rate mid-run.
#[derive(Debug, Clone)]
pub struct BottleneckSpec {
    /// Initial service rate in bit/s.
    pub rate_bps: f64,
    /// (time, new rate) pairs.
    pub schedule: Vec<(Instant, f64)>,
    /// Run DualPi2 on it (an "L4S+" middlebox) instead of droptail.
    pub l4s_aqm: bool,
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// RNG seed (every stochastic element derives from it).
    pub seed: u64,
    /// Simulated duration.
    pub duration: Duration,
    /// Cell configuration.
    pub cell: CellConfig,
    /// MAC scheduler.
    pub scheduler: SchedulerKind,
    /// The UEs.
    pub ues: Vec<UeSpec>,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// CU marker.
    pub marker: MarkerKind,
    /// Optional wired bottleneck.
    pub bottleneck: Option<BottleneckSpec>,
    /// Throughput bin width for the report.
    pub thr_bin: Duration,
    /// Record wall-clock processing time of each marker event (the
    /// Fig. 21 / Table 1 instrumentation; off by default as it perturbs
    /// nothing but costs two clock reads per packet).
    pub measure_marker_time: bool,
    /// Mid-run channel replacements: (time, ue index, new profile, new
    /// mean SNR dB). Models handover / abrupt channel change (paper §7
    /// and the Fig. 4 running example's "channel sharply turns bad").
    pub channel_events: Vec<(Instant, usize, ChannelProfile, f64)>,
}

impl ScenarioConfig {
    /// A skeleton with sane defaults and no UEs/flows.
    pub fn new(seed: u64, duration: Duration) -> ScenarioConfig {
        ScenarioConfig {
            seed,
            duration,
            cell: CellConfig::default(),
            scheduler: SchedulerKind::RoundRobin,
            ues: Vec::new(),
            flows: Vec::new(),
            marker: MarkerKind::None,
            bottleneck: None,
            thr_bin: Duration::from_millis(100),
            measure_marker_time: false,
            channel_events: Vec::new(),
        }
    }
}

/// The Fig. 9 style workload: `n` UEs, one greedy TCP download each.
///
/// Mean SNRs spread deterministically between 19 and 27 dB so the cell
/// has centre and edge users.
#[allow(clippy::too_many_arguments)] // positional form is part of the documented quickstart
pub fn congested_cell(
    n_ues: usize,
    cc: &str,
    mix: ChannelMix,
    rlc_queue_sdus: usize,
    wan: WanLink,
    marker: MarkerKind,
    seed: u64,
    duration: Duration,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, duration);
    cfg.cell.rlc_queue_sdus = rlc_queue_sdus;
    cfg.marker = marker;
    for i in 0..n_ues {
        let snr = 19.0 + 8.0 * (i as f64 * 0.6180339887).fract();
        cfg.ues.push(UeSpec::simple(mix.profile(i), snr));
        cfg.flows.push(FlowSpec {
            ue: i,
            drb: 0,
            traffic: TrafficKind::Tcp {
                cc: cc.to_string(),
                app_limit: None,
            },
            wan,
            // Stagger starts inside the first 200 ms so handshakes don't
            // collide on slot boundaries.
            start: Instant::from_millis(3 * i as u64 % 200),
            stop: None,
        });
    }
    cfg
}

/// An L4Span marker with the paper's defaults.
pub fn l4span_default() -> MarkerKind {
    MarkerKind::L4Span(L4SpanConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_mix_assignment() {
        assert_eq!(ChannelMix::Static.profile(3), ChannelProfile::Static);
        assert_eq!(ChannelMix::Mobile.profile(0), ChannelProfile::Pedestrian);
        assert_eq!(ChannelMix::Mobile.profile(1), ChannelProfile::Vehicular);
    }

    #[test]
    fn congested_cell_builder_shapes() {
        let cfg = congested_cell(
            16,
            "prague",
            ChannelMix::Mobile,
            256,
            WanLink::east(),
            l4span_default(),
            1,
            Duration::from_secs(10),
        );
        assert_eq!(cfg.ues.len(), 16);
        assert_eq!(cfg.flows.len(), 16);
        assert_eq!(cfg.cell.rlc_queue_sdus, 256);
        // SNRs differ across UEs.
        assert_ne!(cfg.ues[0].mean_snr_db, cfg.ues[1].mean_snr_db);
    }
}

//! RAN-layer invariants under randomised inputs: scheduler conservation,
//! PHY monotonicity, channel purity, whole-cell byte conservation, and
//! the uplink data plane's grant/BSR/ARQ contracts.

use proptest::prelude::*;

use l4span_net::{Ecn, PacketBuf, TcpHeader};
use l4span_ran::channel::{ChannelProfile, FadingChannel};
use l4span_ran::config::{CellConfig, RlcMode, SchedulerKind};
use l4span_ran::ids::{Qfi, UeId};
use l4span_ran::mac::{allocate_proportional_fair, allocate_round_robin, Candidate};
use l4span_ran::phy;
use l4span_ran::{DrbId, Gnb, UeStack, UlTbOutcome};
use l4span_sim::{Duration, Instant, SimRng};

fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(
        (0usize..1_000_000, 0usize..4000, 0.0f64..1e6),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (backlog, per_rbg, avg))| Candidate {
                ue: UeId(i as u16),
                backlog,
                bytes_per_rbg: per_rbg,
                avg_throughput: avg,
            })
            .collect()
    })
}

proptest! {
    /// Neither scheduler ever over-allocates RBGs, grants them to UEs
    /// without backlog, or grants zero-size allocations.
    #[test]
    fn schedulers_conserve_rbgs(cands in arb_candidates(), n_rbgs in 1usize..20) {
        let mut cursor = 0;
        for grants in [
            allocate_round_robin(&cands, n_rbgs, &mut cursor),
            allocate_proportional_fair(&cands, n_rbgs),
        ] {
            let total: usize = grants.iter().map(|&(_, n)| n).sum();
            prop_assert!(total <= n_rbgs, "over-allocated: {total}/{n_rbgs}");
            for (ue, n) in grants {
                prop_assert!(n > 0);
                let c = cands.iter().find(|c| c.ue == ue).unwrap();
                prop_assert!(c.backlog > 0 && c.bytes_per_rbg > 0);
            }
        }
    }

    /// TBS grows monotonically with both CQI and PRB count.
    #[test]
    fn tbs_is_monotone(prbs in 1usize..52, cqi in 1u8..15) {
        prop_assert!(phy::tbs_bytes(cqi, prbs, 126) <= phy::tbs_bytes(cqi + 1, prbs, 126));
        prop_assert!(phy::tbs_bytes(cqi, prbs, 126) <= phy::tbs_bytes(cqi, prbs + 1, 126));
    }

    /// BLER is monotone decreasing in SNR for every CQI.
    #[test]
    fn bler_monotone_in_snr(cqi in 1u8..=15, snr10 in -100i32..300) {
        let s = snr10 as f64 / 10.0;
        prop_assert!(phy::bler(cqi, s) >= phy::bler(cqi, s + 0.5) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&phy::bler(cqi, s)));
    }

    /// The fading channel is a pure function of time: re-querying any
    /// instant gives the identical SNR, independent of query order.
    #[test]
    fn channel_is_pure(
        seed in any::<u64>(),
        times in proptest::collection::vec(0u64..10_000_000, 2..20),
        profile in prop_oneof![
            Just(ChannelProfile::Static),
            Just(ChannelProfile::Pedestrian),
            Just(ChannelProfile::Vehicular)
        ],
    ) {
        let mut rng = SimRng::new(seed);
        let ch = FadingChannel::new(profile, 20.0, 3.75e9, &mut rng);
        let forward: Vec<f64> = times.iter().map(|&t| ch.snr_db(Instant::from_micros(t))).collect();
        let backward: Vec<f64> =
            times.iter().rev().map(|&t| ch.snr_db(Instant::from_micros(t))).collect();
        for (a, b) in forward.iter().zip(backward.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Whole-cell conservation: every enqueued SDU is eventually either
    /// delivered (counted via segments), still queued, in flight, or was
    /// tail-dropped — bytes never appear from nowhere.
    #[test]
    fn gnb_never_creates_bytes(
        seed in any::<u64>(),
        n_pkts in 1usize..80,
        slots in 20u64..200,
    ) {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(seed));
        let mut rng = SimRng::new(seed ^ 0xABCD);
        let ch = FadingChannel::new(ChannelProfile::Vehicular, 15.0, cfg.carrier_hz, &mut rng);
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        let hdr = TcpHeader::default();
        let mut enqueued_bytes = 0usize;
        for i in 0..n_pkts {
            let p = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, 1000);
            let w = p.wire_len();
            if g.enqueue_downlink(UeId(0), Qfi(0), p, Instant::ZERO).is_some() {
                enqueued_bytes += w;
            }
        }
        let mut segment_bytes = 0usize;
        for k in 0..slots {
            let out = g.on_slot(Instant::from_micros(500 * k));
            for d in out.deliveries {
                for (_, seg) in &d.tb.segments {
                    // Count only first transmissions of each byte range:
                    // retransmissions may repeat ranges, so only bound-check.
                    segment_bytes += seg.len as usize;
                }
            }
        }
        let still_queued = g.rlc_backlog_bytes(UeId(0), DrbId(0));
        // Delivered (incl. retransmitted duplicates) can exceed enqueued
        // only by retransmission, which HARQ caps at max_attempts×.
        prop_assert!(
            segment_bytes <= enqueued_bytes * cfg.harq_max_attempts as usize + 1,
            "delivered {segment_bytes} vs enqueued {enqueued_bytes}"
        );
        prop_assert!(still_queued <= enqueued_bytes);
    }

    /// Uplink grant conservation: the sum of granted TBS never exceeds
    /// one uplink slot's capacity, grants only go to UEs with a reported
    /// buffer status, and every grant is debited against it.
    #[test]
    fn ul_grants_never_exceed_slot_capacity(
        bsrs in proptest::collection::vec(0usize..2_000_000, 1..12),
        seed in any::<u64>(),
    ) {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(seed));
        let root = SimRng::new(seed ^ 0x55AA);
        for (i, &b) in bsrs.iter().enumerate() {
            let ch = FadingChannel::new(
                ChannelProfile::Pedestrian,
                18.0,
                cfg.carrier_hz,
                &mut root.derive(i as u64),
            );
            g.add_ue(UeId(i as u16), ch, &[(DrbId(0), RlcMode::Am)]);
            g.ensure_ul_drb(UeId(i as u16), DrbId(0), RlcMode::Am);
            g.on_ul_bsr(UeId(i as u16), b);
        }
        let mut grants = Vec::new();
        g.allocate_ul_grants_into(Instant::from_millis(5), &mut grants);
        // RBG rounding can over-shoot by at most one RBG of PRBs.
        let cap = phy::tbs_bytes(15, cfg.n_prbs + cfg.rbg_size, cfg.re_per_prb);
        let total: usize = grants.iter().map(|&(_, b, _)| b).sum();
        prop_assert!(total <= cap, "granted {total} > slot capacity {cap}");
        for &(ue, bytes, _) in &grants {
            prop_assert!(bytes > 0, "zero-byte grant");
            prop_assert!(
                bsrs[ue.0 as usize] > 0,
                "granted {ue} whose BSR was empty"
            );
            prop_assert!(g.ul_known_bsr(ue) <= bsrs[ue.0 as usize]);
        }
    }

    /// The BSR never under-reports: whenever a report goes out, the sum
    /// of its entries covers the UE's true RLC backlog — and bytes
    /// scheduled per grant never exceed the granted TBS.
    #[test]
    fn bsr_never_underreports_and_tbs_respect_grants(
        sizes in proptest::collection::vec(200usize..1400, 1..40),
        grant in 400usize..20_000,
        seed in any::<u64>(),
    ) {
        let mut ue = UeStack::new(
            UeId(0),
            &[(DrbId(0), RlcMode::Am)],
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            SimRng::new(seed),
        );
        ue.configure_ul_drb(DrbId(0), RlcMode::Am, 4096, 8);
        let hdr = TcpHeader::default();
        let mut t = Instant::from_millis(1);
        let mut bsr = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let p = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, sz);
            ue.enqueue_uplink_data(DrbId(0), p, t);
            bsr.clear();
            ue.ul_bsr_into(t + Duration::from_millis(6), &mut bsr);
            let reported: usize = bsr.iter().map(|&(_, b)| b).sum();
            prop_assert!(
                reported >= ue.ul_backlog_bytes(),
                "BSR {reported} under-reports backlog {}",
                ue.ul_backlog_bytes()
            );
            if let Some(tb) = ue.build_ul_tb(grant, 10, t + Duration::from_millis(6)) {
                prop_assert!(tb.bytes <= grant, "TB {} > grant {grant}", tb.bytes);
                let seg_total: usize = tb
                    .segments
                    .iter()
                    .map(|(_, s)| s.len as usize + 8)
                    .sum();
                prop_assert_eq!(seg_total, tb.bytes, "TB bytes ≠ segments + overhead");
            }
            t += Duration::from_millis(1);
        }
    }

    /// End-to-end uplink ARQ under random air loss: every uplink SDU is
    /// delivered to the gNB **exactly once, in SN order** — the uplink
    /// mirror of the downlink lossless-forwarding property.
    #[test]
    fn ul_rlc_delivers_exactly_once_in_order(
        sizes in proptest::collection::vec(200usize..1400, 1..40),
        loss_pct in 0u32..40,
        seed in any::<u64>(),
    ) {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(seed));
        let ch = FadingChannel::new(
            ChannelProfile::Static,
            30.0, // near-zero BLER: losses come from our coin below
            cfg.carrier_hz,
            &mut SimRng::new(seed ^ 1),
        );
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        g.ensure_ul_drb(UeId(0), DrbId(0), RlcMode::Am);
        let mut ue = UeStack::new(
            UeId(0),
            &[(DrbId(0), RlcMode::Am)],
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            SimRng::new(seed ^ 2),
        );
        ue.configure_ul_drb(DrbId(0), RlcMode::Am, 4096, 8);
        let mut air = SimRng::new(seed ^ 3);
        let hdr = TcpHeader::default();
        let mut t = Instant::from_millis(10);
        for (i, &sz) in sizes.iter().enumerate() {
            let p = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, sz);
            prop_assert!(ue.enqueue_uplink_data(DrbId(0), p, t).is_some());
        }
        let mut delivered: Vec<u64> = Vec::new();
        let mut bsr = Vec::new();
        let mut grants = Vec::new();
        let mut statuses = Vec::new();
        for _ in 0..4000 {
            bsr.clear();
            ue.ul_bsr_into(t, &mut bsr);
            if !bsr.is_empty() {
                g.on_ul_bsr(UeId(0), bsr.iter().map(|&(_, b)| b).sum());
            }
            g.allocate_ul_grants_into(t, &mut grants);
            for &(_, bytes, cqi) in &grants {
                if let Some(tb) = ue.build_ul_tb(bytes, cqi, t) {
                    prop_assert!(tb.bytes <= bytes);
                    if air.chance(f64::from(loss_pct) / 100.0) {
                        continue; // the air ate it; ARQ must recover
                    }
                    match g.receive_ul_tb(tb, t) {
                        UlTbOutcome::Decoded(ds) => {
                            delivered.extend(ds.into_iter().map(|(_, d)| d.sn));
                        }
                        // Treat HARQ retx as further loss: stresses ARQ.
                        UlTbOutcome::Retx(_) | UlTbOutcome::Lost => {}
                    }
                }
            }
            statuses.clear();
            g.ul_statuses_into(t, &mut statuses);
            for (_, drb, st) in statuses.drain(..) {
                let _ = ue.on_ul_status(drb, &st, t);
            }
            t += Duration::from_micros(2500);
            if delivered.len() == sizes.len() {
                break;
            }
        }
        let expected: Vec<u64> = (0..sizes.len() as u64).collect();
        prop_assert_eq!(
            delivered, expected,
            "uplink SDUs must arrive exactly once, in SN order (loss {loss_pct}%)"
        );
    }
}

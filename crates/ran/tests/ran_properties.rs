//! RAN-layer invariants under randomised inputs: scheduler conservation,
//! PHY monotonicity, channel purity, and whole-cell byte conservation.

use proptest::prelude::*;

use l4span_net::{Ecn, PacketBuf, TcpHeader};
use l4span_ran::channel::{ChannelProfile, FadingChannel};
use l4span_ran::config::{CellConfig, RlcMode, SchedulerKind};
use l4span_ran::ids::{Qfi, UeId};
use l4span_ran::mac::{allocate_proportional_fair, allocate_round_robin, Candidate};
use l4span_ran::phy;
use l4span_ran::{DrbId, Gnb};
use l4span_sim::{Instant, SimRng};

fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(
        (0usize..1_000_000, 0usize..4000, 0.0f64..1e6),
        1..24,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (backlog, per_rbg, avg))| Candidate {
                ue: UeId(i as u16),
                backlog,
                bytes_per_rbg: per_rbg,
                avg_throughput: avg,
            })
            .collect()
    })
}

proptest! {
    /// Neither scheduler ever over-allocates RBGs, grants them to UEs
    /// without backlog, or grants zero-size allocations.
    #[test]
    fn schedulers_conserve_rbgs(cands in arb_candidates(), n_rbgs in 1usize..20) {
        let mut cursor = 0;
        for grants in [
            allocate_round_robin(&cands, n_rbgs, &mut cursor),
            allocate_proportional_fair(&cands, n_rbgs),
        ] {
            let total: usize = grants.iter().map(|&(_, n)| n).sum();
            prop_assert!(total <= n_rbgs, "over-allocated: {total}/{n_rbgs}");
            for (ue, n) in grants {
                prop_assert!(n > 0);
                let c = cands.iter().find(|c| c.ue == ue).unwrap();
                prop_assert!(c.backlog > 0 && c.bytes_per_rbg > 0);
            }
        }
    }

    /// TBS grows monotonically with both CQI and PRB count.
    #[test]
    fn tbs_is_monotone(prbs in 1usize..52, cqi in 1u8..15) {
        prop_assert!(phy::tbs_bytes(cqi, prbs, 126) <= phy::tbs_bytes(cqi + 1, prbs, 126));
        prop_assert!(phy::tbs_bytes(cqi, prbs, 126) <= phy::tbs_bytes(cqi, prbs + 1, 126));
    }

    /// BLER is monotone decreasing in SNR for every CQI.
    #[test]
    fn bler_monotone_in_snr(cqi in 1u8..=15, snr10 in -100i32..300) {
        let s = snr10 as f64 / 10.0;
        prop_assert!(phy::bler(cqi, s) >= phy::bler(cqi, s + 0.5) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&phy::bler(cqi, s)));
    }

    /// The fading channel is a pure function of time: re-querying any
    /// instant gives the identical SNR, independent of query order.
    #[test]
    fn channel_is_pure(
        seed in any::<u64>(),
        times in proptest::collection::vec(0u64..10_000_000, 2..20),
        profile in prop_oneof![
            Just(ChannelProfile::Static),
            Just(ChannelProfile::Pedestrian),
            Just(ChannelProfile::Vehicular)
        ],
    ) {
        let mut rng = SimRng::new(seed);
        let ch = FadingChannel::new(profile, 20.0, 3.75e9, &mut rng);
        let forward: Vec<f64> = times.iter().map(|&t| ch.snr_db(Instant::from_micros(t))).collect();
        let backward: Vec<f64> =
            times.iter().rev().map(|&t| ch.snr_db(Instant::from_micros(t))).collect();
        for (a, b) in forward.iter().zip(backward.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Whole-cell conservation: every enqueued SDU is eventually either
    /// delivered (counted via segments), still queued, in flight, or was
    /// tail-dropped — bytes never appear from nowhere.
    #[test]
    fn gnb_never_creates_bytes(
        seed in any::<u64>(),
        n_pkts in 1usize..80,
        slots in 20u64..200,
    ) {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(seed));
        let mut rng = SimRng::new(seed ^ 0xABCD);
        let ch = FadingChannel::new(ChannelProfile::Vehicular, 15.0, cfg.carrier_hz, &mut rng);
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        let hdr = TcpHeader::default();
        let mut enqueued_bytes = 0usize;
        for i in 0..n_pkts {
            let p = PacketBuf::tcp(1, 2, Ecn::Ect1, i as u16, &hdr, 1000);
            let w = p.wire_len();
            if g.enqueue_downlink(UeId(0), Qfi(0), p, Instant::ZERO).is_some() {
                enqueued_bytes += w;
            }
        }
        let mut segment_bytes = 0usize;
        for k in 0..slots {
            let out = g.on_slot(Instant::from_micros(500 * k));
            for d in out.deliveries {
                for (_, seg) in &d.tb.segments {
                    // Count only first transmissions of each byte range:
                    // retransmissions may repeat ranges, so only bound-check.
                    segment_bytes += seg.len as usize;
                }
            }
        }
        let still_queued = g.rlc_backlog_bytes(UeId(0), DrbId(0));
        // Delivered (incl. retransmitted duplicates) can exceed enqueued
        // only by retransmission, which HARQ caps at max_attempts×.
        prop_assert!(
            segment_bytes <= enqueued_bytes * cfg.harq_max_attempts as usize + 1,
            "delivered {segment_bytes} vs enqueued {enqueued_bytes}"
        );
        prop_assert!(still_queued <= enqueued_bytes);
    }
}

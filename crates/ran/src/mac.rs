//! MAC downlink scheduling: resource-block-group allocation under
//! round-robin or proportional-fair policy, and the transport-block type
//! shared with HARQ.
//!
//! The allocation functions are pure so they can be unit-tested in
//! isolation; the per-slot machinery that calls them lives in [`crate::gnb`].

use l4span_sim::Instant;

use crate::ids::{DrbId, UeId};
use crate::rlc::Segment;

/// A transport block scheduled for one UE in one slot.
#[derive(Debug)]
pub struct TransportBlock {
    /// Destination UE.
    pub ue: UeId,
    /// RLC segments packed into the block, tagged with their DRB.
    pub segments: Vec<(DrbId, Segment)>,
    /// Bytes of MAC payload consumed (segments + RLC/MAC overhead).
    pub bytes: usize,
    /// HARQ transmission attempt, 1 = first transmission.
    pub attempt: u8,
    /// CQI used for the (initial) transmission.
    pub cqi: u8,
    /// Time of the first transmission attempt (for metrics).
    pub first_tx: Instant,
}

/// One UE competing for resources in a slot.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// UE identifier.
    pub ue: UeId,
    /// RLC backlog in bytes across all of the UE's DRBs.
    pub backlog: usize,
    /// Bytes one RBG can carry for this UE at its current CQI.
    pub bytes_per_rbg: usize,
    /// EWMA throughput in bytes/slot (proportional-fair denominator).
    pub avg_throughput: f64,
}

/// Reusable buffers for the slot-tick allocators. The 2 kHz per-cell
/// slot tick calls an allocator every downlink slot; routing its
/// working sets through here keeps the tick allocation-free at steady
/// state (the shard epoch hot loop).
#[derive(Debug, Default)]
pub struct AllocScratch {
    remaining: Vec<(usize, isize)>,
    grants: Vec<usize>,
    metric: Vec<f64>,
    order: Vec<usize>,
}

/// Allocate `n_rbgs` resource-block groups round-robin: one RBG per
/// backlogged UE per pass, starting after the cursor so the head position
/// rotates across slots. Returns `(ue, rbg_count)` pairs.
pub fn allocate_round_robin(
    cands: &[Candidate],
    n_rbgs: usize,
    cursor: &mut usize,
) -> Vec<(UeId, usize)> {
    let mut out = Vec::new();
    allocate_round_robin_into(cands, n_rbgs, cursor, &mut AllocScratch::default(), &mut out);
    out
}

/// [`allocate_round_robin`] writing into caller-owned buffers (cleared
/// first) — identical grants, zero allocations once `scratch` and `out`
/// are at steady-state capacity.
pub fn allocate_round_robin_into(
    cands: &[Candidate],
    n_rbgs: usize,
    cursor: &mut usize,
    scratch: &mut AllocScratch,
    out: &mut Vec<(UeId, usize)>,
) {
    out.clear();
    let remaining = &mut scratch.remaining;
    remaining.clear();
    remaining.extend(
        cands
            .iter()
            .enumerate()
            .filter(|(_, c)| c.backlog > 0 && c.bytes_per_rbg > 0)
            .map(|(i, c)| (i, c.backlog as isize)),
    );
    if remaining.is_empty() {
        return;
    }
    let grants = &mut scratch.grants;
    grants.clear();
    grants.resize(cands.len(), 0);
    let start = *cursor % remaining.len();
    let mut left = n_rbgs;
    let mut idx = start;
    // Cycle until RBGs run out or nobody has backlog left.
    while left > 0 && !remaining.is_empty() {
        let pos = idx % remaining.len();
        let ci = remaining[pos].0;
        grants[ci] += 1;
        left -= 1;
        remaining[pos].1 -= cands[ci].bytes_per_rbg as isize;
        if remaining[pos].1 <= 0 {
            remaining.remove(pos);
            // `idx` now points at the element after the removed one.
            if remaining.is_empty() {
                break;
            }
            idx %= remaining.len();
        } else {
            idx += 1;
        }
    }
    // Audit note: an all-skip slot — every candidate UE's BSR/queue
    // empty — takes the `remaining.is_empty()` early return above and
    // never reaches this rotation, so idle slots cannot steal a UE's
    // turn (pinned by `rr_all_empty_slot_does_not_advance_cursor`).
    // A slot whose capacity HARQ consumed (`n_rbgs == 0` with backlog)
    // *does* rotate: that UE's turn was spent on its retransmission.
    *cursor = cursor.wrapping_add(1);
    out.extend(
        cands
            .iter()
            .enumerate()
            .filter(|(i, _)| grants[*i] > 0)
            .map(|(i, c)| (c.ue, grants[i])),
    );
}

/// Allocate RBG-by-RBG to the UE with the highest proportional-fair
/// metric `instantaneous_rate / avg_throughput` among those with backlog.
///
/// The metric is constant for the whole slot (avg throughput only updates
/// between slots), so the textbook per-RBG argmax degenerates: the
/// highest-metric UE keeps winning until its backlog is covered, then the
/// next one, and so on. Walking candidates once in descending-metric
/// order (same UE-id tie-break the argmax used) therefore produces
/// *identical* grants to the RBG-by-RBG loop while replacing
/// `O(n_rbgs × n_ues)` comparisons per slot with one small sort — the
/// dominant cost of the 16-UE slot tick.
pub fn allocate_proportional_fair(cands: &[Candidate], n_rbgs: usize) -> Vec<(UeId, usize)> {
    let mut out = Vec::new();
    allocate_proportional_fair_into(cands, n_rbgs, &mut AllocScratch::default(), &mut out);
    out
}

/// [`allocate_proportional_fair`] writing into caller-owned buffers
/// (cleared first) — identical grants, zero allocations once `scratch`
/// and `out` are at steady-state capacity.
pub fn allocate_proportional_fair_into(
    cands: &[Candidate],
    n_rbgs: usize,
    scratch: &mut AllocScratch,
    out: &mut Vec<(UeId, usize)>,
) {
    const EPS: f64 = 1e-6;
    out.clear();
    let metric = &mut scratch.metric;
    metric.clear();
    metric.extend(
        cands
            .iter()
            .map(|c| c.bytes_per_rbg as f64 / (c.avg_throughput + EPS)),
    );
    let order = &mut scratch.order;
    order.clear();
    order.extend((0..cands.len()).filter(|&i| cands[i].backlog > 0 && cands[i].bytes_per_rbg > 0));
    // Descending metric; on ties the smaller UE id wins, matching the
    // argmax's `then_with` tie-break. Unstable sort: the UE-id
    // tie-break makes the comparator a total order, and unlike the
    // stable sort it never allocates.
    order.sort_unstable_by(|&i, &j| {
        metric[j]
            .partial_cmp(&metric[i])
            .unwrap()
            .then_with(|| cands[i].ue.cmp(&cands[j].ue))
    });
    let grants = &mut scratch.grants;
    grants.clear();
    grants.resize(cands.len(), 0);
    let mut left = n_rbgs;
    for &i in order.iter() {
        if left == 0 {
            break;
        }
        // RBGs this UE would absorb: one per `bytes_per_rbg` of backlog,
        // rounded up — exactly how many wins it takes before its residual
        // backlog hits zero in the per-RBG formulation.
        let want = cands[i].backlog.div_ceil(cands[i].bytes_per_rbg);
        let n = want.min(left);
        left -= n;
        grants[i] = n;
    }
    // Emit in candidate (UE-id) order, as the per-RBG loop did — the gNB
    // builds TBs in this order, so it also fixes the RNG draw sequence.
    out.extend(
        cands
            .iter()
            .enumerate()
            .filter(|(i, _)| grants[*i] > 0)
            .map(|(i, c)| (c.ue, grants[i])),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(ue: u16, backlog: usize, per_rbg: usize, avg: f64) -> Candidate {
        Candidate {
            ue: UeId(ue),
            backlog,
            bytes_per_rbg: per_rbg,
            avg_throughput: avg,
        }
    }

    #[test]
    fn rr_splits_evenly_among_backlogged() {
        let cands = vec![
            cand(0, 1_000_000, 100, 0.0),
            cand(1, 1_000_000, 100, 0.0),
            cand(2, 0, 100, 0.0), // no backlog
        ];
        let mut cursor = 0;
        let g = allocate_round_robin(&cands, 12, &mut cursor);
        assert_eq!(g.len(), 2);
        let total: usize = g.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 12);
        for (_, n) in &g {
            assert_eq!(*n, 6);
        }
    }

    #[test]
    fn rr_gives_leftover_capacity_to_others() {
        // UE 0 needs only one RBG; UE 1 is greedy.
        let cands = vec![cand(0, 50, 100, 0.0), cand(1, 1_000_000, 100, 0.0)];
        let mut cursor = 0;
        let g = allocate_round_robin(&cands, 10, &mut cursor);
        let m: std::collections::HashMap<_, _> = g.into_iter().collect();
        assert_eq!(m[&UeId(0)], 1);
        assert_eq!(m[&UeId(1)], 9);
    }

    #[test]
    fn rr_cursor_rotates_start() {
        // 3 UEs, 1 RBG: the single grant should rotate with the cursor.
        let cands = vec![
            cand(0, 1000, 100, 0.0),
            cand(1, 1000, 100, 0.0),
            cand(2, 1000, 100, 0.0),
        ];
        let mut cursor = 0;
        let first: Vec<_> = allocate_round_robin(&cands, 1, &mut cursor);
        let second: Vec<_> = allocate_round_robin(&cands, 1, &mut cursor);
        assert_ne!(first[0].0, second[0].0, "head UE must rotate");
    }

    #[test]
    fn rr_empty_when_no_backlog() {
        let cands = vec![cand(0, 0, 100, 0.0)];
        let mut cursor = 0;
        assert!(allocate_round_robin(&cands, 10, &mut cursor).is_empty());
    }

    #[test]
    fn rr_all_empty_slot_does_not_advance_cursor() {
        // Audit pin: a slot where every candidate UE has an empty
        // BSR/queue (or no candidates at all) exits before the cursor
        // rotation, so grant order is identical with and without
        // interleaved all-idle slots.
        let cands = vec![
            cand(0, 1000, 100, 0.0),
            cand(1, 1000, 100, 0.0),
            cand(2, 1000, 100, 0.0),
        ];
        let idle = vec![cand(0, 0, 100, 0.0), cand(1, 0, 100, 0.0)];

        let mut plain = 0usize;
        let a1 = allocate_round_robin(&cands, 1, &mut plain);
        let a2 = allocate_round_robin(&cands, 1, &mut plain);

        let mut interleaved = 0usize;
        let b1 = allocate_round_robin(&cands, 1, &mut interleaved);
        // No-op slots: no backlog anywhere, then no candidates at all.
        assert!(allocate_round_robin(&idle, 1, &mut interleaved).is_empty());
        assert!(allocate_round_robin(&[], 1, &mut interleaved).is_empty());
        let b2 = allocate_round_robin(&cands, 1, &mut interleaved);

        assert_eq!(a1, b1);
        assert_eq!(a2, b2, "idle slots must not steal a UE's turn");
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn pf_scratch_survives_all_empty_slot() {
        // PF has no cursor; an all-empty slot must simply clear the
        // output and leave the scratch reusable for the next slot.
        let mut scratch = AllocScratch::default();
        let mut out = vec![(UeId(9), 9)]; // stale content must be cleared
        allocate_proportional_fair_into(&[], 4, &mut scratch, &mut out);
        assert!(out.is_empty());
        let idle = vec![cand(0, 0, 100, 1.0)];
        allocate_proportional_fair_into(&idle, 4, &mut scratch, &mut out);
        assert!(out.is_empty());
        let busy = vec![cand(1, 500, 100, 1.0)];
        allocate_proportional_fair_into(&busy, 4, &mut scratch, &mut out);
        assert_eq!(out, vec![(UeId(1), 4)]);
    }

    #[test]
    fn pf_prefers_underserved_ue() {
        // Same channel quality, UE 1 historically starved.
        let cands = vec![cand(0, 1_000_000, 100, 1000.0), cand(1, 1_000_000, 100, 10.0)];
        let g = allocate_proportional_fair(&cands, 10);
        let m: std::collections::HashMap<_, _> = g.into_iter().collect();
        assert!(m[&UeId(1)] == 10, "starved UE takes all RBGs: {m:?}");
    }

    #[test]
    fn pf_prefers_good_channel_when_history_equal() {
        let cands = vec![cand(0, 1_000_000, 300, 100.0), cand(1, 1_000_000, 100, 100.0)];
        let g = allocate_proportional_fair(&cands, 4);
        let m: std::collections::HashMap<_, _> = g.into_iter().collect();
        assert_eq!(m.get(&UeId(0)), Some(&4));
        assert_eq!(m.get(&UeId(1)), None);
    }

    #[test]
    fn pf_stops_when_backlog_served() {
        let cands = vec![cand(0, 150, 100, 1.0)];
        let g = allocate_proportional_fair(&cands, 10);
        assert_eq!(g, vec![(UeId(0), 2)]); // 2 RBGs cover 150 bytes
    }

    #[test]
    fn pf_zero_rate_ue_is_skipped() {
        // CQI 0 => bytes_per_rbg 0: cannot be scheduled.
        let cands = vec![cand(0, 1000, 0, 1.0), cand(1, 1000, 100, 1.0)];
        let g = allocate_proportional_fair(&cands, 4);
        let m: std::collections::HashMap<_, _> = g.into_iter().collect();
        assert_eq!(m.get(&UeId(0)), None);
        assert_eq!(m.get(&UeId(1)), Some(&4));
    }
}

//! Cell, RLC, and scheduler configuration.
//!
//! Defaults reproduce the paper's testbed (§6.1): a TDD band-n78 cell at
//! 3.75 GHz with 20 MHz bandwidth and 30 kHz subcarrier spacing, whose
//! saturated downlink capacity calibrates to ≈40 Mbit/s, srsRAN's default
//! RLC SDU queue of 16384 SDUs, and HARQ/uplink timing constants from the
//! paper's footnotes.

use l4span_sim::Duration;

/// RLC mode of a DRB (paper §4.3.1). AM runs ARQ and reports delivery;
/// UM omits both, so L4Span falls back to transmit-time feedback only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlcMode {
    /// Acknowledged mode: ARQ, status reports, delivery feedback.
    Am,
    /// Unacknowledged mode: no retransmission, no delivery feedback.
    Um,
}

/// Downlink MAC scheduler flavour (Fig. 10 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Round-robin over backlogged UEs.
    RoundRobin,
    /// Proportional fair: metric = instantaneous rate / EWMA throughput.
    ProportionalFair,
}

/// TDD slot roles for one period of the DDDSU pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotRole {
    /// Full downlink slot.
    Downlink,
    /// Special slot: partially downlink (we use the fraction in
    /// [`CellConfig::special_slot_dl_fraction`]).
    Special,
    /// Uplink slot: carries UE ACKs, RLC status reports, SRs.
    Uplink,
}

/// Static configuration of one simulated cell.
#[derive(Debug, Clone)]
pub struct CellConfig {
    /// Slot length; 0.5 ms for 30 kHz SCS.
    pub slot_duration: Duration,
    /// TDD pattern, repeated forever. Default DDDSU.
    pub tdd_pattern: Vec<SlotRole>,
    /// Usable share of a special slot for downlink data.
    pub special_slot_dl_fraction: f64,
    /// Physical resource blocks in the carrier (51 for 20 MHz @ 30 kHz).
    pub n_prbs: usize,
    /// PRBs per resource-block group (scheduler allocation granule).
    pub rbg_size: usize,
    /// Usable resource elements per PRB per slot after DMRS/PDCCH
    /// overhead (12 subcarriers × 14 symbols × ~0.75).
    pub re_per_prb: usize,
    /// Carrier frequency in Hz (drives Doppler in the channel model).
    pub carrier_hz: f64,
    /// HARQ round-trip: time between a failed TB and its retransmission
    /// ("the MAC/PHY delay the transport block by eight ms", paper §4.4).
    pub harq_rtt: Duration,
    /// Maximum HARQ transmission attempts before the TB is abandoned to
    /// RLC ARQ (AM) or lost (UM).
    pub harq_max_attempts: u8,
    /// MCS selection backoff in dB below the reported SNR.
    pub link_adaptation_backoff_db: f64,
    /// Age of the CQI report the scheduler acts on.
    pub cqi_delay: Duration,
    /// RLC SDU queue capacity (srsRAN default 16384; Fig. 9 also runs 256).
    pub rlc_queue_sdus: usize,
    /// UE-side RLC status report period (t-StatusProhibit analogue).
    pub rlc_status_period: Duration,
    /// UE-internal modem-to-kernel delivery delay.
    pub ue_internal_delay: Duration,
    /// Extra uplink scheduling-request delay when the UE UL queue was
    /// empty (models SR + grant latency, uniform in [0, this]).
    pub ul_sr_delay_max: Duration,
    /// One-way delay between the 5G core/UPF and the CU (the wired
    /// fronthaul/backhaul inside the operator network).
    pub core_to_cu_delay: Duration,
    /// Per-RLC-segment header overhead charged against the MAC budget
    /// (RLC + MAC subheader bytes).
    pub segment_overhead: usize,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            slot_duration: Duration::from_micros(500),
            tdd_pattern: vec![
                SlotRole::Downlink,
                SlotRole::Downlink,
                SlotRole::Downlink,
                SlotRole::Special,
                SlotRole::Uplink,
            ],
            special_slot_dl_fraction: 0.5,
            n_prbs: 51,
            rbg_size: 4,
            re_per_prb: 126,
            carrier_hz: 3.75e9,
            harq_rtt: Duration::from_millis(8),
            harq_max_attempts: 4,
            link_adaptation_backoff_db: 1.0,
            cqi_delay: Duration::from_millis(4),
            rlc_queue_sdus: 16_384,
            rlc_status_period: Duration::from_millis(10),
            ue_internal_delay: Duration::from_millis(2),
            ul_sr_delay_max: Duration::from_millis(5),
            core_to_cu_delay: Duration::from_millis(1),
            segment_overhead: 8,
        }
    }
}

impl CellConfig {
    /// Role of slot number `n` (counting from simulation start).
    pub fn slot_role(&self, slot_index: u64) -> SlotRole {
        self.tdd_pattern[(slot_index as usize) % self.tdd_pattern.len()]
    }

    /// Downlink duty cycle of the TDD pattern (fraction of airtime usable
    /// for downlink data).
    pub fn dl_duty(&self) -> f64 {
        let total = self.tdd_pattern.len() as f64;
        let dl: f64 = self
            .tdd_pattern
            .iter()
            .map(|r| match r {
                SlotRole::Downlink => 1.0,
                SlotRole::Special => self.special_slot_dl_fraction,
                SlotRole::Uplink => 0.0,
            })
            .sum();
        dl / total
    }

    /// Approximate saturated cell capacity in bit/s at spectral
    /// efficiency `eff` bits per resource element.
    pub fn capacity_bps(&self, eff: f64) -> f64 {
        let re_per_sec =
            (self.n_prbs * self.re_per_prb) as f64 / self.slot_duration.as_secs_f64();
        re_per_sec * eff * self.dl_duty()
    }

    /// Number of resource-block groups the scheduler allocates.
    pub fn n_rbgs(&self) -> usize {
        self.n_prbs.div_ceil(self.rbg_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = CellConfig::default();
        assert_eq!(c.slot_duration, Duration::from_micros(500));
        assert_eq!(c.n_prbs, 51);
        assert_eq!(c.rlc_queue_sdus, 16_384);
        assert_eq!(c.tdd_pattern.len(), 5);
        // DDDSU with S=0.5 -> duty 0.7.
        assert!((c.dl_duty() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn capacity_calibrates_to_forty_mbps() {
        let c = CellConfig::default();
        // At the top of our CQI table (eff = 4.45 bit/RE, see phy.rs) the
        // cell saturates close to the paper's 40 Mbit/s.
        let cap = c.capacity_bps(4.45);
        assert!(
            (cap - 40.0e6).abs() < 2.5e6,
            "capacity {cap} not within 2.5 Mbps of 40 Mbps"
        );
    }

    #[test]
    fn slot_roles_repeat() {
        let c = CellConfig::default();
        assert_eq!(c.slot_role(0), SlotRole::Downlink);
        assert_eq!(c.slot_role(3), SlotRole::Special);
        assert_eq!(c.slot_role(4), SlotRole::Uplink);
        assert_eq!(c.slot_role(5), SlotRole::Downlink);
        assert_eq!(c.slot_role(9), SlotRole::Uplink);
    }

    #[test]
    fn rbg_count_rounds_up() {
        let c = CellConfig::default();
        assert_eq!(c.n_rbgs(), 13); // 51 / 4 rounded up
    }
}

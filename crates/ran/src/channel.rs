//! Per-UE wireless channel models.
//!
//! The paper evaluates under static, pedestrian, and vehicular channels
//! emulated by Amarisoft test equipment (§6.1). We reproduce them with a
//! Jakes sum-of-sinusoids Rayleigh fader: the complex channel gain is a
//! sum of `N` plane waves with Doppler shifts `f_d·cos(α_n)`, giving the
//! classic U-shaped Doppler spectrum and a coherence time of
//! `≈ 0.423 / f_d` (Clarke). The gain is a *pure function of time* given
//! the path table drawn at construction, so the channel can be sampled at
//! any instant (including in the past, for stale-CQI modeling) without
//! mutable state.

use l4span_sim::{Duration, Instant, SimRng};

/// Mobility profile of a UE. Doppler values are chosen so the coherence
/// times bracket the paper's τ_c = 24.9 ms vehicular measurement at
/// 3.5 GHz ([78] in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelProfile {
    /// No mobility: constant SNR (small lognormal shadowing only).
    Static,
    /// Walking speed (~1.4 m/s): slow fading, coherence ≈ 120 ms.
    Pedestrian,
    /// Driving speed (~70 km/h): fast fading, coherence ≈ 25 ms.
    Vehicular,
}

impl ChannelProfile {
    /// UE speed in m/s used to derive the Doppler spread.
    pub fn speed_mps(self) -> f64 {
        match self {
            ChannelProfile::Static => 0.0,
            ChannelProfile::Pedestrian => 1.4,
            ChannelProfile::Vehicular => 19.4, // 70 km/h
        }
    }

    /// Maximum Doppler shift at carrier frequency `carrier_hz`.
    pub fn doppler_hz(self, carrier_hz: f64) -> f64 {
        self.speed_mps() * carrier_hz / 299_792_458.0
    }

    /// Clarke coherence time `0.423 / f_d`; `Duration::MAX` when static.
    pub fn coherence_time(self, carrier_hz: f64) -> Duration {
        let fd = self.doppler_hz(carrier_hz);
        if fd <= 0.0 {
            Duration::MAX
        } else {
            Duration::from_secs_f64(0.423 / fd)
        }
    }
}

/// Number of sinusoid paths in the Jakes sum. 16 is plenty for a smooth
/// Rayleigh envelope.
const N_PATHS: usize = 16;

/// Fading sample grid: the Jakes sum is evaluated on this grid and held
/// constant in between. 2 ms is ≈12× oversampled relative to the fastest
/// (vehicular, τ_c ≈ 25 ms) coherence time, so queueing behaviour is
/// unaffected, while the per-slot MAC loop stops paying for a 16-path
/// trigonometric sum at every single 0.5 ms slot.
const SAMPLE_PERIOD_NANOS: u64 = 2_000_000;

/// Rician K-factor (LOS-to-scatter power ratio) for the mobile profiles.
/// Pure single-tap Rayleigh (K = 0) nulls 20+ dB deep, far deeper than
/// the effective post-equalisation fading of the multi-tap 3GPP channel
/// models (EPA/EVA) that UE emulators run; K = 4 keeps realistic swing
/// without second-long outages.
const RICIAN_K: f64 = 4.0;

/// Precomputed coefficients of one Jakes path: the Doppler angular rate
/// `ω = 2π·f_d·cos(α)` and the sine/cosine of the two random phases, so
/// one `sin_cos` per path replaces two phase-offset cosines on every
/// channel sample (the per-slot hot path of the MAC scheduler).
#[derive(Debug, Clone, Copy, Default)]
struct PathCoef {
    omega: f64,
    cos_i: f64,
    sin_i: f64,
    cos_q: f64,
    sin_q: f64,
}

/// A Rician-fading channel for one UE (Jakes scatter + LOS component).
#[derive(Debug, Clone)]
pub struct FadingChannel {
    profile: ChannelProfile,
    mean_snr_db: f64,
    doppler_hz: f64,
    paths: [PathCoef; N_PATHS],
    /// Static-profile shadowing offset in dB.
    static_offset_db: f64,
    /// Two-entry memo of recent grid-point SNRs in dB, keyed by
    /// `quantized_nanos + 1` (0 = empty). Consecutive slots usually land
    /// on the same grid point, so most samples are a cache hit — and
    /// caching the finished dB value (rather than the linear gain) keeps
    /// the `log10` off the hit path too. Purely a cache: the stored
    /// value is exactly what recomputation would give, so `snr_db` stays
    /// a pure function of time.
    gain_cache: core::cell::Cell<[(u64, f64); 2]>,
}

impl FadingChannel {
    /// Create a channel with the given mobility profile and mean SNR.
    /// Fading realisations are drawn from `rng`, so two UEs with derived
    /// RNG streams fade independently.
    pub fn new(
        profile: ChannelProfile,
        mean_snr_db: f64,
        carrier_hz: f64,
        rng: &mut SimRng,
    ) -> FadingChannel {
        let doppler_hz = profile.doppler_hz(carrier_hz);
        let mut paths = [PathCoef::default(); N_PATHS];
        for (n, p) in paths.iter_mut().enumerate() {
            // Jakes: evenly-spaced arrival angles with random offset.
            let alpha =
                (core::f64::consts::TAU * (n as f64 + rng.f64())) / N_PATHS as f64;
            let phi_i = rng.range_f64(0.0, core::f64::consts::TAU);
            let phi_q = rng.range_f64(0.0, core::f64::consts::TAU);
            p.omega = core::f64::consts::TAU * doppler_hz * alpha.cos();
            (p.sin_i, p.cos_i) = phi_i.sin_cos();
            (p.sin_q, p.cos_q) = phi_q.sin_cos();
        }
        FadingChannel {
            profile,
            mean_snr_db,
            doppler_hz,
            paths,
            static_offset_db: rng.normal(0.0, 1.0),
            gain_cache: core::cell::Cell::new([(0, 0.0); 2]),
        }
    }

    /// Mobility profile this channel was built with.
    pub fn profile(&self) -> ChannelProfile {
        self.profile
    }

    /// Mean SNR (dB) around which the fading swings.
    pub fn mean_snr_db(&self) -> f64 {
        self.mean_snr_db
    }

    /// Linear channel power gain `|h(t)|²`, unit mean.
    fn power_gain(&self, at: Instant) -> f64 {
        if self.doppler_hz <= 0.0 {
            return 1.0;
        }
        let t = at.as_secs_f64();
        let (mut i, mut q) = (0.0f64, 0.0f64);
        for p in &self.paths {
            // cos(ωt + φ) expanded so the two phase-offset cosines share
            // one (fast-polynomial) sin_cos evaluation of ωt.
            let (sw, cw) = l4span_sim::fastmath::sin_cos(p.omega * t);
            i += cw * p.cos_i - sw * p.sin_i;
            q += cw * p.cos_q - sw * p.sin_q;
        }
        // Unit-power scattered component…
        let scale = (1.0 / N_PATHS as f64).sqrt();
        let (si, sq) = (i * scale, q * scale);
        // …plus the LOS component: h = √(K/(K+1)) + √(1/(K+1))·s,
        // E[|h|²] = 1.
        let los = (RICIAN_K / (RICIAN_K + 1.0)).sqrt();
        let nlos = (1.0 / (RICIAN_K + 1.0)).sqrt();
        let hi = los + nlos * si;
        let hq = nlos * sq;
        hi * hi + hq * hq
    }

    /// Instantaneous SNR in dB at time `at` (fading held constant within
    /// each [`SAMPLE_PERIOD_NANOS`] grid interval).
    pub fn snr_db(&self, at: Instant) -> f64 {
        if self.doppler_hz <= 0.0 {
            // Static: mean SNR plus a fixed per-UE shadowing offset.
            return self.mean_snr_db + self.static_offset_db;
        }
        let q = at.as_nanos() - at.as_nanos() % SAMPLE_PERIOD_NANOS;
        let key = q + 1;
        let cache = self.gain_cache.get();
        if cache[0].0 == key {
            return cache[0].1;
        }
        if cache[1].0 == key {
            return cache[1].1;
        }
        let g = self.power_gain(Instant::from_nanos(q));
        let db = self.mean_snr_db + 10.0 * g.max(1e-9).log10();
        self.gain_cache.set([(key, db), cache[0]]);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn static_channel_is_constant() {
        let ch = FadingChannel::new(ChannelProfile::Static, 22.0, 3.75e9, &mut rng());
        let a = ch.snr_db(Instant::from_millis(0));
        let b = ch.snr_db(Instant::from_secs(10));
        assert_eq!(a, b);
        assert!((a - 22.0).abs() < 4.0, "shadowing offset is small");
    }

    #[test]
    fn fading_has_unit_mean_power() {
        let ch = FadingChannel::new(ChannelProfile::Vehicular, 22.0, 3.75e9, &mut rng());
        let n = 20_000;
        let mut sum = 0.0;
        for k in 0..n {
            sum += ch.power_gain(Instant::from_micros(137 * k));
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean power {mean}");
    }

    #[test]
    fn vehicular_decorrelates_faster_than_pedestrian() {
        let carrier = 3.75e9;
        let veh = ChannelProfile::Vehicular.coherence_time(carrier);
        let ped = ChannelProfile::Pedestrian.coherence_time(carrier);
        assert!(veh < ped);
        // Paper's τ_c: the vehicular coherence time is in the tens of ms.
        assert!(veh >= Duration::from_millis(1) && veh <= Duration::from_millis(60));
        assert_eq!(
            ChannelProfile::Static.coherence_time(carrier),
            Duration::MAX
        );
    }

    #[test]
    fn snr_is_pure_function_of_time() {
        let ch = FadingChannel::new(ChannelProfile::Pedestrian, 20.0, 3.75e9, &mut rng());
        let t = Instant::from_millis(123);
        assert_eq!(ch.snr_db(t), ch.snr_db(t));
    }

    #[test]
    fn different_rng_streams_fade_independently() {
        let mut r1 = SimRng::new(1);
        let mut r2 = SimRng::new(2);
        let c1 = FadingChannel::new(ChannelProfile::Vehicular, 20.0, 3.75e9, &mut r1);
        let c2 = FadingChannel::new(ChannelProfile::Vehicular, 20.0, 3.75e9, &mut r2);
        let t = Instant::from_millis(50);
        assert_ne!(c1.snr_db(t), c2.snr_db(t));
    }

    #[test]
    fn fading_swings_span_several_db() {
        let ch = FadingChannel::new(ChannelProfile::Vehicular, 22.0, 3.75e9, &mut rng());
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for k in 0..10_000 {
            let s = ch.snr_db(Instant::from_micros(500 * k));
            lo = lo.min(s);
            hi = hi.max(s);
        }
        assert!(hi - lo > 10.0, "Rayleigh fading should swing >10 dB");
    }
}

//! SDAP: QoS-flow-to-DRB mapping.
//!
//! The SDAP layer in the CU-UP maps each downlink packet, by its QoS Flow
//! Identifier, to a data radio bearer (paper §2). L4Span keeps a copy of
//! this mapping for its own five-tuple → (UE, DRB) table; here is the
//! authoritative one.

use std::collections::BTreeMap;

use crate::ids::{DrbId, Qfi};

/// SDAP mapping state for one UE.
#[derive(Debug, Clone)]
pub struct SdapEntity {
    map: BTreeMap<Qfi, DrbId>,
    default_drb: DrbId,
}

impl SdapEntity {
    /// Create with a default DRB for unmapped QFIs.
    pub fn new(default_drb: DrbId) -> SdapEntity {
        SdapEntity {
            map: BTreeMap::new(),
            default_drb,
        }
    }

    /// Install or replace a QFI→DRB rule.
    pub fn map_qfi(&mut self, qfi: Qfi, drb: DrbId) {
        self.map.insert(qfi, drb);
    }

    /// Resolve the DRB for a QFI (falling back to the default DRB, as a
    /// gNB does for the default QoS flow).
    pub fn drb_for(&self, qfi: Qfi) -> DrbId {
        self.map.get(&qfi).copied().unwrap_or(self.default_drb)
    }

    /// The configured default DRB.
    pub fn default_drb(&self) -> DrbId {
        self.default_drb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_and_default() {
        let mut s = SdapEntity::new(DrbId(0));
        s.map_qfi(Qfi(5), DrbId(1));
        assert_eq!(s.drb_for(Qfi(5)), DrbId(1));
        assert_eq!(s.drb_for(Qfi(9)), DrbId(0));
        assert_eq!(s.default_drb(), DrbId(0));
        s.map_qfi(Qfi(5), DrbId(2));
        assert_eq!(s.drb_for(Qfi(5)), DrbId(2), "rules are replaceable");
    }
}

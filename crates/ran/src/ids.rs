//! Identifiers for UEs, data radio bearers, and QoS flows.

use core::fmt;

/// A UE index within one cell (the simulator's stand-in for an RNTI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UeId(pub u16);

/// A data radio bearer index within one UE. Each DRB owns a PDCP entity
/// and an RLC entity; L4S and classic flows normally ride separate DRBs
/// (paper §4.2), except in the shared-DRB scenario of §4.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DrbId(pub u8);

/// A QoS Flow Identifier as carried in the SDAP header / GTP-U extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Qfi(pub u8);

impl fmt::Display for UeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ue{}", self.0)
    }
}

impl fmt::Display for DrbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "drb{}", self.0)
    }
}

impl fmt::Display for Qfi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qfi{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(UeId(3).to_string(), "ue3");
        assert_eq!(DrbId(1).to_string(), "drb1");
        assert_eq!(Qfi(9).to_string(), "qfi9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(UeId(1));
        s.insert(UeId(1));
        assert_eq!(s.len(), 1);
        assert!(UeId(1) < UeId(2));
        assert!(DrbId(0) < DrbId(1));
    }
}

//! The gNB: CU-UP (SDAP + PDCP) and DU (RLC + MAC + PHY) composed into
//! one cell, driven by a slot clock.
//!
//! The harness owns the event loop; this struct is a passive state
//! machine in the smoltcp idiom:
//!
//! * [`Gnb::enqueue_downlink`] — a packet arrives from the core (after
//!   L4Span has seen it), is mapped by SDAP, sequenced by PDCP, and
//!   queued in the DU's RLC;
//! * [`Gnb::on_slot`] — one TDD slot elapses: HARQ retransmissions are
//!   served first, then the scheduler allocates RBGs, RLC queues are
//!   drained into transport blocks, and block-error outcomes are drawn;
//! * [`Gnb::on_rlc_status`] — an RLC AM status report arrives on the
//!   uplink, acknowledging SDUs (→ F1-U *highest delivered*) and NACKing
//!   losses (→ ARQ retransmission).
//!
//! Outputs are plain data (transport-block deliveries with an arrival
//! time, F1-U status frames, per-SDU timing records) that the harness
//! routes to the UE stacks and to L4Span.

use std::collections::BTreeMap;

use l4span_net::PacketBuf;
use l4span_sim::{stats::Ewma, Instant, SimRng};

use crate::channel::FadingChannel;
use crate::config::{CellConfig, RlcMode, SchedulerKind, SlotRole};
use crate::f1u::DlDataDeliveryStatus;
use crate::ids::{DrbId, Qfi, UeId};
use crate::mac::{self, Candidate, TransportBlock};
use crate::pdcp::PdcpTx;
use crate::phy;
use crate::rlc::{
    DeliveryRecord, ForwardedSdu, RlcRx, RlcStatus, RlcTx, RxDelivery, Segment, Sn, TxRecord,
};
use crate::sdap::SdapEntity;

/// Gain of the proportional-fair average-throughput EWMA (per slot);
/// 1/100 ≈ a 50 ms horizon at 0.5 ms slots.
const PF_EWMA_GAIN: f64 = 0.01;

/// Chase-combining SNR gain per HARQ retransmission attempt, in dB.
const HARQ_COMBINING_GAIN_DB: f64 = 3.0;

/// A transport block scheduled for over-the-air delivery.
#[derive(Debug)]
pub struct TbDelivery {
    /// The block, with its RLC segments.
    pub tb: TransportBlock,
    /// When the UE decodes it (end of the slot).
    pub deliver_at: Instant,
}

/// Everything one downlink slot produced.
#[derive(Debug, Default)]
pub struct SlotOutput {
    /// Whether this was a DL, special, or UL slot.
    pub role: Option<SlotRole>,
    /// Successfully-decoded transport blocks to hand to UE stacks.
    pub deliveries: Vec<TbDelivery>,
    /// F1-U delivery-status frames triggered this slot (transmit side).
    pub f1u: Vec<DlDataDeliveryStatus>,
    /// Per-SDU transmit-timing records (metrics).
    pub txed_records: Vec<(UeId, DrbId, TxRecord)>,
    /// Transport blocks abandoned after max HARQ attempts this slot.
    pub lost_tbs: usize,
}

/// Serialized per-DRB context carried over Xn at handover: the PDCP
/// transmit state plus every SDU not yet confirmed delivered, in SN
/// order, for lossless forwarding to the target cell.
#[derive(Debug)]
pub struct DrbHandoverState {
    /// The bearer.
    pub drb: DrbId,
    /// Its RLC mode (the target re-creates the entity in the same mode).
    pub mode: RlcMode,
    /// PDCP SN the target continues numbering at (no SN reuse).
    pub next_sn: Sn,
    /// SDUs to retransmit at the target, ascending SN order.
    pub forwarded: Vec<ForwardedSdu>,
}

/// Everything a source gNB hands the target over Xn when a UE moves:
/// the SDAP QFI→DRB map, the CA configuration, and per-DRB PDCP/RLC
/// context (TS 38.300 §9.2.3.2 handover with data forwarding). The
/// radio channel itself does *not* travel — the target cell has its own.
#[derive(Debug)]
pub struct UeHandoverCtx {
    /// QFI→DRB mapping rules (CU-UP configuration follows the UE).
    pub sdap: SdapEntity,
    /// Carrier-aggregation factor at the source (kept unless the target
    /// reconfigures it).
    pub ca_factor: u8,
    /// Per-DRB context, in DRB-id order.
    pub drbs: Vec<DrbHandoverState>,
    /// gNB-side uplink RLC receive entities, in DRB-id order. The
    /// target applies PDCP re-establishment (drop partials, keep the
    /// in-order delivery point) before installing them, so uplink SNs —
    /// like downlink ones — are continuous across the switch.
    pub ul_rx: Vec<(DrbId, RlcRx)>,
}

/// Outcome of an uplink transport block arriving at the gNB PHY.
#[derive(Debug)]
pub enum UlTbOutcome {
    /// Decoded: reassembled uplink SDUs in per-DRB SN order, ready for
    /// the core (and the CU's uplink path).
    Decoded(Vec<(DrbId, RxDelivery)>),
    /// Block error: the UE holds the block and retransmits after the
    /// HARQ round trip (chase combining raises the next attempt's SNR).
    Retx(TransportBlock),
    /// HARQ exhausted (or the UE is gone): recovery falls to RLC ARQ in
    /// AM, or the data is lost in UM — exactly as on the downlink.
    Lost,
}

/// Counters for Table-1-style accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct GnbStats {
    /// Transport blocks transmitted (first attempts).
    pub tbs_sent: u64,
    /// HARQ retransmission attempts.
    pub harq_retx: u64,
    /// Transport blocks lost after max attempts.
    pub tbs_lost: u64,
    /// Downlink SDUs accepted into RLC queues.
    pub sdus_enqueued: u64,
    /// Downlink SDUs tail-dropped at full RLC queues.
    pub sdus_dropped: u64,
    /// Uplink transport blocks received (first attempts).
    pub ul_tbs_sent: u64,
    /// Uplink HARQ retransmission attempts received.
    pub ul_harq_retx: u64,
    /// Uplink transport blocks lost after max attempts (or mid-handover).
    pub ul_tbs_lost: u64,
}

#[derive(Debug)]
struct DrbCtx {
    pdcp: PdcpTx,
    rlc: RlcTx,
    /// Last highest-transmitted SN reported over F1-U.
    reported_txed: Option<Sn>,
}

#[derive(Debug)]
struct UeCtx {
    channel: FadingChannel,
    sdap: SdapEntity,
    drbs: BTreeMap<DrbId, DrbCtx>,
    /// Cached sorted DRB ids (the DRB set is fixed after `add_ue`), so
    /// the per-slot TB builder never collects keys into a fresh vector.
    drb_ids: Vec<DrbId>,
    /// PF average throughput in bytes/slot.
    avg_tput: Ewma,
    /// Intra-UE DRB round-robin cursor.
    drb_cursor: usize,
    /// Carrier-aggregation factor: 1 = primary carrier only; 2 = one
    /// secondary carrier of equal width, etc. (paper §7: "CA and MIMO
    /// only change the workflow of MAC and PHY layers, captured by
    /// L4Span's egress rate prediction").
    ca_factor: u8,
    /// Uplink RLC receive entities (empty unless the UE has UL data
    /// bearers configured).
    ul_rx: BTreeMap<DrbId, RlcRx>,
    /// Most recent buffer-status report from the UE, minus bytes already
    /// granted against it (refreshed by every arriving BSR).
    ul_bsr: usize,
    /// PF average **uplink** throughput in granted bytes per UL slot —
    /// its own EWMA: coupling UL fairness to the downlink history would
    /// starve a UE's uplink because its downlink is busy.
    ul_avg_tput: Ewma,
}

#[derive(Debug)]
struct PendingHarq {
    tb: TransportBlock,
    retx_at: Instant,
    rbgs: usize,
}

/// One simulated cell.
#[derive(Debug)]
pub struct Gnb {
    cfg: CellConfig,
    scheduler: SchedulerKind,
    rr_cursor: usize,
    /// Uplink-grant round-robin cursor (independent of the DL one so
    /// adding uplink traffic does not perturb downlink rotation).
    ul_rr_cursor: usize,
    ues: BTreeMap<UeId, UeCtx>,
    pending_harq: Vec<PendingHarq>,
    slot_index: u64,
    rng: SimRng,
    stats: GnbStats,
    // Reusable per-slot scratch (sorted by UE id, rebuilt each slot) so
    // the 2 kHz slot tick allocates nothing in steady state.
    scratch_cands: Vec<Candidate>,
    scratch_cqis: Vec<(UeId, u8)>,
    scratch_served: Vec<(UeId, usize)>,
    scratch_txed: Vec<TxRecord>,
    /// Spare buffer ping-ponged with `pending_harq` each slot so the
    /// retransmission sweep reallocates nothing at steady state.
    scratch_harq: Vec<PendingHarq>,
    /// Pool of emptied TB segment buffers. TBs are built from here and
    /// consumers hand the drained buffers back via
    /// [`Gnb::recycle_segments`], so steady-state TB construction does
    /// not touch the allocator.
    segment_pool: Vec<Vec<(DrbId, Segment)>>,
    /// Reusable RLC-delivery scratch for the uplink TB decode path.
    scratch_rx: Vec<RxDelivery>,
    /// Reusable working sets for the MAC allocators plus the grant
    /// list they emit, so the scheduling step of the slot tick stays
    /// allocation-free (PR 8's shard epochs are slot-tick bound).
    scratch_alloc: mac::AllocScratch,
    scratch_grants: Vec<(UeId, usize)>,
}

impl Gnb {
    /// Create a cell with the given configuration and scheduler.
    pub fn new(cfg: CellConfig, scheduler: SchedulerKind, rng: SimRng) -> Gnb {
        Gnb {
            cfg,
            scheduler,
            rr_cursor: 0,
            ul_rr_cursor: 0,
            ues: BTreeMap::new(),
            pending_harq: Vec::new(),
            slot_index: 0,
            rng,
            stats: GnbStats::default(),
            scratch_cands: Vec::new(),
            scratch_cqis: Vec::new(),
            scratch_served: Vec::new(),
            scratch_txed: Vec::new(),
            scratch_harq: Vec::new(),
            segment_pool: Vec::new(),
            scratch_rx: Vec::new(),
            scratch_alloc: mac::AllocScratch::default(),
            scratch_grants: Vec::new(),
        }
    }

    /// Return an emptied TB segment buffer to the pool (see
    /// [`Gnb::on_slot_into`]'s TB construction). Bounded so a burst
    /// cannot pin memory.
    pub fn recycle_segments(&mut self, mut v: Vec<(DrbId, Segment)>) {
        v.clear();
        if self.segment_pool.len() < 64 {
            self.segment_pool.push(v);
        }
    }

    /// Cell configuration.
    pub fn config(&self) -> &CellConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn stats(&self) -> GnbStats {
        self.stats
    }

    /// Attach a UE with its channel and DRB set. The first DRB listed
    /// becomes the SDAP default.
    pub fn add_ue(&mut self, ue: UeId, channel: FadingChannel, drbs: &[(DrbId, RlcMode)]) {
        assert!(!drbs.is_empty(), "a UE needs at least one DRB");
        let mut map = BTreeMap::new();
        for &(id, mode) in drbs {
            map.insert(
                id,
                DrbCtx {
                    pdcp: PdcpTx::new(),
                    rlc: RlcTx::new(mode, self.cfg.rlc_queue_sdus, self.cfg.segment_overhead),
                    reported_txed: None,
                },
            );
        }
        let mut drb_ids: Vec<DrbId> = map.keys().copied().collect();
        drb_ids.sort_unstable();
        let prev = self.ues.insert(
            ue,
            UeCtx {
                channel,
                sdap: SdapEntity::new(drbs[0].0),
                drbs: map,
                drb_ids,
                avg_tput: Ewma::new(PF_EWMA_GAIN),
                drb_cursor: 0,
                ca_factor: 1,
                ul_rx: BTreeMap::new(),
                ul_bsr: 0,
                ul_avg_tput: Ewma::new(PF_EWMA_GAIN),
            },
        );
        assert!(prev.is_none(), "duplicate UE id {ue}");
    }

    /// Attached UE ids, in order.
    pub fn ue_ids(&self) -> Vec<UeId> {
        self.ues.keys().copied().collect()
    }

    /// Replace a UE's channel in place — the intra-gNB handover of the
    /// paper's §7 discussion: "Upon handover, the buffered bytes are sent
    /// to a new RAN, and the markings are already done based on the old
    /// estimates." RLC queues, PDCP SNs, and HARQ state all survive; only
    /// the radio changes, so L4Span's next estimation window re-learns
    /// the egress rate.
    pub fn replace_channel(&mut self, ue: UeId, channel: FadingChannel) {
        self.ues.get_mut(&ue).expect("unknown UE").channel = channel;
    }

    /// Detach a UE for handover: remove it from this cell and serialize
    /// the context the target needs (PDCP SN state, RLC buffered and
    /// unacknowledged SDUs for lossless forwarding, the SDAP QFI map).
    /// Transport blocks pending HARQ retransmission die with the source
    /// cell's PHY — in AM their SDUs are in the forwarded set anyway; in
    /// UM they are genuinely lost, exactly as over the air.
    pub fn detach_ue(&mut self, ue: UeId) -> UeHandoverCtx {
        let mut ctx = self.ues.remove(&ue).expect("unknown UE");
        // Purged HARQ blocks are radio losses like any other: count them
        // (over-the-air losses increment `tbs_lost` on HARQ exhaustion,
        // and a mobility study reading Table-1 accounting must see the
        // handover-destroyed blocks too).
        let before = self.pending_harq.len();
        self.pending_harq.retain(|p| p.tb.ue != ue);
        self.stats.tbs_lost += (before - self.pending_harq.len()) as u64;
        let drbs = ctx
            .drb_ids
            .iter()
            .map(|&drb| {
                let d = ctx.drbs.get_mut(&drb).expect("drb exists");
                DrbHandoverState {
                    drb,
                    mode: d.rlc.mode(),
                    next_sn: d.pdcp.next_sn(),
                    forwarded: d.rlc.drain_for_handover(),
                }
            })
            .collect();
        let ul_rx = std::mem::take(&mut ctx.ul_rx).into_iter().collect();
        UeHandoverCtx {
            sdap: ctx.sdap,
            ca_factor: ctx.ca_factor,
            drbs,
            ul_rx,
        }
    }

    /// Attach a UE arriving by handover: re-establish PDCP (SN numbering
    /// continues) and RLC (fresh entities in this cell's configuration),
    /// re-enqueue the forwarded SDUs as new data under their original
    /// SNs, and install the migrated SDAP map. `channel` is this cell's
    /// own radio link to the UE. Forwarded SDUs that overflow this
    /// cell's RLC queue are tail-dropped and counted; their identities
    /// are returned so the caller can release any per-SDU bookkeeping
    /// (they will never produce a transmit record). The returned vector
    /// is empty — and allocation-free — on the common, uncongested path.
    pub fn attach_ue_handover(
        &mut self,
        ue: UeId,
        channel: FadingChannel,
        ctx: UeHandoverCtx,
        now: Instant,
    ) -> Vec<(DrbId, Sn)> {
        assert!(!ctx.drbs.is_empty(), "a UE needs at least one DRB");
        let mut dropped = Vec::new();
        let mut map = BTreeMap::new();
        for st in ctx.drbs {
            let mut rlc = RlcTx::new(st.mode, self.cfg.rlc_queue_sdus, self.cfg.segment_overhead);
            for fwd in st.forwarded {
                let sn = fwd.sn;
                if !rlc.enqueue_forwarded(fwd, now) {
                    self.stats.sdus_dropped += 1;
                    dropped.push((st.drb, sn));
                }
            }
            map.insert(
                st.drb,
                DrbCtx {
                    pdcp: PdcpTx::resuming_at(st.next_sn),
                    rlc,
                    reported_txed: None,
                },
            );
        }
        let mut drb_ids: Vec<DrbId> = map.keys().copied().collect();
        drb_ids.sort_unstable();
        // Uplink receive entities migrate whole, through PDCP
        // re-establishment: partial reassembly state from the source is
        // dropped (the UE retransmits those SDUs in full), the in-order
        // delivery point survives, and the cadence adopts this cell's
        // status period. A forced status resynchronises the UE's ARQ.
        let mut ul_rx = BTreeMap::new();
        for (drb, mut rx) in ctx.ul_rx {
            rx.reestablish();
            rx.set_status_period(self.cfg.rlc_status_period);
            ul_rx.insert(drb, rx);
        }
        let prev = self.ues.insert(
            ue,
            UeCtx {
                channel,
                sdap: ctx.sdap,
                drbs: map,
                drb_ids,
                avg_tput: Ewma::new(PF_EWMA_GAIN),
                drb_cursor: 0,
                ca_factor: ctx.ca_factor,
                ul_rx,
                ul_bsr: 0,
                ul_avg_tput: Ewma::new(PF_EWMA_GAIN),
            },
        );
        assert!(prev.is_none(), "UE {ue} already attached to this cell");
        dropped
    }

    /// Configure carrier aggregation for a UE: `carriers` ≥ 1 equal-width
    /// component carriers. The MAC grants the UE that multiple of the
    /// per-RBG transport block, which is exactly how CA reaches L4Span —
    /// as a larger observed egress rate (§7).
    pub fn set_carrier_aggregation(&mut self, ue: UeId, carriers: u8) {
        assert!(carriers >= 1, "at least the primary carrier");
        self.ues.get_mut(&ue).expect("unknown UE").ca_factor = carriers;
    }

    /// Install a QFI→DRB mapping rule for a UE.
    pub fn map_qfi(&mut self, ue: UeId, qfi: Qfi, drb: DrbId) {
        self.ues
            .get_mut(&ue)
            .expect("unknown UE")
            .sdap
            .map_qfi(qfi, drb);
    }

    /// Resolve the DRB a QFI maps to (the SDAP lookup L4Span mirrors).
    pub fn drb_for(&self, ue: UeId, qfi: Qfi) -> DrbId {
        self.ues.get(&ue).expect("unknown UE").sdap.drb_for(qfi)
    }

    /// RLC transmission-queue length in SDUs (Fig. 17's metric).
    pub fn rlc_queue_len(&self, ue: UeId, drb: DrbId) -> usize {
        self.drb(ue, drb).rlc.queue_len_sdus()
    }

    /// RLC backlog in bytes awaiting (re)transmission.
    pub fn rlc_backlog_bytes(&self, ue: UeId, drb: DrbId) -> usize {
        self.drb(ue, drb).rlc.backlog_bytes()
    }

    /// SDUs tail-dropped on this DRB so far.
    pub fn rlc_drops(&self, ue: UeId, drb: DrbId) -> u64 {
        self.drb(ue, drb).rlc.drop_count()
    }

    fn drb(&self, ue: UeId, drb: DrbId) -> &DrbCtx {
        self.ues
            .get(&ue)
            .expect("unknown UE")
            .drbs
            .get(&drb)
            .expect("unknown DRB")
    }

    /// Instantaneous SNR a UE would measure right now (diagnostics and
    /// the Fig. 18 DCI-trace generator).
    pub fn snr_db(&self, ue: UeId, now: Instant) -> f64 {
        self.ues.get(&ue).expect("unknown UE").channel.snr_db(now)
    }

    /// CQI the scheduler would use for a UE at `now` (stale by
    /// `cqi_delay`, minus the link-adaptation backoff).
    pub fn current_cqi(&self, ue: UeId, now: Instant) -> u8 {
        let ch = &self.ues.get(&ue).expect("unknown UE").channel;
        let t = Instant::from_nanos(
            now.as_nanos().saturating_sub(self.cfg.cqi_delay.as_nanos()),
        );
        phy::select_mcs(ch.snr_db(t), self.cfg.link_adaptation_backoff_db)
    }

    /// A downlink packet arrives from the core network (post-L4Span).
    /// SDAP maps it, PDCP numbers it, RLC queues it. Returns the assigned
    /// PDCP SN, or `None` if the RLC queue was full and the packet was
    /// dropped.
    pub fn enqueue_downlink(
        &mut self,
        ue: UeId,
        qfi: Qfi,
        pkt: PacketBuf,
        now: Instant,
    ) -> Option<(DrbId, Sn)> {
        let ctx = self.ues.get_mut(&ue).expect("unknown UE");
        let drb = ctx.sdap.drb_for(qfi);
        let d = ctx.drbs.get_mut(&drb).expect("SDAP mapped to missing DRB");
        let sn = d.pdcp.assign_sn();
        if d.rlc.enqueue(sn, pkt, now) {
            self.stats.sdus_enqueued += 1;
            Some((drb, sn))
        } else {
            self.stats.sdus_dropped += 1;
            None
        }
    }

    /// Advance one TDD slot. `now` is the slot start time.
    pub fn on_slot(&mut self, now: Instant) -> SlotOutput {
        let mut out = SlotOutput::default();
        self.on_slot_into(now, &mut out);
        out
    }

    /// Advance one TDD slot, reusing the caller's `out` buffers (cleared
    /// first). The harness's event loop calls this 2000 times per
    /// simulated second; reusing the output vectors keeps the slot tick
    /// allocation-free.
    pub fn on_slot_into(&mut self, now: Instant, out: &mut SlotOutput) {
        let role = self.cfg.slot_role(self.slot_index);
        self.slot_index += 1;
        out.deliveries.clear();
        out.f1u.clear();
        out.txed_records.clear();
        out.lost_tbs = 0;
        out.role = Some(role);
        let dl_fraction = match role {
            SlotRole::Downlink => 1.0,
            SlotRole::Special => self.cfg.special_slot_dl_fraction,
            SlotRole::Uplink => return,
        };
        let mut rbgs_left = self.cfg.n_rbgs();
        let deliver_at = now + self.cfg.slot_duration;

        // --- 1. HARQ retransmissions first (they own their resources) ---
        let mut pending = std::mem::take(&mut self.pending_harq);
        let mut still_pending = std::mem::take(&mut self.scratch_harq);
        for mut p in pending.drain(..) {
            if p.retx_at > now || p.rbgs > rbgs_left {
                still_pending.push(p);
                continue;
            }
            rbgs_left -= p.rbgs;
            self.stats.harq_retx += 1;
            p.tb.attempt += 1;
            let ue = p.tb.ue;
            let snr = self.ues.get(&ue).expect("ue").channel.snr_db(now)
                + HARQ_COMBINING_GAIN_DB * f64::from(p.tb.attempt - 1);
            let err = phy::bler(p.tb.cqi, snr);
            if self.rng.chance(err) {
                if p.tb.attempt >= self.cfg.harq_max_attempts {
                    self.stats.tbs_lost += 1;
                    out.lost_tbs += 1;
                    self.recycle_segments(p.tb.segments);
                } else {
                    p.retx_at = now + self.cfg.harq_rtt;
                    still_pending.push(p);
                }
            } else {
                out.deliveries.push(TbDelivery {
                    tb: p.tb,
                    deliver_at,
                });
            }
        }
        self.pending_harq = still_pending;
        self.scratch_harq = pending;

        // --- 2. Link adaptation + scheduling for new data ---
        let stale_at = Instant::from_nanos(
            now.as_nanos().saturating_sub(self.cfg.cqi_delay.as_nanos()),
        );
        self.scratch_cands.clear();
        self.scratch_cqis.clear();
        for (&ue, ctx) in &self.ues {
            let backlog: usize = ctx.drbs.values().map(|d| d.rlc.backlog_bytes()).sum();
            let cqi = phy::select_mcs(
                ctx.channel.snr_db(stale_at),
                self.cfg.link_adaptation_backoff_db,
            );
            self.scratch_cqis.push((ue, cqi));
            let per_rbg = (phy::tbs_bytes(cqi, self.cfg.rbg_size, self.cfg.re_per_prb) as f64
                * dl_fraction
                * f64::from(ctx.ca_factor)) as usize;
            self.scratch_cands.push(Candidate {
                ue,
                backlog,
                bytes_per_rbg: per_rbg,
                avg_throughput: ctx.avg_tput.get_or(0.0),
            });
        }
        let mut grants = std::mem::take(&mut self.scratch_grants);
        match self.scheduler {
            SchedulerKind::RoundRobin => mac::allocate_round_robin_into(
                &self.scratch_cands,
                rbgs_left,
                &mut self.rr_cursor,
                &mut self.scratch_alloc,
                &mut grants,
            ),
            SchedulerKind::ProportionalFair => mac::allocate_proportional_fair_into(
                &self.scratch_cands,
                rbgs_left,
                &mut self.scratch_alloc,
                &mut grants,
            ),
        }

        // --- 3. Build transport blocks from RLC queues ---
        // `scratch_cqis` and `grants` are both sorted by UE id (the map
        // iterates in order and the allocators preserve candidate order).
        self.scratch_served.clear();
        for &(ue, n_rbgs) in &grants {
            let cqi = self.scratch_cqis[self
                .scratch_cqis
                .binary_search_by_key(&ue, |&(u, _)| u)
                .expect("granted UE was a candidate")]
            .1;
            let prbs = (n_rbgs * self.cfg.rbg_size).min(self.cfg.n_prbs);
            let budget =
                (phy::tbs_bytes(cqi, prbs, self.cfg.re_per_prb) as f64 * dl_fraction) as usize;
            if budget == 0 {
                continue;
            }
            let ctx = self.ues.get_mut(&ue).expect("granted UE exists");
            let budget = budget * usize::from(ctx.ca_factor);
            let n_drbs = ctx.drb_ids.len();
            // Pooled buffer (small TBs carry 1–2 segments; pooled vecs
            // keep their grown capacity, so no regrowth in practice).
            let mut segments = self.segment_pool.pop().unwrap_or_default();
            let mut left = budget;
            for k in 0..n_drbs {
                if left <= self.cfg.segment_overhead {
                    break;
                }
                let drb_id = ctx.drb_ids[(ctx.drb_cursor + k) % n_drbs];
                let d = ctx.drbs.get_mut(&drb_id).expect("drb exists");
                self.scratch_txed.clear();
                let consumed =
                    d.rlc
                        .pull_with(left, now, &mut self.scratch_txed, |s| {
                            segments.push((drb_id, s));
                        });
                left -= consumed;
                for rec in self.scratch_txed.drain(..) {
                    out.txed_records.push((ue, drb_id, rec));
                }
            }
            ctx.drb_cursor = (ctx.drb_cursor + 1) % n_drbs.max(1);
            if segments.is_empty() {
                self.recycle_segments(segments);
                continue;
            }
            let used = budget - left;
            self.scratch_served.push((ue, used));
            let tb = TransportBlock {
                ue,
                segments,
                bytes: used,
                attempt: 1,
                cqi,
                first_tx: now,
            };
            self.stats.tbs_sent += 1;
            // Block-error draw at the *actual* current SNR.
            let snr = self.ues.get(&ue).expect("ue").channel.snr_db(now);
            if self.rng.chance(phy::bler(cqi, snr)) {
                self.pending_harq.push(PendingHarq {
                    tb,
                    retx_at: now + self.cfg.harq_rtt,
                    rbgs: n_rbgs,
                });
            } else {
                out.deliveries.push(TbDelivery { tb, deliver_at });
            }
        }
        self.scratch_grants = grants;

        // --- 4. PF throughput averages (every connected UE, every slot) ---
        // Merge-walk: both `ues` and `scratch_served` are UE-id sorted.
        let mut served_it = self.scratch_served.iter().peekable();
        for (&ue, ctx) in self.ues.iter_mut() {
            let bytes = match served_it.peek() {
                Some(&&(su, b)) if su == ue => {
                    served_it.next();
                    b as f64
                }
                _ => 0.0,
            };
            ctx.avg_tput.push(bytes);
        }

        // --- 5. F1-U: report DRBs whose highest-transmitted SN advanced ---
        for (&ue, ctx) in self.ues.iter_mut() {
            for (&drb, d) in ctx.drbs.iter_mut() {
                if d.rlc.highest_txed() != d.reported_txed {
                    d.reported_txed = d.rlc.highest_txed();
                    out.f1u.push(DlDataDeliveryStatus {
                        ue,
                        drb,
                        highest_txed_sn: d.rlc.highest_txed(),
                        highest_delivered_sn: d.rlc.highest_delivered(),
                        timestamp: now,
                        desired_buffer_size: 0,
                    });
                }
            }
        }
    }

    /// An RLC AM status report arrived from a UE. Returns per-SDU
    /// delivery records plus the F1-U frame announcing the new
    /// highest-delivered SN (if it advanced).
    pub fn on_rlc_status(
        &mut self,
        ue: UeId,
        drb: DrbId,
        status: &RlcStatus,
        now: Instant,
    ) -> (Vec<DeliveryRecord>, Option<DlDataDeliveryStatus>) {
        let ctx = self.ues.get_mut(&ue).expect("unknown UE");
        let d = ctx.drbs.get_mut(&drb).expect("unknown DRB");
        let before = d.rlc.highest_delivered();
        let records = d.rlc.on_status(status, now);
        let after = d.rlc.highest_delivered();
        let f1u = (after != before).then(|| DlDataDeliveryStatus {
            ue,
            drb,
            highest_txed_sn: d.rlc.highest_txed(),
            highest_delivered_sn: after,
            timestamp: now,
            desired_buffer_size: 0,
        });
        (records, f1u)
    }

    // ------------------------------------------------------------------
    // Uplink data plane (bidirectional scenarios)
    // ------------------------------------------------------------------

    /// Configure an uplink receive bearer for an attached UE (the DU
    /// mirror of [`UeStack::configure_ul_drb`](crate::UeStack)).
    /// Idempotent per DRB.
    pub fn ensure_ul_drb(&mut self, ue: UeId, drb: DrbId, mode: RlcMode) {
        let ctx = self.ues.get_mut(&ue).expect("unknown UE");
        ctx.ul_rx
            .entry(drb)
            .or_insert_with(|| RlcRx::new(mode, self.cfg.rlc_status_period));
    }

    /// A buffer-status report arrived from a UE: the scheduler now knows
    /// this many bytes are buffered across the UE's UL bearers.
    pub fn on_ul_bsr(&mut self, ue: UeId, total_bytes: usize) {
        if let Some(ctx) = self.ues.get_mut(&ue) {
            ctx.ul_bsr = total_bytes;
        }
    }

    /// The buffer status the scheduler currently believes for a UE
    /// (reported bytes minus grants already issued against them).
    pub fn ul_known_bsr(&self, ue: UeId) -> usize {
        self.ues.get(&ue).map_or(0, |c| c.ul_bsr)
    }

    /// Allocate this uplink slot's resources across BSR-backlogged UEs:
    /// the same RBG allocators as the downlink (round-robin or
    /// proportional fair), with link adaptation from the stale CQI and a
    /// separate rotation cursor. Each entry is `(ue, granted_bytes,
    /// cqi)`; **the sum of granted TBS never exceeds the slot's
    /// capacity**, and every grant is debited against the UE's known BSR
    /// so the scheduler does not re-grant the same bytes before the next
    /// report arrives.
    pub fn allocate_ul_grants_into(
        &mut self,
        now: Instant,
        out: &mut Vec<(UeId, usize, u8)>,
    ) {
        out.clear();
        let stale_at = Instant::from_nanos(
            now.as_nanos().saturating_sub(self.cfg.cqi_delay.as_nanos()),
        );
        self.scratch_cands.clear();
        self.scratch_cqis.clear();
        for (&ue, ctx) in &self.ues {
            let cqi = phy::select_mcs(
                ctx.channel.snr_db(stale_at),
                self.cfg.link_adaptation_backoff_db,
            );
            self.scratch_cqis.push((ue, cqi));
            let per_rbg = phy::tbs_bytes(cqi, self.cfg.rbg_size, self.cfg.re_per_prb)
                * usize::from(ctx.ca_factor);
            self.scratch_cands.push(Candidate {
                ue,
                backlog: ctx.ul_bsr,
                bytes_per_rbg: per_rbg,
                avg_throughput: ctx.ul_avg_tput.get_or(0.0),
            });
        }
        let grants = match self.scheduler {
            SchedulerKind::RoundRobin => mac::allocate_round_robin(
                &self.scratch_cands,
                self.cfg.n_rbgs(),
                &mut self.ul_rr_cursor,
            ),
            SchedulerKind::ProportionalFair => {
                mac::allocate_proportional_fair(&self.scratch_cands, self.cfg.n_rbgs())
            }
        };
        for (ue, n_rbgs) in grants {
            let cqi = self.scratch_cqis[self
                .scratch_cqis
                .binary_search_by_key(&ue, |&(u, _)| u)
                .expect("granted UE was a candidate")]
            .1;
            let prbs = (n_rbgs * self.cfg.rbg_size).min(self.cfg.n_prbs);
            let ctx = self.ues.get_mut(&ue).expect("granted UE exists");
            let budget = phy::tbs_bytes(cqi, prbs, self.cfg.re_per_prb)
                * usize::from(ctx.ca_factor);
            if budget == 0 {
                continue;
            }
            ctx.ul_bsr = ctx.ul_bsr.saturating_sub(budget);
            out.push((ue, budget, cqi));
        }
        // Uplink PF averages: every attached UE, every UL slot (`out`
        // is UE-id sorted because the allocators preserve candidate
        // order — merge-walk, exactly like the downlink step 4).
        let mut granted_it = out.iter().peekable();
        for (&ue, ctx) in self.ues.iter_mut() {
            let bytes = match granted_it.peek() {
                Some(&&(gu, b, _)) if gu == ue => {
                    granted_it.next();
                    b as f64
                }
                _ => 0.0,
            };
            ctx.ul_avg_tput.push(bytes);
        }
    }

    /// An uplink transport block arrives at the PHY: draw the block
    /// error at the UE's actual SNR (plus chase-combining gain per HARQ
    /// attempt); on success, reassemble through the per-DRB uplink RLC
    /// receivers and return in-order SDU deliveries.
    pub fn receive_ul_tb(&mut self, mut tb: TransportBlock, now: Instant) -> UlTbOutcome {
        let Some(snr0) = self.ues.get(&tb.ue).map(|c| c.channel.snr_db(now)) else {
            self.stats.ul_tbs_lost += 1;
            self.recycle_segments(tb.segments);
            return UlTbOutcome::Lost;
        };
        if tb.attempt == 1 {
            self.stats.ul_tbs_sent += 1;
        } else {
            self.stats.ul_harq_retx += 1;
        }
        let snr = snr0 + HARQ_COMBINING_GAIN_DB * f64::from(tb.attempt - 1);
        if self.rng.chance(phy::bler(tb.cqi, snr)) {
            if tb.attempt >= self.cfg.harq_max_attempts {
                self.stats.ul_tbs_lost += 1;
                self.recycle_segments(tb.segments);
                return UlTbOutcome::Lost;
            }
            tb.attempt += 1;
            return UlTbOutcome::Retx(tb);
        }
        let ctx = self.ues.get_mut(&tb.ue).expect("checked above");
        let mut deliv = std::mem::take(&mut self.scratch_rx);
        let mut out = Vec::new();
        for (drb, seg) in tb.segments.drain(..) {
            let Some(rx) = ctx.ul_rx.get_mut(&drb) else {
                continue; // segment for an unconfigured UL DRB: dropped
            };
            rx.on_segment_into(seg, now, &mut deliv);
            for d in deliv.drain(..) {
                out.push((drb, d));
            }
        }
        self.scratch_rx = deliv;
        self.recycle_segments(tb.segments);
        UlTbOutcome::Decoded(out)
    }

    /// Collect due uplink RLC AM status reports (the DU→UE half of UL
    /// ARQ; they ride the fast downlink control channel). Cadence is
    /// governed by each receive entity's status period.
    pub fn ul_statuses_into(
        &mut self,
        now: Instant,
        out: &mut Vec<(UeId, DrbId, RlcStatus)>,
    ) {
        for (&ue, ctx) in self.ues.iter_mut() {
            for (&drb, rx) in ctx.ul_rx.iter_mut() {
                if let Some(st) = rx.make_status(now) {
                    out.push((ue, drb, st));
                }
            }
        }
    }

    /// Timer poll of the uplink receive entities: UM reassembly-timeout
    /// skips, mirroring the UE-side downlink poll. Appends into the
    /// caller's reusable buffer (the `_into` convention of the other
    /// uplink paths — the poll runs every 5 ms and is almost always
    /// empty).
    pub fn poll_ul_rx_into(&mut self, now: Instant, out: &mut Vec<(UeId, DrbId, RxDelivery)>) {
        let mut deliv = std::mem::take(&mut self.scratch_rx);
        for (&ue, ctx) in self.ues.iter_mut() {
            for (&drb, rx) in ctx.ul_rx.iter_mut() {
                rx.poll_into(now, &mut deliv);
                for d in deliv.drain(..) {
                    out.push((ue, drb, d));
                }
            }
        }
        self.scratch_rx = deliv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelProfile;
    use l4span_net::{Ecn, TcpHeader};

    fn pkt(len: usize) -> PacketBuf {
        PacketBuf::tcp(1, 2, Ecn::Ect1, 0, &TcpHeader::default(), len)
    }

    fn cell(n_ues: u16) -> Gnb {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(1));
        let rng = SimRng::new(99);
        for u in 0..n_ues {
            let ch = FadingChannel::new(
                ChannelProfile::Static,
                25.0,
                cfg.carrier_hz,
                &mut rng.derive(u as u64),
            );
            g.add_ue(UeId(u), ch, &[(DrbId(0), RlcMode::Am)]);
        }
        g
    }

    /// Drive `g` for `n` slots starting at t=0, collecting outputs.
    fn run_slots(g: &mut Gnb, n: u64) -> Vec<SlotOutput> {
        let slot = g.config().slot_duration;
        (0..n)
            .map(|i| g.on_slot(Instant::ZERO + slot * i))
            .collect()
    }

    #[test]
    fn single_ue_gets_full_cell_rate() {
        let mut g = cell(1);
        // Saturate the queue: 2 seconds of traffic at 40 Mbit/s ≈ 6700 pkts.
        for i in 0..7000u64 {
            g.enqueue_downlink(UeId(0), Qfi(1), pkt(1460), Instant::ZERO);
            let _ = i;
        }
        let outs = run_slots(&mut g, 2000); // 1 second
        let bytes: usize = outs
            .iter()
            .flat_map(|o| &o.deliveries)
            .map(|d| {
                d.tb.segments
                    .iter()
                    .map(|(_, s)| s.len as usize)
                    .sum::<usize>()
            })
            .sum();
        let mbps = bytes as f64 * 8.0 / 1e6;
        assert!(
            (30.0..=45.0).contains(&mbps),
            "saturated single-UE rate {mbps} Mbit/s should be ≈40"
        );
    }

    #[test]
    fn uplink_slots_produce_no_downlink() {
        let mut g = cell(1);
        g.enqueue_downlink(UeId(0), Qfi(1), pkt(1460), Instant::ZERO);
        let outs = run_slots(&mut g, 5);
        assert_eq!(outs[4].role, Some(SlotRole::Uplink));
        assert!(outs[4].deliveries.is_empty());
        assert!(outs[0].role == Some(SlotRole::Downlink));
    }

    #[test]
    fn f1u_reports_txed_progress() {
        let mut g = cell(1);
        g.enqueue_downlink(UeId(0), Qfi(1), pkt(500), Instant::ZERO);
        let outs = run_slots(&mut g, 2);
        let f1u: Vec<_> = outs.iter().flat_map(|o| &o.f1u).collect();
        assert!(!f1u.is_empty());
        assert_eq!(f1u[0].highest_txed_sn, Some(0));
        assert_eq!(f1u[0].highest_delivered_sn, None);
    }

    #[test]
    fn status_ack_produces_delivered_f1u() {
        let mut g = cell(1);
        g.enqueue_downlink(UeId(0), Qfi(1), pkt(500), Instant::ZERO);
        run_slots(&mut g, 2);
        let (recs, f1u) = g.on_rlc_status(
            UeId(0),
            DrbId(0),
            &RlcStatus {
                ack_sn: 1,
                nacks: vec![],
            },
            Instant::from_millis(10),
        );
        assert_eq!(recs.len(), 1);
        let f = f1u.expect("highest delivered advanced");
        assert_eq!(f.highest_delivered_sn, Some(0));
    }

    #[test]
    fn two_ues_share_capacity_roughly_equally() {
        let mut g = cell(2);
        for _ in 0..4000 {
            g.enqueue_downlink(UeId(0), Qfi(1), pkt(1460), Instant::ZERO);
            g.enqueue_downlink(UeId(1), Qfi(1), pkt(1460), Instant::ZERO);
        }
        let outs = run_slots(&mut g, 2000);
        let mut per_ue = [0usize; 2];
        for o in &outs {
            for d in &o.deliveries {
                per_ue[d.tb.ue.0 as usize] += d.tb.bytes;
            }
        }
        let ratio = per_ue[0] as f64 / per_ue[1] as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "RR share ratio {ratio}: {per_ue:?}"
        );
    }

    #[test]
    fn queue_overflow_drops_are_counted() {
        let cfg = CellConfig {
            rlc_queue_sdus: 4,
            ..CellConfig::default()
        };
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(1));
        let ch = FadingChannel::new(
            ChannelProfile::Static,
            25.0,
            cfg.carrier_hz,
            &mut SimRng::new(5),
        );
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        for _ in 0..10 {
            g.enqueue_downlink(UeId(0), Qfi(1), pkt(1000), Instant::ZERO);
        }
        assert_eq!(g.stats().sdus_dropped, 6);
        assert_eq!(g.rlc_queue_len(UeId(0), DrbId(0)), 4);
        assert_eq!(g.rlc_drops(UeId(0), DrbId(0)), 6);
    }

    #[test]
    fn bad_channel_triggers_harq_and_recovers_via_retx() {
        // Low SNR near the bottom CQI threshold: plenty of block errors.
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(3));
        let ch = FadingChannel::new(
            ChannelProfile::Vehicular,
            6.0,
            cfg.carrier_hz,
            &mut SimRng::new(17),
        );
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        for _ in 0..200 {
            g.enqueue_downlink(UeId(0), Qfi(1), pkt(1460), Instant::ZERO);
        }
        let outs = run_slots(&mut g, 4000); // 2 s
        assert!(g.stats().harq_retx > 0, "expected HARQ retransmissions");
        let delivered_bytes: usize = outs
            .iter()
            .flat_map(|o| &o.deliveries)
            .map(|d| d.tb.bytes)
            .sum();
        assert!(delivered_bytes > 0, "data still flows despite errors");
    }

    #[test]
    fn qfi_mapping_routes_to_correct_drb() {
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(1));
        let ch = FadingChannel::new(
            ChannelProfile::Static,
            25.0,
            cfg.carrier_hz,
            &mut SimRng::new(5),
        );
        g.add_ue(
            UeId(0),
            ch,
            &[(DrbId(0), RlcMode::Am), (DrbId(1), RlcMode::Am)],
        );
        g.map_qfi(UeId(0), Qfi(7), DrbId(1));
        assert_eq!(g.drb_for(UeId(0), Qfi(7)), DrbId(1));
        assert_eq!(g.drb_for(UeId(0), Qfi(1)), DrbId(0), "default DRB");
        let (drb, sn) = g
            .enqueue_downlink(UeId(0), Qfi(7), pkt(100), Instant::ZERO)
            .unwrap();
        assert_eq!(drb, DrbId(1));
        assert_eq!(sn, 0);
        assert_eq!(g.rlc_queue_len(UeId(0), DrbId(1)), 1);
        assert_eq!(g.rlc_queue_len(UeId(0), DrbId(0)), 0);
    }

    #[test]
    fn handover_keeps_buffered_bytes_and_recovers() {
        // §7: the buffered bytes survive a channel change; service
        // continues at the new cell's rate.
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(2));
        let good = FadingChannel::new(
            ChannelProfile::Static,
            26.0,
            cfg.carrier_hz,
            &mut SimRng::new(5),
        );
        g.add_ue(UeId(0), good, &[(DrbId(0), RlcMode::Am)]);
        for _ in 0..400 {
            g.enqueue_downlink(UeId(0), Qfi(0), pkt(1460), Instant::ZERO);
        }
        run_slots(&mut g, 100);
        let before = g.rlc_backlog_bytes(UeId(0), DrbId(0));
        assert!(before > 0, "still draining");
        // Handover to a much worse cell-edge channel.
        let poor = FadingChannel::new(
            ChannelProfile::Static,
            6.0,
            cfg.carrier_hz,
            &mut SimRng::new(9),
        );
        g.replace_channel(UeId(0), poor);
        let slot = g.config().slot_duration;
        let outs: Vec<SlotOutput> = (100..400u64)
            .map(|i| g.on_slot(Instant::ZERO + slot * i))
            .collect();
        let served: usize = outs.iter().flat_map(|o| &o.deliveries).map(|d| d.tb.bytes).sum();
        assert!(served > 0, "the new cell still serves the old buffer");
        assert!(
            g.rlc_backlog_bytes(UeId(0), DrbId(0)) < before,
            "backlog keeps draining after handover"
        );
    }

    #[test]
    fn xn_handover_forwards_backlog_and_continues_sns() {
        let cfg = CellConfig::default();
        let mut src = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(2));
        let mut dst = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(3));
        let ch_a = FadingChannel::new(
            ChannelProfile::Static,
            25.0,
            cfg.carrier_hz,
            &mut SimRng::new(5),
        );
        src.add_ue(UeId(0), ch_a, &[(DrbId(0), RlcMode::Am)]);
        src.map_qfi(UeId(0), Qfi(7), DrbId(0));
        for _ in 0..300 {
            src.enqueue_downlink(UeId(0), Qfi(0), pkt(1460), Instant::ZERO);
        }
        run_slots(&mut src, 50);
        let backlog_before = src.rlc_backlog_bytes(UeId(0), DrbId(0));
        assert!(backlog_before > 0, "still draining at handover time");

        // --- the handover ---
        let ctx = src.detach_ue(UeId(0));
        assert!(src.ue_ids().is_empty());
        assert!(
            !ctx.drbs[0].forwarded.is_empty(),
            "unconfirmed SDUs travel over Xn"
        );
        let sn_resume = ctx.drbs[0].next_sn;
        let ch_b = FadingChannel::new(
            ChannelProfile::Static,
            20.0,
            cfg.carrier_hz,
            &mut SimRng::new(9),
        );
        dst.attach_ue_handover(UeId(0), ch_b, ctx, Instant::from_millis(25));

        // QFI map migrated; PDCP numbering continues, no SN reuse.
        assert_eq!(dst.drb_for(UeId(0), Qfi(7)), DrbId(0));
        let (_, sn) = dst
            .enqueue_downlink(UeId(0), Qfi(0), pkt(100), Instant::from_millis(25))
            .unwrap();
        assert_eq!(sn, sn_resume);

        // The target serves the forwarded backlog.
        let slot = cfg.slot_duration;
        let outs: Vec<SlotOutput> = (50..600u64)
            .map(|i| dst.on_slot(Instant::ZERO + slot * i))
            .collect();
        let served: usize = outs
            .iter()
            .flat_map(|o| &o.deliveries)
            .map(|d| d.tb.bytes)
            .sum();
        assert!(served > 0, "forwarded SDUs are transmitted by the target");
        // Lowest forwarded SN is retransmitted first.
        let first_sn = outs
            .iter()
            .flat_map(|o| &o.deliveries)
            .flat_map(|d| d.tb.segments.iter())
            .map(|(_, s)| s.sn)
            .next()
            .unwrap();
        assert_eq!(first_sn, 0, "retransmission restarts at the oldest unconfirmed SN");
    }

    #[test]
    fn detach_drops_pending_harq_for_the_ue() {
        // Cell-edge channel: force HARQ backlog, then detach.
        let cfg = CellConfig::default();
        let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(3));
        let ch = FadingChannel::new(
            ChannelProfile::Vehicular,
            6.0,
            cfg.carrier_hz,
            &mut SimRng::new(17),
        );
        g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
        for _ in 0..200 {
            g.enqueue_downlink(UeId(0), Qfi(0), pkt(1460), Instant::ZERO);
        }
        run_slots(&mut g, 200);
        let _ctx = g.detach_ue(UeId(0));
        // Subsequent slots must not panic on orphaned HARQ state.
        let slot = g.config().slot_duration;
        for i in 200..260u64 {
            g.on_slot(Instant::ZERO + slot * i);
        }
    }

    #[test]
    fn carrier_aggregation_scales_single_ue_rate() {
        // §7 extension: a second component carrier should roughly double
        // a lone UE's saturated throughput.
        let mk = |carriers: u8| {
            let cfg = CellConfig::default();
            let mut g = Gnb::new(cfg.clone(), SchedulerKind::RoundRobin, SimRng::new(4));
            let ch = FadingChannel::new(
                ChannelProfile::Static,
                25.0,
                cfg.carrier_hz,
                &mut SimRng::new(6),
            );
            g.add_ue(UeId(0), ch, &[(DrbId(0), RlcMode::Am)]);
            g.set_carrier_aggregation(UeId(0), carriers);
            for _ in 0..14_000 {
                g.enqueue_downlink(UeId(0), Qfi(0), pkt(1460), Instant::ZERO);
            }
            let outs = run_slots(&mut g, 2000); // 1 s
            outs.iter()
                .flat_map(|o| &o.deliveries)
                .map(|d| d.tb.bytes)
                .sum::<usize>() as f64
                * 8.0
                / 1e6
        };
        let single = mk(1);
        let dual = mk(2);
        assert!(
            dual > 1.7 * single,
            "CA x2 should ~double the rate: {single} -> {dual} Mbit/s"
        );
    }

    #[test]
    fn ul_grants_respect_bsr_and_slot_capacity() {
        let mut g = cell(2);
        g.ensure_ul_drb(UeId(0), DrbId(0), RlcMode::Am);
        g.ensure_ul_drb(UeId(1), DrbId(0), RlcMode::Am);
        let mut grants = Vec::new();
        // No BSR yet: nothing granted.
        g.allocate_ul_grants_into(Instant::from_millis(2), &mut grants);
        assert!(grants.is_empty(), "no grants before a BSR: {grants:?}");
        // One UE reports a small backlog, the other a huge one.
        g.on_ul_bsr(UeId(0), 500);
        g.on_ul_bsr(UeId(1), 10_000_000);
        g.allocate_ul_grants_into(Instant::from_millis(2), &mut grants);
        assert_eq!(grants.len(), 2, "both backlogged UEs served: {grants:?}");
        let cfg = CellConfig::default();
        let slot_cap = crate::phy::tbs_bytes(15, cfg.n_prbs, cfg.re_per_prb);
        let total: usize = grants.iter().map(|&(_, b, _)| b).sum();
        assert!(
            total <= slot_cap + cfg.rbg_size * cfg.re_per_prb,
            "granted {total} exceeds slot capacity {slot_cap}"
        );
        // Grants are debited against the known BSR.
        assert_eq!(g.ul_known_bsr(UeId(0)), 0);
        assert!(g.ul_known_bsr(UeId(1)) < 10_000_000);
    }

    #[test]
    fn ul_tb_roundtrip_delivers_in_order_through_gnb_rlc() {
        use crate::ue::UeStack;
        use l4span_sim::Duration;
        let mut g = cell(1);
        g.ensure_ul_drb(UeId(0), DrbId(0), RlcMode::Am);
        let mut ue = UeStack::new(
            UeId(0),
            &[(DrbId(0), RlcMode::Am)],
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            SimRng::new(3),
        );
        ue.configure_ul_drb(DrbId(0), RlcMode::Am, 1024, 8);
        let mut delivered = Vec::new();
        let mut t = Instant::from_millis(10);
        for k in 0..20u16 {
            ue.enqueue_uplink_data(DrbId(0), pkt(960), t);
            let _ = k;
        }
        let mut grants = Vec::new();
        for _ in 0..200 {
            g.on_ul_bsr(UeId(0), ue.ul_backlog_bytes());
            g.allocate_ul_grants_into(t, &mut grants);
            for &(gu, bytes, cqi) in &grants {
                assert_eq!(gu, UeId(0));
                if let Some(tb) = ue.build_ul_tb(bytes, cqi, t) {
                    assert!(tb.bytes <= bytes, "TB exceeds grant");
                    let mut next = Some(tb);
                    while let Some(tb) = next.take() {
                        match g.receive_ul_tb(tb, t) {
                            UlTbOutcome::Decoded(ds) => {
                                delivered.extend(ds.into_iter().map(|(_, d)| d.sn));
                            }
                            UlTbOutcome::Retx(tb) => next = Some(tb),
                            UlTbOutcome::Lost => {}
                        }
                    }
                }
            }
            t += Duration::from_micros(2500);
            if delivered.len() == 20 {
                break;
            }
        }
        assert_eq!(delivered.len(), 20, "all uplink SDUs arrive");
        let sorted: Vec<u64> = (0..20).collect();
        assert_eq!(delivered, sorted, "exactly once, in SN order");
        assert!(g.stats().ul_tbs_sent > 0);
    }

    #[test]
    fn pdcp_sns_are_per_drb_dense() {
        let mut g = cell(1);
        let (_, sn0) = g
            .enqueue_downlink(UeId(0), Qfi(1), pkt(100), Instant::ZERO)
            .unwrap();
        let (_, sn1) = g
            .enqueue_downlink(UeId(0), Qfi(1), pkt(100), Instant::ZERO)
            .unwrap();
        assert_eq!((sn0, sn1), (0, 1));
    }
}

//! PHY abstraction: link adaptation (SNR→CQI→MCS), transport-block
//! sizing, and the BLER model that drives HARQ retransmissions.
//!
//! The CQI table is a condensed 3GPP TS 38.214-style table whose top
//! spectral efficiency is calibrated so a fully-allocated 51-PRB cell
//! saturates at ≈40 Mbit/s (the paper's testbed capacity, §6.1).

/// One link-adaptation operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqiEntry {
    /// SNR (dB) at which this CQI achieves ≈10% BLER.
    pub snr_threshold_db: f64,
    /// Spectral efficiency in bits per resource element.
    pub efficiency: f64,
}

/// Condensed CQI table: index = CQI − 1 (CQI 0 = out of range).
/// Thresholds follow the usual ~1.9 dB/step ladder; efficiencies are the
/// 38.214 Table 5.2.2.1-2 values scaled to a 4.45 b/RE ceiling (40 Mbit/s
/// cell calibration, see `CellConfig::capacity_bps`).
pub const CQI_TABLE: [CqiEntry; 15] = [
    CqiEntry { snr_threshold_db: -6.7, efficiency: 0.15 },
    CqiEntry { snr_threshold_db: -4.7, efficiency: 0.23 },
    CqiEntry { snr_threshold_db: -2.3, efficiency: 0.38 },
    CqiEntry { snr_threshold_db: 0.2, efficiency: 0.60 },
    CqiEntry { snr_threshold_db: 2.4, efficiency: 0.88 },
    CqiEntry { snr_threshold_db: 4.3, efficiency: 1.18 },
    CqiEntry { snr_threshold_db: 5.9, efficiency: 1.48 },
    CqiEntry { snr_threshold_db: 8.1, efficiency: 1.91 },
    CqiEntry { snr_threshold_db: 10.3, efficiency: 2.41 },
    CqiEntry { snr_threshold_db: 11.7, efficiency: 2.73 },
    CqiEntry { snr_threshold_db: 14.1, efficiency: 3.32 },
    CqiEntry { snr_threshold_db: 16.3, efficiency: 3.90 },
    CqiEntry { snr_threshold_db: 18.7, efficiency: 4.21 },
    CqiEntry { snr_threshold_db: 21.0, efficiency: 4.39 },
    CqiEntry { snr_threshold_db: 22.7, efficiency: 4.45 },
];

/// CQI (1..=15) reported for a measured SNR, or 0 if below the lowest
/// operating point.
pub fn cqi_for_snr(snr_db: f64) -> u8 {
    let mut cqi = 0u8;
    for (i, e) in CQI_TABLE.iter().enumerate() {
        if snr_db >= e.snr_threshold_db {
            cqi = (i + 1) as u8;
        } else {
            break;
        }
    }
    cqi
}

/// Link-adaptation decision: the MCS/CQI the scheduler uses for a UE,
/// chosen from the reported SNR minus a backoff margin.
pub fn select_mcs(reported_snr_db: f64, backoff_db: f64) -> u8 {
    cqi_for_snr(reported_snr_db - backoff_db)
}

/// Spectral efficiency (bits/RE) of a CQI; 0 for CQI 0.
pub fn efficiency(cqi: u8) -> f64 {
    if cqi == 0 || cqi as usize > CQI_TABLE.len() {
        0.0
    } else {
        CQI_TABLE[cqi as usize - 1].efficiency
    }
}

/// Transport-block size in **bytes** for `n_prbs` PRBs at `cqi`, with
/// `re_per_prb` usable resource elements per PRB.
pub fn tbs_bytes(cqi: u8, n_prbs: usize, re_per_prb: usize) -> usize {
    let bits = (n_prbs * re_per_prb) as f64 * efficiency(cqi);
    (bits / 8.0).floor() as usize
}

/// Block error rate of a transmission at `actual_snr_db` using `cqi`.
///
/// Logistic curve anchored so BLER = 10% exactly at the CQI's threshold
/// (the link-adaptation target) and falling steeply with margin:
/// `BLER(m) = 1 / (1 + exp(2.2·m + ln 9))` where `m` is the dB margin.
pub fn bler(cqi: u8, actual_snr_db: f64) -> f64 {
    if cqi == 0 {
        return 1.0;
    }
    let thr = CQI_TABLE[cqi as usize - 1].snr_threshold_db;
    let margin = actual_snr_db - thr;
    1.0 / (1.0 + (2.2 * margin + 9.0f64.ln()).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_is_monotone_in_snr() {
        let mut last = 0;
        for snr10 in -100..300 {
            let c = cqi_for_snr(snr10 as f64 / 10.0);
            assert!(c >= last);
            last = c;
        }
        assert_eq!(cqi_for_snr(-20.0), 0);
        assert_eq!(cqi_for_snr(30.0), 15);
    }

    #[test]
    fn efficiency_is_monotone() {
        for c in 1..15u8 {
            assert!(efficiency(c) < efficiency(c + 1));
        }
        assert_eq!(efficiency(0), 0.0);
        assert_eq!(efficiency(99), 0.0);
    }

    #[test]
    fn tbs_matches_capacity_calibration() {
        // Full allocation (51 PRB × 126 RE) at top CQI: the bytes per slot
        // that saturate a 40 Mbit/s cell at 0.7 DL duty.
        let tbs = tbs_bytes(15, 51, 126);
        let bits_per_sec = tbs as f64 * 8.0 * 2000.0 * 0.7;
        assert!(
            (bits_per_sec - 40.0e6).abs() < 2.5e6,
            "calibration off: {bits_per_sec}"
        );
    }

    #[test]
    fn bler_anchors_at_ten_percent() {
        for (i, e) in CQI_TABLE.iter().enumerate() {
            let b = bler((i + 1) as u8, e.snr_threshold_db);
            assert!((b - 0.1).abs() < 1e-9, "cqi {} bler {b}", i + 1);
        }
    }

    #[test]
    fn bler_falls_with_margin() {
        let at = |m: f64| bler(10, CQI_TABLE[9].snr_threshold_db + m);
        assert!(at(2.0) < 0.01);
        assert!(at(-2.0) > 0.45);
        assert!(at(5.0) < 1e-4);
        assert_eq!(bler(0, 100.0), 1.0);
    }

    #[test]
    fn select_mcs_applies_backoff() {
        let snr = CQI_TABLE[9].snr_threshold_db + 0.5;
        assert_eq!(select_mcs(snr, 0.0), 10);
        assert_eq!(select_mcs(snr, 1.0), 9);
    }

    #[test]
    fn tbs_zero_for_cqi_zero() {
        assert_eq!(tbs_bytes(0, 51, 126), 0);
    }
}

//! The UE-side stack: per-DRB RLC receivers, in-order delivery to the
//! "kernel", RLC status generation, and the TDD uplink path whose jitter
//! L4Span's feedback short-circuiting bypasses (paper §4.4, Fig. 7).

use std::collections::{BTreeMap, VecDeque};

use l4span_net::PacketBuf;
use l4span_sim::{Duration, Instant, SimRng};

use crate::config::RlcMode;
use crate::ids::{DrbId, UeId};
use crate::mac::TransportBlock;
use crate::rlc::{RlcRx, RlcStatus};

/// A downlink IP packet delivered up to the UE application, with the
/// timing metadata the harness needs for one-way-delay accounting.
#[derive(Debug)]
pub struct AppDelivery {
    /// The reassembled IP packet.
    pub pkt: PacketBuf,
    /// When the application sees it (after the modem/kernel delay).
    pub deliver_at: Instant,
    /// CU ingress timestamp (carried through the RAN for metrics).
    pub t_cu_ingress: Instant,
    /// DRB it arrived on.
    pub drb: DrbId,
}

/// One queued uplink item (client ACK or any uplink IP packet).
#[derive(Debug)]
struct UlItem {
    pkt: PacketBuf,
    /// Earliest uplink slot time this item may ride (SR/grant delay).
    ready_at: Instant,
}

/// The UE model: RLC receivers plus an uplink queue drained at TDD
/// uplink opportunities.
#[derive(Debug)]
pub struct UeStack {
    id: UeId,
    rlc: BTreeMap<DrbId, RlcRx>,
    ul_queue: VecDeque<UlItem>,
    internal_delay: Duration,
    sr_delay_max: Duration,
    rng: SimRng,
}

impl UeStack {
    /// Create a UE with the given DRBs.
    pub fn new(
        id: UeId,
        drbs: &[(DrbId, RlcMode)],
        status_period: Duration,
        internal_delay: Duration,
        sr_delay_max: Duration,
        rng: SimRng,
    ) -> UeStack {
        let rlc = drbs
            .iter()
            .map(|&(d, m)| (d, RlcRx::new(m, status_period)))
            .collect();
        UeStack {
            id,
            rlc,
            ul_queue: VecDeque::new(),
            internal_delay,
            sr_delay_max,
            rng,
        }
    }

    /// This UE's identifier.
    pub fn id(&self) -> UeId {
        self.id
    }

    /// Ingest a successfully-decoded transport block; returns packets
    /// deliverable to the application (already stamped with the
    /// modem→kernel delay). Takes the block by value so segments (and
    /// their inline packet payloads) move instead of being cloned.
    pub fn on_transport_block(&mut self, tb: TransportBlock, now: Instant) -> Vec<AppDelivery> {
        let mut out = Vec::new();
        for (drb, seg) in tb.segments {
            let Some(rx) = self.rlc.get_mut(&drb) else {
                continue; // segment for an unconfigured DRB: dropped
            };
            for d in rx.on_segment(seg, now) {
                out.push(AppDelivery {
                    pkt: d.pkt,
                    deliver_at: now + self.internal_delay,
                    t_cu_ingress: d.t_ingress,
                    drb,
                });
            }
        }
        out
    }

    /// Timer poll: UM reassembly-timeout skips (lost SDUs are abandoned
    /// so later ones flow).
    pub fn poll(&mut self, now: Instant) -> Vec<AppDelivery> {
        let mut out = Vec::new();
        for (drb, rx) in self.rlc.iter_mut() {
            for d in rx.poll(now) {
                out.push(AppDelivery {
                    pkt: d.pkt,
                    deliver_at: now + self.internal_delay,
                    t_cu_ingress: d.t_ingress,
                    drb: *drb,
                });
            }
        }
        out
    }

    /// Enqueue an uplink IP packet (e.g. a TCP ACK from the client
    /// kernel). If the queue was empty the packet waits an extra
    /// scheduling-request delay before it may ride an uplink slot — the
    /// "RAN jitter" of Fig. 7.
    pub fn enqueue_uplink(&mut self, pkt: PacketBuf, now: Instant) {
        let sr = if self.ul_queue.is_empty() && !self.sr_delay_max.is_zero() {
            Duration::from_nanos(self.rng.range_u64(0, self.sr_delay_max.as_nanos().max(1)))
        } else {
            Duration::ZERO
        };
        self.ul_queue.push_back(UlItem {
            pkt,
            ready_at: now + sr,
        });
    }

    /// Number of uplink packets waiting.
    pub fn uplink_backlog(&self) -> usize {
        self.ul_queue.len()
    }

    /// Drain the uplink at a TDD uplink slot: returns the IP packets that
    /// ride this opportunity plus any RLC status reports due. Uplink
    /// capacity is ample for ACK-sized traffic, so everything ready goes.
    pub fn on_uplink_slot(
        &mut self,
        now: Instant,
    ) -> (Vec<PacketBuf>, Vec<(DrbId, RlcStatus)>) {
        let mut pkts = Vec::new();
        let mut statuses = Vec::new();
        self.on_uplink_slot_into(now, &mut pkts, &mut statuses);
        (pkts, statuses)
    }

    /// Allocation-free variant of [`UeStack::on_uplink_slot`]: packets
    /// and status reports are appended to the caller's reusable buffers
    /// (the world pools them alongside the event boxes, so the uplink
    /// slot tick — like the downlink one — touches the allocator only
    /// while a buffer is still growing to its steady-state size).
    pub fn on_uplink_slot_into(
        &mut self,
        now: Instant,
        pkts: &mut Vec<PacketBuf>,
        statuses: &mut Vec<(DrbId, RlcStatus)>,
    ) {
        while let Some(item) = self.ul_queue.front() {
            if item.ready_at > now {
                break;
            }
            pkts.push(self.ul_queue.pop_front().expect("front exists").pkt);
        }
        for (drb, rx) in self.rlc.iter_mut() {
            if let Some(st) = rx.make_status(now) {
                statuses.push((*drb, st));
            }
        }
    }

    /// The UE side of a handover: every DRB's receive entity goes
    /// through PDCP re-establishment (partial reassembly state from the
    /// old cell is discarded, the in-order delivery point and complete
    /// SDUs in the reordering buffer survive) and a status report is
    /// forced onto the next uplink opportunity so the target learns what
    /// to retransmit. The UE also adopts the *target* cell's timing
    /// parameters (status cadence, modem/kernel delay, SR delay bound) —
    /// in a heterogeneous topology these are per-cell configuration, and
    /// freezing the initial cell's values would make two UEs on the same
    /// cell behave differently by migration history. Queued uplink
    /// packets (client ACKs) survive — they ride the new cell's first
    /// uplink slot.
    pub fn on_handover(
        &mut self,
        status_period: Duration,
        internal_delay: Duration,
        sr_delay_max: Duration,
    ) {
        self.internal_delay = internal_delay;
        self.sr_delay_max = sr_delay_max;
        for rx in self.rlc.values_mut() {
            rx.set_status_period(status_period);
            rx.reestablish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlc::Segment;
    use l4span_net::{Ecn, TcpHeader};

    fn pkt(len: usize) -> PacketBuf {
        PacketBuf::tcp(1, 2, Ecn::Ect1, 0, &TcpHeader::default(), len)
    }

    fn ue() -> UeStack {
        UeStack::new(
            UeId(0),
            &[(DrbId(0), RlcMode::Am)],
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            SimRng::new(7),
        )
    }

    fn tb_with(segments: Vec<(DrbId, Segment)>) -> TransportBlock {
        TransportBlock {
            ue: UeId(0),
            segments,
            bytes: 0,
            attempt: 1,
            cqi: 10,
            first_tx: Instant::ZERO,
        }
    }

    #[test]
    fn tb_delivery_applies_internal_delay() {
        let mut u = ue();
        let p = pkt(960);
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(p),
            t_ingress: Instant::from_millis(1),
        };
        let now = Instant::from_millis(10);
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg)]), now);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].deliver_at, now + Duration::from_millis(2));
        assert_eq!(d[0].t_cu_ingress, Instant::from_millis(1));
    }

    #[test]
    fn segment_for_unknown_drb_is_dropped() {
        let mut u = ue();
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(9), seg)]), Instant::ZERO);
        assert!(d.is_empty());
    }

    #[test]
    fn uplink_waits_for_sr_delay() {
        let mut u = ue();
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        // At `now` the SR delay (0..5 ms) has almost surely not elapsed
        // for a fresh queue; at +6 ms it must have.
        let (sent, _) = u.on_uplink_slot(now + Duration::from_millis(6));
        assert_eq!(sent.len(), 1);
        assert_eq!(u.uplink_backlog(), 0);
    }

    #[test]
    fn uplink_batches_queued_packets() {
        let mut u = ue();
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        u.enqueue_uplink(pkt(0), now); // second one has no extra SR delay
        u.enqueue_uplink(pkt(0), now);
        let (sent, _) = u.on_uplink_slot(now + Duration::from_millis(6));
        assert_eq!(sent.len(), 3);
    }

    #[test]
    fn handover_forces_a_status_and_keeps_delivery_order() {
        let mut u = ue();
        // SN 1 complete but held (SN 0 missing) when the handover hits.
        let seg1 = Segment {
            sn: 1,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg1)]), Instant::from_millis(50));
        assert!(d.is_empty());
        u.on_handover(
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
        );
        let (_, statuses) = u.on_uplink_slot(Instant::from_millis(65));
        assert_eq!(statuses.len(), 1, "re-establishment forces a status");
        assert_eq!(statuses[0].1.ack_sn, 0);
        assert!(statuses[0].1.nacks.iter().any(|n| n.sn == 0));
        // Target retransmits SN 0: in-order delivery resumes across the
        // switch with no duplicate of SN 1.
        let seg0 = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg0)]), Instant::from_millis(70));
        assert_eq!(d.len(), 2, "SN 0 then the buffered SN 1, exactly once each");
    }

    #[test]
    fn uplink_slot_into_reuses_buffers() {
        let mut u = ue();
        let mut pkts = Vec::with_capacity(8);
        let mut statuses = Vec::with_capacity(4);
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        u.on_uplink_slot_into(now + Duration::from_millis(6), &mut pkts, &mut statuses);
        assert_eq!(pkts.len(), 1);
        pkts.clear();
        u.enqueue_uplink(pkt(0), now + Duration::from_millis(7));
        u.on_uplink_slot_into(now + Duration::from_millis(14), &mut pkts, &mut statuses);
        assert_eq!(pkts.len(), 1, "appended into the reused buffer");
    }

    #[test]
    fn status_reports_flow_with_uplink() {
        let mut u = ue();
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        u.on_transport_block(tb_with(vec![(DrbId(0), seg)]), Instant::from_millis(50));
        let (_, statuses) = u.on_uplink_slot(Instant::from_millis(65));
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].1.ack_sn, 1);
    }
}

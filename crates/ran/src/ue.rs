//! The UE-side stack: per-DRB RLC receivers, in-order delivery to the
//! "kernel", RLC status generation, and the TDD uplink path whose jitter
//! L4Span's feedback short-circuiting bypasses (paper §4.4, Fig. 7).
//!
//! Since the bidirectional extension the UE also hosts a full uplink
//! *data* plane: per-DRB PDCP numbering and RLC transmit queues fed by
//! UE-side senders, a scheduling-request / buffer-status-report (SR/BSR)
//! machine that tells the serving gNB how much is buffered, and a
//! grant-driven transport-block builder ([`UeStack::build_ul_tb`]) that
//! never exceeds the granted TBS. The uplink queue is exactly the place
//! where the UE-side L4Span marker instance sits: its delay predictor is
//! driven by granted-bytes history (the transmit watermarks this module
//! reports via [`UeStack::ul_f1u_into`]) rather than downlink slot
//! telemetry.

use std::collections::{BTreeMap, VecDeque};

use l4span_net::PacketBuf;
use l4span_sim::{Duration, Instant, SimRng};

use crate::config::RlcMode;
use crate::f1u::DlDataDeliveryStatus;
use crate::ids::{DrbId, UeId};
use crate::mac::TransportBlock;
use crate::pdcp::PdcpTx;
use crate::rlc::{DeliveryRecord, RlcRx, RlcStatus, RlcTx, RxDelivery, Segment, Sn, TxRecord};

/// A downlink IP packet delivered up to the UE application, with the
/// timing metadata the harness needs for one-way-delay accounting.
#[derive(Debug)]
pub struct AppDelivery {
    /// The reassembled IP packet.
    pub pkt: PacketBuf,
    /// When the application sees it (after the modem/kernel delay).
    pub deliver_at: Instant,
    /// CU ingress timestamp (carried through the RAN for metrics).
    pub t_cu_ingress: Instant,
    /// DRB it arrived on.
    pub drb: DrbId,
}

/// One queued uplink item (client ACK or any uplink IP packet).
#[derive(Debug)]
struct UlItem {
    pkt: PacketBuf,
    /// Earliest uplink slot time this item may ride (SR/grant delay).
    ready_at: Instant,
}

/// Per-DRB uplink transmit context: UE-side PDCP numbering plus the RLC
/// queue that grant-driven transmission drains.
#[derive(Debug)]
struct UlDrbCtx {
    pdcp: PdcpTx,
    rlc: RlcTx,
    /// Last transmit watermark reported via [`UeStack::ul_f1u_into`].
    reported_txed: Option<Sn>,
    /// Last delivery watermark reported via [`UeStack::ul_f1u_into`].
    reported_delivered: Option<Sn>,
}

/// The UE model: RLC receivers plus an uplink queue drained at TDD
/// uplink opportunities — and, for bidirectional scenarios, per-DRB
/// uplink PDCP/RLC transmit entities driven by BSR-solicited grants.
#[derive(Debug)]
pub struct UeStack {
    id: UeId,
    rlc: BTreeMap<DrbId, RlcRx>,
    ul_queue: VecDeque<UlItem>,
    internal_delay: Duration,
    sr_delay_max: Duration,
    rng: SimRng,
    /// Uplink data-plane entities (empty unless the scenario configures
    /// uplink flows, so downlink-only runs are byte-identical).
    ul_tx: BTreeMap<DrbId, UlDrbCtx>,
    /// Cached sorted UL DRB ids (fixed after configuration).
    ul_drb_ids: Vec<DrbId>,
    /// Intra-UE UL DRB round-robin cursor for TB building.
    ul_drb_cursor: usize,
    /// Earliest instant the *first* BSR of the current busy period may
    /// ride an uplink opportunity (the SR + grant round trip);
    /// `Instant::MAX` = no SR pending.
    ul_sr_at: Instant,
    /// A BSR has already gone out this busy period: subsequent reports
    /// piggyback on uplink batches for free.
    bsr_open: bool,
    /// Reusable transmit-record scratch for [`UeStack::build_ul_tb`].
    scratch_txed: Vec<TxRecord>,
    /// Reusable RLC-delivery scratch for the downlink TB hot path.
    scratch_rx: Vec<RxDelivery>,
}

impl UeStack {
    /// Create a UE with the given DRBs.
    pub fn new(
        id: UeId,
        drbs: &[(DrbId, RlcMode)],
        status_period: Duration,
        internal_delay: Duration,
        sr_delay_max: Duration,
        rng: SimRng,
    ) -> UeStack {
        let rlc = drbs
            .iter()
            .map(|&(d, m)| (d, RlcRx::new(m, status_period)))
            .collect();
        UeStack {
            id,
            rlc,
            ul_queue: VecDeque::new(),
            internal_delay,
            sr_delay_max,
            rng,
            ul_tx: BTreeMap::new(),
            ul_drb_ids: Vec::new(),
            ul_drb_cursor: 0,
            ul_sr_at: Instant::MAX,
            bsr_open: false,
            scratch_txed: Vec::new(),
            scratch_rx: Vec::new(),
        }
    }

    /// This UE's identifier.
    pub fn id(&self) -> UeId {
        self.id
    }

    /// Ingest a successfully-decoded transport block; returns packets
    /// deliverable to the application (already stamped with the
    /// modem→kernel delay). Takes the block by value so segments (and
    /// their inline packet payloads) move instead of being cloned.
    pub fn on_transport_block(&mut self, tb: TransportBlock, now: Instant) -> Vec<AppDelivery> {
        let mut out = Vec::new();
        self.on_transport_block_into(tb, now, &mut out);
        out
    }

    /// Allocation-free form of [`UeStack::on_transport_block`]:
    /// deliveries are appended to `out`, and the TB's emptied segment
    /// buffer is handed back so the caller can recycle it into the
    /// gNB's pool.
    pub fn on_transport_block_into(
        &mut self,
        mut tb: TransportBlock,
        now: Instant,
        out: &mut Vec<AppDelivery>,
    ) -> Vec<(DrbId, Segment)> {
        let mut deliv = std::mem::take(&mut self.scratch_rx);
        for (drb, seg) in tb.segments.drain(..) {
            let Some(rx) = self.rlc.get_mut(&drb) else {
                continue; // segment for an unconfigured DRB: dropped
            };
            rx.on_segment_into(seg, now, &mut deliv);
            for d in deliv.drain(..) {
                out.push(AppDelivery {
                    pkt: d.pkt,
                    deliver_at: now + self.internal_delay,
                    t_cu_ingress: d.t_ingress,
                    drb,
                });
            }
        }
        self.scratch_rx = deliv;
        tb.segments
    }

    /// Timer poll: UM reassembly-timeout skips (lost SDUs are abandoned
    /// so later ones flow).
    pub fn poll(&mut self, now: Instant) -> Vec<AppDelivery> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`UeStack::poll`]: deliveries are
    /// appended to `out`.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<AppDelivery>) {
        let mut deliv = std::mem::take(&mut self.scratch_rx);
        for (drb, rx) in self.rlc.iter_mut() {
            rx.poll_into(now, &mut deliv);
            for d in deliv.drain(..) {
                out.push(AppDelivery {
                    pkt: d.pkt,
                    deliver_at: now + self.internal_delay,
                    t_cu_ingress: d.t_ingress,
                    drb: *drb,
                });
            }
        }
        self.scratch_rx = deliv;
    }

    /// Enqueue an uplink IP packet (e.g. a TCP ACK from the client
    /// kernel). If the queue was empty the packet waits an extra
    /// scheduling-request delay before it may ride an uplink slot — the
    /// "RAN jitter" of Fig. 7.
    pub fn enqueue_uplink(&mut self, pkt: PacketBuf, now: Instant) {
        let sr = if self.ul_queue.is_empty() && !self.sr_delay_max.is_zero() {
            Duration::from_nanos(self.rng.range_u64(0, self.sr_delay_max.as_nanos().max(1)))
        } else {
            Duration::ZERO
        };
        self.ul_queue.push_back(UlItem {
            pkt,
            ready_at: now + sr,
        });
    }

    /// Number of uplink packets waiting.
    pub fn uplink_backlog(&self) -> usize {
        self.ul_queue.len()
    }

    /// Drain the uplink at a TDD uplink slot: returns the IP packets that
    /// ride this opportunity plus any RLC status reports due. Uplink
    /// capacity is ample for ACK-sized traffic, so everything ready goes.
    pub fn on_uplink_slot(
        &mut self,
        now: Instant,
    ) -> (Vec<PacketBuf>, Vec<(DrbId, RlcStatus)>) {
        let mut pkts = Vec::new();
        let mut statuses = Vec::new();
        self.on_uplink_slot_into(now, &mut pkts, &mut statuses);
        (pkts, statuses)
    }

    /// Allocation-free variant of [`UeStack::on_uplink_slot`]: packets
    /// and status reports are appended to the caller's reusable buffers
    /// (the world pools them alongside the event boxes, so the uplink
    /// slot tick — like the downlink one — touches the allocator only
    /// while a buffer is still growing to its steady-state size).
    pub fn on_uplink_slot_into(
        &mut self,
        now: Instant,
        pkts: &mut Vec<PacketBuf>,
        statuses: &mut Vec<(DrbId, RlcStatus)>,
    ) {
        while let Some(item) = self.ul_queue.front() {
            if item.ready_at > now {
                break;
            }
            pkts.push(self.ul_queue.pop_front().expect("front exists").pkt);
        }
        for (drb, rx) in self.rlc.iter_mut() {
            if let Some(st) = rx.make_status(now) {
                statuses.push((*drb, st));
            }
        }
    }

    /// Whether this UE has anything to do on an uplink slot at `now`:
    /// a ready feedback packet, an RLC AM status due, or (when
    /// `with_bsr`) a buffer-status report to send *or a BSR state
    /// transition to make*. This is an exact mirror of what
    /// [`UeStack::on_uplink_slot_into`] / [`UeStack::ul_bsr_into`] would
    /// emit or mutate, so a `false` return means the whole uplink slot
    /// visit can be skipped without changing behaviour. In particular
    /// the quiet `total == 0 && !unacked` case still returns `true`
    /// while `bsr_open`/`ul_sr_at` need their end-of-busy-period reset —
    /// that reset gates the next busy period's SR RNG draw, so skipping
    /// it would shift the deterministic random stream.
    pub fn ul_slot_pending(&self, now: Instant, with_bsr: bool) -> bool {
        if self.ul_queue.front().is_some_and(|item| item.ready_at <= now) {
            return true;
        }
        if self.rlc.values().any(|rx| rx.status_due(now)) {
            return true;
        }
        if !with_bsr || self.ul_tx.is_empty() {
            return false;
        }
        let total = self.ul_backlog_bytes();
        let unacked = self.ul_tx.values().any(|d| d.rlc.has_unacked());
        if total == 0 && !unacked {
            // `ul_bsr_into` emits nothing but must still reset the SR
            // machine if a busy period just ended.
            return self.bsr_open || self.ul_sr_at != Instant::MAX;
        }
        if !self.bsr_open && self.ul_sr_at != Instant::MAX && now < self.ul_sr_at {
            // SR round trip still pending: `ul_bsr_into` early-returns
            // without emitting or mutating.
            return false;
        }
        true
    }

    // ------------------------------------------------------------------
    // Uplink data plane (bidirectional scenarios)
    // ------------------------------------------------------------------

    /// Configure an uplink data bearer: a PDCP transmit entity plus an
    /// RLC transmit queue in `mode`. Idempotent per DRB. Downlink-only
    /// scenarios never call this, so the legacy uplink (ACK/feedback)
    /// path is untouched.
    pub fn configure_ul_drb(
        &mut self,
        drb: DrbId,
        mode: RlcMode,
        capacity_sdus: usize,
        segment_overhead: usize,
    ) {
        self.ul_tx.entry(drb).or_insert_with(|| UlDrbCtx {
            pdcp: PdcpTx::new(),
            rlc: RlcTx::new(mode, capacity_sdus, segment_overhead),
            reported_txed: None,
            reported_delivered: None,
        });
        self.ul_drb_ids = self.ul_tx.keys().copied().collect();
    }

    /// UL DRBs configured on this UE, in id order.
    pub fn ul_drbs(&self) -> &[DrbId] {
        &self.ul_drb_ids
    }

    /// Enqueue an uplink *data* packet from a UE-side sender: PDCP
    /// assigns the next SN, RLC queues the SDU. Returns the SN, or
    /// `None` on a tail drop at a full queue. The first packet of a busy
    /// period arms the scheduling request: the gNB cannot grant before
    /// it learns (via BSR) that the buffer is non-empty.
    pub fn enqueue_uplink_data(&mut self, drb: DrbId, pkt: PacketBuf, now: Instant) -> Option<Sn> {
        let was_empty = self.ul_backlog_bytes() == 0;
        let d = self.ul_tx.get_mut(&drb).expect("UL DRB not configured");
        let sn = d.pdcp.assign_sn();
        if !d.rlc.enqueue(sn, pkt, now) {
            return None;
        }
        if was_empty && !self.bsr_open {
            let sr = if self.sr_delay_max.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(
                    self.rng.range_u64(0, self.sr_delay_max.as_nanos().max(1)),
                )
            };
            self.ul_sr_at = now + sr;
        }
        Some(sn)
    }

    /// Total uplink data backlog awaiting (re)transmission, in bytes.
    pub fn ul_backlog_bytes(&self) -> usize {
        self.ul_tx.values().map(|d| d.rlc.backlog_bytes()).sum()
    }

    /// Uplink RLC transmission-queue length in SDUs for one DRB.
    pub fn ul_queue_len_sdus(&self, drb: DrbId) -> usize {
        self.ul_tx.get(&drb).map_or(0, |d| d.rlc.queue_len_sdus())
    }

    /// Append the buffer-status report that rides this uplink
    /// opportunity, one `(drb, bytes)` entry per backlogged bearer. The
    /// first report of a busy period is gated behind the SR round trip;
    /// later ones piggyback for free. A bearer with fully-transmitted
    /// but unacknowledged SDUs reports a one-MTU probe so the ARQ
    /// poll-retransmit path can obtain a grant after tail loss. The
    /// report **never under-reports**: every entry is at least the
    /// bearer's true RLC backlog at call time.
    pub fn ul_bsr_into(&mut self, now: Instant, out: &mut Vec<(DrbId, usize)>) {
        if self.ul_tx.is_empty() {
            return;
        }
        let total = self.ul_backlog_bytes();
        let unacked = self.ul_tx.values().any(|d| d.rlc.has_unacked());
        if total == 0 && !unacked {
            // Busy period over: the next arrival starts a fresh SR.
            self.bsr_open = false;
            self.ul_sr_at = Instant::MAX;
            return;
        }
        if !self.bsr_open {
            // `Instant::MAX` with backlog present means the backlog
            // appeared without an enqueue (NACK retransmissions, post-
            // handover re-establishment): the control channel is already
            // live, so the report goes out immediately.
            if self.ul_sr_at != Instant::MAX && now < self.ul_sr_at {
                return;
            }
            self.bsr_open = true;
            self.ul_sr_at = Instant::MAX;
        }
        for (&drb, d) in self.ul_tx.iter() {
            let b = d.rlc.backlog_bytes();
            if b > 0 {
                out.push((drb, b));
            } else if d.rlc.has_unacked() {
                out.push((drb, 1600)); // ARQ poll probe
            }
        }
    }

    /// Build the transport block that rides a grant of `granted` bytes:
    /// UL DRBs are drained round-robin, retransmissions first within
    /// each, and the block **never exceeds the granted TBS**. Returns
    /// `None` when nothing was pending (a wasted grant).
    pub fn build_ul_tb(
        &mut self,
        granted: usize,
        cqi: u8,
        now: Instant,
    ) -> Option<TransportBlock> {
        if self.ul_tx.is_empty() || granted == 0 {
            return None;
        }
        let n = self.ul_drb_ids.len();
        let mut segments = Vec::with_capacity(4);
        let mut left = granted;
        for k in 0..n {
            let drb = self.ul_drb_ids[(self.ul_drb_cursor + k) % n];
            let d = self.ul_tx.get_mut(&drb).expect("drb exists");
            self.scratch_txed.clear();
            let consumed = d.rlc.pull_with(left, now, &mut self.scratch_txed, |s| {
                segments.push((drb, s));
            });
            left -= consumed;
            if left == 0 {
                break;
            }
        }
        self.ul_drb_cursor = (self.ul_drb_cursor + 1) % n.max(1);
        if segments.is_empty() {
            return None;
        }
        Some(TransportBlock {
            ue: self.id,
            segments,
            bytes: granted - left,
            attempt: 1,
            cqi,
            first_tx: now,
        })
    }

    /// An uplink RLC AM status report arrived from the serving gNB:
    /// acknowledged SDUs are released, NACKed ranges join the
    /// retransmission queue (and re-arm the BSR machine so the repair
    /// bytes get granted).
    pub fn on_ul_status(
        &mut self,
        drb: DrbId,
        status: &RlcStatus,
        now: Instant,
    ) -> Vec<DeliveryRecord> {
        let d = self.ul_tx.get_mut(&drb).expect("UL DRB not configured");
        d.rlc.on_status(status, now)
    }

    /// Report uplink transmit/delivery watermarks that advanced since
    /// the last call — the UE-side mirror of the gNB's F1-U delivery
    /// status, synthesised from granted-bytes history. This is the
    /// feedback stream that drives the uplink L4Span instance's egress
    /// estimator: `timestamp` is the grant time at which the bytes left
    /// the queue.
    pub fn ul_f1u_into(&mut self, now: Instant, out: &mut Vec<DlDataDeliveryStatus>) {
        for (&drb, d) in self.ul_tx.iter_mut() {
            let txed = d.rlc.highest_txed();
            let delivered = d.rlc.highest_delivered();
            if txed != d.reported_txed || delivered != d.reported_delivered {
                d.reported_txed = txed;
                d.reported_delivered = delivered;
                out.push(DlDataDeliveryStatus {
                    ue: self.id,
                    drb,
                    highest_txed_sn: txed,
                    highest_delivered_sn: delivered,
                    timestamp: now,
                    desired_buffer_size: 0,
                });
            }
        }
    }

    /// The UE side of a handover: every DRB's receive entity goes
    /// through PDCP re-establishment (partial reassembly state from the
    /// old cell is discarded, the in-order delivery point and complete
    /// SDUs in the reordering buffer survive) and a status report is
    /// forced onto the next uplink opportunity so the target learns what
    /// to retransmit. The UE also adopts the *target* cell's timing
    /// parameters (status cadence, modem/kernel delay, SR delay bound) —
    /// in a heterogeneous topology these are per-cell configuration, and
    /// freezing the initial cell's values would make two UEs on the same
    /// cell behave differently by migration history. Queued uplink
    /// packets (client ACKs) survive — they ride the new cell's first
    /// uplink slot.
    ///
    /// Uplink data bearers mirror the downlink's lossless forwarding:
    /// the transmit entity re-establishes by re-enqueueing every SDU not
    /// yet confirmed delivered, in SN order under the original SNs
    /// (TS 38.323 §5.1.2 transmit side — PDCP COUNT continues), and the
    /// BSR machine re-arms immediately because handover signalling
    /// already told the target the buffer is non-empty.
    pub fn on_handover(
        &mut self,
        status_period: Duration,
        internal_delay: Duration,
        sr_delay_max: Duration,
        now: Instant,
    ) {
        self.internal_delay = internal_delay;
        self.sr_delay_max = sr_delay_max;
        for rx in self.rlc.values_mut() {
            rx.set_status_period(status_period);
            rx.reestablish();
        }
        for d in self.ul_tx.values_mut() {
            // Lossless by construction: the requeue path skips the
            // admission check (every SDU passed it once), because a
            // tail drop here would leave a permanent SN gap that the
            // migrated gNB-side receiver's in-order point never passes.
            d.rlc.reestablish_requeue(now);
            // The target's watermark bookkeeping starts fresh, exactly
            // like the gNB-side DrbCtx after `attach_ue_handover`.
            d.reported_txed = None;
            d.reported_delivered = None;
        }
        if self.ul_backlog_bytes() > 0 {
            self.bsr_open = false;
            self.ul_sr_at = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlc::Segment;
    use l4span_net::{Ecn, TcpHeader};

    fn pkt(len: usize) -> PacketBuf {
        PacketBuf::tcp(1, 2, Ecn::Ect1, 0, &TcpHeader::default(), len)
    }

    fn ue() -> UeStack {
        UeStack::new(
            UeId(0),
            &[(DrbId(0), RlcMode::Am)],
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            SimRng::new(7),
        )
    }

    fn tb_with(segments: Vec<(DrbId, Segment)>) -> TransportBlock {
        TransportBlock {
            ue: UeId(0),
            segments,
            bytes: 0,
            attempt: 1,
            cqi: 10,
            first_tx: Instant::ZERO,
        }
    }

    #[test]
    fn tb_delivery_applies_internal_delay() {
        let mut u = ue();
        let p = pkt(960);
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(p),
            t_ingress: Instant::from_millis(1),
        };
        let now = Instant::from_millis(10);
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg)]), now);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].deliver_at, now + Duration::from_millis(2));
        assert_eq!(d[0].t_cu_ingress, Instant::from_millis(1));
    }

    #[test]
    fn segment_for_unknown_drb_is_dropped() {
        let mut u = ue();
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(9), seg)]), Instant::ZERO);
        assert!(d.is_empty());
    }

    #[test]
    fn uplink_waits_for_sr_delay() {
        let mut u = ue();
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        // At `now` the SR delay (0..5 ms) has almost surely not elapsed
        // for a fresh queue; at +6 ms it must have.
        let (sent, _) = u.on_uplink_slot(now + Duration::from_millis(6));
        assert_eq!(sent.len(), 1);
        assert_eq!(u.uplink_backlog(), 0);
    }

    #[test]
    fn uplink_batches_queued_packets() {
        let mut u = ue();
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        u.enqueue_uplink(pkt(0), now); // second one has no extra SR delay
        u.enqueue_uplink(pkt(0), now);
        let (sent, _) = u.on_uplink_slot(now + Duration::from_millis(6));
        assert_eq!(sent.len(), 3);
    }

    #[test]
    fn handover_forces_a_status_and_keeps_delivery_order() {
        let mut u = ue();
        // SN 1 complete but held (SN 0 missing) when the handover hits.
        let seg1 = Segment {
            sn: 1,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg1)]), Instant::from_millis(50));
        assert!(d.is_empty());
        u.on_handover(
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            Instant::from_millis(60),
        );
        let (_, statuses) = u.on_uplink_slot(Instant::from_millis(65));
        assert_eq!(statuses.len(), 1, "re-establishment forces a status");
        assert_eq!(statuses[0].1.ack_sn, 0);
        assert!(statuses[0].1.nacks.iter().any(|n| n.sn == 0));
        // Target retransmits SN 0: in-order delivery resumes across the
        // switch with no duplicate of SN 1.
        let seg0 = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        let d = u.on_transport_block(tb_with(vec![(DrbId(0), seg0)]), Instant::from_millis(70));
        assert_eq!(d.len(), 2, "SN 0 then the buffered SN 1, exactly once each");
    }

    #[test]
    fn uplink_slot_into_reuses_buffers() {
        let mut u = ue();
        let mut pkts = Vec::with_capacity(8);
        let mut statuses = Vec::with_capacity(4);
        let now = Instant::from_millis(100);
        u.enqueue_uplink(pkt(0), now);
        u.on_uplink_slot_into(now + Duration::from_millis(6), &mut pkts, &mut statuses);
        assert_eq!(pkts.len(), 1);
        pkts.clear();
        u.enqueue_uplink(pkt(0), now + Duration::from_millis(7));
        u.on_uplink_slot_into(now + Duration::from_millis(14), &mut pkts, &mut statuses);
        assert_eq!(pkts.len(), 1, "appended into the reused buffer");
    }

    fn ue_with_ul() -> UeStack {
        let mut u = ue();
        u.configure_ul_drb(DrbId(0), RlcMode::Am, 1024, 8);
        u
    }

    #[test]
    fn ul_enqueue_assigns_dense_sns_and_counts_backlog() {
        let mut u = ue_with_ul();
        let now = Instant::from_millis(1);
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(0));
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(1));
        assert!(u.ul_backlog_bytes() >= 2 * 960);
        assert_eq!(u.ul_queue_len_sdus(DrbId(0)), 2);
    }

    #[test]
    fn first_bsr_waits_for_sr_then_piggybacks() {
        let mut u = ue_with_ul();
        let now = Instant::from_millis(100);
        u.enqueue_uplink_data(DrbId(0), pkt(960), now);
        let mut bsr = Vec::new();
        u.ul_bsr_into(now, &mut bsr);
        assert!(bsr.is_empty(), "SR delay (0..5 ms) has not elapsed");
        u.ul_bsr_into(now + Duration::from_millis(6), &mut bsr);
        assert_eq!(bsr.len(), 1);
        assert!(bsr[0].1 >= 960, "BSR must not under-report: {:?}", bsr);
        // Piggyback: the next report is free.
        bsr.clear();
        u.enqueue_uplink_data(DrbId(0), pkt(960), now + Duration::from_millis(7));
        u.ul_bsr_into(now + Duration::from_millis(7), &mut bsr);
        assert_eq!(bsr.len(), 1);
    }

    #[test]
    fn ul_tb_respects_grant_and_f1u_reports_progress() {
        let mut u = ue_with_ul();
        let now = Instant::from_millis(10);
        for _ in 0..4 {
            u.enqueue_uplink_data(DrbId(0), pkt(960), now);
        }
        let granted = 1200;
        let tb = u.build_ul_tb(granted, 10, now).expect("backlog pending");
        assert!(tb.bytes <= granted, "TB {} exceeds grant {granted}", tb.bytes);
        assert!(!tb.segments.is_empty());
        // Drain the rest and check the granted-bytes F1-U mirror.
        let _ = u.build_ul_tb(100_000, 10, now + Duration::from_millis(1));
        let mut f1u = Vec::new();
        u.ul_f1u_into(now + Duration::from_millis(1), &mut f1u);
        assert_eq!(f1u.len(), 1);
        assert_eq!(f1u[0].highest_txed_sn, Some(3));
        assert_eq!(f1u[0].highest_delivered_sn, None);
        // Status acknowledges everything: the next report carries it.
        let st = RlcStatus { ack_sn: 4, nacks: vec![] };
        let recs = u.on_ul_status(DrbId(0), &st, now + Duration::from_millis(5));
        assert_eq!(recs.len(), 4);
        f1u.clear();
        u.ul_f1u_into(now + Duration::from_millis(5), &mut f1u);
        assert_eq!(f1u[0].highest_delivered_sn, Some(3));
    }

    #[test]
    fn ul_handover_requeues_unconfirmed_sdus() {
        let mut u = ue_with_ul();
        let now = Instant::from_millis(10);
        for _ in 0..3 {
            u.enqueue_uplink_data(DrbId(0), pkt(960), now);
        }
        // Transmit everything; nothing acknowledged yet.
        let _ = u.build_ul_tb(100_000, 10, now).expect("tb");
        assert_eq!(u.ul_backlog_bytes(), 0);
        u.on_handover(
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            Instant::from_millis(20),
        );
        assert!(
            u.ul_backlog_bytes() > 0,
            "unconfirmed SDUs must be requeued for the target cell"
        );
        // The BSR goes out immediately (handover signalling carried it).
        let mut bsr = Vec::new();
        u.ul_bsr_into(Instant::from_millis(20), &mut bsr);
        assert_eq!(bsr.len(), 1);
        // Retransmission restarts at the oldest unconfirmed SN.
        let tb = u.build_ul_tb(100_000, 10, Instant::from_millis(21)).expect("tb");
        assert_eq!(tb.segments[0].1.sn, 0);
    }

    #[test]
    fn ul_handover_requeue_is_lossless_even_past_queue_capacity() {
        // Regression: queued + unacked can exceed the queue's admission
        // capacity at handover time; re-establishment must requeue ALL
        // of them (a tail drop would stall the migrated AM receiver's
        // in-order delivery point forever).
        let mut u = ue();
        u.configure_ul_drb(DrbId(0), RlcMode::Am, 2, 8);
        let now = Instant::from_millis(10);
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(0));
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(1));
        // Transmit both (→ unacked), then fill the queue again.
        let _ = u.build_ul_tb(100_000, 10, now).expect("tb");
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(2));
        assert_eq!(u.enqueue_uplink_data(DrbId(0), pkt(960), now), Some(3));
        // 2 unacked + 2 queued > capacity 2.
        u.on_handover(
            Duration::from_millis(10),
            Duration::from_millis(2),
            Duration::from_millis(5),
            Instant::from_millis(20),
        );
        assert_eq!(u.ul_queue_len_sdus(DrbId(0)), 4, "all four SDUs requeued");
        let tb = u.build_ul_tb(100_000, 10, Instant::from_millis(21)).expect("tb");
        let sns: Vec<u64> = tb.segments.iter().map(|(_, s)| s.sn).collect();
        assert_eq!(sns, vec![0, 1, 2, 3], "retransmission covers every SN, in order");
    }

    #[test]
    fn status_reports_flow_with_uplink() {
        let mut u = ue();
        let seg = Segment {
            sn: 0,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        u.on_transport_block(tb_with(vec![(DrbId(0), seg)]), Instant::from_millis(50));
        let (_, statuses) = u.on_uplink_slot(Instant::from_millis(65));
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].1.ack_sn, 1);
    }
}

//! RLC Acknowledged and Unacknowledged modes with byte-level segmentation.
//!
//! The downlink RLC entity ([`RlcTx`]) owns the deep SDU queue whose
//! sojourn time L4Span minimises (paper §2: "the RLC buffer is designed to
//! be deep for reliable delivery, while … it worsens the sojourn time").
//! The receive side ([`RlcRx`]) reassembles segments, delivers SDUs in
//! order, and — in AM — generates the status reports that drive both ARQ
//! and the *highest delivered* half of the F1-U feedback.
//!
//! Simplifications relative to TS 38.322, documented here and in
//! DESIGN.md: sequence numbers are non-wrapping `u64`s (the 18-bit wrap is
//! bookkeeping that does not affect queueing behaviour); the PDCP
//! t-Reordering timer is folded into the receiver's in-order delivery
//! logic; t-StatusProhibit and t-Reassembly are merged into one periodic
//! status cadence.

use std::collections::{BTreeMap, VecDeque};

use l4span_net::PacketBuf;
use l4span_sim::{Duration, Instant};

use crate::config::RlcMode;

/// RLC/PDCP sequence number (logical, non-wrapping in the simulator).
pub type Sn = u64;

/// A byte range `[from, to)` within one SDU.
pub type ByteRange = (u32, u32);

/// One RLC segment inside a MAC transport block.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Sequence number of the SDU this segment belongs to.
    pub sn: Sn,
    /// First byte offset carried.
    pub offset: u32,
    /// Number of payload bytes carried.
    pub len: u32,
    /// Total size of the SDU (so the receiver knows when it is whole).
    pub sdu_size: u32,
    /// The reassembled packet rides with the segment that carries the
    /// SDU's final byte (a simulator shortcut; on a real link the bytes
    /// themselves are the payload).
    pub payload: Option<PacketBuf>,
    /// CU ingress timestamp of the SDU, for end-to-end metrics.
    pub t_ingress: Instant,
}

impl Segment {
    /// True if this segment carries the final byte of its SDU.
    pub fn is_last(&self) -> bool {
        self.offset + self.len == self.sdu_size
    }
}

/// A NACK entry in an AM status report: SN plus missing byte range.
/// `(0, u32::MAX)` means "the whole SDU" (nothing of it arrived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nack {
    /// Sequence number being NACKed.
    pub sn: Sn,
    /// Missing range start.
    pub from: u32,
    /// Missing range end (exclusive).
    pub to: u32,
}

/// An RLC AM STATUS PDU from the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RlcStatus {
    /// All SNs below this are fully received.
    pub ack_sn: Sn,
    /// Missing ranges at or above `ack_sn`.
    pub nacks: Vec<Nack>,
}

/// Per-SDU timing record emitted when the SDU has been fully handed to
/// the MAC ("transmitted" in F1-U terms).
#[derive(Debug, Clone, Copy)]
pub struct TxRecord {
    /// Sequence number.
    pub sn: Sn,
    /// Wire size of the SDU in bytes.
    pub size: usize,
    /// CU ingress time.
    pub t_ingress: Instant,
    /// When the SDU reached the head of the queue.
    pub t_head: Instant,
    /// When its first byte was scheduled.
    pub t_first_tx: Instant,
    /// When its last byte was handed to the MAC.
    pub t_txed: Instant,
}

/// One SDU lifted out of a downlink RLC entity for Xn-style data
/// forwarding at handover (TS 38.300 §9.2.3.2): everything the target
/// cell needs to retransmit the SDU losslessly under its original PDCP
/// SN, with the CU ingress timestamp preserved so end-to-end delay
/// metrics span the switch.
#[derive(Debug, Clone, Copy)]
pub struct ForwardedSdu {
    /// Original PDCP sequence number (preserved across re-establishment).
    pub sn: Sn,
    /// The full SDU.
    pub pkt: PacketBuf,
    /// CU ingress timestamp.
    pub t_ingress: Instant,
}

/// Per-SDU record emitted when delivery is confirmed by a status report
/// (AM only).
#[derive(Debug, Clone, Copy)]
pub struct DeliveryRecord {
    /// Sequence number.
    pub sn: Sn,
    /// Wire size in bytes.
    pub size: usize,
    /// CU ingress time.
    pub t_ingress: Instant,
    /// Delivery-confirmation time (status arrival at the DU).
    pub t_delivered: Instant,
}

/// Result of one MAC pull.
#[derive(Debug, Default)]
pub struct PullResult {
    /// Segments to place into the transport block.
    pub segments: Vec<Segment>,
    /// Budget bytes actually consumed (payload + per-segment overhead).
    pub consumed: usize,
    /// SDUs that became fully-transmitted during this pull.
    pub txed: Vec<TxRecord>,
}

/// An SDU waiting in (or partially pulled from) the downlink queue.
#[derive(Debug)]
struct SduTx {
    sn: Sn,
    pkt: PacketBuf,
    size: u32,
    t_ingress: Instant,
    t_head: Option<Instant>,
    t_first_tx: Option<Instant>,
    txed: u32,
}

/// An AM SDU kept after full transmission until the UE acknowledges it.
#[derive(Debug)]
struct UnackedSdu {
    pkt: PacketBuf,
    size: u32,
    t_ingress: Instant,
}

/// A pending retransmission range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RetxSeg {
    sn: Sn,
    from: u32,
    to: u32,
}

/// t-PollRetransmit analogue: with unacknowledged SDUs outstanding and
/// no status heard for this long, proactively retransmit the oldest one
/// (covers tail loss, where the receiver cannot know an SN existed).
const T_POLL_RETRANSMIT: Duration = Duration::from_millis(45);

/// Downlink RLC entity (one per DRB) living in the DU.
#[derive(Debug)]
pub struct RlcTx {
    mode: RlcMode,
    capacity_sdus: usize,
    segment_overhead: usize,
    queue: VecDeque<SduTx>,
    retx: VecDeque<RetxSeg>,
    unacked: BTreeMap<Sn, UnackedSdu>,
    /// Bytes not yet handed to the MAC (queued SDUs minus pulled bytes).
    queued_bytes: usize,
    highest_txed: Option<Sn>,
    highest_delivered: Option<Sn>,
    /// SDUs dropped at enqueue because the queue was full.
    drops: u64,
    /// Last time a status report arrived (poll-retransmit reference).
    last_status_at: Instant,
    /// Last time the poll-retransmit fallback fired.
    last_poll_retx_at: Instant,
}

impl RlcTx {
    /// Create a downlink RLC entity.
    pub fn new(mode: RlcMode, capacity_sdus: usize, segment_overhead: usize) -> RlcTx {
        RlcTx {
            mode,
            capacity_sdus,
            segment_overhead,
            queue: VecDeque::new(),
            retx: VecDeque::new(),
            unacked: BTreeMap::new(),
            queued_bytes: 0,
            highest_txed: None,
            highest_delivered: None,
            drops: 0,
            last_status_at: Instant::ZERO,
            last_poll_retx_at: Instant::ZERO,
        }
    }

    /// RLC mode of this entity.
    pub fn mode(&self) -> RlcMode {
        self.mode
    }

    /// Enqueue an SDU from PDCP. Returns `false` (and counts a drop) when
    /// the queue is at capacity — srsRAN's tail-drop behaviour that the
    /// 256-SDU configuration of Fig. 9 leans on.
    pub fn enqueue(&mut self, sn: Sn, pkt: PacketBuf, now: Instant) -> bool {
        self.enqueue_at(sn, pkt, now, now)
    }

    /// The one enqueue path: `t_ingress` is the SDU's CU ingress time
    /// (equal to `now` for fresh traffic, the original timestamp for
    /// SDUs forwarded at handover), `now` stamps the head-of-queue
    /// arrival.
    fn enqueue_at(&mut self, sn: Sn, pkt: PacketBuf, t_ingress: Instant, now: Instant) -> bool {
        if self.queue.len() >= self.capacity_sdus {
            self.drops += 1;
            return false;
        }
        self.push_sdu(sn, pkt, t_ingress, now);
        true
    }

    /// Append an SDU with no admission check (re-establishment path;
    /// the SDU already passed admission when it first entered).
    fn push_sdu(&mut self, sn: Sn, pkt: PacketBuf, t_ingress: Instant, now: Instant) {
        // All offset arithmetic below is u32; a >4 GiB SDU would
        // silently wrap `as u32` into a tiny size, so reject it loudly
        // (no IP packet is remotely that large).
        let size = u32::try_from(pkt.wire_len()).expect("SDU exceeds the u32 offset space");
        let head = self.queue.is_empty() && self.retx.is_empty();
        self.queued_bytes += size as usize;
        self.queue.push_back(SduTx {
            sn,
            pkt,
            size,
            t_ingress,
            t_head: if head { Some(now) } else { None },
            t_first_tx: None,
            txed: 0,
        });
    }

    /// PDCP re-establishment for an entity that keeps serving the same
    /// bearer (the UE-side uplink transmit case, TS 38.323 §5.1.2):
    /// every SDU not yet confirmed delivered returns to the
    /// transmission queue in SN order, for retransmission in full
    /// toward the target cell. Unlike the [`RlcTx::drain_for_handover`]
    /// → [`RlcTx::enqueue_forwarded`] pair used when the entity changes
    /// hosts, **no capacity check applies**: each SDU already passed
    /// admission when it first entered this entity, and tail-dropping
    /// here would permanently stall the migrated receiver's in-order
    /// delivery point (AM never skips an SN).
    pub fn reestablish_requeue(&mut self, now: Instant) {
        let forwarded = self.drain_for_handover();
        for f in forwarded {
            self.push_sdu(f.sn, f.pkt, f.t_ingress, now);
        }
    }

    /// Bytes awaiting (re)transmission: the MAC backlog for this DRB.
    pub fn backlog_bytes(&self) -> usize {
        let retx: usize = self.retx.iter().map(|r| (r.to - r.from) as usize).sum();
        self.queued_bytes + retx
    }

    /// SDUs currently sitting in the transmission queue (the "RLC queue
    /// length" metric of Fig. 17).
    pub fn queue_len_sdus(&self) -> usize {
        self.queue.len()
    }

    /// Count of SDUs tail-dropped at enqueue.
    pub fn drop_count(&self) -> u64 {
        self.drops
    }

    /// True while fully-transmitted SDUs await delivery confirmation
    /// (AM only; the uplink BSR probes for a grant while this holds so
    /// tail loss can be repaired via the poll-retransmit path).
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    /// Highest SN fully handed to the MAC, if any.
    pub fn highest_txed(&self) -> Option<Sn> {
        self.highest_txed
    }

    /// Highest SN confirmed delivered (AM), if any.
    pub fn highest_delivered(&self) -> Option<Sn> {
        self.highest_delivered
    }

    /// Pull up to `budget` bytes (including per-segment overhead) for a
    /// transport block. Retransmissions are served before new data, as
    /// TS 38.322 requires.
    pub fn pull(&mut self, budget: usize, now: Instant) -> PullResult {
        let mut out = PullResult::default();
        let mut txed = Vec::new();
        out.consumed = self.pull_with(budget, now, &mut txed, |s| out.segments.push(s));
        out.txed = txed;
        out
    }

    /// Allocation-free variant of [`RlcTx::pull`] for the MAC's per-slot
    /// hot path: segments are streamed into `emit` (typically a push into
    /// the transport block's own buffer) and transmit records are appended
    /// to the caller's reusable `txed` scratch. Returns the bytes
    /// consumed (payload plus per-segment overhead).
    pub fn pull_with<F: FnMut(Segment)>(
        &mut self,
        mut budget: usize,
        now: Instant,
        txed: &mut Vec<TxRecord>,
        mut emit: F,
    ) -> usize {
        let mut consumed = 0usize;
        let oh = self.segment_overhead;
        // Poll-retransmit: unacked data, nothing queued for repair, and
        // silence from the receiver — resend the oldest unacked SDU so
        // the receiver's reassembly state goes dirty and a status comes
        // back (tail-loss recovery).
        if self.mode == RlcMode::Am && !self.unacked.is_empty() && self.retx.is_empty() {
            let reference = self.last_status_at.max(self.last_poll_retx_at);
            if now.saturating_since(reference) > T_POLL_RETRANSMIT {
                let (&sn, sdu) = self.unacked.iter().next().expect("non-empty");
                self.retx.push_back(RetxSeg {
                    sn,
                    from: 0,
                    to: sdu.size,
                });
                self.last_poll_retx_at = now;
            }
        }
        loop {
            if budget <= oh {
                break;
            }
            let avail = budget - oh;
            // 1. Retransmissions first.
            if let Some(r) = self.retx.front_mut() {
                let want = (r.to - r.from) as usize;
                // Lossless narrowing: bounded by `want`, itself a u32
                // range length.
                let take = want.min(avail) as u32;
                let sdu = self
                    .unacked
                    .get(&r.sn)
                    .expect("retx range for SDU not in unacked store");
                let seg = Segment {
                    sn: r.sn,
                    offset: r.from,
                    len: take,
                    sdu_size: sdu.size,
                    payload: if r.from + take == sdu.size {
                        Some(sdu.pkt)
                    } else {
                        None
                    },
                    t_ingress: sdu.t_ingress,
                };
                budget -= take as usize + oh;
                consumed += take as usize + oh;
                r.from += take;
                if r.from >= r.to {
                    self.retx.pop_front();
                }
                emit(seg);
                continue;
            }
            // 2. New data.
            let Some(s) = self.queue.front_mut() else {
                break;
            };
            if s.t_head.is_none() {
                s.t_head = Some(now);
            }
            if s.t_first_tx.is_none() {
                s.t_first_tx = Some(now);
            }
            let remaining = (s.size - s.txed) as usize;
            // Lossless narrowing: bounded by `remaining`, itself a u32
            // difference.
            let take = remaining.min(avail) as u32;
            let last = s.txed + take == s.size;
            let seg = Segment {
                sn: s.sn,
                offset: s.txed,
                len: take,
                sdu_size: s.size,
                payload: if last { Some(s.pkt) } else { None },
                t_ingress: s.t_ingress,
            };
            s.txed += take;
            budget -= take as usize + oh;
            consumed += take as usize + oh;
            self.queued_bytes -= take as usize;
            emit(seg);
            if last {
                let done = self.queue.pop_front().expect("front exists");
                txed.push(TxRecord {
                    sn: done.sn,
                    size: done.size as usize,
                    t_ingress: done.t_ingress,
                    t_head: done.t_head.unwrap_or(now),
                    t_first_tx: done.t_first_tx.unwrap_or(now),
                    t_txed: now,
                });
                self.highest_txed = Some(self.highest_txed.map_or(done.sn, |h| h.max(done.sn)));
                if self.mode == RlcMode::Am {
                    self.unacked.insert(
                        done.sn,
                        UnackedSdu {
                            pkt: done.pkt,
                            size: done.size,
                            t_ingress: done.t_ingress,
                        },
                    );
                }
                // Mark the new head's arrival at the queue front.
                if let Some(next) = self.queue.front_mut() {
                    if next.t_head.is_none() {
                        next.t_head = Some(now);
                    }
                }
            }
        }
        consumed
    }

    /// PDCP re-establishment, transmit side (TS 38.323 §5.1.2): lift out
    /// every SDU not yet confirmed delivered — the unacknowledged store
    /// first (AM only; fully transmitted but unconfirmed), then the
    /// transmission queue (including a partially-pulled head SDU, whose
    /// already-transmitted bytes are simply retransmitted in full by the
    /// target) — in ascending SN order, for forwarding to the target
    /// cell. The entity is left empty; pending retransmission ranges are
    /// dropped (the whole SDUs travel instead). Drop/delivery counters
    /// survive, as they describe this entity's history.
    pub fn drain_for_handover(&mut self) -> Vec<ForwardedSdu> {
        let mut out = Vec::with_capacity(self.unacked.len() + self.queue.len());
        // Pull order is strictly SN order, so every unacked SN precedes
        // every queued SN: chaining the two stores keeps ascending order.
        for (sn, sdu) in std::mem::take(&mut self.unacked) {
            out.push(ForwardedSdu {
                sn,
                pkt: sdu.pkt,
                t_ingress: sdu.t_ingress,
            });
        }
        for s in self.queue.drain(..) {
            out.push(ForwardedSdu {
                sn: s.sn,
                pkt: s.pkt,
                t_ingress: s.t_ingress,
            });
        }
        self.retx.clear();
        self.queued_bytes = 0;
        self.highest_txed = None;
        out
    }

    /// Accept an SDU forwarded from a source cell at handover: enqueued
    /// as new data under its *original* SN with its *original* CU ingress
    /// timestamp (PDCP SNs and delay accounting are continuous across
    /// re-establishment). Subject to the same tail-drop capacity check as
    /// fresh traffic. `now` stamps the head-of-queue arrival.
    pub fn enqueue_forwarded(&mut self, fwd: ForwardedSdu, now: Instant) -> bool {
        self.enqueue_at(fwd.sn, fwd.pkt, fwd.t_ingress, now)
    }

    /// Process an AM status report from the UE. Returns delivery records
    /// for newly-acknowledged SDUs; NACKed ranges join the retransmission
    /// queue.
    pub fn on_status(&mut self, status: &RlcStatus, now: Instant) -> Vec<DeliveryRecord> {
        assert_eq!(self.mode, RlcMode::Am, "status report in UM");
        self.last_status_at = now;
        let mut delivered = Vec::new();
        // Cumulative ACK: everything below ack_sn.
        let acked: Vec<Sn> = self
            .unacked
            .range(..status.ack_sn)
            .map(|(&sn, _)| sn)
            .collect();
        for sn in acked {
            let sdu = self.unacked.remove(&sn).expect("just enumerated");
            delivered.push(DeliveryRecord {
                sn,
                size: sdu.size as usize,
                t_ingress: sdu.t_ingress,
                t_delivered: now,
            });
            self.highest_delivered =
                Some(self.highest_delivered.map_or(sn, |h| h.max(sn)));
        }
        // NACKs: queue retransmission ranges (deduplicated).
        for n in &status.nacks {
            let Some(sdu) = self.unacked.get(&n.sn) else {
                continue; // already acknowledged or never transmitted
            };
            // A zero-size SDU's only segment is the empty
            // payload-carrying one, NACKed as the empty range (0, 0)
            // (what `RxEntry::missing` emits when the payload segment
            // was lost); clamping would read it as nothing-to-resend
            // and stall that SN forever.
            let (from, to) = if sdu.size == 0 {
                (0, 0)
            } else {
                let from = n.from.min(sdu.size);
                let to = n.to.min(sdu.size);
                if from >= to {
                    continue;
                }
                (from, to)
            };
            let seg = RetxSeg { sn: n.sn, from, to };
            if !self.retx.contains(&seg) {
                self.retx.push_back(seg);
            }
        }
        // Retx ranges for SNs that just got acked are stale; drop them.
        self.retx.retain(|r| self.unacked.contains_key(&r.sn));
        let _ = now;
        delivered
    }
}

/// State of one partially-received SDU at the UE.
#[derive(Debug)]
struct RxEntry {
    /// Received byte ranges, kept merged and sorted.
    ranges: Vec<ByteRange>,
    size: u32,
    payload: Option<PacketBuf>,
    t_first: Instant,
    t_ingress: Instant,
}

impl RxEntry {
    fn add_range(&mut self, from: u32, to: u32) {
        self.ranges.push((from, to));
        self.ranges.sort_unstable();
        // Merge overlapping ranges in place (write cursor `w`): this runs
        // once per received segment, so it must not allocate.
        let mut w = 0;
        for i in 1..self.ranges.len() {
            let (f, t) = self.ranges[i];
            if f <= self.ranges[w].1 {
                self.ranges[w].1 = self.ranges[w].1.max(t);
            } else {
                w += 1;
                self.ranges[w] = (f, t);
            }
        }
        self.ranges.truncate(w + 1);
    }

    fn complete(&self) -> bool {
        self.ranges.len() == 1 && self.ranges[0] == (0, self.size) && self.payload.is_some()
    }

    fn missing(&self) -> Vec<ByteRange> {
        let mut gaps = Vec::new();
        let mut cursor = 0u32;
        for &(f, t) in &self.ranges {
            if f > cursor {
                gaps.push((cursor, f));
            }
            cursor = cursor.max(t);
        }
        if cursor < self.size {
            gaps.push((cursor, self.size));
        }
        // Fully covered byte-wise but the payload-carrying (final)
        // segment was lost: re-request the tail so it travels again.
        if gaps.is_empty() && self.payload.is_none() {
            gaps.push((self.size.saturating_sub(1), self.size));
        }
        gaps
    }
}

/// An SDU delivered up from the UE's RLC with its original CU ingress
/// time (for one-way-delay accounting).
#[derive(Debug)]
pub struct RxDelivery {
    /// The reassembled IP packet.
    pub pkt: PacketBuf,
    /// Sequence number it carried.
    pub sn: Sn,
    /// CU ingress timestamp (metric plumbing).
    pub t_ingress: Instant,
}

/// Receive-side RLC entity (one per DRB) living in the UE.
#[derive(Debug)]
pub struct RlcRx {
    mode: RlcMode,
    entries: BTreeMap<Sn, RxEntry>,
    /// Lowest SN not yet delivered up.
    next_expected: Sn,
    /// Highest SN seen at all (for gap NACKs).
    highest_seen: Option<Sn>,
    /// In-order skip timeout for UM (folded PDCP t-Reordering).
    reassembly_timeout: Duration,
    status_period: Duration,
    last_status: Instant,
    /// Something changed since the last status (forces a report).
    dirty: bool,
    /// SDUs dropped by the UM skip timer.
    skipped: u64,
}

impl RlcRx {
    /// Create a receive-side entity.
    pub fn new(mode: RlcMode, status_period: Duration) -> RlcRx {
        RlcRx {
            mode,
            entries: BTreeMap::new(),
            next_expected: 0,
            highest_seen: None,
            reassembly_timeout: Duration::from_millis(50),
            status_period,
            last_status: Instant::ZERO,
            dirty: false,
            skipped: 0,
        }
    }

    /// Count of SDUs abandoned by the UM reassembly timeout.
    pub fn skipped_count(&self) -> u64 {
        self.skipped
    }

    /// Adopt a new status-report cadence (the serving cell's
    /// t-StatusProhibit analogue changes when the UE hands over to a
    /// cell with a different configuration).
    pub fn set_status_period(&mut self, period: Duration) {
        self.status_period = period;
    }

    /// Ingest one segment; returns any SDUs that became deliverable
    /// in order.
    pub fn on_segment(&mut self, seg: Segment, now: Instant) -> Vec<RxDelivery> {
        let mut out = Vec::new();
        self.on_segment_into(seg, now, &mut out);
        out
    }

    /// Allocation-free form of [`RlcRx::on_segment`]: newly deliverable
    /// SDUs are appended to `out` (the per-segment downlink hot path).
    pub fn on_segment_into(&mut self, seg: Segment, now: Instant, out: &mut Vec<RxDelivery>) {
        if seg.sn < self.next_expected {
            return; // duplicate of already-delivered data
        }
        self.highest_seen = Some(self.highest_seen.map_or(seg.sn, |h| h.max(seg.sn)));
        self.dirty = true;
        let entry = self.entries.entry(seg.sn).or_insert_with(|| RxEntry {
            ranges: Vec::new(),
            size: seg.sdu_size,
            payload: None,
            t_first: now,
            t_ingress: seg.t_ingress,
        });
        entry.add_range(seg.offset, seg.offset + seg.len);
        if let Some(p) = seg.payload {
            entry.payload = Some(p);
        }
        self.deliver_in_order(out)
    }

    /// Deliver the run of complete SDUs starting at `next_expected`.
    fn deliver_in_order(&mut self, out: &mut Vec<RxDelivery>) {
        while let Some(e) = self.entries.get(&self.next_expected) {
            if !e.complete() {
                break;
            }
            let sn = self.next_expected;
            let mut e = self.entries.remove(&sn).expect("present");
            out.push(RxDelivery {
                pkt: e.payload.take().expect("complete implies payload"),
                sn,
                t_ingress: e.t_ingress,
            });
            self.next_expected += 1;
        }
    }

    /// Timer poll: in UM, skip SDUs stuck longer than the reassembly
    /// timeout so later traffic keeps flowing (the skipped SDU is lost).
    pub fn poll(&mut self, now: Instant) -> Vec<RxDelivery> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`RlcRx::poll`]: skipped-past SDUs that
    /// became deliverable are appended to `out`.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<RxDelivery>) {
        if self.mode == RlcMode::Am {
            return;
        }
        loop {
            // Is the head-of-line SDU stuck?
            let stuck = match self.entries.get(&self.next_expected) {
                Some(e) if !e.complete() => {
                    now.saturating_since(e.t_first) > self.reassembly_timeout
                }
                Some(_) => false,
                None => {
                    // Nothing at next_expected: a whole SDU may be missing
                    // while later ones wait. Skip if any later entry aged out.
                    match self.entries.range(self.next_expected..).next() {
                        Some((_, e)) => {
                            now.saturating_since(e.t_first) > self.reassembly_timeout
                        }
                        None => false,
                    }
                }
            };
            if !stuck {
                break;
            }
            if self.entries.remove(&self.next_expected).is_some() {
                self.skipped += 1;
            }
            self.next_expected += 1;
            self.deliver_in_order(out);
        }
    }

    /// PDCP re-establishment, receive side (TS 38.323 §5.1.2): the RLC
    /// entity under this receiver is reset, so partially-reassembled
    /// SDUs (whose missing segments died with the source cell) are
    /// discarded; complete-but-undelivered SDUs stay in the PDCP
    /// reordering buffer (`next_expected` and in-order delivery are
    /// continuous across the switch). The receiver is marked dirty so
    /// the next uplink opportunity carries a status report — the PDCP
    /// status report that tells the target what to retransmit.
    pub fn reestablish(&mut self) {
        self.entries.retain(|_, e| e.complete());
        self.dirty = true;
    }

    /// Whether [`RlcRx::make_status`] would emit a report at `now`.
    /// Exactly the `Some` condition of `make_status` (whose `None`
    /// paths are mutation-free), so callers may use this as a cheap
    /// skip predicate without changing behaviour.
    pub fn status_due(&self, now: Instant) -> bool {
        let outstanding = self
            .highest_seen
            .is_some_and(|h| h >= self.next_expected);
        self.mode == RlcMode::Am
            && (self.dirty || outstanding)
            && now.saturating_since(self.last_status) >= self.status_period
    }

    /// Produce a status report if the cadence allows and there is news —
    /// or while any gap is still outstanding, so a lost *retransmission*
    /// is re-NACKed on the next cycle instead of stalling ARQ forever
    /// (the t-Reassembly re-trigger of TS 38.322). AM only.
    pub fn make_status(&mut self, now: Instant) -> Option<RlcStatus> {
        let outstanding = self
            .highest_seen
            .is_some_and(|h| h >= self.next_expected);
        if self.mode != RlcMode::Am || !(self.dirty || outstanding) {
            return None;
        }
        if now.saturating_since(self.last_status) < self.status_period {
            return None;
        }
        self.last_status = now;
        self.dirty = false;
        let mut nacks = Vec::new();
        if let Some(high) = self.highest_seen {
            for sn in self.next_expected..=high {
                match self.entries.get(&sn) {
                    Some(e) => {
                        for (f, t) in e.missing() {
                            nacks.push(Nack { sn, from: f, to: t });
                        }
                    }
                    None => nacks.push(Nack {
                        sn,
                        from: 0,
                        to: u32::MAX,
                    }),
                }
            }
        }
        Some(RlcStatus {
            ack_sn: self.next_expected,
            nacks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_net::{Ecn, TcpHeader};

    fn pkt(len: usize) -> PacketBuf {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 1000,
            ..TcpHeader::default()
        };
        PacketBuf::tcp(1, 2, Ecn::Ect1, 0, &hdr, len)
    }

    const OH: usize = 8;

    fn tx(mode: RlcMode) -> RlcTx {
        RlcTx::new(mode, 16, OH)
    }

    #[test]
    fn enqueue_pull_whole_sdu() {
        let mut t = tx(RlcMode::Um);
        let p = pkt(960); // wire 1000
        assert!(t.enqueue(0, p, Instant::ZERO));
        assert_eq!(t.backlog_bytes(), 1000);
        let r = t.pull(2000, Instant::from_millis(1));
        assert_eq!(r.segments.len(), 1);
        assert!(r.segments[0].is_last());
        assert!(r.segments[0].payload.is_some());
        assert_eq!(r.consumed, 1000 + OH);
        assert_eq!(r.txed.len(), 1);
        assert_eq!(t.backlog_bytes(), 0);
        assert_eq!(t.highest_txed(), Some(0));
    }

    #[test]
    fn segmentation_respects_budget() {
        let mut t = tx(RlcMode::Um);
        t.enqueue(0, pkt(1460), Instant::ZERO); // wire 1500
        let r1 = t.pull(600, Instant::from_millis(1));
        assert_eq!(r1.segments.len(), 1);
        assert_eq!(r1.segments[0].len as usize, 600 - OH);
        assert!(!r1.segments[0].is_last());
        assert!(r1.segments[0].payload.is_none());
        assert!(r1.txed.is_empty());
        let r2 = t.pull(10_000, Instant::from_millis(2));
        assert_eq!(r2.segments.len(), 1);
        assert!(r2.segments[0].is_last());
        assert_eq!(
            r1.segments[0].len + r2.segments[0].len,
            1500,
            "all bytes transmitted exactly once"
        );
        assert_eq!(r2.txed.len(), 1);
    }

    #[test]
    fn pull_with_tiny_budget_does_nothing() {
        let mut t = tx(RlcMode::Um);
        t.enqueue(0, pkt(100), Instant::ZERO);
        let r = t.pull(OH, Instant::ZERO); // budget <= overhead
        assert!(r.segments.is_empty());
        assert_eq!(r.consumed, 0);
    }

    #[test]
    fn queue_overflow_drops() {
        let mut t = RlcTx::new(RlcMode::Um, 2, OH);
        assert!(t.enqueue(0, pkt(100), Instant::ZERO));
        assert!(t.enqueue(1, pkt(100), Instant::ZERO));
        assert!(!t.enqueue(2, pkt(100), Instant::ZERO));
        assert_eq!(t.drop_count(), 1);
        assert_eq!(t.queue_len_sdus(), 2);
    }

    #[test]
    fn am_keeps_unacked_and_acks_release() {
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(500), Instant::ZERO);
        t.enqueue(1, pkt(500), Instant::ZERO);
        t.pull(10_000, Instant::from_millis(1));
        assert_eq!(t.highest_txed(), Some(1));
        assert_eq!(t.highest_delivered(), None);
        let d = t.on_status(
            &RlcStatus {
                ack_sn: 2,
                nacks: vec![],
            },
            Instant::from_millis(20),
        );
        assert_eq!(d.len(), 2);
        assert_eq!(t.highest_delivered(), Some(1));
        assert_eq!(d[0].t_delivered, Instant::from_millis(20));
    }

    #[test]
    fn nack_triggers_retx_before_new_data() {
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(500), Instant::ZERO);
        t.pull(10_000, Instant::from_millis(1));
        t.enqueue(1, pkt(500), Instant::from_millis(2));
        t.on_status(
            &RlcStatus {
                ack_sn: 0,
                nacks: vec![Nack {
                    sn: 0,
                    from: 0,
                    to: u32::MAX,
                }],
            },
            Instant::from_millis(10),
        );
        let r = t.pull(10_000, Instant::from_millis(11));
        // Retx of SN 0 must precede new SN 1.
        assert_eq!(r.segments[0].sn, 0);
        assert_eq!(r.segments[0].offset, 0);
        assert!(r.segments[0].is_last());
        assert!(r.segments[0].payload.is_some());
        assert_eq!(r.segments[1].sn, 1);
    }

    #[test]
    fn poll_retransmit_recovers_tail_loss() {
        // The final SDU's only transmission is lost: the receiver never
        // learns the SN exists, so only the transmitter-side timer can
        // recover it.
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(500), Instant::ZERO);
        let first = t.pull(10_000, Instant::from_millis(1));
        assert_eq!(first.segments.len(), 1); // ...and we pretend it's lost
        // Well within the poll timer: nothing happens.
        let quiet = t.pull(10_000, Instant::from_millis(20));
        assert!(quiet.segments.is_empty());
        // After T_POLL_RETRANSMIT of silence: the SDU is retransmitted.
        let retx = t.pull(10_000, Instant::from_millis(60));
        assert_eq!(retx.segments.len(), 1);
        assert_eq!(retx.segments[0].sn, 0);
        assert!(retx.segments[0].payload.is_some());
        // And it does not machine-gun: the next pull is quiet again.
        let quiet2 = t.pull(10_000, Instant::from_millis(61));
        assert!(quiet2.segments.is_empty());
    }

    #[test]
    fn duplicate_nacks_are_not_requeued() {
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(500), Instant::ZERO);
        t.pull(10_000, Instant::from_millis(1));
        let nack = RlcStatus {
            ack_sn: 0,
            nacks: vec![Nack {
                sn: 0,
                from: 0,
                to: u32::MAX,
            }],
        };
        t.on_status(&nack, Instant::from_millis(10));
        t.on_status(&nack, Instant::from_millis(11));
        let r = t.pull(100_000, Instant::from_millis(12));
        let count_sn0 = r.segments.iter().filter(|s| s.sn == 0).count();
        assert_eq!(count_sn0, 1, "retransmit once, not twice");
    }

    #[test]
    fn handover_drain_forwards_unacked_then_queued_in_sn_order() {
        let mut t = tx(RlcMode::Am);
        // SN 0: fully transmitted, unacked. SN 1: partially pulled.
        // SN 2: untouched in the queue.
        t.enqueue(0, pkt(492), Instant::ZERO); // wire 532
        t.pull(1000, Instant::from_millis(1));
        t.enqueue(1, pkt(1460), Instant::from_millis(2)); // wire 1500
        t.enqueue(2, pkt(500), Instant::from_millis(3));
        t.pull(600, Instant::from_millis(4)); // SN 1 partially out
        let fwd = t.drain_for_handover();
        assert_eq!(
            fwd.iter().map(|f| f.sn).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "ascending SN order: unacked first, then the queue"
        );
        assert_eq!(fwd[1].t_ingress, Instant::from_millis(2));
        assert_eq!(t.backlog_bytes(), 0);
        assert_eq!(t.queue_len_sdus(), 0);
        assert_eq!(t.highest_txed(), None);
        // Target side: forwarded SDUs re-enqueue as new data.
        let mut target = tx(RlcMode::Am);
        for f in fwd {
            assert!(target.enqueue_forwarded(f, Instant::from_millis(5)));
        }
        let r = target.pull(100_000, Instant::from_millis(6));
        let sns: Vec<Sn> = r.segments.iter().map(|s| s.sn).collect();
        assert_eq!(sns, vec![0, 1, 2], "full retransmission at the target");
        assert!(
            r.segments.iter().all(|s| s.is_last() && s.payload.is_some()),
            "ample budget: every forwarded SDU travels whole"
        );
    }

    #[test]
    fn handover_drain_respects_delivery_confirmations() {
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(500), Instant::ZERO);
        t.enqueue(1, pkt(500), Instant::ZERO);
        t.pull(10_000, Instant::from_millis(1));
        // SN 0 confirmed delivered: it must NOT be forwarded.
        t.on_status(
            &RlcStatus {
                ack_sn: 1,
                nacks: vec![],
            },
            Instant::from_millis(5),
        );
        let fwd = t.drain_for_handover();
        assert_eq!(fwd.len(), 1);
        assert_eq!(fwd[0].sn, 1);
    }

    #[test]
    fn enqueue_forwarded_respects_capacity() {
        let mut t = RlcTx::new(RlcMode::Am, 1, OH);
        let f0 = ForwardedSdu {
            sn: 0,
            pkt: pkt(100),
            t_ingress: Instant::ZERO,
        };
        let f1 = ForwardedSdu {
            sn: 1,
            pkt: pkt(100),
            t_ingress: Instant::ZERO,
        };
        assert!(t.enqueue_forwarded(f0, Instant::ZERO));
        assert!(!t.enqueue_forwarded(f1, Instant::ZERO));
        assert_eq!(t.drop_count(), 1);
    }

    #[test]
    fn rx_reestablish_drops_partials_keeps_completes() {
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(10));
        // SN 1 complete (held for SN 0); SN 2 partial.
        rx.on_segment(
            Segment {
                sn: 1,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(1),
        );
        rx.on_segment(
            Segment {
                sn: 2,
                offset: 0,
                len: 300,
                sdu_size: 1000,
                payload: None,
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(2),
        );
        rx.reestablish();
        // Status goes out at the next opportunity and still NACKs the
        // gap (SN 0) plus the now-discarded partial (SN 2).
        let st = rx.make_status(Instant::from_millis(20)).unwrap();
        assert_eq!(st.ack_sn, 0);
        assert!(st.nacks.iter().any(|n| n.sn == 0));
        assert!(st.nacks.iter().any(|n| n.sn == 2));
        // The target retransmits SN 0 in full: SN 0 and the buffered
        // SN 1 deliver in order, with no duplicate of SN 1.
        let d = rx.on_segment(
            Segment {
                sn: 0,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(25),
        );
        assert_eq!(d.iter().map(|x| x.sn).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn rx_reassembles_out_of_order_segments() {
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(10));
        let p = pkt(960);
        let mk = |off: u32, len: u32, with_payload: bool| Segment {
            sn: 0,
            offset: off,
            len,
            sdu_size: 1000,
            payload: if with_payload { Some(p) } else { None },
            t_ingress: Instant::ZERO,
        };
        // Tail first, then head.
        assert!(rx.on_segment(mk(500, 500, true), Instant::from_millis(1)).is_empty());
        let d = rx.on_segment(mk(0, 500, false), Instant::from_millis(2));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sn, 0);
    }

    #[test]
    fn rx_delivers_in_order_only() {
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(10));
        let seg = |sn: Sn| Segment {
            sn,
            offset: 0,
            len: 1000,
            sdu_size: 1000,
            payload: Some(pkt(960)),
            t_ingress: Instant::ZERO,
        };
        // SN 1 arrives before SN 0: held back.
        assert!(rx.on_segment(seg(1), Instant::from_millis(1)).is_empty());
        let d = rx.on_segment(seg(0), Instant::from_millis(2));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].sn, 0);
        assert_eq!(d[1].sn, 1);
    }

    #[test]
    fn status_report_carries_gaps() {
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(10));
        // SN 0 partially received, SN 2 complete, SN 1 never seen.
        rx.on_segment(
            Segment {
                sn: 0,
                offset: 0,
                len: 400,
                sdu_size: 1000,
                payload: None,
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(1),
        );
        rx.on_segment(
            Segment {
                sn: 2,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(2),
        );
        let st = rx.make_status(Instant::from_millis(20)).unwrap();
        assert_eq!(st.ack_sn, 0);
        assert!(st.nacks.contains(&Nack {
            sn: 0,
            from: 400,
            to: 1000
        }));
        assert!(st.nacks.contains(&Nack {
            sn: 1,
            from: 0,
            to: u32::MAX
        }));
        // SN 2 complete: no nack for it.
        assert!(!st.nacks.iter().any(|n| n.sn == 2));
    }

    #[test]
    fn status_respects_cadence_and_dirty_flag() {
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(10));
        assert!(rx.make_status(Instant::from_millis(100)).is_none(), "nothing to report");
        rx.on_segment(
            Segment {
                sn: 0,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(100),
        );
        let st = rx.make_status(Instant::from_millis(105)).unwrap();
        assert_eq!(st.ack_sn, 1);
        assert!(st.nacks.is_empty());
        // New data arrives straight away: the prohibit timer gates the
        // next report until a full period after the last one.
        rx.on_segment(
            Segment {
                sn: 1,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(106),
        );
        assert!(rx.make_status(Instant::from_millis(110)).is_none(), "prohibit timer");
        let st2 = rx.make_status(Instant::from_millis(116)).unwrap();
        assert_eq!(st2.ack_sn, 2);
        assert!(rx.make_status(Instant::from_millis(130)).is_none(), "no news");
    }

    #[test]
    fn um_skips_stuck_sdu_after_timeout() {
        let mut rx = RlcRx::new(RlcMode::Um, Duration::from_millis(10));
        // SN 0 partial (stuck), SN 1 complete behind it.
        rx.on_segment(
            Segment {
                sn: 0,
                offset: 0,
                len: 100,
                sdu_size: 1000,
                payload: None,
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(0),
        );
        let held = rx.on_segment(
            Segment {
                sn: 1,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(1),
        );
        assert!(held.is_empty());
        assert!(rx.poll(Instant::from_millis(20)).is_empty(), "not timed out yet");
        let d = rx.poll(Instant::from_millis(60));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sn, 1);
        assert_eq!(rx.skipped_count(), 1);
    }

    #[test]
    fn um_skips_wholly_missing_sdu() {
        let mut rx = RlcRx::new(RlcMode::Um, Duration::from_millis(10));
        // SN 1 complete, SN 0 never arrives at all.
        rx.on_segment(
            Segment {
                sn: 1,
                offset: 0,
                len: 1000,
                sdu_size: 1000,
                payload: Some(pkt(960)),
                t_ingress: Instant::ZERO,
            },
            Instant::from_millis(0),
        );
        let d = rx.poll(Instant::from_millis(60));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].sn, 1);
    }

    #[test]
    fn lost_payload_segment_is_renacked() {
        // Byte coverage complete but the final (payload-carrying) segment
        // never arrived: entry.missing() must request the tail again.
        let e = RxEntry {
            ranges: vec![(0, 1000)],
            size: 1000,
            payload: None,
            t_first: Instant::ZERO,
            t_ingress: Instant::ZERO,
        };
        assert_eq!(e.missing(), vec![(999, 1000)]);
        assert!(!e.complete());
    }

    #[test]
    fn zero_size_entry_gap_and_completion() {
        // A zero-size SDU whose (empty, payload-carrying) segment was
        // lost reports the empty (0, 0) gap …
        let e = RxEntry {
            ranges: vec![],
            size: 0,
            payload: None,
            t_first: Instant::ZERO,
            t_ingress: Instant::ZERO,
        };
        assert_eq!(e.missing(), vec![(0, 0)]);
        assert!(!e.complete());
        // … and is complete once that segment arrives.
        let e = RxEntry {
            ranges: vec![(0, 0)],
            size: 0,
            payload: Some(pkt(0)),
            t_first: Instant::ZERO,
            t_ingress: Instant::ZERO,
        };
        assert!(e.missing().is_empty());
        assert!(e.complete());
    }

    #[test]
    fn zero_size_nack_retransmits_instead_of_stalling() {
        // Regression: `on_status` clamped the (0, 0) NACK of a
        // zero-size SDU to an empty range and discarded it, so the SN
        // never retransmitted and in-order delivery stalled forever.
        let mut t = tx(RlcMode::Am);
        t.unacked.insert(
            7,
            UnackedSdu {
                pkt: pkt(0),
                size: 0,
                t_ingress: Instant::ZERO,
            },
        );
        let status = RlcStatus {
            ack_sn: 7,
            nacks: vec![Nack {
                sn: 7,
                from: 0,
                to: 0,
            }],
        };
        t.on_status(&status, Instant::from_millis(1));
        assert_eq!(
            t.retx.front(),
            Some(&RetxSeg {
                sn: 7,
                from: 0,
                to: 0
            }),
            "the empty payload segment must be queued for retx"
        );
        // The retransmission carries the payload and terminates (no
        // infinite zero-byte loop).
        let r = t.pull(1000, Instant::from_millis(2));
        assert_eq!(r.segments.len(), 1);
        assert_eq!(r.segments[0].sn, 7);
        assert_eq!(r.segments[0].len, 0);
        assert!(r.segments[0].payload.is_some());
        assert!(t.retx.is_empty());
        // A non-empty SDU's clamped-empty NACK is still discarded.
        t.unacked.insert(
            8,
            UnackedSdu {
                pkt: pkt(100),
                size: 140,
                t_ingress: Instant::ZERO,
            },
        );
        let status = RlcStatus {
            ack_sn: 8,
            nacks: vec![Nack {
                sn: 8,
                from: 5,
                to: 5,
            }],
        };
        t.on_status(&status, Instant::from_millis(3));
        assert!(t.retx.is_empty(), "empty range on a sized SDU is a no-op");
    }

    #[test]
    fn max_wire_size_sdu_keeps_exact_offsets() {
        // Cast audit: `PacketBuf` caps `wire_len()` at `u16::MAX`, so
        // the `u32` segment-offset space can never truncate a real SDU
        // (`push_sdu` still guards with `try_from` as defense in depth).
        // Pin the extreme: a maximum-wire-size SDU segments and
        // reassembles with byte-exact offsets.
        let len = u16::MAX as usize - 60; // 60 = IPv4 + max TCP header
        let mut t = tx(RlcMode::Am);
        t.enqueue(0, pkt(len), Instant::ZERO);
        let size = pkt(len).wire_len();
        let mut rx = RlcRx::new(RlcMode::Am, Duration::from_millis(5));
        let mut got = 0u32;
        let mut delivered = Vec::new();
        let mut guard = 0;
        while got < size as u32 {
            let r = t.pull(4000, Instant::from_millis(1));
            assert!(!r.segments.is_empty(), "sender stalled mid-SDU");
            for seg in r.segments {
                got = got.max(seg.offset + seg.len);
                delivered.extend(rx.on_segment(seg, Instant::from_millis(2)));
            }
            guard += 1;
            assert!(guard < 100);
        }
        assert_eq!(got, size as u32, "offsets must cover the SDU exactly");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].pkt.wire_len(), size);
    }
}

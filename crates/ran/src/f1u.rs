//! F1-U interface messages (3GPP TS 38.425).
//!
//! L4Span deliberately consumes only the two *mandatory* fields of the
//! *DL DATA DELIVERY STATUS* frame — the highest transmitted and highest
//! delivered PDCP sequence numbers — so it works in both RLC AM and UM
//! (paper §4.3.1). This module defines that message as the DU emits it
//! toward the CU-UP.

use l4span_sim::Instant;

use crate::ids::{DrbId, UeId};
use crate::rlc::Sn;

/// DL DATA DELIVERY STATUS: the DU→CU feedback frame L4Span taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DlDataDeliveryStatus {
    /// UE the DRB belongs to.
    pub ue: UeId,
    /// The data radio bearer reported on.
    pub drb: DrbId,
    /// Highest PDCP SN fully handed to the MAC ("transmitted").
    pub highest_txed_sn: Option<Sn>,
    /// Highest PDCP SN confirmed delivered by RLC ARQ (AM only; `None`
    /// in UM, where no delivery feedback exists).
    pub highest_delivered_sn: Option<Sn>,
    /// DU timestamp of the event that triggered this report.
    pub timestamp: Instant,
    /// Desired buffer size field (carried for completeness; flow control
    /// between CU and DU is not exercised by the reproduction).
    pub desired_buffer_size: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let m = DlDataDeliveryStatus {
            ue: UeId(1),
            drb: DrbId(0),
            highest_txed_sn: Some(41),
            highest_delivered_sn: None,
            timestamp: Instant::from_millis(3),
            desired_buffer_size: 0,
        };
        assert_eq!(m.highest_txed_sn, Some(41));
        assert_eq!(m.highest_delivered_sn, None);
    }
}

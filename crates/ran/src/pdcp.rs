//! PDCP transmit entity: sequence-number assignment.
//!
//! In the CU-UP, the PDCP assigns each downlink SDU a sequence number
//! before it crosses F1-U to the DU's RLC (paper §2). The SN is the key
//! both RLC ARQ and L4Span's packet profile table are indexed by, so the
//! essential invariant is: *SNs are assigned in ingress order, densely,
//! per DRB*. L4Span relies on that to reconstruct per-packet transmit
//! times from the cumulative F1-U counters.

use crate::rlc::Sn;

/// PDCP transmit state for one DRB.
#[derive(Debug, Default)]
pub struct PdcpTx {
    next_sn: Sn,
}

impl PdcpTx {
    /// Fresh entity starting at SN 0.
    pub fn new() -> PdcpTx {
        PdcpTx { next_sn: 0 }
    }

    /// Re-established entity continuing at `next_sn` — PDCP SN
    /// allocation is continuous across handover (TS 38.323 §5.1.2: the
    /// transmitting entity keeps its COUNT state at re-establishment for
    /// AM DRBs), which is what keeps L4Span's profile table, RLC ARQ,
    /// and the F1-U cumulative counters coherent when a UE changes cell.
    pub fn resuming_at(next_sn: Sn) -> PdcpTx {
        PdcpTx { next_sn }
    }

    /// Assign the next sequence number (dense, in ingress order).
    pub fn assign_sn(&mut self) -> Sn {
        let sn = self.next_sn;
        self.next_sn += 1;
        sn
    }

    /// The SN that will be assigned next.
    pub fn next_sn(&self) -> Sn {
        self.next_sn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sns_are_dense_and_ordered() {
        let mut p = PdcpTx::new();
        assert_eq!(p.assign_sn(), 0);
        assert_eq!(p.assign_sn(), 1);
        assert_eq!(p.assign_sn(), 2);
        assert_eq!(p.next_sn(), 3);
    }

    #[test]
    fn reestablished_entity_continues_the_sn_space() {
        let mut old = PdcpTx::new();
        old.assign_sn();
        old.assign_sn();
        let mut new = PdcpTx::resuming_at(old.next_sn());
        assert_eq!(new.assign_sn(), 2, "no SN reuse across handover");
    }
}

//! A discrete-event 5G RAN simulator: the substrate L4Span runs on.
//!
//! The paper's prototype lives inside srsRAN; this crate rebuilds the
//! slice of a 5G gNB that L4Span interacts with, as passive state machines
//! in the smoltcp idiom:
//!
//! * [`channel`] — per-UE Rayleigh fading (Jakes model) with static,
//!   pedestrian, and vehicular Doppler profiles;
//! * [`phy`] — SNR→CQI→MCS adaptation, transport-block sizing, TDD
//!   (DDDSU) slot structure, and the BLER model feeding HARQ;
//! * [`mac`] — round-robin and proportional-fair schedulers allocating
//!   resource-block groups per slot (downlink data and, since the
//!   bidirectional extension, BSR-driven uplink grants), plus HARQ
//!   retransmission;
//! * [`rlc`] — RLC Acknowledged and Unacknowledged modes with byte-level
//!   segmentation, ARQ status reporting, and bounded SDU queues (the deep
//!   default of 16384 SDUs or the short 256-SDU variant of Fig. 9);
//! * [`pdcp`] + [`f1u`] — PDCP sequence numbering and the 3GPP TS 38.425
//!   *downlink data delivery status* feedback L4Span consumes;
//! * [`sdap`] — QFI→DRB mapping;
//! * [`ue`] — the UE-side stack: reassembly, in-order delivery, RLC
//!   status generation, modem/kernel delay, TDD uplink opportunities
//!   (the RAN "jitter" that feedback short-circuiting bypasses), and
//!   the uplink data plane — per-DRB PDCP/RLC transmit entities with
//!   SR/BSR solicitation and grant-bounded transport-block building;
//! * [`gnb`] — the composition of all of the above into one cell.
//!
//! The crate deliberately knows nothing about L4Span: the hook points are
//! plain data (`PacketBuf` in, [`f1u::DlDataDeliveryStatus`] out), so the
//! core crate layers on top exactly as the paper's CU-UP module does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod f1u;
pub mod gnb;
pub mod ids;
pub mod mac;
pub mod pdcp;
pub mod phy;
pub mod rlc;
pub mod sdap;
pub mod ue;

pub use channel::{ChannelProfile, FadingChannel};
pub use config::{CellConfig, RlcMode, SchedulerKind};
pub use f1u::DlDataDeliveryStatus;
pub use gnb::{DrbHandoverState, Gnb, SlotOutput, UeHandoverCtx, UlTbOutcome};
pub use ids::{DrbId, UeId};
pub use ue::UeStack;

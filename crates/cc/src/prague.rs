//! TCP Prague: the L4S reference sender (paper §2, §6.1).
//!
//! DCTCP-style scalable response: the sender keeps an EWMA `α` of the
//! fraction of acknowledged bytes that were CE-marked over the previous
//! RTT and, once per RTT in which any CE arrived, applies
//! `cwnd ← cwnd · (1 − α/2)` — the "lightly-pressed brake" — then resumes
//! additive increase immediately. Packets carry ECT(1) and feedback rides
//! AccECN byte counters.

use l4span_sim::{Duration, Instant};

use crate::cc::{AckSample, CongestionControl, EcnMode};
use crate::reno::INITIAL_WINDOW_SEGS;

/// EWMA gain for α (DCTCP's g = 1/16).
const ALPHA_GAIN: f64 = 1.0 / 16.0;

/// TCP Prague congestion control.
#[derive(Debug)]
pub struct Prague {
    mss: usize,
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the CE-marked byte fraction.
    alpha: f64,
    /// Bytes acked / CE-marked in the current observation round.
    round_acked: usize,
    round_ce: usize,
    /// End of the current RTT round.
    round_end: Instant,
    /// Whether a multiplicative decrease already ran this round.
    reduced_this_round: bool,
    acked_credit: f64,
}

impl Prague {
    /// New Prague controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Prague {
        Prague {
            mss,
            cwnd: (INITIAL_WINDOW_SEGS * mss) as f64,
            ssthresh: f64::INFINITY,
            alpha: 0.0,
            round_acked: 0,
            round_ce: 0,
            round_end: Instant::ZERO,
            reduced_this_round: false,
            acked_credit: 0.0,
        }
    }

    /// Current α (exposed for tests and the Fig. 4 walkthrough example).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn end_round(&mut self, now: Instant, srtt: Duration) {
        if self.round_acked > 0 {
            // CE bytes can exceed acked bytes when an in-network
            // bookkeeper accounts marks ahead of delivery; α is a
            // fraction, so clamp.
            let frac = (self.round_ce as f64 / self.round_acked as f64).min(1.0);
            self.alpha += ALPHA_GAIN * (frac - self.alpha);
        }
        self.round_acked = 0;
        self.round_ce = 0;
        self.reduced_this_round = false;
        self.round_end = now + srtt;
    }
}

impl CongestionControl for Prague {
    fn on_ack(&mut self, ack: &AckSample) {
        if ack.now >= self.round_end {
            self.end_round(ack.now, ack.srtt);
        }
        self.round_acked += ack.newly_acked;
        self.round_ce += ack.ce_bytes;

        if ack.ce_bytes > 0 {
            // Any CE ends slow start.
            self.ssthresh = self.ssthresh.min(self.cwnd);
            if !self.reduced_this_round {
                self.reduced_this_round = true;
                // React to the freshest congestion information: fold the
                // current round's fraction in before reducing (DCTCP
                // implementations update α on the CE edge).
                let frac =
                    (self.round_ce as f64 / self.round_acked.max(1) as f64).min(1.0);
                self.alpha += ALPHA_GAIN * (frac - self.alpha);
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0 * self.mss as f64);
                return; // no growth on the reducing ACK
            }
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += ack.newly_acked as f64;
        } else {
            // Additive increase: 1 MSS per RTT, resumed immediately after
            // an MD (paper Fig. 4: "Immediately returns to AI after MD").
            self.acked_credit += ack.newly_acked as f64;
            if self.acked_credit >= self.cwnd {
                self.acked_credit -= self.cwnd;
                self.cwnd += self.mss as f64;
            }
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        // Loss is still a classic halving (safety in non-L4S bottlenecks).
        self.cwnd = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, _now: Instant) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.cwnd = self.mss as f64;
    }

    fn cwnd(&self) -> usize {
        self.cwnd as usize
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::L4s
    }

    fn name(&self) -> &'static str {
        "prague"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: usize, ce: usize) -> AckSample {
        AckSample {
            now: Instant::from_millis(now_ms),
            newly_acked: bytes,
            ce_bytes: ce,
            ece: false,
            rtt: Some(Duration::from_millis(40)),
            srtt: Duration::from_millis(40),
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
        }
    }

    #[test]
    fn fully_marked_round_converges_alpha_to_one() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..200 {
            p.on_ack(&ack(t, 10_000, 10_000));
            t += 45; // > srtt, so each ack starts a new round
        }
        assert!(p.alpha() > 0.9, "alpha {}", p.alpha());
    }

    #[test]
    fn small_alpha_means_gentle_decrease() {
        let mut p = Prague::new(1000);
        // Grow a bit, keep marks rare so alpha stays small.
        let mut t = 0;
        for _ in 0..50 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        let w = p.cwnd() as f64;
        p.on_ack(&ack(t, 10_000, 1_000)); // 10% of this round marked
        let cut = 1.0 - p.cwnd() as f64 / w;
        assert!(cut < 0.05, "cut {cut} should be ≪ classic 0.5");
    }

    #[test]
    fn one_reduction_per_rtt() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        let w0 = p.cwnd();
        // Two CE acks within the same round: only the first reduces.
        p.on_ack(&ack(t, 1_000, 1_000));
        let w1 = p.cwnd();
        p.on_ack(&ack(t + 1, 1_000, 1_000));
        let w2 = p.cwnd();
        assert!(w1 < w0);
        assert!(w2 >= w1, "second CE in the round must not reduce again");
    }

    #[test]
    fn ai_resumes_immediately_after_md() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        p.on_ack(&ack(t, 1_000, 1_000)); // MD
        let after_md = p.cwnd();
        // Unmarked acks in the same round grow the window again.
        let w = p.cwnd();
        p.on_ack(&ack(t + 1, w, 0));
        assert!(p.cwnd() > after_md, "AI must resume straight away");
    }

    #[test]
    fn loss_still_halves() {
        let mut p = Prague::new(1000);
        p.on_ack(&ack(0, 40_000, 0));
        let w = p.cwnd();
        p.on_loss(Instant::from_millis(1));
        assert_eq!(p.cwnd(), w / 2);
    }

    #[test]
    fn uses_l4s_identifier() {
        assert_eq!(Prague::new(1000).ecn_mode(), EcnMode::L4s);
    }
}

//! TCP Prague: the L4S reference sender (paper §2, §6.1).
//!
//! DCTCP-style scalable response: the sender keeps an EWMA `α` of the
//! fraction of acknowledged bytes that were CE-marked over the previous
//! RTT and, once per RTT in which any CE arrived, applies
//! `cwnd ← cwnd · (1 − α/2)` — the "lightly-pressed brake" — then resumes
//! additive increase immediately. Packets carry ECT(1) and feedback rides
//! AccECN byte counters.

use l4span_sim::{Duration, Instant};

use crate::cc::{AckSample, CcEvent, CongestionControl, EcnMode, FallbackReason, WindowedMin};
use crate::reno::INITIAL_WINDOW_SEGS;

/// EWMA gain for α (DCTCP's g = 1/16).
const ALPHA_GAIN: f64 = 1.0 / 16.0;

/// Classic-AQM pattern: CE co-occurring with queueing delay above this
/// (classic AQMs target tens of ms of standing queue; an L4S step
/// target sits around 1 ms).
const CLASSIC_DELAY: Duration = Duration::from_millis(15);

/// Consecutive suspicious RTT rounds before the sender falls back.
const FALLBACK_ROUNDS: u32 = 3;

/// How far back the detector remembers its RTT floor. A lifetime
/// minimum poisons the `srtt - min` queue estimate after a handover to
/// a longer-RTT cell (the old floor makes the clean new path read as
/// standing queue); the BBR-style windowed min forgets it instead.
const MIN_RTT_WINDOW: Duration = Duration::from_secs(10);

/// Classic-fallback detector state (present only on fallback-enabled
/// Prague senders, so vanilla Prague's byte-exact behaviour is
/// untouched).
#[derive(Debug)]
struct FallbackDetector {
    /// Windowed-lowest RTT sample (the queueing-delay baseline).
    min_rtt: WindowedMin,
    /// Bytes this round reported arriving with any ECN codepoint
    /// (`None` until AccECN evidence arrives this round).
    round_ect: Option<usize>,
    /// This round saw CE while srtt sat a classic queue above min RTT.
    round_classic: bool,
    /// Consecutive rounds matching the classic-AQM pattern.
    classic_rounds: u32,
    /// Consecutive rounds with a majority arrival-codepoint shortfall.
    bleach_rounds: u32,
    /// Set once: the recorded transition, until drained.
    event: Option<CcEvent>,
    /// The sender is in Reno-friendly mode for good.
    fallen: bool,
}

impl Default for FallbackDetector {
    fn default() -> FallbackDetector {
        FallbackDetector {
            min_rtt: WindowedMin::new(MIN_RTT_WINDOW),
            round_ect: None,
            round_classic: false,
            classic_rounds: 0,
            bleach_rounds: 0,
            event: None,
            fallen: false,
        }
    }
}

impl FallbackDetector {
    /// Per-ACK evidence gathering.
    fn on_ack(&mut self, ack: &AckSample) {
        if let Some(rtt) = ack.rtt {
            self.min_rtt.update(ack.now, rtt);
        }
        if let Some(e) = ack.ect_bytes {
            *self.round_ect.get_or_insert(0) += e;
        }
        if ack.ce_bytes > 0 {
            let queued = self
                .min_rtt
                .get(ack.now)
                .map_or(Duration::ZERO, |m| ack.srtt.saturating_sub(m));
            if queued > CLASSIC_DELAY {
                self.round_classic = true;
            }
        }
    }

    /// Per-round verdict; returns the reason once the evidence is
    /// sustained.
    fn end_round(&mut self, round_acked: usize) -> Option<FallbackReason> {
        if self.fallen {
            return None;
        }
        if self.round_classic {
            self.classic_rounds += 1;
        } else {
            self.classic_rounds = 0;
        }
        self.round_classic = false;
        // Bleach: a majority of this round's acked bytes arrived with no
        // ECN codepoint at all. Requires AccECN evidence this round (a
        // round of pure stale ACKs proves nothing).
        match self.round_ect.take() {
            Some(ect) if round_acked > 0 && ect < round_acked / 2 => self.bleach_rounds += 1,
            Some(_) => self.bleach_rounds = 0,
            None => {}
        }
        if self.classic_rounds >= FALLBACK_ROUNDS {
            Some(FallbackReason::ClassicEcn)
        } else if self.bleach_rounds >= FALLBACK_ROUNDS {
            Some(FallbackReason::Bleached)
        } else {
            None
        }
    }

    fn fall_back(&mut self, at: Instant, reason: FallbackReason) {
        self.fallen = true;
        self.event = Some(CcEvent::ClassicFallback { at, reason });
    }
}

/// TCP Prague congestion control.
#[derive(Debug)]
pub struct Prague {
    mss: usize,
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the CE-marked byte fraction.
    alpha: f64,
    /// Bytes acked / CE-marked in the current observation round.
    round_acked: usize,
    round_ce: usize,
    /// End of the current RTT round.
    round_end: Instant,
    /// Whether a multiplicative decrease already ran this round.
    reduced_this_round: bool,
    acked_credit: f64,
    /// Classic-fallback detector (`None` = vanilla Prague; `Some` adds
    /// the L4S-ops-guidance detection and Reno-friendly fallback).
    fallback: Option<FallbackDetector>,
}

impl Prague {
    /// New Prague controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Prague {
        Prague {
            mss,
            cwnd: (INITIAL_WINDOW_SEGS * mss) as f64,
            ssthresh: f64::INFINITY,
            alpha: 0.0,
            round_acked: 0,
            round_ce: 0,
            round_end: Instant::ZERO,
            reduced_this_round: false,
            acked_credit: 0.0,
            fallback: None,
        }
    }

    /// Prague with classic-ECN fallback armed: on three consecutive
    /// rounds of classic-style CE (CE plus classic-scale queueing delay)
    /// or bleached AccECN feedback, the sender permanently switches to
    /// Reno-friendly response — 50% multiplicative decrease on CE, once
    /// per RTT — per the L4S operational guidance, and records the
    /// transition as a [`CcEvent`].
    pub fn with_fallback(mss: usize) -> Prague {
        Prague {
            fallback: Some(FallbackDetector::default()),
            ..Prague::new(mss)
        }
    }

    /// Current α (exposed for tests and the Fig. 4 walkthrough example).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether a fallback-enabled sender has switched to Reno-friendly
    /// dynamics (always `false` on vanilla Prague).
    pub fn fallen_back(&self) -> bool {
        self.fallback.as_ref().is_some_and(|f| f.fallen)
    }

    fn end_round(&mut self, now: Instant, srtt: Duration) {
        if self.round_acked > 0 {
            // CE bytes can exceed acked bytes when an in-network
            // bookkeeper accounts marks ahead of delivery; α is a
            // fraction, so clamp.
            let frac = (self.round_ce as f64 / self.round_acked as f64).min(1.0);
            self.alpha += ALPHA_GAIN * (frac - self.alpha);
        }
        self.round_acked = 0;
        self.round_ce = 0;
        self.reduced_this_round = false;
        self.round_end = now + srtt;
    }
}

impl CongestionControl for Prague {
    fn on_ack(&mut self, ack: &AckSample) {
        if ack.now >= self.round_end {
            // Judge the completed round's evidence before its counters
            // reset (vanilla Prague carries no detector — nothing here
            // perturbs its byte-exact behaviour).
            if let Some(fb) = &mut self.fallback {
                if let Some(reason) = fb.end_round(self.round_acked) {
                    fb.fall_back(ack.now, reason);
                }
            }
            self.end_round(ack.now, ack.srtt);
        }
        if let Some(fb) = &mut self.fallback {
            fb.on_ack(ack);
        }
        self.round_acked += ack.newly_acked;
        self.round_ce += ack.ce_bytes;

        if ack.ce_bytes > 0 {
            // Any CE ends slow start.
            self.ssthresh = self.ssthresh.min(self.cwnd);
            if !self.reduced_this_round {
                self.reduced_this_round = true;
                if self.fallback.as_ref().is_some_and(|f| f.fallen) {
                    // Reno-friendly mode: the marks come from a classic
                    // AQM, so answer with the classic 50% decrease (once
                    // per RTT) instead of the scalable α/2 nudge.
                    self.cwnd = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
                    self.ssthresh = self.cwnd;
                    return;
                }
                // React to the freshest congestion information: fold the
                // current round's fraction in before reducing (DCTCP
                // implementations update α on the CE edge).
                let frac =
                    (self.round_ce as f64 / self.round_acked.max(1) as f64).min(1.0);
                self.alpha += ALPHA_GAIN * (frac - self.alpha);
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0 * self.mss as f64);
                return; // no growth on the reducing ACK
            }
        }
        if self.cwnd < self.ssthresh {
            self.cwnd += ack.newly_acked as f64;
        } else {
            // Additive increase: 1 MSS per RTT, resumed immediately after
            // an MD (paper Fig. 4: "Immediately returns to AI after MD").
            self.acked_credit += ack.newly_acked as f64;
            if self.acked_credit >= self.cwnd {
                self.acked_credit -= self.cwnd;
                self.cwnd += self.mss as f64;
            }
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        // Loss is still a classic halving (safety in non-L4S bottlenecks).
        self.cwnd = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.ssthresh = self.cwnd;
    }

    fn on_rto(&mut self, _now: Instant) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.mss as f64);
        self.cwnd = self.mss as f64;
    }

    fn cwnd(&self) -> usize {
        self.cwnd as usize
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::L4s
    }

    fn name(&self) -> &'static str {
        if self.fallback.is_some() {
            "prague-fallback"
        } else {
            "prague"
        }
    }

    fn take_events(&mut self) -> Vec<CcEvent> {
        self.fallback
            .as_mut()
            .and_then(|f| f.event.take())
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: usize, ce: usize) -> AckSample {
        // Faithful path: every acked byte arrived with its codepoint.
        AckSample {
            now: Instant::from_millis(now_ms),
            newly_acked: bytes,
            ce_bytes: ce,
            ect_bytes: Some(bytes),
            ece: false,
            rtt: Some(Duration::from_millis(40)),
            srtt: Duration::from_millis(40),
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
        }
    }

    #[test]
    fn fully_marked_round_converges_alpha_to_one() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..200 {
            p.on_ack(&ack(t, 10_000, 10_000));
            t += 45; // > srtt, so each ack starts a new round
        }
        assert!(p.alpha() > 0.9, "alpha {}", p.alpha());
    }

    #[test]
    fn small_alpha_means_gentle_decrease() {
        let mut p = Prague::new(1000);
        // Grow a bit, keep marks rare so alpha stays small.
        let mut t = 0;
        for _ in 0..50 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        let w = p.cwnd() as f64;
        p.on_ack(&ack(t, 10_000, 1_000)); // 10% of this round marked
        let cut = 1.0 - p.cwnd() as f64 / w;
        assert!(cut < 0.05, "cut {cut} should be ≪ classic 0.5");
    }

    #[test]
    fn one_reduction_per_rtt() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        let w0 = p.cwnd();
        // Two CE acks within the same round: only the first reduces.
        p.on_ack(&ack(t, 1_000, 1_000));
        let w1 = p.cwnd();
        p.on_ack(&ack(t + 1, 1_000, 1_000));
        let w2 = p.cwnd();
        assert!(w1 < w0);
        assert!(w2 >= w1, "second CE in the round must not reduce again");
    }

    #[test]
    fn ai_resumes_immediately_after_md() {
        let mut p = Prague::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        p.on_ack(&ack(t, 1_000, 1_000)); // MD
        let after_md = p.cwnd();
        // Unmarked acks in the same round grow the window again.
        let w = p.cwnd();
        p.on_ack(&ack(t + 1, w, 0));
        assert!(p.cwnd() > after_md, "AI must resume straight away");
    }

    #[test]
    fn loss_still_halves() {
        let mut p = Prague::new(1000);
        p.on_ack(&ack(0, 40_000, 0));
        let w = p.cwnd();
        p.on_loss(Instant::from_millis(1));
        assert_eq!(p.cwnd(), w / 2);
    }

    #[test]
    fn uses_l4s_identifier() {
        assert_eq!(Prague::new(1000).ecn_mode(), EcnMode::L4s);
    }

    /// An ACK whose srtt carries a classic-scale standing queue on top
    /// of the 40 ms baseline, with CE marks.
    fn classic_ce_ack(now_ms: u64, bytes: usize, ce: usize) -> AckSample {
        AckSample {
            srtt: Duration::from_millis(80),
            ..ack(now_ms, bytes, ce)
        }
    }

    #[test]
    fn classic_ce_pattern_triggers_fallback_and_reno_response() {
        let mut p = Prague::with_fallback(1000);
        let mut t = 0;
        // Establish the min-RTT baseline with clean rounds.
        for _ in 0..10 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        assert!(!p.fallen_back());
        // CE with ~40 ms of queueing delay, round after round: exactly
        // what an RFC 3168 single-queue AQM looks like.
        for _ in 0..6 {
            p.on_ack(&classic_ce_ack(t, 10_000, 2_000));
            t += 85;
        }
        assert!(p.fallen_back(), "sustained classic CE must trip fallback");
        let evs = p.take_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0],
            CcEvent::ClassicFallback {
                reason: FallbackReason::ClassicEcn,
                ..
            }
        ));
        assert!(p.take_events().is_empty(), "event drains once");
        // Post-fallback the CE response is a classic halving.
        for _ in 0..5 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        let w = p.cwnd() as f64;
        p.on_ack(&classic_ce_ack(t, 10_000, 2_000));
        let cut = 1.0 - p.cwnd() as f64 / w;
        assert!(
            (0.45..=0.55).contains(&cut),
            "Reno-friendly 50% MD, got cut {cut}"
        );
    }

    #[test]
    fn handover_to_longer_rtt_cell_does_not_trip_fallback() {
        // Regression: with a *lifetime* min-RTT baseline, a handover
        // from a 40 ms cell to an 80 ms cell left the old floor in
        // place, so CE marks on the clean new path read as 40 ms of
        // standing queue and tripped classic fallback. The windowed
        // min must forget the old cell within ~10 s.
        let mut p = Prague::with_fallback(1000);
        let mut t = 0;
        // A second on the 40 ms cell establishes the old floor.
        for _ in 0..20 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        // Handover: clean (unmarked) rounds at the new 80 ms floor
        // until the old floor ages out of the window.
        while t < 12_000 {
            p.on_ack(&AckSample {
                rtt: Some(Duration::from_millis(80)),
                ..classic_ce_ack(t, 20_000, 0)
            });
            t += 85;
        }
        // L4S marking at the new cell's own floor: srtt == min, queue
        // reads zero, fallback must not engage.
        for _ in 0..10 {
            p.on_ack(&AckSample {
                rtt: Some(Duration::from_millis(80)),
                ..classic_ce_ack(t, 10_000, 2_000)
            });
            t += 85;
        }
        assert!(
            !p.fallen_back(),
            "clean L4S path after handover must not read as classic"
        );
        assert!(p.take_events().is_empty());
    }

    #[test]
    fn bleached_feedback_triggers_fallback() {
        let mut p = Prague::with_fallback(1000);
        let mut t = 0;
        for _ in 0..5 {
            p.on_ack(&ack(t, 20_000, 0));
            t += 45;
        }
        // Bleached path: acked bytes arrive, AccECN counters stand still.
        for _ in 0..6 {
            p.on_ack(&AckSample {
                ect_bytes: Some(0),
                ..ack(t, 20_000, 0)
            });
            t += 45;
        }
        assert!(p.fallen_back(), "majority codepoint shortfall must trip");
        let evs = p.take_events();
        assert!(matches!(
            evs[0],
            CcEvent::ClassicFallback {
                reason: FallbackReason::Bleached,
                ..
            }
        ));
    }

    #[test]
    fn faithful_path_never_falls_back_and_matches_vanilla() {
        let mut v = Prague::new(1000);
        let mut f = Prague::with_fallback(1000);
        let mut t = 0;
        // Mixed clean/CE rounds on a faithful low-latency path: the two
        // senders must stay in lockstep (fallback never engages on L4S
        // marks at L4S-scale delay).
        for i in 0..200 {
            let ce = if i % 7 == 0 { 2_000 } else { 0 };
            let a = ack(t, 15_000, ce);
            v.on_ack(&a);
            f.on_ack(&a);
            t += 45;
        }
        assert!(!f.fallen_back());
        assert_eq!(v.cwnd(), f.cwnd(), "identical trajectory");
        assert!(f.take_events().is_empty());
        assert_eq!(f.name(), "prague-fallback");
        assert_eq!(v.name(), "prague");
    }
}

//! Transport endpoints for the L4Span reproduction.
//!
//! Implements the senders the paper evaluates (§6.1 and Appendix B) as
//! byte-accurate, event-driven state machines:
//!
//! * [`reno`] — TCP Reno (RFC 5681 additive increase / multiplicative
//!   decrease, classic ECN);
//! * [`cubic`] — CUBIC (RFC 9438 window growth, classic ECN);
//! * [`prague`] — TCP Prague (DCTCP-style scalable response, ECT(1),
//!   AccECN feedback);
//! * [`bbr`] — BBRv1 (model-based, ECN-oblivious);
//! * [`bbr2`] — BBRv2 (adds the DCTCP/L4S-like CE response, ECT(1));
//! * [`scream`] — SCReAM-style interactive video rate control over
//!   RTP/UDP (RFC 8298 flavour, L4S-aware);
//! * [`udp_prague`] — UDP Prague for interactive applications;
//! * [`nada`] — NADA (RFC 8698), the IETF rmcat interactive-media
//!   controller (aggregate delay + mark signal, PI update);
//! * [`fec`] — the sliding-window FEC/ARQ media endpoint: systematic
//!   repair packets over the last W sources, NACK-driven ARQ with
//!   frame-deadline abandonment, NADA-rated, bonding-aware;
//! * [`tcp`] — the sender/receiver machinery: handshake, loss recovery,
//!   classic-ECN echo (ECE/CWR) and AccECN byte counters;
//! * [`wan`] — fixed-delay WAN path segments.
//!
//! All senders expose the [`CongestionControl`] trait so the harness can
//! swap them per scenario, exactly as the paper swaps `iperf3` congestion
//! control modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbr;
pub mod bbr2;
pub mod cc;
pub mod cubic;
pub mod fec;
pub mod nada;
pub mod prague;
pub mod registry;
pub mod reno;
pub mod scream;
pub mod tcp;
pub mod udp_prague;
pub mod wan;

pub use cc::{AckSample, CcEvent, CongestionControl, EcnMode, FallbackReason, WindowedMin};
pub use fec::{FecFeedback, FecLegStats, FecMediaReceiver, FecMediaSender};
pub use nada::{NadaCc, NadaCore};
pub use registry::{CcEntry, CcKind, UnknownCc, REGISTRY};
pub use tcp::{TcpReceiver, TcpSender};
pub use wan::WanLink;

/// Build a boxed congestion controller by paper name. MSS is the payload
/// bytes per segment.
#[deprecated(
    since = "0.1.0",
    note = "parse a typed `CcKind` (`name.parse::<CcKind>()?`) and call \
            `CcKind::make(mss)`; unknown names then become a typed \
            `UnknownCc` error instead of this panic"
)]
pub fn make_cc(name: &str, mss: usize) -> Box<dyn CongestionControl> {
    match name.parse::<CcKind>() {
        Ok(kind) => kind.make(mss),
        Err(e) => panic!("{e}"),
    }
}

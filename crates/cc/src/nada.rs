//! NADA: Network-Assisted Dynamic Adaptation (RFC 8698), the IETF
//! rmcat congestion controller for interactive media.
//!
//! NADA folds queuing delay, losses, and ECN marks into one *aggregate
//! congestion signal* `x_curr` (§4.2) and runs two update modes on a
//! reference rate `r_ref` (§4.3):
//!
//! * **accelerated ramp-up** while the path shows no congestion at all
//!   (no marks, no losses, queuing delay under [`QEPS`]): multiplicative
//!   growth bounded by `gamma = min(GAMMA_MAX, QBOUND / (rtt + DELTA))`;
//! * **gradual update** otherwise: a proportional–integral step driven
//!   by the offset of `x_curr` from the per-flow target and by its
//!   derivative, so the rate converges where the aggregate signal
//!   equals `PRIO · XREF · RMAX / r_ref`.
//!
//! The implementation is rate-based like the RFC, exposed through
//! [`CongestionControl`] as a paced window (`cwnd = rate × srtt`) so
//! the harness can run NADA wherever it runs CUBIC or Prague. Queuing
//! delay is estimated as `srtt − min srtt`, with the floor tracked by a
//! [`WindowedMin`] so a handover to a longer-RTT cell does not read as
//! standing queue forever.

use crate::cc::{AckSample, CongestionControl, EcnMode, WindowedMin};
use l4span_sim::{Duration, Instant};

/// Weight of delay vs. loss in the aggregate signal (§5.1 `PRIO`).
const PRIO: f64 = 1.0;
/// Reference congestion level in ms (§5.1 `XREF`).
const XREF_MS: f64 = 10.0;
/// Scaling of the proportional + integral terms (§5.1 `KAPPA`).
const KAPPA: f64 = 0.5;
/// Weight of the derivative (proportional) term (§5.1 `ETA`).
const ETA: f64 = 2.0;
/// Upper bound of RTT in the gradual-update law, ms (§5.1 `TAU`).
const TAU_MS: f64 = 500.0;
/// Target feedback / update interval (§5.1 `DELTA`).
const DELTA: Duration = Duration::from_millis(100);
/// Max ramp-up step per interval (§5.1 `QBOUND`/`GAMMA_MAX`).
const GAMMA_MAX: f64 = 0.5;
/// Upper bound on self-inflicted queuing delay during ramp-up, ms.
const QBOUND_MS: f64 = 50.0;
/// Queuing delay below which the path reads as uncongested, ms
/// (`QEPS` in §4.3's ramp-up condition).
const QEPS_MS: f64 = 10.0;
/// Reference penalty one ECN mark contributes to `x_curr`, ms
/// (§4.2 `DMARK`: the delay equivalent of a marking event).
const DMARK_MS: f64 = 10.0;
/// Reference penalty one loss contributes to `x_curr`, ms (§4.2
/// `DLOSS`; losses are rarer and costlier than marks).
const DLOSS_MS: f64 = 100.0;
/// Window over which the delay floor may age out.
const MIN_RTT_WINDOW: Duration = Duration::from_secs(10);

/// Default rate bounds when used as a drop-in TCP controller (§5.1
/// `RMIN`/`RMAX`), bytes/sec.
const RMIN: f64 = 19_000.0; // 150 kbit/s
const RMAX: f64 = 18_750_000.0; // 150 Mbit/s

/// The RFC 8698 NADA core: a reference rate updated from aggregate
/// congestion signals. Embeddable — the FEC media sender runs one per
/// bonded leg; [`NadaCc`] adapts one to [`CongestionControl`].
#[derive(Debug, Clone)]
pub struct NadaCore {
    /// Reference rate in bytes/sec.
    r_ref: f64,
    min_rate: f64,
    max_rate: f64,
    /// Aggregate congestion signal of the previous update, ms.
    x_prev_ms: f64,
    /// Delay floor for the queuing-delay estimate.
    min_rtt: WindowedMin,
    last_update: Option<Instant>,
    /// Congestion signals accumulated since the last update.
    acc_bytes: u64,
    acc_mark_bytes: u64,
    acc_losses: u32,
    srtt: Duration,
}

impl NadaCore {
    /// A core with the given rate bounds (bytes/sec), starting at
    /// `start_rate`.
    pub fn new(min_rate: f64, start_rate: f64, max_rate: f64) -> NadaCore {
        NadaCore {
            r_ref: start_rate.clamp(min_rate, max_rate),
            min_rate,
            max_rate,
            x_prev_ms: 0.0,
            min_rtt: WindowedMin::new(MIN_RTT_WINDOW),
            last_update: None,
            acc_bytes: 0,
            acc_mark_bytes: 0,
            acc_losses: 0,
            srtt: Duration::from_millis(40),
        }
    }

    /// Current reference rate in bytes/sec.
    pub fn rate(&self) -> f64 {
        self.r_ref
    }

    /// Smoothed RTT last fed in.
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    /// Accumulate one acked/feedback sample: `bytes` arrived, of which
    /// `mark_bytes` were CE-marked, with the given smoothed RTT.
    pub fn on_sample(&mut self, now: Instant, bytes: u64, mark_bytes: u64, srtt: Duration) {
        self.srtt = srtt;
        self.min_rtt.update(now, srtt);
        self.acc_bytes += bytes;
        self.acc_mark_bytes += mark_bytes;
        let due = match self.last_update {
            None => {
                self.last_update = Some(now);
                false
            }
            Some(at) => now.saturating_since(at) >= DELTA,
        };
        if due {
            self.update(now);
        }
    }

    /// Record one loss event (fast-retransmit scale).
    pub fn on_loss(&mut self) {
        self.acc_losses += 1;
    }

    /// Collapse to the minimum rate (RTO scale).
    pub fn collapse(&mut self) {
        self.r_ref = self.min_rate;
        self.x_prev_ms = 0.0;
    }

    /// Queuing-delay estimate in ms: smoothed RTT over the windowed
    /// floor.
    fn d_queue_ms(&mut self, now: Instant) -> f64 {
        let floor = self.min_rtt.get(now).unwrap_or(self.srtt);
        self.srtt.saturating_sub(floor).as_secs_f64() * 1e3
    }

    /// One §4.3 update step over the accumulated interval.
    fn update(&mut self, now: Instant) {
        let delta_s = now
            .saturating_since(self.last_update.unwrap_or(now))
            .as_secs_f64()
            .max(1e-3);
        self.last_update = Some(now);
        let d_queue = self.d_queue_ms(now);
        let mark_frac = if self.acc_bytes > 0 {
            self.acc_mark_bytes as f64 / self.acc_bytes as f64
        } else {
            0.0
        };
        // §4.2: aggregate congestion signal = delay + penalty terms.
        let x_curr = d_queue + DMARK_MS * mark_frac + DLOSS_MS * f64::from(self.acc_losses);
        let clean = self.acc_mark_bytes == 0 && self.acc_losses == 0 && d_queue < QEPS_MS;
        if clean {
            // §4.3 accelerated ramp-up: bounded multiplicative growth.
            let rtt_ms = self.srtt.as_secs_f64() * 1e3;
            let gamma = GAMMA_MAX.min(QBOUND_MS / (rtt_ms + DELTA.as_secs_f64() * 1e3));
            self.r_ref *= 1.0 + gamma * (delta_s / DELTA.as_secs_f64()).min(1.0);
        } else {
            // §4.3 gradual update: PI step on the aggregate signal.
            let x_offset = x_curr - PRIO * XREF_MS * self.max_rate / self.r_ref;
            let x_diff = x_curr - self.x_prev_ms;
            let delta_ms = delta_s * 1e3;
            self.r_ref -= KAPPA * (delta_ms / TAU_MS) * (x_offset / TAU_MS) * self.r_ref
                + KAPPA * ETA * (x_diff / TAU_MS) * self.r_ref;
        }
        self.x_prev_ms = x_curr;
        self.acc_bytes = 0;
        self.acc_mark_bytes = 0;
        self.acc_losses = 0;
        self.r_ref = self.r_ref.clamp(self.min_rate, self.max_rate);
    }
}

/// NADA as a TCP-style [`CongestionControl`]: the reference rate paces
/// the sender and backs a `rate × srtt` window.
#[derive(Debug)]
pub struct NadaCc {
    core: NadaCore,
    mss: usize,
    name: &'static str,
    /// Fraction of the reference rate offered to the transport; the
    /// FEC-media flavour reserves the rest for repair overhead.
    rate_scale: f64,
}

impl NadaCc {
    /// Plain NADA with the RFC's default rate bounds.
    pub fn new(mss: usize) -> NadaCc {
        NadaCc {
            core: NadaCore::new(RMIN, 12.0 * RMIN, RMAX),
            mss,
            name: "nada",
            rate_scale: 1.0,
        }
    }

    /// The FEC-media flavour: the same NADA dynamics with a slice of
    /// the reference rate reserved for sliding-window repair packets,
    /// so source + repair together stay within what NADA granted (one
    /// repair per [`crate::fec::REPAIR_EVERY`] source packets).
    pub fn new_fec_media(mss: usize) -> NadaCc {
        NadaCc {
            core: NadaCore::new(RMIN, 12.0 * RMIN, RMAX),
            mss,
            name: "fec-media",
            rate_scale: crate::fec::REPAIR_EVERY as f64 / (crate::fec::REPAIR_EVERY as f64 + 1.0),
        }
    }

    /// The embedded core (diagnostics and tests).
    pub fn core(&self) -> &NadaCore {
        &self.core
    }
}

impl CongestionControl for NadaCc {
    fn on_ack(&mut self, ack: &AckSample) {
        self.core.on_sample(
            ack.now,
            ack.newly_acked as u64,
            ack.ce_bytes as u64,
            ack.srtt,
        );
    }

    fn on_loss(&mut self, _now: Instant) {
        self.core.on_loss();
    }

    fn on_rto(&mut self, _now: Instant) {
        self.core.collapse();
    }

    fn cwnd(&self) -> usize {
        let w = self.core.r_ref * self.rate_scale * self.core.srtt.as_secs_f64();
        (w as usize).max(2 * self.mss)
    }

    fn pacing_rate(&self) -> Option<f64> {
        Some(self.core.r_ref * self.rate_scale)
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::L4s
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_ack(now: Instant, srtt_ms: u64) -> AckSample {
        AckSample {
            now,
            newly_acked: 3000,
            ce_bytes: 0,
            ect_bytes: Some(3000),
            ece: false,
            rtt: Some(Duration::from_millis(srtt_ms)),
            srtt: Duration::from_millis(srtt_ms),
            inflight: 30_000,
            delivery_rate: None,
            app_limited: false,
        }
    }

    /// §4.3: the ramp-up multiplier per update interval is bounded by
    /// `1 + gamma`, `gamma = min(GAMMA_MAX, QBOUND / (rtt + DELTA))`.
    #[test]
    fn ramp_up_is_bounded_per_interval() {
        let mut core = NadaCore::new(1e4, 1e5, 1e8);
        let mut t = Instant::ZERO;
        let srtt = Duration::from_millis(40);
        let mut prev = core.rate();
        for _ in 0..50 {
            core.on_sample(t, 12_000, 0, srtt);
            let gamma = GAMMA_MAX.min(QBOUND_MS / (40.0 + 100.0));
            assert!(
                core.rate() <= prev * (1.0 + gamma) + 1e-6,
                "step exceeded the gamma bound: {prev} -> {}",
                core.rate()
            );
            prev = core.rate();
            t += DELTA;
        }
        assert!(core.rate() > 1e5, "clean path must ramp up");
    }

    /// §4.3 gradual mode is a PI controller: a signal above the target
    /// drives the rate down, one at the (stable, small) target with no
    /// derivative drives it up — the convergence sign property.
    #[test]
    fn pi_update_sign_follows_x_offset() {
        // High rate + standing 40 ms queue → x_offset > 0 → decrease.
        let mut core = NadaCore::new(1e4, 5e6, 6e6);
        let mut t = Instant::ZERO;
        core.on_sample(t, 12_000, 0, Duration::from_millis(20)); // floor
        for _ in 0..5 {
            t += DELTA;
            core.on_sample(t, 12_000, 1_000, Duration::from_millis(60));
        }
        assert!(core.rate() < 5e6, "positive offset must shrink the rate");

        // Low rate, tiny marking, no queue → x_offset < 0 → once x_diff
        // settles, the PI step grows the rate toward the target.
        let mut core = NadaCore::new(1e4, 1e5, 1e8);
        let mut t = Instant::ZERO;
        core.on_sample(t, 12_000, 0, Duration::from_millis(40));
        for _ in 0..3 {
            t += DELTA;
            // A constant whiff of marking keeps it in gradual mode with
            // x_diff == 0 after the first step.
            core.on_sample(t, 12_000, 60, Duration::from_millis(40));
        }
        let before = core.rate();
        t += DELTA;
        core.on_sample(t, 12_000, 60, Duration::from_millis(40));
        assert!(
            core.rate() > before,
            "negative offset must grow the rate: {before} -> {}",
            core.rate()
        );
    }

    #[test]
    fn loss_penalty_outweighs_marks() {
        let mut marks = NadaCore::new(1e4, 1e6, 1e8);
        let mut losses = marks.clone();
        let mut t = Instant::ZERO;
        let srtt = Duration::from_millis(40);
        marks.on_sample(t, 12_000, 0, srtt);
        losses.on_sample(t, 12_000, 0, srtt);
        for _ in 0..10 {
            t += DELTA;
            marks.on_sample(t, 12_000, 1_200, srtt);
            losses.on_loss();
            losses.on_sample(t, 12_000, 0, srtt);
        }
        assert!(losses.rate() < marks.rate(), "a loss costs more than a mark");
    }

    #[test]
    fn trait_adapter_paces_and_windows() {
        let mut cc = NadaCc::new(1500);
        let t = Instant::ZERO;
        cc.on_ack(&clean_ack(t, 40));
        let rate = cc.pacing_rate().expect("NADA is rate-based");
        assert!(rate > 0.0);
        // cwnd tracks rate × srtt.
        let want = (rate * 0.040) as usize;
        assert!(cc.cwnd() >= want.min(2 * 1500));
        assert_eq!(cc.ecn_mode(), EcnMode::L4s);
        cc.on_rto(t);
        assert_eq!(cc.cwnd(), 2 * 1500, "RTO collapses to the floor");
    }

    #[test]
    fn fec_media_flavour_reserves_repair_overhead() {
        let plain = NadaCc::new(1500);
        let fec = NadaCc::new_fec_media(1500);
        let (Some(p), Some(f)) = (plain.pacing_rate(), fec.pacing_rate()) else {
            panic!("both flavours pace");
        };
        let scale = crate::fec::REPAIR_EVERY as f64 / (crate::fec::REPAIR_EVERY as f64 + 1.0);
        assert!((f / p - scale).abs() < 1e-9);
        assert_eq!(fec.name(), "fec-media");
    }
}

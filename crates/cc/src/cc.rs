//! The congestion-control trait shared by all senders.

use l4span_net::Ecn;
use l4span_sim::{Duration, Instant};

/// How a sender marks and reads ECN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnMode {
    /// Not ECN-capable: packets go out Not-ECT, feedback is loss only.
    None,
    /// Classic ECN (RFC 3168): ECT(0) packets, ECE/CWR echo, a CE mark is
    /// treated like one loss event per RTT.
    Classic,
    /// L4S/AccECN: ECT(1) packets, per-byte CE accounting, scalable
    /// (DCTCP-style) response.
    L4s,
}

impl EcnMode {
    /// The codepoint data packets carry.
    pub fn codepoint(self) -> Ecn {
        match self {
            EcnMode::None => Ecn::NotEct,
            EcnMode::Classic => Ecn::Ect0,
            EcnMode::L4s => Ecn::Ect1,
        }
    }
}

/// Everything one cumulative ACK tells the congestion controller.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Arrival time of the ACK.
    pub now: Instant,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: usize,
    /// Of those, bytes reported CE-marked (AccECN; 0 under classic ECN).
    pub ce_bytes: usize,
    /// Bytes reported arriving with *any* ECN-capable codepoint (the sum
    /// of the AccECN CE + ECT(0) + ECT(1) counter deltas), when AccECN
    /// feedback provides it; `None` under classic ECN / no ECN. On an
    /// ECN-faithful path this tracks `newly_acked`; a persistent
    /// shortfall is the sender-visible signature of mid-path ECT
    /// bleaching (the arrival codepoint was erased, so no per-codepoint
    /// counter advanced).
    pub ect_bytes: Option<usize>,
    /// Classic ECN-Echo flag state (false under AccECN).
    pub ece: bool,
    /// RTT sample from the newest acked segment, if clean (not a retx).
    pub rtt: Option<Duration>,
    /// Smoothed RTT maintained by the sender.
    pub srtt: Duration,
    /// Bytes in flight *after* this ACK was processed.
    pub inflight: usize,
    /// Delivery-rate sample in bytes/sec (BBR-style), if computable.
    pub delivery_rate: Option<f64>,
    /// True if the sender was application-limited over this sample.
    pub app_limited: bool,
}

/// Why a Prague sender abandoned scalable dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Sustained CE co-occurring with classic-scale queueing delay: the
    /// marks come from an RFC 3168 single-queue AQM, not an L4S one.
    ClassicEcn,
    /// Sustained AccECN arrival-codepoint shortfall: a middlebox is
    /// bleaching the flow's ECT marking, so CE feedback can no longer be
    /// trusted to exist.
    Bleached,
}

impl FallbackReason {
    /// Stable label for reports and fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::ClassicEcn => "classic-ecn",
            FallbackReason::Bleached => "bleached",
        }
    }
}

/// A typed congestion-control state transition, drained out-of-band via
/// [`CongestionControl::take_events`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcEvent {
    /// The sender permanently switched from scalable (L4S) response to
    /// Reno-friendly dynamics per the L4S operational guidance.
    ClassicFallback {
        /// When the transition happened.
        at: Instant,
        /// What triggered it.
        reason: FallbackReason,
    },
}

/// A pluggable congestion controller. All window values are in bytes.
/// `Send` is a supertrait so whole worlds (which box controllers per
/// flow) can move between — and be driven by — worker threads.
pub trait CongestionControl: Send {
    /// Process one cumulative ACK.
    fn on_ack(&mut self, ack: &AckSample);
    /// A loss was detected (fast retransmit). At most once per RTT.
    fn on_loss(&mut self, now: Instant);
    /// Retransmission timeout fired: collapse to one segment.
    fn on_rto(&mut self, now: Instant);
    /// Current congestion window in bytes.
    fn cwnd(&self) -> usize;
    /// Pacing rate in bytes/sec, or `None` to send purely ack-clocked.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    /// ECN mode (decides the codepoint and the feedback format).
    fn ecn_mode(&self) -> EcnMode;
    /// Human-readable name for logs and figures.
    fn name(&self) -> &'static str;
    /// Drain typed state-transition events recorded since the last call
    /// (harvested into the run report). Default: none.
    fn take_events(&mut self) -> Vec<CcEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_mode_codepoints() {
        assert_eq!(EcnMode::None.codepoint(), Ecn::NotEct);
        assert_eq!(EcnMode::Classic.codepoint(), Ecn::Ect0);
        assert_eq!(EcnMode::L4s.codepoint(), Ecn::Ect1);
    }
}

//! The congestion-control trait shared by all senders.

use l4span_net::Ecn;
use l4span_sim::{Duration, Instant};

/// How a sender marks and reads ECN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcnMode {
    /// Not ECN-capable: packets go out Not-ECT, feedback is loss only.
    None,
    /// Classic ECN (RFC 3168): ECT(0) packets, ECE/CWR echo, a CE mark is
    /// treated like one loss event per RTT.
    Classic,
    /// L4S/AccECN: ECT(1) packets, per-byte CE accounting, scalable
    /// (DCTCP-style) response.
    L4s,
}

impl EcnMode {
    /// The codepoint data packets carry.
    pub fn codepoint(self) -> Ecn {
        match self {
            EcnMode::None => Ecn::NotEct,
            EcnMode::Classic => Ecn::Ect0,
            EcnMode::L4s => Ecn::Ect1,
        }
    }
}

/// Everything one cumulative ACK tells the congestion controller.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Arrival time of the ACK.
    pub now: Instant,
    /// Bytes newly acknowledged by this ACK.
    pub newly_acked: usize,
    /// Of those, bytes reported CE-marked (AccECN; 0 under classic ECN).
    pub ce_bytes: usize,
    /// Bytes reported arriving with *any* ECN-capable codepoint (the sum
    /// of the AccECN CE + ECT(0) + ECT(1) counter deltas), when AccECN
    /// feedback provides it; `None` under classic ECN / no ECN. On an
    /// ECN-faithful path this tracks `newly_acked`; a persistent
    /// shortfall is the sender-visible signature of mid-path ECT
    /// bleaching (the arrival codepoint was erased, so no per-codepoint
    /// counter advanced).
    pub ect_bytes: Option<usize>,
    /// Classic ECN-Echo flag state (false under AccECN).
    pub ece: bool,
    /// RTT sample from the newest acked segment, if clean (not a retx).
    pub rtt: Option<Duration>,
    /// Smoothed RTT maintained by the sender.
    pub srtt: Duration,
    /// Bytes in flight *after* this ACK was processed.
    pub inflight: usize,
    /// Delivery-rate sample in bytes/sec (BBR-style), if computable.
    pub delivery_rate: Option<f64>,
    /// True if the sender was application-limited over this sample.
    pub app_limited: bool,
}

/// Why a Prague sender abandoned scalable dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// Sustained CE co-occurring with classic-scale queueing delay: the
    /// marks come from an RFC 3168 single-queue AQM, not an L4S one.
    ClassicEcn,
    /// Sustained AccECN arrival-codepoint shortfall: a middlebox is
    /// bleaching the flow's ECT marking, so CE feedback can no longer be
    /// trusted to exist.
    Bleached,
}

impl FallbackReason {
    /// Stable label for reports and fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::ClassicEcn => "classic-ecn",
            FallbackReason::Bleached => "bleached",
        }
    }
}

/// A typed congestion-control state transition, drained out-of-band via
/// [`CongestionControl::take_events`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcEvent {
    /// The sender permanently switched from scalable (L4S) response to
    /// Reno-friendly dynamics per the L4S operational guidance.
    ClassicFallback {
        /// When the transition happened.
        at: Instant,
        /// What triggered it.
        reason: FallbackReason,
    },
}

/// A running minimum over a sliding time window (the BBR min-RTT
/// idiom): a monotonic deque of `(seen_at, value)` candidates where
/// each new sample evicts every older candidate it dominates, and the
/// front expires once it falls out of the window. Unlike a lifetime
/// minimum, the floor *forgets* — after a handover to a longer-RTT
/// cell the old cell's floor ages out within one window instead of
/// poisoning `srtt - min` queue estimates forever.
#[derive(Debug, Clone)]
pub struct WindowedMin {
    window: Duration,
    samples: std::collections::VecDeque<(Instant, Duration)>,
}

impl WindowedMin {
    /// An empty tracker with the given expiry window.
    pub fn new(window: Duration) -> WindowedMin {
        WindowedMin {
            window,
            samples: std::collections::VecDeque::new(),
        }
    }

    /// Ingest one sample observed at `now` and return the current
    /// windowed minimum (never `None`: the fresh sample itself is an
    /// in-window candidate).
    pub fn update(&mut self, now: Instant, value: Duration) -> Duration {
        while self.samples.back().is_some_and(|&(_, v)| v >= value) {
            self.samples.pop_back();
        }
        self.samples.push_back((now, value));
        self.expire(now);
        self.samples.front().map(|&(_, v)| v).unwrap_or(value)
    }

    /// The current windowed minimum, expiring stale candidates first.
    pub fn get(&mut self, now: Instant) -> Option<Duration> {
        self.expire(now);
        self.samples.front().map(|&(_, v)| v)
    }

    fn expire(&mut self, now: Instant) {
        while self
            .samples
            .front()
            .is_some_and(|&(at, _)| now.saturating_since(at) > self.window)
        {
            // Never drop the last candidate: an idle period longer than
            // the window would otherwise leave the tracker empty, and
            // the most recent observation is still the best guess.
            if self.samples.len() == 1 {
                break;
            }
            self.samples.pop_front();
        }
    }
}

/// A pluggable congestion controller. All window values are in bytes.
/// `Send` is a supertrait so whole worlds (which box controllers per
/// flow) can move between — and be driven by — worker threads.
pub trait CongestionControl: Send {
    /// Process one cumulative ACK.
    fn on_ack(&mut self, ack: &AckSample);
    /// A loss was detected (fast retransmit). At most once per RTT.
    fn on_loss(&mut self, now: Instant);
    /// Retransmission timeout fired: collapse to one segment.
    fn on_rto(&mut self, now: Instant);
    /// Current congestion window in bytes.
    fn cwnd(&self) -> usize;
    /// Pacing rate in bytes/sec, or `None` to send purely ack-clocked.
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    /// ECN mode (decides the codepoint and the feedback format).
    fn ecn_mode(&self) -> EcnMode;
    /// Human-readable name for logs and figures.
    fn name(&self) -> &'static str;
    /// Drain typed state-transition events recorded since the last call
    /// (harvested into the run report). Default: none.
    fn take_events(&mut self) -> Vec<CcEvent> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_min_tracks_and_forgets() {
        let mut m = WindowedMin::new(Duration::from_secs(10));
        let t0 = Instant::ZERO;
        assert_eq!(m.update(t0, Duration::from_millis(20)), Duration::from_millis(20));
        // A lower sample becomes the floor immediately.
        assert_eq!(
            m.update(t0 + Duration::from_secs(1), Duration::from_millis(15)),
            Duration::from_millis(15)
        );
        // Higher samples don't displace an in-window floor.
        assert_eq!(
            m.update(t0 + Duration::from_secs(5), Duration::from_millis(60)),
            Duration::from_millis(15)
        );
        // ... but once the floor ages past the window, it is forgotten.
        assert_eq!(
            m.update(t0 + Duration::from_secs(12), Duration::from_millis(60)),
            Duration::from_millis(60)
        );
    }

    #[test]
    fn windowed_min_keeps_last_candidate_through_idle() {
        let mut m = WindowedMin::new(Duration::from_secs(10));
        m.update(Instant::ZERO, Duration::from_millis(30));
        // 30 s idle: the stale sample is still the best available guess.
        assert_eq!(
            m.get(Instant::ZERO + Duration::from_secs(30)),
            Some(Duration::from_millis(30))
        );
    }

    #[test]
    fn ecn_mode_codepoints() {
        assert_eq!(EcnMode::None.codepoint(), Ecn::NotEct);
        assert_eq!(EcnMode::Classic.codepoint(), Ecn::Ect0);
        assert_eq!(EcnMode::L4s.codepoint(), Ecn::Ect1);
    }
}

//! SCReAM-style interactive video congestion control (RFC 8298 with the
//! L4S extension), as evaluated in paper §6.2.3 / Fig. 13.
//!
//! A media source produces frames at a fixed rate whose size tracks a
//! target bitrate; a congestion window paces RTP/UDP packets; RTCP-like
//! feedback returns cumulative received/CE-marked byte counters. In L4S
//! mode the sender keeps a DCTCP-style EWMA of the CE fraction and
//! applies a scaled multiplicative decrease; independently, a growing
//! queue-delay estimate (RTT above its observed floor) throttles the
//! window toward the RFC 8298 60 ms target. Feedback rides in the UDP
//! payload, so L4Span can only mark the downlink IP header — exactly the
//! fallback path of §4.4.

use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Duration, Instant};

/// Queue-delay target (RFC 8298 default).
const QDELAY_TARGET: Duration = Duration::from_millis(60);
/// EWMA gain for the L4S CE fraction.
const L4S_ALPHA_GAIN: f64 = 1.0 / 16.0;
/// Feedback interval the receiver maintains.
const FEEDBACK_INTERVAL: Duration = Duration::from_millis(25);
/// RTP payload bytes per packet.
const RTP_MTU: usize = 1200;

/// Cumulative counters carried in the (payload-borne) feedback message.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScreamFeedback {
    /// Highest *send counter* observed, reconstructed by the receiver
    /// from the 16-bit IP identification field (which the sender
    /// increments once per transmitted packet). Using a wire-visible
    /// counter keeps sender and receiver in sync even when the encoder's
    /// queue discipline skips RTP sequence numbers.
    pub highest_seq: u64,
    /// Cumulative payload bytes received.
    pub received_bytes: u64,
    /// Cumulative CE-marked payload bytes.
    pub ce_bytes: u64,
}

/// One RTP packet queued by the encoder, tagged with the frame it
/// belongs to so frame-level QoE can be tracked end to end.
#[derive(Debug, Clone, Copy)]
struct RtpPkt {
    len: usize,
    frame: u64,
    /// `Some(created_at)` on the frame's final packet.
    frame_end: Option<Instant>,
}

/// Emission-time record of a frame's last packet: the wire send counter
/// it rode (its low 16 bits are the IP identification), the frame id,
/// and the encoder's capture timestamp. The harness drains these to join
/// frame creation to UE-side delivery (per-frame one-way delay).
#[derive(Debug, Clone, Copy)]
pub struct FrameMark {
    /// Send counter of the frame's last packet (`& 0xFFFF` = IP ident).
    pub wire_seq: u64,
    /// Frame id (0-based generation order).
    pub frame: u64,
    /// Encoder capture timestamp.
    pub created: Instant,
}

/// SCReAM sender: media source + window-based rate adaptation.
#[derive(Debug)]
pub struct ScreamSender {
    /// Addressing.
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    l4s: bool,
    /// Target media bitrate (bit/s), clamped to [min, max].
    target_bps: f64,
    min_bps: f64,
    max_bps: f64,
    /// Frame cadence.
    frame_interval: Duration,
    next_frame_at: Instant,
    /// RTP queue of frame-tagged packets awaiting window room.
    rtp_queue: std::collections::VecDeque<RtpPkt>,
    next_seq: u64,
    /// Keyframe cadence: every `keyframe_every`-th frame is a keyframe
    /// (`0` = uniform frame sizes, the pre-keyframe behaviour).
    keyframe_every: u32,
    /// Keyframe size as a multiple of the GOP-average frame size; delta
    /// frames shrink so the GOP average stays on the target bitrate.
    keyframe_boost: f64,
    /// Frames generated so far (frame ids are 0-based).
    frame_count: u64,
    /// Frames at least partially discarded by the queue discipline.
    dropped_frames: std::collections::BTreeSet<u64>,
    /// Emission-time marks of complete frames, for the harness to drain.
    frame_marks: Vec<FrameMark>,
    /// Cumulative frames the encoder produced (QoE denominator).
    pub frames_generated: u64,
    /// Cumulative frames the encoder's queue discipline discarded (in
    /// whole or part); these can never be delivered complete.
    pub frames_dropped: u64,
    /// Send log for RTT estimation: (seq, sent_at).
    sent_log: std::collections::VecDeque<(u64, Instant)>,
    /// Congestion window in bytes and current flight.
    cwnd: f64,
    bytes_in_flight: usize,
    /// Count of packets actually transmitted (drives the IP ident).
    n_sent: u64,
    /// Cumulative payload bytes transmitted.
    sent_bytes: u64,
    /// Feedback bookkeeping.
    last_fb: ScreamFeedback,
    l4s_alpha: f64,
    min_rtt: Duration,
    srtt: Duration,
    last_reduction: Instant,
    ident: u16,
    /// Cumulative media bytes queued (diagnostics).
    pub media_bytes: u64,
}

impl ScreamSender {
    /// Create a sender with the given bitrate bounds (bit/s) and frame
    /// rate. `l4s` enables the scalable CE response (ECT(1) marking).
    #[allow(clippy::too_many_arguments)] // mirrors the SCReAM config tuple
    pub fn new(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        min_bps: f64,
        start_bps: f64,
        max_bps: f64,
        fps: f64,
        l4s: bool,
    ) -> ScreamSender {
        ScreamSender {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            l4s,
            target_bps: start_bps,
            min_bps,
            max_bps,
            frame_interval: Duration::from_secs_f64(1.0 / fps),
            next_frame_at: Instant::ZERO,
            rtp_queue: std::collections::VecDeque::new(),
            next_seq: 0,
            keyframe_every: 0,
            keyframe_boost: 1.0,
            frame_count: 0,
            dropped_frames: std::collections::BTreeSet::new(),
            frame_marks: Vec::new(),
            frames_generated: 0,
            frames_dropped: 0,
            sent_log: std::collections::VecDeque::new(),
            cwnd: 20_000.0,
            bytes_in_flight: 0,
            n_sent: 0,
            sent_bytes: 0,
            last_fb: ScreamFeedback::default(),
            l4s_alpha: 0.0,
            min_rtt: Duration::MAX,
            srtt: Duration::from_millis(50),
            last_reduction: Instant::ZERO,
            ident: 0,
        media_bytes: 0,
        }
    }

    /// Enable an I/P keyframe pattern: every `every`-th frame is `boost`×
    /// the GOP-average size, delta frames shrink to compensate. `every`
    /// below 2 (or a boost that would leave delta frames non-positive)
    /// keeps uniform sizes.
    pub fn with_keyframes(mut self, every: u32, boost: f64) -> ScreamSender {
        if every >= 2 && boost > 1.0 && boost < every as f64 {
            self.keyframe_every = every;
            self.keyframe_boost = boost;
        }
        self
    }

    /// Current target bitrate (bit/s).
    pub fn target_bps(&self) -> f64 {
        self.target_bps
    }

    /// Drain the emission-time marks of complete frames into `out` (the
    /// harness joins them to UE-side deliveries for per-frame QoE).
    pub fn take_frame_marks_into(&mut self, out: &mut Vec<FrameMark>) {
        out.append(&mut self.frame_marks);
    }

    /// The DCTCP-style CE fraction EWMA (diagnostics).
    pub fn l4s_alpha(&self) -> f64 {
        self.l4s_alpha
    }

    /// Smoothed RTT as seen via feedback.
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    fn ecn(&self) -> Ecn {
        if self.l4s {
            Ecn::Ect1
        } else {
            Ecn::Ect0
        }
    }

    /// Stop producing media (ends the call).
    pub fn stop(&mut self) {
        self.next_frame_at = Instant::MAX;
    }

    /// Produce media frames and emit as many RTP packets as the window
    /// allows. Call at (or after) `next_activity()`.
    pub fn poll(&mut self, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`ScreamSender::poll`]: emitted RTP
    /// packets are appended to `out`.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        // Frame generation.
        while now >= self.next_frame_at {
            // The encoder's capture timestamp is the nominal frame time.
            let created = self.next_frame_at;
            let frame = self.frame_count;
            let frame_bytes = if self.keyframe_every >= 2 {
                // I/P pattern around the same GOP-average size.
                let base = self.target_bps * self.frame_interval.as_secs_f64() / 8.0;
                let k = self.keyframe_every as f64;
                if frame.is_multiple_of(u64::from(self.keyframe_every)) {
                    (base * self.keyframe_boost) as usize
                } else {
                    (base * (k - self.keyframe_boost) / (k - 1.0)) as usize
                }
            } else {
                (self.target_bps * self.frame_interval.as_secs_f64() / 8.0) as usize
            };
            self.frame_count += 1;
            self.frames_generated += 1;
            self.media_bytes += frame_bytes as u64;
            let mut left = frame_bytes.max(200);
            while left > 0 {
                let take = left.min(RTP_MTU);
                self.rtp_queue.push_back(RtpPkt {
                    len: take,
                    frame,
                    frame_end: (left == take).then_some(created),
                });
                self.next_seq += 1;
                left -= take;
            }
            self.next_frame_at += self.frame_interval;
            // RTP queue discipline: if the queue exceeds ~400 ms of media,
            // drop the oldest frame's worth (the encoder would skip).
            let cap = (self.target_bps * 0.4 / 8.0) as usize;
            let mut queued: usize = self.rtp_queue.iter().map(|p| p.len).sum();
            while queued > cap && !self.rtp_queue.is_empty() {
                let p = self.rtp_queue.pop_front().expect("non-empty");
                queued -= p.len;
                // The frame this packet belonged to can no longer arrive
                // complete; count it once and forget it after its tail.
                if self.dropped_frames.insert(p.frame) {
                    self.frames_dropped += 1;
                }
                if p.frame_end.is_some() {
                    self.dropped_frames.remove(&p.frame);
                }
            }
        }
        // Window-limited emission.
        while let Some(&p) = self.rtp_queue.front() {
            if self.bytes_in_flight as f64 + p.len as f64 > self.cwnd {
                break;
            }
            self.rtp_queue.pop_front();
            // RTP seq is internal; the wire counter is n_sent.
            self.n_sent += 1;
            self.ident = (self.n_sent & 0xFFFF) as u16;
            if let Some(created) = p.frame_end {
                // Suppress the mark if the head of this frame was
                // discarded by the queue discipline: it arrives corrupt.
                if !self.dropped_frames.remove(&p.frame) {
                    self.frame_marks.push(FrameMark {
                        wire_seq: self.n_sent,
                        frame: p.frame,
                        created,
                    });
                }
            }
            out.push(PacketBuf::udp(
                self.src_ip,
                self.dst_ip,
                self.ecn(),
                self.ident,
                self.src_port,
                self.dst_port,
                p.len,
            ));
            self.bytes_in_flight += p.len;
            self.sent_bytes += p.len as u64;
            self.sent_log.push_back((self.n_sent, now));
            if self.sent_log.len() > 4096 {
                self.sent_log.pop_front();
            }
        }
    }

    /// Diagnostics: (cwnd bytes, bytes in flight, RTP queue packets).
    pub fn debug_state(&self) -> (f64, usize, usize) {
        (self.cwnd, self.bytes_in_flight, self.rtp_queue.len())
    }

    /// Next frame-generation instant.
    pub fn next_activity(&self) -> Instant {
        self.next_frame_at
    }

    /// Process one feedback report.
    pub fn on_feedback(&mut self, fb: &ScreamFeedback, now: Instant) {
        let acked_bytes = fb.received_bytes.saturating_sub(self.last_fb.received_bytes);
        let ce_delta = fb.ce_bytes.saturating_sub(self.last_fb.ce_bytes);
        // Exact in-flight reconciliation: sent minus cumulatively
        // received (self-correcting even if a feedback report is lost).
        self.bytes_in_flight =
            self.sent_bytes.saturating_sub(fb.received_bytes) as usize;
        // RTT from the send log.
        while let Some(&(seq, sent)) = self.sent_log.front() {
            if seq < fb.highest_seq {
                self.sent_log.pop_front();
                continue;
            }
            if seq == fb.highest_seq {
                let rtt = now.saturating_since(sent);
                self.min_rtt = self.min_rtt.min(rtt);
                self.srtt = Duration::from_secs_f64(
                    0.9 * self.srtt.as_secs_f64() + 0.1 * rtt.as_secs_f64(),
                );
                self.sent_log.pop_front();
            }
            break;
        }
        self.last_fb = *fb;
        if acked_bytes == 0 {
            return;
        }
        let qdelay = self.srtt.saturating_sub(self.min_rtt.min(self.srtt));
        let ce_frac = (ce_delta as f64 / acked_bytes as f64).clamp(0.0, 1.0);
        if self.l4s {
            self.l4s_alpha += L4S_ALPHA_GAIN * (ce_frac - self.l4s_alpha);
        }
        let may_reduce = now.saturating_since(self.last_reduction) > self.srtt;
        if self.l4s && ce_delta > 0 && may_reduce {
            // Scalable response: proportional to the EWMA CE fraction
            // only — a fixed floor would overwhelm the additive recovery
            // under L4Span's sparse frame-burst marks.
            self.cwnd *= 1.0 - 0.5 * self.l4s_alpha;
            self.last_reduction = now;
        } else if qdelay > QDELAY_TARGET && may_reduce {
            // Delay-based backoff toward the 60 ms target.
            let over = (qdelay.as_secs_f64() / QDELAY_TARGET.as_secs_f64() - 1.0).min(1.0);
            self.cwnd *= 1.0 - 0.1 * over;
            self.last_reduction = now;
        } else if ce_delta == 0 {
            // RFC 8298-flavoured increase: one MTU per clean report plus
            // a multiplicative component while far from the media cap.
            self.cwnd += RTP_MTU as f64 + 0.05 * acked_bytes as f64;
        }
        self.cwnd = self.cwnd.clamp(4.0 * RTP_MTU as f64, 4e7);
        // Couple the media rate to cwnd/srtt with 10% headroom.
        let rate = self.cwnd * 8.0 / self.srtt.as_secs_f64().max(1e-3) * 0.9;
        self.target_bps = rate.clamp(self.min_bps, self.max_bps);
    }
}

/// SCReAM receiver: counts bytes/CE and emits periodic feedback.
#[derive(Debug)]
pub struct ScreamReceiver {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    state: ScreamFeedback,
    /// Unwrapped send counter (from the 16-bit IP ident).
    highest_abs: u64,
    last_fb_at: Instant,
    /// Unreported state exists.
    dirty: bool,
    ident: u16,
}

impl ScreamReceiver {
    /// Create a receiver mirroring the sender's addressing.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> ScreamReceiver {
        ScreamReceiver {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            state: ScreamFeedback::default(),
            highest_abs: 0,
            last_fb_at: Instant::ZERO,
            dirty: false,
            ident: 0,
        }
    }

    fn emit_feedback(&mut self, now: Instant) -> (PacketBuf, ScreamFeedback) {
        self.last_fb_at = now;
        self.dirty = false;
        self.ident = self.ident.wrapping_add(1);
        let fb_pkt = PacketBuf::udp(
            self.src_ip,
            self.dst_ip,
            Ecn::NotEct,
            self.ident,
            self.src_port,
            self.dst_port,
            64, // RTCP feedback payload
        );
        (fb_pkt, self.state)
    }

    /// Timer poll: emit a pending report whose prohibit interval has
    /// elapsed (real RTCP reports periodically; without this, a report
    /// suppressed at the last packet's arrival would never be sent and
    /// the window-limited sender would deadlock).
    pub fn poll(&mut self, now: Instant) -> Option<(PacketBuf, ScreamFeedback)> {
        if self.dirty && now.saturating_since(self.last_fb_at) >= FEEDBACK_INTERVAL {
            Some(self.emit_feedback(now))
        } else {
            None
        }
    }

    /// Ingest a media packet; maybe emit (feedback packet, feedback data).
    /// The feedback *packet* is what rides the uplink; the data is the
    /// payload the harness hands to the sender when it arrives.
    pub fn on_packet(
        &mut self,
        pkt: &PacketBuf,
        now: Instant,
    ) -> Option<(PacketBuf, ScreamFeedback)> {
        let len = pkt.payload_len() as u64;
        self.state.received_bytes += len;
        if pkt.ecn() == Ecn::Ce {
            self.state.ce_bytes += len;
        }
        // Unwrap the 16-bit send counter: forward deltas are small.
        let ident = pkt.ip().identification;
        let delta = ident.wrapping_sub((self.highest_abs & 0xFFFF) as u16);
        if delta < 1 << 15 {
            self.highest_abs += u64::from(delta);
        }
        self.state.highest_seq = self.highest_abs;
        self.dirty = true;
        if now.saturating_since(self.last_fb_at) < FEEDBACK_INTERVAL {
            return None;
        }
        Some(self.emit_feedback(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(l4s: bool) -> ScreamSender {
        ScreamSender::new(1, 2, 5004, 5006, 0.5e6, 2e6, 20e6, 25.0, l4s)
    }

    #[test]
    fn frames_emit_paced_rtp_packets() {
        let mut s = sender(true);
        let pkts = s.poll(Instant::ZERO);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.ecn() == Ecn::Ect1));
        // 2 Mbit/s at 25 fps = 10 kB frames = ~9 packets.
        assert!(pkts.len() >= 8, "{}", pkts.len());
    }

    #[test]
    fn keyframe_pattern_boosts_keyframes_and_keeps_gop_average() {
        let mut s = sender(true).with_keyframes(5, 3.0);
        s.cwnd = 1e9; // never window-limited in this test
        let mut t = Instant::ZERO;
        let mut sizes = Vec::new();
        for _ in 0..5 {
            let pkts = s.poll(t);
            sizes.push(pkts.iter().map(|p| p.payload_len()).sum::<usize>());
            t += Duration::from_millis(40);
        }
        // 2 Mbit/s at 25 fps: base 10 kB; keyframe 30 kB, deltas 5 kB.
        assert!(sizes[0] > 2 * sizes[1], "keyframe dominates: {sizes:?}");
        assert_eq!(sizes[1], sizes[2]);
        let total: usize = sizes.iter().sum();
        let base = 5 * 10_000;
        assert!(
            (total as f64 - base as f64).abs() < 0.02 * base as f64,
            "GOP average holds: {total} vs {base}"
        );
        assert_eq!(s.frames_generated, 5);
    }

    #[test]
    fn invalid_keyframe_config_keeps_uniform_sizes() {
        let mut a = sender(true);
        let mut b = sender(true).with_keyframes(1, 0.5);
        let pa = a.poll(Instant::ZERO);
        let pb = b.poll(Instant::ZERO);
        assert_eq!(pa.len(), pb.len());
    }

    #[test]
    fn frame_marks_record_complete_frames_at_emission() {
        let mut s = sender(true);
        let pkts = s.poll(Instant::ZERO);
        assert!(!pkts.is_empty());
        let mut marks = Vec::new();
        s.take_frame_marks_into(&mut marks);
        assert_eq!(marks.len(), 1, "one frame emitted, one mark");
        assert_eq!(marks[0].frame, 0);
        assert_eq!(marks[0].created, Instant::ZERO);
        // The mark's wire seq is the last packet's ident.
        assert_eq!(
            (marks[0].wire_seq & 0xFFFF) as u16,
            pkts.last().unwrap().ip().identification
        );
        // Draining twice yields nothing new.
        s.take_frame_marks_into(&mut marks);
        assert_eq!(marks.len(), 1);
    }

    #[test]
    fn encoder_drops_are_counted_and_unmarked() {
        let mut s = sender(true);
        s.cwnd = 0.0; // nothing ever leaves: the 400 ms cap must engage
        let mut t = Instant::ZERO;
        for _ in 0..40 {
            let pkts = s.poll(t);
            assert!(pkts.is_empty());
            t += Duration::from_millis(40);
        }
        assert!(s.frames_dropped > 0, "queue discipline engaged");
        let mut marks = Vec::new();
        s.take_frame_marks_into(&mut marks);
        assert!(marks.is_empty(), "nothing emitted, nothing marked");
    }

    #[test]
    fn ce_feedback_cuts_rate_in_l4s_mode() {
        let mut s = sender(true);
        let mut t = Instant::ZERO;
        let mut fb = ScreamFeedback::default();
        // Warm up without marks.
        for _ in 0..20 {
            let pkts = s.poll(t);
            fb.received_bytes += pkts.iter().map(|p| p.payload_len() as u64).sum::<u64>();
            fb.highest_seq = s.next_seq.saturating_sub(1);
            s.on_feedback(&fb, t + Duration::from_millis(30));
            t += Duration::from_millis(40);
        }
        let before = s.target_bps();
        // Now heavy marking for a while.
        for _ in 0..30 {
            let pkts = s.poll(t);
            let bytes: u64 = pkts.iter().map(|p| p.payload_len() as u64).sum();
            fb.received_bytes += bytes;
            fb.ce_bytes += bytes; // all marked
            fb.highest_seq = s.next_seq.saturating_sub(1);
            s.on_feedback(&fb, t + Duration::from_millis(30));
            t += Duration::from_millis(40);
        }
        assert!(
            s.target_bps() < before * 0.8,
            "rate must drop: {} -> {}",
            before,
            s.target_bps()
        );
        assert!(s.l4s_alpha() > 0.1);
    }

    #[test]
    fn rate_respects_bounds() {
        let mut s = sender(true);
        let mut fb = ScreamFeedback::default();
        let mut t = Instant::ZERO;
        for _ in 0..200 {
            let pkts = s.poll(t);
            let bytes: u64 = pkts.iter().map(|p| p.payload_len() as u64).sum();
            fb.received_bytes += bytes;
            fb.ce_bytes += bytes;
            fb.highest_seq = s.next_seq.saturating_sub(1);
            s.on_feedback(&fb, t + Duration::from_millis(30));
            t += Duration::from_millis(40);
        }
        assert!(s.target_bps() >= 0.5e6, "min clamp: {}", s.target_bps());
    }

    #[test]
    fn receiver_paces_feedback() {
        let mut r = ScreamReceiver::new(2, 1, 5006, 5004);
        let pkt = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 5004, 5006, 1200);
        let f1 = r.on_packet(&pkt, Instant::from_millis(30));
        assert!(f1.is_some(), "first packet after interval triggers fb");
        let f2 = r.on_packet(&pkt, Instant::from_millis(31));
        assert!(f2.is_none(), "too soon");
        let f3 = r.on_packet(&pkt, Instant::from_millis(60));
        assert!(f3.is_some());
        let (_, fb) = f3.unwrap();
        assert_eq!(fb.received_bytes, 3 * 1200);
    }

    #[test]
    fn ce_bytes_counted_at_receiver() {
        let mut r = ScreamReceiver::new(2, 1, 5006, 5004);
        let mut pkt = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 5004, 5006, 1000);
        pkt.set_ecn(Ecn::Ce);
        let (_, fb) = r.on_packet(&pkt, Instant::from_millis(30)).unwrap();
        assert_eq!(fb.ce_bytes, 1000);
    }
}

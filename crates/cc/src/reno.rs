//! TCP Reno (RFC 5681): slow start, additive increase, halve on loss.
//! Classic ECN: a CE-echo is treated exactly like a loss event (RFC 3168).

use l4span_sim::Instant;

use crate::cc::{AckSample, CongestionControl, EcnMode};

/// Initial window in segments (RFC 6928).
pub const INITIAL_WINDOW_SEGS: usize = 10;

/// Reno congestion control.
#[derive(Debug)]
pub struct Reno {
    mss: usize,
    cwnd: usize,
    ssthresh: usize,
    /// Accumulated acked bytes for sub-MSS congestion-avoidance growth.
    acked_credit: usize,
}

impl Reno {
    /// New Reno controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Reno {
        Reno {
            mss,
            cwnd: INITIAL_WINDOW_SEGS * mss,
            ssthresh: usize::MAX,
            acked_credit: 0,
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, ack: &AckSample) {
        // Classic ECN: the sender machinery calls `on_loss` for the
        // once-per-RTT ECE reaction, so here we only grow.
        if self.in_slow_start() {
            self.cwnd += ack.newly_acked;
        } else {
            self.acked_credit += ack.newly_acked;
            // cwnd += MSS per cwnd-worth of acked bytes.
            while self.acked_credit >= self.cwnd {
                self.acked_credit -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_loss(&mut self, _now: Instant) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
        self.acked_credit = 0;
    }

    fn on_rto(&mut self, _now: Instant) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
        self.acked_credit = 0;
    }

    fn cwnd(&self) -> usize {
        self.cwnd
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::Classic
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_sim::Duration;

    fn ack(bytes: usize) -> AckSample {
        AckSample {
            now: Instant::ZERO,
            newly_acked: bytes,
            ce_bytes: 0,
            ect_bytes: None,
            ece: false,
            rtt: Some(Duration::from_millis(40)),
            srtt: Duration::from_millis(40),
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new(1000);
        let start = r.cwnd();
        // Ack a full window: cwnd should double.
        r.on_ack(&ack(start));
        assert_eq!(r.cwnd(), 2 * start);
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_window() {
        let mut r = Reno::new(1000);
        r.on_loss(Instant::ZERO); // leave slow start
        let w = r.cwnd();
        r.on_ack(&ack(w));
        assert_eq!(r.cwnd(), w + 1000);
    }

    #[test]
    fn loss_halves() {
        let mut r = Reno::new(1000);
        r.on_ack(&ack(30_000));
        let w = r.cwnd();
        r.on_loss(Instant::ZERO);
        assert_eq!(r.cwnd(), w / 2);
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mut r = Reno::new(1000);
        r.on_rto(Instant::ZERO);
        assert_eq!(r.cwnd(), 1000);
    }

    #[test]
    fn floor_is_two_mss() {
        let mut r = Reno::new(1000);
        for _ in 0..10 {
            r.on_loss(Instant::ZERO);
        }
        assert_eq!(r.cwnd(), 2000);
    }

    #[test]
    fn is_classic_ecn() {
        assert_eq!(Reno::new(1000).ecn_mode(), EcnMode::Classic);
    }
}

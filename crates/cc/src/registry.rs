//! Typed congestion-control selection: the [`CcKind`] enum, its
//! [`FromStr`] parser, and the name → factory registry that replaces the
//! old stringly `match cc.as_str()` construction (unknown names used to
//! panic deep inside the harness; now they surface as a typed
//! [`UnknownCc`] error at parse time).
//!
//! The registry is the single source of truth for which controllers
//! exist, what they are called (including aliases), and how to build
//! them; `CcKind::from_str`, [`CcKind::make`], and the deprecated
//! [`crate::make_cc`] shim all resolve through it.

use std::fmt;
use std::str::FromStr;

use crate::cc::CongestionControl;

/// The congestion controllers the paper evaluates, as a typed selector.
///
/// Parse one from a paper name with [`FromStr`] (`"reno"`, `"cubic"`,
/// `"prague"`, `"bbr"`, `"bbr2"`/`"bbrv2"`); build the boxed controller
/// with [`CcKind::make`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcKind {
    /// TCP Reno (RFC 5681 AIMD, classic ECN).
    Reno,
    /// CUBIC (RFC 9438, classic ECN).
    Cubic,
    /// TCP Prague (DCTCP-style scalable response, ECT(1), AccECN).
    Prague,
    /// TCP Prague with classic-ECN / bleaching fallback armed: detects
    /// RFC 3168 single-queue marking or mid-path ECT bleaching and
    /// permanently switches to Reno-friendly dynamics.
    PragueFallback,
    /// BBRv1 (model-based, ECN-oblivious).
    Bbr,
    /// BBRv2 (adds the DCTCP/L4S-like CE response, ECT(1)).
    Bbr2,
    /// NADA (RFC 8698): the IETF rmcat interactive-media controller —
    /// aggregate delay + mark signal, gradual PI update, accelerated
    /// ramp-up; rate-paced, ECT(1).
    Nada,
    /// The NADA dynamics with a slice of the rate reserved for
    /// sliding-window FEC repair packets: the controller backing the
    /// loss-*repairing* media endpoint (`TransportSpec::FecMedia`).
    FecMedia,
}

/// One registry row: a kind, its canonical name, accepted aliases, and
/// the boxed-controller factory (`mss` is payload bytes per segment).
pub struct CcEntry {
    /// The typed selector this row resolves to.
    pub kind: CcKind,
    /// Canonical paper name.
    pub name: &'static str,
    /// Additional accepted spellings.
    pub aliases: &'static [&'static str],
    /// Build the controller.
    pub factory: fn(usize) -> Box<dyn CongestionControl>,
}

/// The full controller registry, in canonical order.
pub const REGISTRY: &[CcEntry] = &[
    CcEntry {
        kind: CcKind::Reno,
        name: "reno",
        aliases: &[],
        factory: |mss| Box::new(crate::reno::Reno::new(mss)),
    },
    CcEntry {
        kind: CcKind::Cubic,
        name: "cubic",
        aliases: &[],
        factory: |mss| Box::new(crate::cubic::Cubic::new(mss)),
    },
    CcEntry {
        kind: CcKind::Prague,
        name: "prague",
        aliases: &[],
        factory: |mss| Box::new(crate::prague::Prague::new(mss)),
    },
    CcEntry {
        kind: CcKind::PragueFallback,
        name: "prague-fallback",
        aliases: &["prague_fallback"],
        factory: |mss| Box::new(crate::prague::Prague::with_fallback(mss)),
    },
    CcEntry {
        kind: CcKind::Bbr,
        name: "bbr",
        aliases: &[],
        factory: |mss| Box::new(crate::bbr::Bbr::new(mss)),
    },
    CcEntry {
        kind: CcKind::Bbr2,
        name: "bbr2",
        aliases: &["bbrv2"],
        factory: |mss| Box::new(crate::bbr2::Bbr2::new(mss)),
    },
    CcEntry {
        kind: CcKind::Nada,
        name: "nada",
        aliases: &[],
        factory: |mss| Box::new(crate::nada::NadaCc::new(mss)),
    },
    CcEntry {
        kind: CcKind::FecMedia,
        name: "fec-media",
        aliases: &["fec_media"],
        factory: |mss| Box::new(crate::nada::NadaCc::new_fec_media(mss)),
    },
];

/// Error for a congestion-control name the registry does not know.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCc {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownCc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown congestion control {:?} (known: {})",
            self.name,
            CcKind::names().join(", ")
        )
    }
}

impl std::error::Error for UnknownCc {}

impl CcKind {
    /// Every registered kind, in canonical order.
    pub fn all() -> impl Iterator<Item = CcKind> {
        REGISTRY.iter().map(|e| e.kind)
    }

    /// Canonical names, in canonical order.
    pub fn names() -> Vec<&'static str> {
        REGISTRY.iter().map(|e| e.name).collect()
    }

    fn entry(self) -> &'static CcEntry {
        REGISTRY
            .iter()
            .find(|e| e.kind == self)
            .expect("every CcKind variant has a registry row")
    }

    /// Canonical paper name.
    pub fn name(self) -> &'static str {
        self.entry().name
    }

    /// Build the boxed controller. `mss` is payload bytes per segment.
    pub fn make(self, mss: usize) -> Box<dyn CongestionControl> {
        (self.entry().factory)(mss)
    }
}

impl fmt::Display for CcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for CcKind {
    type Err = UnknownCc;

    fn from_str(s: &str) -> Result<CcKind, UnknownCc> {
        REGISTRY
            .iter()
            .find(|e| e.name == s || e.aliases.contains(&s))
            .map(|e| e.kind)
            .ok_or_else(|| UnknownCc {
                name: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_canonical_name_round_trips() {
        for kind in CcKind::all() {
            assert_eq!(kind.name().parse::<CcKind>().unwrap(), kind);
        }
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!("bbrv2".parse::<CcKind>().unwrap(), CcKind::Bbr2);
        assert_eq!("fec_media".parse::<CcKind>().unwrap(), CcKind::FecMedia);
        assert_eq!("nada".parse::<CcKind>().unwrap(), CcKind::Nada);
    }

    #[test]
    fn unknown_name_is_a_typed_error_not_a_panic() {
        let err = "vegas".parse::<CcKind>().unwrap_err();
        assert_eq!(err.name, "vegas");
        let msg = err.to_string();
        assert!(msg.contains("vegas") && msg.contains("cubic"), "{msg}");
    }

    #[test]
    fn factories_build_working_controllers() {
        for kind in CcKind::all() {
            let cc = kind.make(1400);
            assert!(cc.cwnd() > 0, "{kind}: initial window");
        }
    }
}

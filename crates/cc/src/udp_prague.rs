//! UDP Prague: the L4S team's rate-based Prague variant for interactive
//! applications (paper §6.1, Fig. 13). The receiver feeds back cumulative
//! packet/CE counts in the UDP payload; the sender runs the DCTCP-style
//! `α` update on a paced rate instead of a window.

use crate::cc::{CcEvent, FallbackReason, WindowedMin};
use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Duration, Instant};

/// EWMA gain for α.
const ALPHA_GAIN: f64 = 1.0 / 16.0;
/// Feedback cadence at the receiver.
const FEEDBACK_INTERVAL: Duration = Duration::from_millis(25);
/// Payload bytes per datagram.
const MTU_PAYLOAD: usize = 1200;
/// Queueing delay above the path floor that reads as a classic (RFC 3168)
/// single-queue AQM rather than an L4S one.
const CLASSIC_DELAY: Duration = Duration::from_millis(15);
/// Consecutive feedback epochs of classic/bleached evidence before the
/// sender abandons scalable dynamics.
const FALLBACK_EPOCHS: u32 = 3;

/// Cumulative feedback counters (carried in the UDP payload uplink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PragueFeedback {
    /// Datagrams received.
    pub packets: u64,
    /// Datagrams received CE-marked.
    pub ce_packets: u64,
    /// Datagrams that arrived Not-ECT. The sender marks everything
    /// ECT(1), so any such arrival is direct evidence of mid-path ECT
    /// bleaching.
    pub not_ect_packets: u64,
}

/// UDP Prague sender: rate-paced ECT(1) datagrams.
#[derive(Debug)]
pub struct UdpPragueSender {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    /// Paced send rate in bytes/sec.
    rate: f64,
    min_rate: f64,
    max_rate: f64,
    alpha: f64,
    last_fb: PragueFeedback,
    last_reduction: Instant,
    next_send_at: Instant,
    ident: u16,
    /// Estimated feedback round-trip (reduction gate).
    rtt_gate: Duration,
    /// Datagrams sent so far.
    n_sent: u64,
    /// Sparse (count, sent_at) probes for RTT estimation.
    probe_log: std::collections::VecDeque<(u64, Instant)>,
    /// Smoothed RTT from feedback arrival.
    srtt: Option<Duration>,
    /// Classic-path detector, engaged via
    /// [`UdpPragueSender::enable_fallback`].
    fallback: Option<UdpFallbackDetector>,
}

/// How far back the fallback detectors remember their RTT floor. A
/// *lifetime* minimum poisons the `srtt - min` queue estimate after a
/// handover to a longer-RTT cell: the old cell's floor makes the new
/// cell's clean path read as standing queue and can trip classic
/// fallback on a perfectly good L4S path. A windowed minimum (the BBR
/// min-RTT idiom) forgets the old floor within [`MIN_RTT_WINDOW`].
const MIN_RTT_WINDOW: Duration = Duration::from_secs(10);

/// Classic-ECN / bleaching detector for the UDP sender, mirroring the
/// TCP Prague one but keyed on feedback epochs instead of ACK rounds.
#[derive(Debug)]
struct UdpFallbackDetector {
    min_srtt: WindowedMin,
    classic_epochs: u32,
    bleach_epochs: u32,
    event: Option<CcEvent>,
    fallen: bool,
}

impl Default for UdpFallbackDetector {
    fn default() -> UdpFallbackDetector {
        UdpFallbackDetector {
            min_srtt: WindowedMin::new(MIN_RTT_WINDOW),
            classic_epochs: 0,
            bleach_epochs: 0,
            event: None,
            fallen: false,
        }
    }
}

impl UdpFallbackDetector {
    /// Score one feedback epoch; returns the reason once the evidence
    /// has persisted for [`FALLBACK_EPOCHS`].
    fn on_epoch(
        &mut self,
        pkts: u64,
        ce: u64,
        not_ect: u64,
        srtt: Option<Duration>,
        now: Instant,
    ) -> Option<FallbackReason> {
        if self.fallen {
            return None;
        }
        if let Some(s) = srtt {
            let m = self.min_srtt.update(now, s);
            let classic_delay = ce > 0 && s.saturating_sub(m) > CLASSIC_DELAY;
            if classic_delay {
                self.classic_epochs += 1;
            } else {
                self.classic_epochs = 0;
            }
        }
        if not_ect > pkts / 2 {
            self.bleach_epochs += 1;
        } else {
            self.bleach_epochs = 0;
        }
        if self.classic_epochs >= FALLBACK_EPOCHS {
            Some(FallbackReason::ClassicEcn)
        } else if self.bleach_epochs >= FALLBACK_EPOCHS {
            Some(FallbackReason::Bleached)
        } else {
            None
        }
    }

    fn fall_back(&mut self, at: Instant, reason: FallbackReason) {
        self.fallen = true;
        self.event = Some(CcEvent::ClassicFallback { at, reason });
    }
}

impl UdpPragueSender {
    /// Create a sender with rate bounds in bytes/sec.
    pub fn new(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        min_rate: f64,
        start_rate: f64,
        max_rate: f64,
    ) -> UdpPragueSender {
        UdpPragueSender {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            rate: start_rate,
            min_rate,
            max_rate,
            alpha: 0.0,
            last_fb: PragueFeedback::default(),
            last_reduction: Instant::ZERO,
            next_send_at: Instant::ZERO,
            ident: 0,
            rtt_gate: Duration::from_millis(40),
            n_sent: 0,
            probe_log: std::collections::VecDeque::new(),
            srtt: None,
            fallback: None,
        }
    }

    /// Arm the classic-ECN / bleaching detector. Off by default so the
    /// vanilla sender's trajectory is untouched.
    pub fn enable_fallback(&mut self) {
        self.fallback = Some(UdpFallbackDetector::default());
    }

    /// True once the detector has permanently switched this sender to
    /// Reno-friendly (rate-halving) dynamics.
    pub fn fallen_back(&self) -> bool {
        self.fallback.as_ref().is_some_and(|f| f.fallen)
    }

    /// Drain the typed fallback event, if one fired since the last call.
    pub fn take_events(&mut self) -> Vec<CcEvent> {
        match self.fallback.as_mut().and_then(|f| f.event.take()) {
            Some(ev) => vec![ev],
            None => Vec::new(),
        }
    }

    /// Smoothed RTT observed via feedback, if any.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Current paced rate in bytes/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The CE-fraction EWMA (diagnostics, mirrors Prague's α).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Stop sending (flow teardown).
    pub fn stop(&mut self) {
        self.next_send_at = Instant::MAX;
    }

    /// Emit datagrams due under the paced schedule.
    pub fn poll(&mut self, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`UdpPragueSender::poll`]: datagrams are
    /// appended to `out` (the per-pacing-tick hot path).
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        let mut emitted = 0;
        while now >= self.next_send_at {
            self.ident = self.ident.wrapping_add(1);
            out.push(PacketBuf::udp(
                self.src_ip,
                self.dst_ip,
                Ecn::Ect1,
                self.ident,
                self.src_port,
                self.dst_port,
                MTU_PAYLOAD,
            ));
            let gap = Duration::from_secs_f64(MTU_PAYLOAD as f64 / self.rate.max(1.0));
            self.next_send_at = self.next_send_at.max(now) + gap;
            self.n_sent += 1;
            // Sparse RTT probes: one every 16 datagrams.
            if self.n_sent % 16 == 1 {
                self.probe_log.push_back((self.n_sent, now));
                if self.probe_log.len() > 256 {
                    self.probe_log.pop_front();
                }
            }
            emitted += 1;
            if emitted >= 64 {
                break; // bound burst size after long idle gaps
            }
        }
    }

    /// When the pacer next releases a datagram.
    pub fn next_activity(&self) -> Instant {
        self.next_send_at
    }

    /// Apply one feedback report.
    pub fn on_feedback(&mut self, fb: &PragueFeedback, now: Instant) {
        // RTT from the sparse probe log.
        while let Some(&(count, sent)) = self.probe_log.front() {
            if count > fb.packets {
                break;
            }
            self.probe_log.pop_front();
            let rtt = now.saturating_since(sent);
            self.srtt = Some(match self.srtt {
                None => rtt,
                Some(s) => Duration::from_secs_f64(
                    0.875 * s.as_secs_f64() + 0.125 * rtt.as_secs_f64(),
                ),
            });
        }
        let pkts = fb.packets.saturating_sub(self.last_fb.packets);
        let ce = fb.ce_packets.saturating_sub(self.last_fb.ce_packets);
        let not_ect = fb.not_ect_packets.saturating_sub(self.last_fb.not_ect_packets);
        self.last_fb = *fb;
        if pkts == 0 {
            return;
        }
        if let Some(det) = &mut self.fallback {
            if let Some(reason) = det.on_epoch(pkts, ce, not_ect, self.srtt, now) {
                det.fall_back(now, reason);
            }
        }
        let frac = ce as f64 / pkts as f64;
        self.alpha += ALPHA_GAIN * (frac - self.alpha);
        if ce > 0 && now.saturating_since(self.last_reduction) > self.rtt_gate {
            // Fallen back: classic rate-halving instead of the scalable
            // α-proportional cut.
            if self.fallback.as_ref().is_some_and(|f| f.fallen) {
                self.rate *= 0.5;
            } else {
                self.rate *= 1.0 - self.alpha / 2.0;
            }
            self.last_reduction = now;
        } else if ce == 0 {
            // Additive increase: one MTU per feedback interval.
            self.rate += MTU_PAYLOAD as f64 / FEEDBACK_INTERVAL.as_secs_f64() * 0.025;
        }
        self.rate = self.rate.clamp(self.min_rate, self.max_rate);
    }
}

/// UDP Prague receiver: counts datagrams and CE marks, reports every
/// [`FEEDBACK_INTERVAL`].
#[derive(Debug)]
pub struct UdpPragueReceiver {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    state: PragueFeedback,
    last_fb_at: Instant,
    /// Unreported state exists.
    dirty: bool,
    ident: u16,
    /// Total payload bytes received (diagnostics).
    pub received_bytes: u64,
}

impl UdpPragueReceiver {
    /// Create a receiver mirroring the sender's addressing.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> UdpPragueReceiver {
        UdpPragueReceiver {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            state: PragueFeedback::default(),
            last_fb_at: Instant::ZERO,
            dirty: false,
            ident: 0,
            received_bytes: 0,
        }
    }

    fn emit_feedback(&mut self, now: Instant) -> (PacketBuf, PragueFeedback) {
        self.last_fb_at = now;
        self.dirty = false;
        self.ident = self.ident.wrapping_add(1);
        let fb_pkt = PacketBuf::udp(
            self.src_ip,
            self.dst_ip,
            Ecn::NotEct,
            self.ident,
            self.src_port,
            self.dst_port,
            32,
        );
        (fb_pkt, self.state)
    }

    /// Timer poll: flush a report suppressed by the prohibit interval
    /// (prevents the rate-paced sender from stalling when the last
    /// datagram of a burst arrives inside the interval).
    pub fn poll(&mut self, now: Instant) -> Option<(PacketBuf, PragueFeedback)> {
        if self.dirty && now.saturating_since(self.last_fb_at) >= FEEDBACK_INTERVAL {
            Some(self.emit_feedback(now))
        } else {
            None
        }
    }

    /// Ingest a datagram; maybe emit (feedback packet, feedback data).
    pub fn on_packet(
        &mut self,
        pkt: &PacketBuf,
        now: Instant,
    ) -> Option<(PacketBuf, PragueFeedback)> {
        self.state.packets += 1;
        self.received_bytes += pkt.payload_len() as u64;
        if pkt.ecn() == Ecn::Ce {
            self.state.ce_packets += 1;
        } else if pkt.ecn() == Ecn::NotEct {
            // The sender only emits ECT(1): a Not-ECT arrival means a
            // middlebox bleached the codepoint in transit.
            self.state.not_ect_packets += 1;
        }
        self.dirty = true;
        if now.saturating_since(self.last_fb_at) < FEEDBACK_INTERVAL {
            return None;
        }
        Some(self.emit_feedback(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_respects_rate() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e5, 1.2e6, 1e7);
        // 1.2 MB/s at 1200 B = 1000 pkt/s; over 100 ms expect ~100.
        let mut n = 0;
        for ms in 0..100u64 {
            n += s.poll(Instant::from_millis(ms)).len();
        }
        assert!((90..=110).contains(&n), "sent {n}");
    }

    #[test]
    fn marks_reduce_rate_unmarked_grows() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        // Marked epochs.
        for _ in 0..50 {
            fb.packets += 25;
            fb.ce_packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(50);
        }
        let low = s.rate();
        assert!(low < 1e6, "rate must fall: {low}");
        assert!(s.alpha() > 0.5);
        // Unmarked epochs recover.
        for _ in 0..200 {
            fb.packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(50);
        }
        assert!(s.rate() > low, "rate must grow back");
    }

    #[test]
    fn receiver_counts_and_paces() {
        let mut r = UdpPragueReceiver::new(2, 1, 7001, 7000);
        let mut ce = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 7000, 7001, 1200);
        ce.set_ecn(Ecn::Ce);
        let ok = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 7000, 7001, 1200);
        assert!(r.on_packet(&ok, Instant::from_millis(30)).is_some());
        assert!(r.on_packet(&ce, Instant::from_millis(31)).is_none());
        let (_, fb) = r.on_packet(&ok, Instant::from_millis(60)).unwrap();
        assert_eq!(fb.packets, 3);
        assert_eq!(fb.ce_packets, 1);
        assert_eq!(r.received_bytes, 3 * 1200);
    }

    #[test]
    fn burst_after_idle_is_bounded() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e5, 1e7, 1e8);
        // A long gap would owe thousands of packets; the burst cap holds.
        let pkts = s.poll(Instant::from_secs(5));
        assert!(pkts.len() <= 64);
    }

    #[test]
    fn receiver_counts_bleached_arrivals() {
        let mut r = UdpPragueReceiver::new(2, 1, 7001, 7000);
        let bleached = PacketBuf::udp(1, 2, Ecn::NotEct, 0, 7000, 7001, 1200);
        let (_, fb) = r.on_packet(&bleached, Instant::from_millis(30)).unwrap();
        assert_eq!(fb.not_ect_packets, 1);
        assert_eq!(fb.ce_packets, 0);
    }

    #[test]
    fn bleached_majority_trips_udp_fallback() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        s.enable_fallback();
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        for _ in 0..5 {
            fb.packets += 25;
            fb.not_ect_packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(25);
        }
        assert!(s.fallen_back());
        let evs = s.take_events();
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0],
            CcEvent::ClassicFallback {
                reason: FallbackReason::Bleached,
                ..
            }
        ));
        assert!(s.take_events().is_empty(), "event drains once");
    }

    #[test]
    fn classic_delay_ce_trips_udp_fallback_and_halves_rate() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        s.enable_fallback();
        // Seed the srtt floor, then inflate it past the classic
        // threshold: the detector needs both CE and standing delay.
        s.srtt = Some(Duration::from_millis(20));
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        fb.packets += 25;
        s.on_feedback(&fb, t);
        s.srtt = Some(Duration::from_millis(60));
        for _ in 0..4 {
            t += Duration::from_millis(50);
            fb.packets += 25;
            fb.ce_packets += 3;
            s.on_feedback(&fb, t);
        }
        assert!(s.fallen_back());
        assert!(matches!(
            s.take_events()[0],
            CcEvent::ClassicFallback {
                reason: FallbackReason::ClassicEcn,
                ..
            }
        ));
        // Post-fallback CE epochs halve the rate outright.
        let before = s.rate();
        t += Duration::from_millis(50);
        fb.packets += 25;
        fb.ce_packets += 3;
        s.on_feedback(&fb, t);
        assert!((s.rate() / before - 0.5).abs() < 1e-9, "classic halving");
    }

    #[test]
    fn handover_to_longer_rtt_cell_does_not_trip_fallback() {
        // Regression: the detector used a *lifetime* min_srtt, so after
        // a handover 20 ms → 60 ms the clean new path read as 40 ms of
        // standing queue and CE marks on it tripped classic fallback.
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        s.enable_fallback();
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        // A second on the short-RTT cell establishes the 20 ms floor.
        s.srtt = Some(Duration::from_millis(20));
        for _ in 0..40 {
            fb.packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(25);
        }
        // Handover: the serving cell's path floor is now 60 ms. Clean
        // (unmarked) epochs ride out the windowed-min expiry.
        s.srtt = Some(Duration::from_millis(60));
        while t < Instant::from_secs(12) {
            fb.packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(25);
        }
        // L4S marking on the new cell at its own floor: srtt sits at
        // 60 ms, the windowed min has forgotten 20 ms, queue reads 0.
        for _ in 0..10 {
            fb.packets += 25;
            fb.ce_packets += 3;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(25);
        }
        assert!(
            !s.fallen_back(),
            "clean L4S path after handover must not read as classic"
        );
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn vanilla_udp_sender_never_falls_back() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        for _ in 0..20 {
            fb.packets += 25;
            fb.not_ect_packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(25);
        }
        assert!(!s.fallen_back());
        assert!(s.take_events().is_empty());
    }
}

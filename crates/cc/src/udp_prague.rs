//! UDP Prague: the L4S team's rate-based Prague variant for interactive
//! applications (paper §6.1, Fig. 13). The receiver feeds back cumulative
//! packet/CE counts in the UDP payload; the sender runs the DCTCP-style
//! `α` update on a paced rate instead of a window.

use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Duration, Instant};

/// EWMA gain for α.
const ALPHA_GAIN: f64 = 1.0 / 16.0;
/// Feedback cadence at the receiver.
const FEEDBACK_INTERVAL: Duration = Duration::from_millis(25);
/// Payload bytes per datagram.
const MTU_PAYLOAD: usize = 1200;

/// Cumulative feedback counters (carried in the UDP payload uplink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PragueFeedback {
    /// Datagrams received.
    pub packets: u64,
    /// Datagrams received CE-marked.
    pub ce_packets: u64,
}

/// UDP Prague sender: rate-paced ECT(1) datagrams.
#[derive(Debug)]
pub struct UdpPragueSender {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    /// Paced send rate in bytes/sec.
    rate: f64,
    min_rate: f64,
    max_rate: f64,
    alpha: f64,
    last_fb: PragueFeedback,
    last_reduction: Instant,
    next_send_at: Instant,
    ident: u16,
    /// Estimated feedback round-trip (reduction gate).
    rtt_gate: Duration,
    /// Datagrams sent so far.
    n_sent: u64,
    /// Sparse (count, sent_at) probes for RTT estimation.
    probe_log: std::collections::VecDeque<(u64, Instant)>,
    /// Smoothed RTT from feedback arrival.
    srtt: Option<Duration>,
}

impl UdpPragueSender {
    /// Create a sender with rate bounds in bytes/sec.
    pub fn new(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        min_rate: f64,
        start_rate: f64,
        max_rate: f64,
    ) -> UdpPragueSender {
        UdpPragueSender {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            rate: start_rate,
            min_rate,
            max_rate,
            alpha: 0.0,
            last_fb: PragueFeedback::default(),
            last_reduction: Instant::ZERO,
            next_send_at: Instant::ZERO,
            ident: 0,
            rtt_gate: Duration::from_millis(40),
            n_sent: 0,
            probe_log: std::collections::VecDeque::new(),
            srtt: None,
        }
    }

    /// Smoothed RTT observed via feedback, if any.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Current paced rate in bytes/sec.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The CE-fraction EWMA (diagnostics, mirrors Prague's α).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Stop sending (flow teardown).
    pub fn stop(&mut self) {
        self.next_send_at = Instant::MAX;
    }

    /// Emit datagrams due under the paced schedule.
    pub fn poll(&mut self, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`UdpPragueSender::poll`]: datagrams are
    /// appended to `out` (the per-pacing-tick hot path).
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        let mut emitted = 0;
        while now >= self.next_send_at {
            self.ident = self.ident.wrapping_add(1);
            out.push(PacketBuf::udp(
                self.src_ip,
                self.dst_ip,
                Ecn::Ect1,
                self.ident,
                self.src_port,
                self.dst_port,
                MTU_PAYLOAD,
            ));
            let gap = Duration::from_secs_f64(MTU_PAYLOAD as f64 / self.rate.max(1.0));
            self.next_send_at = self.next_send_at.max(now) + gap;
            self.n_sent += 1;
            // Sparse RTT probes: one every 16 datagrams.
            if self.n_sent % 16 == 1 {
                self.probe_log.push_back((self.n_sent, now));
                if self.probe_log.len() > 256 {
                    self.probe_log.pop_front();
                }
            }
            emitted += 1;
            if emitted >= 64 {
                break; // bound burst size after long idle gaps
            }
        }
    }

    /// When the pacer next releases a datagram.
    pub fn next_activity(&self) -> Instant {
        self.next_send_at
    }

    /// Apply one feedback report.
    pub fn on_feedback(&mut self, fb: &PragueFeedback, now: Instant) {
        // RTT from the sparse probe log.
        while let Some(&(count, sent)) = self.probe_log.front() {
            if count > fb.packets {
                break;
            }
            self.probe_log.pop_front();
            let rtt = now.saturating_since(sent);
            self.srtt = Some(match self.srtt {
                None => rtt,
                Some(s) => Duration::from_secs_f64(
                    0.875 * s.as_secs_f64() + 0.125 * rtt.as_secs_f64(),
                ),
            });
        }
        let pkts = fb.packets.saturating_sub(self.last_fb.packets);
        let ce = fb.ce_packets.saturating_sub(self.last_fb.ce_packets);
        self.last_fb = *fb;
        if pkts == 0 {
            return;
        }
        let frac = ce as f64 / pkts as f64;
        self.alpha += ALPHA_GAIN * (frac - self.alpha);
        if ce > 0 && now.saturating_since(self.last_reduction) > self.rtt_gate {
            self.rate *= 1.0 - self.alpha / 2.0;
            self.last_reduction = now;
        } else if ce == 0 {
            // Additive increase: one MTU per feedback interval.
            self.rate += MTU_PAYLOAD as f64 / FEEDBACK_INTERVAL.as_secs_f64() * 0.025;
        }
        self.rate = self.rate.clamp(self.min_rate, self.max_rate);
    }
}

/// UDP Prague receiver: counts datagrams and CE marks, reports every
/// [`FEEDBACK_INTERVAL`].
#[derive(Debug)]
pub struct UdpPragueReceiver {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    state: PragueFeedback,
    last_fb_at: Instant,
    /// Unreported state exists.
    dirty: bool,
    ident: u16,
    /// Total payload bytes received (diagnostics).
    pub received_bytes: u64,
}

impl UdpPragueReceiver {
    /// Create a receiver mirroring the sender's addressing.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> UdpPragueReceiver {
        UdpPragueReceiver {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            state: PragueFeedback::default(),
            last_fb_at: Instant::ZERO,
            dirty: false,
            ident: 0,
            received_bytes: 0,
        }
    }

    fn emit_feedback(&mut self, now: Instant) -> (PacketBuf, PragueFeedback) {
        self.last_fb_at = now;
        self.dirty = false;
        self.ident = self.ident.wrapping_add(1);
        let fb_pkt = PacketBuf::udp(
            self.src_ip,
            self.dst_ip,
            Ecn::NotEct,
            self.ident,
            self.src_port,
            self.dst_port,
            32,
        );
        (fb_pkt, self.state)
    }

    /// Timer poll: flush a report suppressed by the prohibit interval
    /// (prevents the rate-paced sender from stalling when the last
    /// datagram of a burst arrives inside the interval).
    pub fn poll(&mut self, now: Instant) -> Option<(PacketBuf, PragueFeedback)> {
        if self.dirty && now.saturating_since(self.last_fb_at) >= FEEDBACK_INTERVAL {
            Some(self.emit_feedback(now))
        } else {
            None
        }
    }

    /// Ingest a datagram; maybe emit (feedback packet, feedback data).
    pub fn on_packet(
        &mut self,
        pkt: &PacketBuf,
        now: Instant,
    ) -> Option<(PacketBuf, PragueFeedback)> {
        self.state.packets += 1;
        self.received_bytes += pkt.payload_len() as u64;
        if pkt.ecn() == Ecn::Ce {
            self.state.ce_packets += 1;
        }
        self.dirty = true;
        if now.saturating_since(self.last_fb_at) < FEEDBACK_INTERVAL {
            return None;
        }
        Some(self.emit_feedback(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_respects_rate() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e5, 1.2e6, 1e7);
        // 1.2 MB/s at 1200 B = 1000 pkt/s; over 100 ms expect ~100.
        let mut n = 0;
        for ms in 0..100u64 {
            n += s.poll(Instant::from_millis(ms)).len();
        }
        assert!((90..=110).contains(&n), "sent {n}");
    }

    #[test]
    fn marks_reduce_rate_unmarked_grows() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e4, 1e6, 1e8);
        let mut fb = PragueFeedback::default();
        let mut t = Instant::ZERO;
        // Marked epochs.
        for _ in 0..50 {
            fb.packets += 25;
            fb.ce_packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(50);
        }
        let low = s.rate();
        assert!(low < 1e6, "rate must fall: {low}");
        assert!(s.alpha() > 0.5);
        // Unmarked epochs recover.
        for _ in 0..200 {
            fb.packets += 25;
            s.on_feedback(&fb, t);
            t += Duration::from_millis(50);
        }
        assert!(s.rate() > low, "rate must grow back");
    }

    #[test]
    fn receiver_counts_and_paces() {
        let mut r = UdpPragueReceiver::new(2, 1, 7001, 7000);
        let mut ce = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 7000, 7001, 1200);
        ce.set_ecn(Ecn::Ce);
        let ok = PacketBuf::udp(1, 2, Ecn::Ect1, 0, 7000, 7001, 1200);
        assert!(r.on_packet(&ok, Instant::from_millis(30)).is_some());
        assert!(r.on_packet(&ce, Instant::from_millis(31)).is_none());
        let (_, fb) = r.on_packet(&ok, Instant::from_millis(60)).unwrap();
        assert_eq!(fb.packets, 3);
        assert_eq!(fb.ce_packets, 1);
        assert_eq!(r.received_bytes, 3 * 1200);
    }

    #[test]
    fn burst_after_idle_is_bounded() {
        let mut s = UdpPragueSender::new(1, 2, 7000, 7001, 1e5, 1e7, 1e8);
        // A long gap would owe thousands of packets; the burst cap holds.
        let pkts = s.poll(Instant::from_secs(5));
        assert!(pkts.len() <= 64);
    }
}

//! BBR v1 (Cardwell et al., 2016): model-based congestion control that
//! probes bottleneck bandwidth and min-RTT, ignores packet loss and ECN.
//! The paper's Appendix B observes BBR's RTT/throughput barely move with
//! L4Span — because it never reacts to the marks — and our implementation
//! reproduces exactly that obliviousness.

use l4span_sim::{Duration, Instant};

use crate::cc::{AckSample, CongestionControl, EcnMode};

/// Startup/drain pacing gain: 2/ln2.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBW gain cycle.
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Rounds the max-bw filter remembers.
const BW_WINDOW_ROUNDS: u64 = 10;
/// min-RTT validity horizon.
const RTPROP_WINDOW: Duration = Duration::from_secs(10);
/// ProbeRTT dwell time.
const PROBE_RTT_TIME: Duration = Duration::from_millis(200);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// BBR v1 congestion control.
#[derive(Debug)]
pub struct Bbr {
    mss: usize,
    state: State,
    /// Per-round bandwidth maxima within the filter window, at most one
    /// entry per round (ascending round order). Only the windowed max is
    /// ever read, and max-of-per-round-maxes equals max-of-all-samples,
    /// so collapsing each round keeps `btl_bw` bit-identical while
    /// bounding the vector at `BW_WINDOW_ROUNDS + 1` entries — the
    /// per-ACK push/retain and the per-send `btl_bw` scan both stop
    /// being O(ACKs-per-window).
    bw_samples: Vec<(u64, f64)>,
    rtprop: Duration,
    rtprop_stamp: Instant,
    round: u64,
    next_round_at: Instant,
    cycle_idx: usize,
    cycle_stamp: Instant,
    full_bw: f64,
    full_bw_count: u8,
    probe_rtt_done_at: Option<Instant>,
    last_probe_rtt: Instant,
}

impl Bbr {
    /// New BBR controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Bbr {
        Bbr {
            mss,
            state: State::Startup,
            bw_samples: Vec::new(),
            rtprop: Duration::MAX,
            rtprop_stamp: Instant::ZERO,
            round: 0,
            next_round_at: Instant::ZERO,
            cycle_idx: 0,
            cycle_stamp: Instant::ZERO,
            full_bw: 0.0,
            full_bw_count: 0,
            probe_rtt_done_at: None,
            last_probe_rtt: Instant::ZERO,
        }
    }

    /// Windowed-max bottleneck bandwidth estimate (bytes/sec).
    pub fn btl_bw(&self) -> f64 {
        self.bw_samples
            .iter()
            .map(|&(_, b)| b)
            .fold(0.0, f64::max)
    }

    /// Current min-RTT estimate.
    pub fn rtprop(&self) -> Duration {
        self.rtprop
    }

    fn bdp_bytes(&self) -> f64 {
        if self.rtprop == Duration::MAX {
            return (10 * self.mss) as f64;
        }
        self.btl_bw() * self.rtprop.as_secs_f64()
    }

    fn pacing_gain(&self) -> f64 {
        match self.state {
            State::Startup => STARTUP_GAIN,
            State::Drain => 1.0 / STARTUP_GAIN,
            State::ProbeBw => CYCLE[self.cycle_idx],
            State::ProbeRtt => 1.0,
        }
    }

    fn cwnd_gain(&self) -> f64 {
        match self.state {
            State::Startup => STARTUP_GAIN,
            State::Drain => STARTUP_GAIN,
            State::ProbeBw => 2.0,
            State::ProbeRtt => 1.0,
        }
    }

    fn advance_state(&mut self, ack: &AckSample, round_advanced: bool) {
        let now = ack.now;
        match self.state {
            State::Startup => {
                // Full pipe: bw grew <25% across three consecutive rounds.
                let bw = self.btl_bw();
                if bw > self.full_bw * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_count = 0;
                } else if round_advanced {
                    self.full_bw_count += 1;
                    if self.full_bw_count >= 3 {
                        self.state = State::Drain;
                    }
                }
            }
            State::Drain => {
                if (ack.inflight as f64) <= self.bdp_bytes() {
                    self.state = State::ProbeBw;
                    self.cycle_idx = 2; // start in a cruise phase
                    self.cycle_stamp = now;
                }
            }
            State::ProbeBw => {
                let phase_len = self.rtprop.min(Duration::from_millis(200));
                if now.saturating_since(self.cycle_stamp) > phase_len {
                    self.cycle_idx = (self.cycle_idx + 1) % CYCLE.len();
                    self.cycle_stamp = now;
                }
                // Periodic ProbeRTT.
                if now.saturating_since(self.last_probe_rtt) > RTPROP_WINDOW
                    && now.saturating_since(self.rtprop_stamp) > RTPROP_WINDOW
                {
                    self.state = State::ProbeRtt;
                    self.probe_rtt_done_at = Some(now + PROBE_RTT_TIME);
                }
            }
            State::ProbeRtt => {
                if let Some(done) = self.probe_rtt_done_at {
                    if now >= done {
                        self.state = State::ProbeBw;
                        self.cycle_stamp = now;
                        self.last_probe_rtt = now;
                        self.probe_rtt_done_at = None;
                    }
                }
            }
        }
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, ack: &AckSample) {
        let round_advanced = ack.now >= self.next_round_at;
        if round_advanced {
            self.round += 1;
            self.next_round_at = ack.now + ack.srtt;
        }
        if let Some(rtt) = ack.rtt {
            if rtt <= self.rtprop || ack.now.saturating_since(self.rtprop_stamp) > RTPROP_WINDOW
            {
                self.rtprop = rtt;
                self.rtprop_stamp = ack.now;
            }
        }
        if let Some(bw) = ack.delivery_rate {
            // App-limited samples may only raise the estimate.
            if !ack.app_limited || bw > self.btl_bw() {
                match self.bw_samples.last_mut() {
                    Some((r, max)) if *r == self.round => *max = max.max(bw),
                    _ => self.bw_samples.push((self.round, bw)),
                }
            }
        }
        let min_round = self.round.saturating_sub(BW_WINDOW_ROUNDS);
        self.bw_samples.retain(|&(r, _)| r >= min_round);
        self.advance_state(ack, round_advanced);
    }

    fn on_loss(&mut self, _now: Instant) {
        // BBRv1 deliberately does not react to individual losses.
    }

    fn on_rto(&mut self, _now: Instant) {
        // Conservative restart, as Linux BBR does on RTO.
        self.full_bw = 0.0;
        self.full_bw_count = 0;
    }

    fn cwnd(&self) -> usize {
        if self.state == State::ProbeRtt {
            return 4 * self.mss;
        }
        ((self.cwnd_gain() * self.bdp_bytes()) as usize).max(4 * self.mss)
    }

    fn pacing_rate(&self) -> Option<f64> {
        let bw = self.btl_bw();
        if bw <= 0.0 {
            None // no estimate yet: send ack-clocked
        } else {
            Some(self.pacing_gain() * bw)
        }
    }

    fn ecn_mode(&self) -> EcnMode {
        // ECT(0) so marking infrastructure treats it as classic; BBRv1
        // simply never reads the echo.
        EcnMode::Classic
    }

    fn name(&self) -> &'static str {
        "bbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, bytes: usize, rtt_ms: u64, bw: f64, inflight: usize) -> AckSample {
        AckSample {
            now: Instant::from_millis(now_ms),
            newly_acked: bytes,
            ce_bytes: 0,
            ect_bytes: None,
            ece: false,
            rtt: Some(Duration::from_millis(rtt_ms)),
            srtt: Duration::from_millis(rtt_ms),
            inflight,
            delivery_rate: Some(bw),
            app_limited: false,
        }
    }

    #[test]
    fn tracks_max_bw_and_min_rtt() {
        let mut b = Bbr::new(1000);
        b.on_ack(&ack(10, 1000, 50, 1e6, 10_000));
        b.on_ack(&ack(20, 1000, 40, 2e6, 10_000));
        b.on_ack(&ack(30, 1000, 45, 1.5e6, 10_000));
        assert_eq!(b.btl_bw(), 2e6);
        assert_eq!(b.rtprop(), Duration::from_millis(40));
    }

    #[test]
    fn startup_exits_when_bw_plateaus() {
        let mut b = Bbr::new(1000);
        let mut t = 0;
        for _ in 0..20 {
            b.on_ack(&ack(t, 10_000, 40, 5e6, 50_000));
            t += 50;
        }
        assert_ne!(b.state, State::Startup, "plateaued bw must exit startup");
    }

    #[test]
    fn cwnd_tracks_bdp() {
        let mut b = Bbr::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            b.on_ack(&ack(t, 10_000, 40, 5e6, 10_000));
            t += 50;
        }
        // In ProbeBW: cwnd = 2 × BDP = 2 × 5e6 × 0.04 = 400 kB.
        let bdp = 5e6 * 0.04;
        assert!(b.state == State::ProbeBw || b.state == State::Drain);
        assert!((b.cwnd() as f64) >= bdp, "cwnd {} < bdp {bdp}", b.cwnd());
    }

    #[test]
    fn ignores_loss_and_ce() {
        let mut b = Bbr::new(1000);
        let mut t = 0;
        for _ in 0..30 {
            b.on_ack(&ack(t, 10_000, 40, 5e6, 10_000));
            t += 50;
        }
        let w = b.cwnd();
        b.on_loss(Instant::from_millis(t));
        assert_eq!(b.cwnd(), w, "BBRv1 must not react to loss");
        let mut marked = ack(t + 10, 10_000, 40, 5e6, 10_000);
        marked.ce_bytes = 10_000;
        marked.ece = true;
        b.on_ack(&marked);
        assert!(b.cwnd() >= w * 9 / 10, "BBRv1 must not react to CE");
    }

    #[test]
    fn pacing_rate_follows_gain() {
        let mut b = Bbr::new(1000);
        assert!(b.pacing_rate().is_none(), "no estimate yet");
        b.on_ack(&ack(10, 1000, 40, 1e6, 10_000));
        let r = b.pacing_rate().unwrap();
        assert!((r - STARTUP_GAIN * 1e6).abs() < 1.0);
    }

    #[test]
    fn old_bw_samples_age_out() {
        let mut b = Bbr::new(1000);
        b.on_ack(&ack(0, 1000, 40, 9e6, 1000));
        // Many rounds later the old peak must be forgotten.
        let mut t = 50;
        for _ in 0..15 {
            b.on_ack(&ack(t, 1000, 40, 1e6, 1000));
            t += 50;
        }
        assert_eq!(b.btl_bw(), 1e6);
    }
}

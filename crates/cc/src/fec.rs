//! Sliding-window FEC/ARQ media endpoint: the loss-*repairing* sender
//! the L4Span evaluation lacks (every other transport here *defers*
//! under congestion; this one spends rate on redundancy instead).
//!
//! The wire protocol is systematic sliding-window FEC in the RLNC
//! style: source packets go out unmodified (one sequence number each),
//! and after every [`REPAIR_EVERY`] source packets the sender emits one
//! repair packet covering the last [`FEC_WINDOW`] source sequences — a
//! parity symbol that can reconstruct exactly one missing packet of its
//! coverage window. Deeper gaps fall back to NACK-driven ARQ: the
//! receiver NACKs sequences the repair stream could not recover, and
//! the sender retransmits them *unless the frame deadline has passed*,
//! in which case the sequence is abandoned (media frames are useless
//! late — RFC 8854's rationale for bounding retransmission).
//!
//! Rate control is NADA (RFC 8698, [`NadaCore`]) — one core per bonded
//! leg, coupled RFC 8382-style when the harness' shared-bottleneck
//! detector says both legs sit behind the same queue.
//!
//! The classification bookkeeping lives in PacketBuf-free cores
//! ([`FecSenderCore`], [`FecReceiverCore`]) so the conservation
//! property — every offered sequence ends up **exactly one** of
//! delivered / repaired / abandoned, and nothing is delivered twice —
//! is directly testable (the `fec_conservation` proptest).

use std::collections::VecDeque;

use crate::nada::NadaCore;
use l4span_net::{Ecn, PacketBuf};
use l4span_sim::{Duration, Instant};

/// Source packets between two repair packets (25% repair overhead).
pub const REPAIR_EVERY: u64 = 4;
/// Source sequences one repair packet covers (and can repair one of).
pub const FEC_WINDOW: u64 = 16;
/// Payload bytes of a source packet (fixed-size symbols).
pub const MTU_PAYLOAD: usize = 1200;
/// Payload bytes of a repair packet — also the wire discriminator
/// separating repair from source packets at the receiver.
pub const REPAIR_PAYLOAD: usize = 1196;
/// Receiver feedback cadence.
const FEEDBACK_INTERVAL: Duration = Duration::from_millis(25);
/// How long a gap must stand before it is NACKed (reorder grace).
const NACK_GRACE: Duration = Duration::from_millis(2);
/// Minimum spacing between NACKs of the same sequence.
const RENACK_INTERVAL: Duration = Duration::from_millis(25);
/// Default frame deadline: past this, repairs are pointless.
pub const DEFAULT_DEADLINE: Duration = Duration::from_millis(100);
/// Packets emitted per poll at most (post-idle burst bound).
const BURST_CAP: usize = 128;

/// What one arriving source/retransmitted packet amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// First sight of this sequence: delivered to the app.
    Fresh,
    /// Already delivered/repaired (an ARQ copy raced the original) or
    /// already abandoned: dropped, **not** re-delivered.
    Duplicate,
}

/// The sender's verdict on one NACKed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackVerdict {
    /// Still inside the frame deadline: retransmit.
    Retx,
    /// Past the deadline (or aged out of the ARQ ledger): abandoned.
    Abandon,
}

/// Sender-side codec state: sequence assignment, the repair cadence,
/// and the deadline-aware ARQ ledger.
#[derive(Debug)]
pub struct FecSenderCore {
    next_seq: u64,
    since_repair: u64,
    /// `(seq, capture time)` of in-ledger sources, oldest first.
    ledger: VecDeque<(u64, Instant)>,
    deadline: Duration,
    /// Source sequences offered so far.
    pub offered: u64,
    /// ARQ retransmissions issued.
    pub retx: u64,
    /// NACKed sequences given up on (deadline passed).
    pub abandoned: u64,
    /// Repair packets emitted.
    pub repairs: u64,
}

impl FecSenderCore {
    /// An empty codec with the given frame deadline.
    pub fn new(deadline: Duration) -> FecSenderCore {
        FecSenderCore {
            next_seq: 0,
            since_repair: 0,
            ledger: VecDeque::new(),
            deadline,
            offered: 0,
            retx: 0,
            abandoned: 0,
            repairs: 0,
        }
    }

    /// Assign the next source sequence, captured at `now`.
    pub fn source(&mut self, now: Instant) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.offered += 1;
        self.since_repair += 1;
        self.ledger.push_back((seq, now));
        // Ledger entries past the deadline can never be retransmitted
        // again — pruning here bounds the ledger to one deadline's
        // worth of sources.
        while self
            .ledger
            .front()
            .is_some_and(|&(_, cap)| now.saturating_since(cap) > self.deadline)
        {
            self.ledger.pop_front();
        }
        seq
    }

    /// After every [`REPAIR_EVERY`] sources: the coverage `[base, end)`
    /// of the repair packet now due, if one is.
    pub fn repair_due(&mut self) -> Option<(u64, u64)> {
        if self.since_repair < REPAIR_EVERY {
            return None;
        }
        self.since_repair = 0;
        self.repairs += 1;
        let end = self.next_seq;
        Some((end.saturating_sub(FEC_WINDOW), end))
    }

    /// Judge one NACK: retransmit while the frame deadline holds,
    /// abandon after.
    pub fn on_nack(&mut self, seq: u64, now: Instant) -> NackVerdict {
        let capture = self
            .ledger
            .binary_search_by_key(&seq, |&(s, _)| s)
            .ok()
            .map(|i| self.ledger[i].1);
        match capture {
            Some(cap) if now.saturating_since(cap) <= self.deadline => {
                self.retx += 1;
                NackVerdict::Retx
            }
            _ => {
                self.abandoned += 1;
                NackVerdict::Abandon
            }
        }
    }
}

/// Per-sequence receiver state inside the classification window.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Missing {
        detected: Instant,
        last_nack: Option<Instant>,
    },
    Delivered,
    Repaired,
    Abandoned,
}

/// Receiver-side codec state: gap tracking, single-loss repair,
/// NACK scheduling, and the authoritative delivered / repaired /
/// abandoned classification (each sequence counted exactly once).
#[derive(Debug)]
pub struct FecReceiverCore {
    /// Every sequence below `base` is classified.
    base: u64,
    /// States of `[base, base + slots.len())`.
    slots: VecDeque<Slot>,
    /// Give up on a missing sequence after this long (the receiver's
    /// view of the sender's frame deadline, plus NACK slack).
    expiry: Duration,
    /// Sequences delivered to the app directly (source or ARQ copy).
    pub delivered: u64,
    /// Sequences reconstructed from a repair packet.
    pub repaired: u64,
    /// Sequences given up on.
    pub abandoned: u64,
    /// Copies dropped by the dedup gate.
    pub duplicates: u64,
    /// Repair packets that arrived with nothing to do.
    pub repairs_unused: u64,
}

impl FecReceiverCore {
    /// An empty receiver whose patience matches the sender `deadline`.
    pub fn new(deadline: Duration) -> FecReceiverCore {
        FecReceiverCore {
            base: 0,
            slots: VecDeque::new(),
            expiry: deadline + RENACK_INTERVAL,
            delivered: 0,
            repaired: 0,
            abandoned: 0,
            duplicates: 0,
            repairs_unused: 0,
        }
    }

    /// Highest sequence the receiver knows exists (exclusive).
    pub fn high(&self) -> u64 {
        self.base + self.slots.len() as u64
    }

    fn extend_to(&mut self, end: u64, now: Instant) {
        while self.high() < end {
            self.slots.push_back(Slot::Missing {
                detected: now,
                last_nack: None,
            });
        }
    }

    fn classify(&mut self, seq: u64, to: Slot) {
        let i = (seq - self.base) as usize;
        match to {
            Slot::Delivered => self.delivered += 1,
            Slot::Repaired => self.repaired += 1,
            Slot::Abandoned => self.abandoned += 1,
            Slot::Missing { .. } => unreachable!("classify() only finalizes"),
        }
        self.slots[i] = to;
        // Pop the classified prefix: `base` only ever moves forward.
        while matches!(
            self.slots.front(),
            Some(Slot::Delivered | Slot::Repaired | Slot::Abandoned)
        ) {
            self.slots.pop_front();
            self.base += 1;
        }
    }

    /// One source (or retransmitted) packet arrived.
    pub fn on_source(&mut self, seq: u64, now: Instant) -> Arrival {
        if seq < self.base {
            self.duplicates += 1;
            return Arrival::Duplicate;
        }
        self.extend_to(seq + 1, now);
        match self.slots[(seq - self.base) as usize] {
            Slot::Missing { .. } => {
                self.classify(seq, Slot::Delivered);
                Arrival::Fresh
            }
            _ => {
                self.duplicates += 1;
                Arrival::Duplicate
            }
        }
    }

    /// One repair packet covering `[cov_base, cov_end)` arrived: it
    /// reconstructs a single missing sequence, if exactly one is
    /// missing. It also *announces* `cov_end` — sequences the receiver
    /// never saw become visible (and NACKable) gaps.
    pub fn on_repair(&mut self, cov_base: u64, cov_end: u64, now: Instant) -> Option<u64> {
        self.extend_to(cov_end, now);
        let lo = cov_base.max(self.base);
        let mut missing = None;
        let mut n_missing = 0u32;
        for seq in lo..cov_end {
            if matches!(self.slots[(seq - self.base) as usize], Slot::Missing { .. }) {
                n_missing += 1;
                missing = Some(seq);
            }
        }
        if n_missing == 1 {
            let seq = missing.expect("counted one");
            self.classify(seq, Slot::Repaired);
            Some(seq)
        } else {
            self.repairs_unused += 1;
            None
        }
    }

    /// Collect the sequences due a (re-)NACK, oldest first, and expire
    /// gaps that outlived the deadline into `Abandoned`.
    pub fn poll_nacks(&mut self, now: Instant, out: &mut Vec<u64>) {
        let mut expired: Vec<u64> = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let seq = self.base + i as u64;
            if let Slot::Missing { detected, last_nack } = slot {
                if now.saturating_since(*detected) > self.expiry {
                    expired.push(seq);
                } else if now.saturating_since(*detected) >= NACK_GRACE
                    && last_nack.is_none_or(|at| now.saturating_since(at) >= RENACK_INTERVAL)
                {
                    *last_nack = Some(now);
                    out.push(seq);
                }
            }
        }
        for seq in expired {
            self.classify(seq, Slot::Abandoned);
        }
    }

    /// Declare the stream over: `offered` sequences exist in total.
    /// Whatever is still missing is abandoned — after this, the
    /// delivered + repaired + abandoned partition is complete.
    pub fn close(&mut self, offered: u64, now: Instant) {
        self.extend_to(offered, now);
        // `classify` pops the classified prefix, so a non-empty deque
        // always has a `Missing` front here.
        while !self.slots.is_empty() {
            let seq = self.base;
            self.classify(seq, Slot::Abandoned);
        }
    }
}

/// Cumulative per-leg receive counters carried in feedback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FecLegStats {
    /// Packets received on this leg.
    pub packets: u64,
    /// Of those, CE-marked.
    pub ce_packets: u64,
    /// Of those, arrived Not-ECT (mid-path bleaching evidence).
    pub not_ect_packets: u64,
}

/// One receiver feedback report.
#[derive(Debug, Clone, Default)]
pub struct FecFeedback {
    /// Cumulative per-leg counters (leg 1 stays zero on single-leg
    /// flows).
    pub legs: [FecLegStats; 2],
    /// Sequences to retransmit.
    pub nacks: Vec<u64>,
    /// The harness' shared-bottleneck verdict for bonded flows: `true`
    /// couples the sender's per-leg NADA cores (RFC 8382).
    pub coupled: bool,
}

/// The media sender: frame-paced source packets + sliding-window
/// repair, NACK-driven ARQ, one NADA core per leg.
#[derive(Debug)]
pub struct FecMediaSender {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    core: FecSenderCore,
    legs: Vec<NadaCore>,
    /// Weighted-striping credits (deficit round-robin over leg rates).
    credit: Vec<f64>,
    coupled: bool,
    fps: f64,
    next_frame_at: Instant,
    /// Pending ARQ retransmissions (seq order).
    retx_q: VecDeque<u64>,
    /// Per-leg `(cumulative packets, sent_at)` RTT probes.
    probes: Vec<VecDeque<(u64, Instant)>>,
    sent_on: Vec<u64>,
    last_fb: [FecLegStats; 2],
    srtt: Vec<Option<Duration>>,
}

impl FecMediaSender {
    /// A sender with NADA rate bounds in bytes/sec, `fps` frame
    /// cadence, and `n_legs` bonded legs (1 or 2).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src_ip: u32,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        min_rate: f64,
        start_rate: f64,
        max_rate: f64,
        fps: f64,
        n_legs: usize,
    ) -> FecMediaSender {
        assert!((1..=2).contains(&n_legs), "one or two legs");
        // Independent legs each run a full NADA core; halve the bounds
        // so the *flow's* rate envelope matches the spec regardless of
        // leg count.
        let div = n_legs as f64;
        FecMediaSender {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            core: FecSenderCore::new(DEFAULT_DEADLINE),
            legs: (0..n_legs)
                .map(|_| NadaCore::new(min_rate / div, start_rate / div, max_rate / div))
                .collect(),
            credit: vec![0.0; n_legs],
            coupled: false,
            fps,
            next_frame_at: Instant::ZERO,
            retx_q: VecDeque::new(),
            probes: (0..n_legs).map(|_| VecDeque::new()).collect(),
            sent_on: vec![0; n_legs],
            last_fb: [FecLegStats::default(); 2],
            srtt: vec![None; n_legs],
        }
    }

    /// The flow's total target rate in bytes/sec: the sum of the leg
    /// rates when independent; one flow's worth — the better leg's
    /// rate, split across both — when the legs share a bottleneck.
    pub fn total_rate(&self) -> f64 {
        if self.coupled && self.legs.len() == 2 {
            self.legs[0].rate().max(self.legs[1].rate())
        } else {
            self.legs.iter().map(|l| l.rate()).sum()
        }
    }

    /// Per-leg striping shares (sum to 1).
    fn shares(&self) -> Vec<f64> {
        if self.coupled && self.legs.len() == 2 {
            return vec![0.5, 0.5];
        }
        let total: f64 = self.legs.iter().map(|l| l.rate()).sum();
        self.legs.iter().map(|l| l.rate() / total.max(1.0)).collect()
    }

    /// The codec / ARQ ledger (diagnostics and tests).
    pub fn codec(&self) -> &FecSenderCore {
        &self.core
    }

    /// The RFC 8382 coupling state last echoed by the receiver.
    pub fn coupled(&self) -> bool {
        self.coupled
    }

    /// Smoothed RTT of `leg`, if feedback produced one yet.
    pub fn leg_srtt(&self, leg: usize) -> Option<Duration> {
        self.srtt.get(leg).copied().flatten()
    }

    /// Stop sending (flow teardown).
    pub fn stop(&mut self) {
        self.next_frame_at = Instant::MAX;
        self.retx_q.clear();
    }

    /// When the sender next has something to emit.
    pub fn next_activity(&self) -> Instant {
        if self.retx_q.is_empty() {
            self.next_frame_at
        } else {
            Instant::ZERO
        }
    }

    fn pick_leg(&mut self) -> u8 {
        let shares = self.shares();
        let mut best = 0;
        for i in 1..self.credit.len() {
            if self.credit[i] > self.credit[best] {
                best = i;
            }
        }
        for (c, s) in self.credit.iter_mut().zip(&shares) {
            *c += s;
        }
        self.credit[best] -= 1.0;
        best as u8
    }

    fn push(&mut self, seq_ident: u16, payload: usize, now: Instant, out: &mut Vec<(u8, PacketBuf)>) {
        let leg = self.pick_leg();
        out.push((
            leg,
            PacketBuf::udp(
                self.src_ip,
                self.dst_ip,
                Ecn::Ect1,
                seq_ident,
                self.src_port,
                self.dst_port,
                payload,
            ),
        ));
        let li = leg as usize;
        self.sent_on[li] += 1;
        // Sparse RTT probes, one per 16 datagrams per leg.
        if self.sent_on[li] % 16 == 1 {
            self.probes[li].push_back((self.sent_on[li], now));
            if self.probes[li].len() > 256 {
                self.probes[li].pop_front();
            }
        }
    }

    /// Emit everything due: pending retransmissions first (they race a
    /// deadline), then frames under the NADA rate, with repair packets
    /// on the [`REPAIR_EVERY`] cadence.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<(u8, PacketBuf)>) {
        let mut emitted = 0;
        while let Some(seq) = self.retx_q.pop_front() {
            self.push(seq as u16, MTU_PAYLOAD, now, out);
            emitted += 1;
            if emitted >= BURST_CAP {
                return;
            }
        }
        while now >= self.next_frame_at {
            let frame_bytes = (self.total_rate() / self.fps).max(MTU_PAYLOAD as f64);
            let n_pkts = (frame_bytes / MTU_PAYLOAD as f64).ceil() as usize;
            for _ in 0..n_pkts {
                let seq = self.core.source(now);
                self.push(seq as u16, MTU_PAYLOAD, now, out);
                if let Some((_base, end)) = self.core.repair_due() {
                    // Repair ident = coverage end; the receiver derives
                    // the base from the shared FEC_WINDOW constant.
                    self.push(end as u16, REPAIR_PAYLOAD, now, out);
                }
                emitted += 1;
            }
            self.next_frame_at =
                self.next_frame_at.max(now) + Duration::from_secs_f64(1.0 / self.fps);
            if emitted >= BURST_CAP {
                break;
            }
        }
    }

    /// Apply one receiver feedback report.
    pub fn on_feedback(&mut self, fb: &FecFeedback, now: Instant) {
        self.coupled = fb.coupled && self.legs.len() == 2;
        for li in 0..self.legs.len() {
            let cur = fb.legs[li];
            let prev = self.last_fb[li];
            // Leg RTT from the sparse probe log.
            while let Some(&(count, sent)) = self.probes[li].front() {
                if count > cur.packets {
                    break;
                }
                self.probes[li].pop_front();
                let rtt = now.saturating_since(sent);
                self.srtt[li] = Some(match self.srtt[li] {
                    None => rtt,
                    Some(s) => Duration::from_secs_f64(
                        0.875 * s.as_secs_f64() + 0.125 * rtt.as_secs_f64(),
                    ),
                });
            }
            let pkts = cur.packets.saturating_sub(prev.packets);
            let ce = cur.ce_packets.saturating_sub(prev.ce_packets);
            if pkts > 0 {
                let srtt = self.srtt[li].unwrap_or(Duration::from_millis(40));
                self.legs[li].on_sample(
                    now,
                    pkts * MTU_PAYLOAD as u64,
                    ce * MTU_PAYLOAD as u64,
                    srtt,
                );
            }
            self.last_fb[li] = cur;
        }
        for &seq in &fb.nacks {
            if self.core.on_nack(seq, now) == NackVerdict::Retx {
                self.retx_q.push_back(seq);
            }
        }
    }
}

/// The media receiver (server side): classification, per-leg counters,
/// NACK + coupling feedback.
#[derive(Debug)]
pub struct FecMediaReceiver {
    src_ip: u32,
    dst_ip: u32,
    src_port: u16,
    dst_port: u16,
    core: FecReceiverCore,
    legs: [FecLegStats; 2],
    coupled: bool,
    last_fb_at: Instant,
    dirty: bool,
    fb_ident: u16,
    /// Payload bytes received (diagnostics).
    pub received_bytes: u64,
}

impl FecMediaReceiver {
    /// A receiver mirroring the sender's addressing.
    pub fn new(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> FecMediaReceiver {
        FecMediaReceiver {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            core: FecReceiverCore::new(DEFAULT_DEADLINE),
            legs: [FecLegStats::default(); 2],
            coupled: false,
            last_fb_at: Instant::ZERO,
            dirty: false,
            fb_ident: 0,
            received_bytes: 0,
        }
    }

    /// The classification core (metrics harvest and tests).
    pub fn codec(&self) -> &FecReceiverCore {
        &self.core
    }

    /// Declare the stream over: abandon whatever is still outstanding
    /// so delivered + repaired + abandoned sums to `offered` (see
    /// [`FecReceiverCore::close`]).
    pub fn close(&mut self, offered: u64, now: Instant) {
        self.core.close(offered, now);
    }

    /// Inject the harness' shared-bottleneck verdict; echoed to the
    /// sender in every feedback report.
    pub fn set_coupled(&mut self, coupled: bool) {
        self.coupled = coupled;
    }

    /// Map a wrapped u16 wire ident back onto the u64 sequence space,
    /// relative to the receive high-water mark.
    fn unwrap_seq(&self, ident: u16) -> u64 {
        let reference = self.core.high();
        let delta = i64::from(ident.wrapping_sub(reference as u16) as i16);
        (reference as i64 + delta).max(0) as u64
    }

    fn emit_feedback(&mut self, now: Instant) -> (PacketBuf, FecFeedback) {
        self.last_fb_at = now;
        self.dirty = false;
        self.fb_ident = self.fb_ident.wrapping_add(1);
        let mut fb = FecFeedback {
            legs: self.legs,
            nacks: Vec::new(),
            coupled: self.coupled,
        };
        self.core.poll_nacks(now, &mut fb.nacks);
        let pkt = PacketBuf::udp(
            self.src_ip,
            self.dst_ip,
            Ecn::NotEct,
            self.fb_ident,
            self.src_port,
            self.dst_port,
            40,
        );
        (pkt, fb)
    }

    /// Ingest one datagram that arrived on `leg`; maybe emit feedback.
    pub fn on_packet(
        &mut self,
        pkt: &PacketBuf,
        leg: u8,
        now: Instant,
    ) -> Option<(PacketBuf, FecFeedback)> {
        let stats = &mut self.legs[(leg as usize).min(1)];
        stats.packets += 1;
        match pkt.ecn() {
            Ecn::Ce => stats.ce_packets += 1,
            Ecn::NotEct => stats.not_ect_packets += 1,
            _ => {}
        }
        self.received_bytes += pkt.payload_len() as u64;
        let seq = self.unwrap_seq(pkt.identification());
        if pkt.payload_len() == REPAIR_PAYLOAD {
            self.core.on_repair(seq.saturating_sub(FEC_WINDOW), seq, now);
        } else {
            self.core.on_source(seq, now);
        }
        self.dirty = true;
        if now.saturating_since(self.last_fb_at) < FEEDBACK_INTERVAL {
            return None;
        }
        Some(self.emit_feedback(now))
    }

    /// Timer poll: flush feedback suppressed by the prohibit interval
    /// (keeps NACKs and rate feedback flowing through loss bursts).
    pub fn poll(&mut self, now: Instant) -> Option<(PacketBuf, FecFeedback)> {
        if self.dirty && now.saturating_since(self.last_fb_at) >= FEEDBACK_INTERVAL {
            Some(self.emit_feedback(now))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_cadence_and_coverage() {
        let mut s = FecSenderCore::new(DEFAULT_DEADLINE);
        let t = Instant::ZERO;
        for i in 0..REPAIR_EVERY - 1 {
            s.source(t);
            assert!(s.repair_due().is_none(), "no repair before {i}");
        }
        s.source(t);
        assert_eq!(s.repair_due(), Some((0, REPAIR_EVERY)));
        for _ in 0..FEC_WINDOW {
            s.source(t);
        }
        let (base, end) = loop {
            if let Some(c) = s.repair_due() {
                break c;
            }
            s.source(t);
        };
        assert_eq!(end - base, FEC_WINDOW, "coverage saturates at the window");
    }

    #[test]
    fn single_gap_is_repaired_double_gap_is_nacked() {
        let t = Instant::ZERO;
        let mut r = FecReceiverCore::new(DEFAULT_DEADLINE);
        for seq in [0u64, 1, 3] {
            assert_eq!(r.on_source(seq, t), Arrival::Fresh);
        }
        // One missing (2) in [0, 4): the repair reconstructs it.
        assert_eq!(r.on_repair(0, 4, t), Some(2));
        assert_eq!((r.delivered, r.repaired), (3, 1));

        // Two missing (5, 6) in [4, 8): the repair is useless; both
        // gaps become NACKable after the reorder grace.
        assert_eq!(r.on_source(4, t), Arrival::Fresh);
        assert_eq!(r.on_source(7, t), Arrival::Fresh);
        assert_eq!(r.on_repair(4, 8, t), None);
        let mut nacks = Vec::new();
        r.poll_nacks(t + NACK_GRACE, &mut nacks);
        assert_eq!(nacks, vec![5, 6]);
    }

    #[test]
    fn repair_announces_unseen_tail() {
        let t = Instant::ZERO;
        let mut r = FecReceiverCore::new(DEFAULT_DEADLINE);
        r.on_source(0, t);
        // Sources 1..4 all lost; the repair alone reveals them. Three
        // missing → no repair, but all three become NACKable.
        assert_eq!(r.on_repair(0, 4, t), None);
        let mut nacks = Vec::new();
        r.poll_nacks(t + NACK_GRACE, &mut nacks);
        assert_eq!(nacks, vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_never_deliver_twice() {
        let t = Instant::ZERO;
        let mut r = FecReceiverCore::new(DEFAULT_DEADLINE);
        assert_eq!(r.on_source(0, t), Arrival::Fresh);
        assert_eq!(r.on_source(0, t), Arrival::Duplicate);
        // Repaired, then the ARQ copy shows up late: still a duplicate.
        r.on_source(1, t);
        r.on_source(3, t);
        assert_eq!(r.on_repair(0, 4, t), Some(2));
        assert_eq!(r.on_source(2, t), Arrival::Duplicate);
        assert_eq!(r.delivered + r.repaired, 4);
        assert_eq!(r.duplicates, 2);
    }

    #[test]
    fn nack_respects_deadline_at_sender() {
        let mut s = FecSenderCore::new(DEFAULT_DEADLINE);
        let t0 = Instant::ZERO;
        let seq = s.source(t0);
        assert_eq!(s.on_nack(seq, t0 + Duration::from_millis(50)), NackVerdict::Retx);
        assert_eq!(
            s.on_nack(seq, t0 + DEFAULT_DEADLINE + Duration::from_millis(1)),
            NackVerdict::Abandon
        );
        assert_eq!((s.retx, s.abandoned), (1, 1));
    }

    #[test]
    fn receiver_expires_stale_gaps_to_abandoned() {
        let t = Instant::ZERO;
        let mut r = FecReceiverCore::new(DEFAULT_DEADLINE);
        r.on_source(0, t);
        r.on_source(2, t); // gap at 1
        let late = t + DEFAULT_DEADLINE + RENACK_INTERVAL + Duration::from_millis(1);
        let mut nacks = Vec::new();
        r.poll_nacks(late, &mut nacks);
        assert!(nacks.is_empty(), "expired gaps are not NACKed");
        assert_eq!(r.abandoned, 1);
        assert_eq!(r.delivered, 2);
        // Conservation after close: 3 offered, 3 classified.
        r.close(3, late);
        assert_eq!(r.delivered + r.repaired + r.abandoned, 3);
    }

    #[test]
    fn sender_stripes_by_leg_rates() {
        let mut s = FecMediaSender::new(1, 2, 5008, 5009, 1e4, 2e6, 1e8, 50.0, 2);
        let mut out = Vec::new();
        s.poll_into(Instant::ZERO, &mut out);
        assert!(!out.is_empty());
        // Equal leg rates → alternating stripe, both legs used.
        let on0 = out.iter().filter(|&&(l, _)| l == 0).count();
        let on1 = out.len() - on0;
        assert!(on0 > 0 && on1 > 0, "both legs carry packets: {on0}/{on1}");
        assert!((on0 as i64 - on1 as i64).abs() <= 1, "even split");
    }

    #[test]
    fn feedback_drives_nada_and_arq() {
        let mut s = FecMediaSender::new(1, 2, 5008, 5009, 1e4, 1e6, 1e8, 50.0, 1);
        let mut out = Vec::new();
        s.poll_into(Instant::ZERO, &mut out);
        let sent = out.len() as u64;
        assert!(sent > 0);
        let fb = FecFeedback {
            legs: [
                FecLegStats {
                    packets: sent,
                    ce_packets: 0,
                    not_ect_packets: 0,
                },
                FecLegStats::default(),
            ],
            nacks: vec![0],
            coupled: false,
        };
        s.on_feedback(&fb, Instant::from_millis(30));
        // The NACK of an in-deadline seq queues a retransmission …
        assert_eq!(s.codec().retx, 1);
        out.clear();
        s.poll_into(Instant::from_millis(31), &mut out);
        assert!(
            out.iter().any(|(_, p)| p.identification() == 0),
            "retx of seq 0 goes out"
        );
        // … and a NACK past the deadline is abandoned.
        let mut fb2 = fb.clone();
        fb2.nacks = vec![1];
        s.on_feedback(&fb2, Instant::from_millis(30) + DEFAULT_DEADLINE * 2);
        assert_eq!(s.codec().abandoned, 1);
    }

    #[test]
    fn media_receiver_round_trip_classifies() {
        let mut s = FecMediaSender::new(1, 2, 5008, 5009, 1e4, 1e6, 1e8, 50.0, 1);
        let mut r = FecMediaReceiver::new(2, 1, 5009, 5008);
        let mut out = Vec::new();
        s.poll_into(Instant::ZERO, &mut out);
        let n_src = out
            .iter()
            .filter(|(_, p)| p.payload_len() == MTU_PAYLOAD)
            .count() as u64;
        for (i, (leg, pkt)) in out.drain(..).enumerate() {
            // Drop one source packet mid-frame; the next repair packet
            // covers it as the window's single gap.
            if i == 1 {
                continue;
            }
            r.on_packet(&pkt, leg, Instant::from_millis(1));
        }
        let c = r.codec();
        assert_eq!(c.delivered + c.repaired, n_src);
        assert_eq!(c.repaired, 1);
        // Feedback is emitted and echoes the coupling verdict.
        r.set_coupled(true);
        let (_pkt, fb) = r
            .poll(Instant::from_millis(40))
            .or_else(|| {
                r.on_packet(
                    &PacketBuf::udp(1, 2, Ecn::Ect1, 200, 5008, 5009, MTU_PAYLOAD),
                    0,
                    Instant::from_millis(40),
                )
            })
            .expect("feedback due");
        assert!(fb.coupled);
        assert!(fb.legs[0].packets >= 1);
    }
}

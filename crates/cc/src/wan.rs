//! WAN path segments: fixed propagation delay between the content server
//! and the 5G core.
//!
//! The paper's senders are Azure instances with 38 ms ("east") and 106 ms
//! ("west") uncongested ping times to the RAN (§6.1). A [`WanLink`] is the
//! one-way half of that; queueing on the wired path (Fig. 2's middlebox)
//! is modelled by `l4span_aqm::Router` in the aqm crate.

use l4span_sim::{Duration, Instant};

/// A fixed-delay, loss-free, uncongested WAN segment.
#[derive(Debug, Clone, Copy)]
pub struct WanLink {
    /// One-way propagation delay.
    pub one_way: Duration,
}

impl WanLink {
    /// The paper's "east" Azure sender: 38 ms RTT ⇒ 19 ms one-way.
    pub fn east() -> WanLink {
        WanLink {
            one_way: Duration::from_millis(19),
        }
    }

    /// The paper's "west" Azure sender: 106 ms RTT ⇒ 53 ms one-way.
    pub fn west() -> WanLink {
        WanLink {
            one_way: Duration::from_millis(53),
        }
    }

    /// A local server (Fig. 15's setup rules out WAN delay): 1 ms RTT.
    pub fn local() -> WanLink {
        WanLink {
            one_way: Duration::from_micros(500),
        }
    }

    /// When a packet entering at `now` pops out the far end.
    pub fn arrival(&self, now: Instant) -> Instant {
        now + self.one_way
    }

    /// Round-trip contribution of this segment.
    pub fn rtt(&self) -> Duration {
        self.one_way * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(WanLink::east().rtt(), Duration::from_millis(38));
        assert_eq!(WanLink::west().rtt(), Duration::from_millis(106));
        assert!(WanLink::local().rtt() <= Duration::from_millis(1));
    }

    #[test]
    fn arrival_adds_delay() {
        let l = WanLink::east();
        assert_eq!(
            l.arrival(Instant::from_millis(100)),
            Instant::from_millis(119)
        );
    }
}

//! TCP sender and receiver machinery.
//!
//! The sender is the content server of Fig. 1: it performs the handshake,
//! paces segments under a pluggable [`CongestionControl`], detects loss
//! via three duplicate ACKs and RTO, and reads congestion feedback in
//! either classic-ECN (ECE/CWR) or AccECN (byte counter) form. The
//! receiver is the UE-side kernel: it acknowledges cumulatively, latches
//! ECN-Echo until CWR (RFC 3168 §6.1), or maintains AccECN counters.
//!
//! Simplifications (documented in DESIGN.md): sequence numbers are u64
//! internally and truncated to the 32-bit wire field (flows here move far
//! less than 4 GiB); no SACK (the RLC delivers in order, so cumulative
//! ACKs lose little); receive window is unbounded.
//!
//! **Direction neutrality.** Neither endpoint knows where it sits in
//! the topology: the [`TcpReceiver`] always initiates the connection
//! and the [`TcpSender`] always owns the data bytes, wherever the
//! harness places them. A downlink flow puts the sender at a content
//! server and the receiver at the UE; an **uplink** flow mirrors the
//! `TcpConfig` addressing (`local` = the UE) so the sender lives at the
//! UE feeding the grant-driven uplink queue while the receiver — and
//! its SYN/ACK stream — lives at the server and rides the downlink.
//! `TcpConfig::downlink_tuple` therefore names the *data-direction*
//! five-tuple, whichever physical direction that is.

use std::collections::BTreeMap;

use l4span_net::{
    AccEcnCounters, Ecn, FiveTuple, PacketBuf, Protocol, TcpFlags, TcpHeader,
};
use l4span_sim::{Duration, Instant};

use crate::cc::{AckSample, CcEvent, CongestionControl, EcnMode};

/// Default payload bytes per segment.
pub const DEFAULT_MSS: usize = 1400;
/// Minimum retransmission timeout (Linux-like).
const MIN_RTO: Duration = Duration::from_millis(200);
/// Maximum RTO backoff.
const MAX_RTO: Duration = Duration::from_secs(10);

/// Addressing for one TCP connection (server perspective).
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Server (sender) IP.
    pub local_ip: u32,
    /// Client (receiver / UE) IP.
    pub remote_ip: u32,
    /// Server port.
    pub local_port: u16,
    /// Client port.
    pub remote_port: u16,
    /// Payload bytes per segment.
    pub mss: usize,
    /// Total payload bytes to send; `None` = unlimited (greedy).
    pub app_limit: Option<u64>,
    /// Send-buffer cap on bytes in flight (Linux `tcp_wmem[2]`-style;
    /// iperf3 runs hit this long before cwnd in a bufferbloated RAN).
    pub snd_buf: usize,
}

impl TcpConfig {
    /// A convenient default for scenario builders.
    pub fn new(local_ip: u32, remote_ip: u32, local_port: u16, remote_port: u16) -> TcpConfig {
        TcpConfig {
            local_ip,
            remote_ip,
            local_port,
            remote_port,
            mss: DEFAULT_MSS,
            app_limit: None,
            snd_buf: 4 << 20,
        }
    }

    /// The five-tuple of the downlink (server→client) direction.
    pub fn downlink_tuple(&self) -> FiveTuple {
        FiveTuple {
            src_ip: self.local_ip,
            dst_ip: self.remote_ip,
            src_port: self.local_port,
            dst_port: self.remote_port,
            protocol: Protocol::Tcp,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    Listen,
    SynAckSent,
    Established,
}

#[derive(Debug, Clone, Copy)]
struct SentSeg {
    end: u64,
    sent_at: Instant,
    is_retx: bool,
}

/// The server-side TCP endpoint.
pub struct TcpSender {
    cfg: TcpConfig,
    cc: Box<dyn CongestionControl>,
    state: SenderState,
    snd_nxt: u64,
    snd_una: u64,
    inflight: BTreeMap<u64, SentSeg>,
    bytes_in_flight: usize,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    rto_backoff: u32,
    rto_deadline: Option<Instant>,
    delivered: u64,
    // Classic ECN state.
    cwr_pending: bool,
    ece_gate: Instant,
    // AccECN state.
    acc_last: AccEcnCounters,
    // Pacing.
    next_send_at: Instant,
    ident: u16,
    /// Reusable buffer for the ACK-covered segment sweep, so the
    /// per-ACK hot path allocates nothing at steady state.
    scratch_acked: Vec<u64>,
    /// Application-driven mode: the app may still [`TcpSender::offer`]
    /// more bytes, so a drained `app_limit` does not mean finished.
    app_open: bool,
    /// Count of fast retransmits (diagnostics).
    pub fast_retx: u64,
    /// Count of RTO retransmits (diagnostics).
    pub rto_retx: u64,
}

impl TcpSender {
    /// Create a sender in LISTEN state with the given congestion control.
    pub fn new(cfg: TcpConfig, cc: Box<dyn CongestionControl>) -> TcpSender {
        TcpSender {
            cfg,
            cc,
            state: SenderState::Listen,
            snd_nxt: 0,
            snd_una: 0,
            inflight: BTreeMap::new(),
            bytes_in_flight: 0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            rto_backoff: 0,
            rto_deadline: None,
            delivered: 0,
            cwr_pending: false,
            ece_gate: Instant::ZERO,
            acc_last: AccEcnCounters::default(),
            next_send_at: Instant::ZERO,
            ident: 0,
            scratch_acked: Vec::new(),
            app_open: false,
            fast_retx: 0,
            rto_retx: 0,
        }
    }

    /// Create a sender in application-driven mode: it starts with no
    /// payload to send and the application feeds it incrementally via
    /// [`TcpSender::offer`]. [`TcpSender::finished`] stays `false` until
    /// [`TcpSender::close_app`] declares the stream complete (so a
    /// momentarily drained send buffer between application bursts is not
    /// mistaken for the end of the flow). `cfg.app_limit` is ignored.
    pub fn app_driven(mut cfg: TcpConfig, cc: Box<dyn CongestionControl>) -> TcpSender {
        cfg.app_limit = Some(0);
        let mut s = TcpSender::new(cfg, cc);
        s.app_open = true;
        s
    }

    /// Application-driven mode: make `bytes` more payload available to
    /// the stream. The caller should `poll` afterwards so newly
    /// unblocked segments go out immediately. Returns whether the offer
    /// was accepted: after [`TcpSender::stop`] or
    /// [`TcpSender::close_app`] the stream is sealed and offers are
    /// refused, so a scheduled flow stop quiesces even an application
    /// that keeps ticking.
    pub fn offer(&mut self, bytes: u64) -> bool {
        if !self.app_open {
            return false;
        }
        if let Some(limit) = &mut self.cfg.app_limit {
            *limit += bytes;
        }
        true
    }

    /// Application-driven mode: the application will offer no more
    /// bytes; once everything offered is acked the flow is finished.
    pub fn close_app(&mut self) {
        self.app_open = false;
    }

    /// Total payload bytes the application has made available so far
    /// (`u64::MAX` for a greedy flow).
    pub fn offered(&self) -> u64 {
        self.cfg.app_limit.unwrap_or(u64::MAX)
    }

    /// A smoothed estimate of the rate this connection can currently
    /// sustain, in bit/s: one (send-buffer-capped) window per smoothed
    /// RTT. `None` before the first RTT sample. This is the signal the
    /// harness feeds to application rate-adaptation hooks (a video
    /// encoder tracking its transport).
    pub fn rate_estimate_bps(&self) -> Option<f64> {
        self.srtt.map(|s| {
            (self.cc.cwnd().min(self.cfg.snd_buf)) as f64 * 8.0
                / s.as_secs_f64().max(1e-4)
        })
    }

    /// The congestion controller (for diagnostics).
    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    /// Drain the controller's typed state-transition events (harvested
    /// into the run report).
    pub fn take_cc_events(&mut self) -> Vec<CcEvent> {
        self.cc.take_events()
    }

    /// Smoothed RTT, if measured.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Cumulatively delivered payload bytes.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Bytes currently in flight.
    pub fn inflight_bytes(&self) -> usize {
        self.bytes_in_flight
    }

    /// True once the handshake completed.
    pub fn established(&self) -> bool {
        self.state == SenderState::Established
    }

    /// For app-limited flows: all payload delivered. An
    /// [application-driven](TcpSender::app_driven) sender additionally
    /// requires [`TcpSender::close_app`] — between bursts the stream is
    /// drained but not over.
    pub fn finished(&self) -> bool {
        match self.cfg.app_limit {
            Some(limit) => !self.app_open && self.snd_una >= limit,
            None => false,
        }
    }

    /// Connection config.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Stop generating new data (the flow's staggered end in Fig. 14):
    /// everything already sent still gets retransmitted/acked.
    pub fn stop(&mut self) {
        self.cfg.app_limit = Some(self.snd_nxt);
        self.app_open = false;
    }

    fn next_ident(&mut self) -> u16 {
        self.ident = self.ident.wrapping_add(1);
        self.ident
    }

    fn ecn_codepoint(&self) -> Ecn {
        self.cc.ecn_mode().codepoint()
    }

    fn make_data_segment(&mut self, seq: u64, len: usize, is_retx: bool, now: Instant) -> PacketBuf {
        let mut flags = TcpFlags::new().with(TcpFlags::ACK);
        if self.cwr_pending && self.cc.ecn_mode() == EcnMode::Classic {
            flags.set(TcpFlags::CWR);
            self.cwr_pending = false;
        }
        let hdr = TcpHeader {
            src_port: self.cfg.local_port,
            dst_port: self.cfg.remote_port,
            seq: seq as u32,
            ack: 1, // client's SYN occupies its seq 0
            flags,
            ..TcpHeader::default()
        };
        let ident = self.next_ident();
        let pkt = PacketBuf::tcp(
            self.cfg.local_ip,
            self.cfg.remote_ip,
            self.ecn_codepoint(),
            ident,
            &hdr,
            len,
        );
        let prev = self.inflight.insert(
            seq,
            SentSeg {
                end: seq + len as u64,
                sent_at: now,
                is_retx,
            },
        );
        debug_assert!(prev.is_none(), "segment re-inserted while in flight");
        self.bytes_in_flight += len;
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
        pkt
    }

    /// Pacing rate in bytes/sec: the controller's own if it has one
    /// (BBR), else the Linux-style `2·cwnd/srtt` that smooths ack-clock
    /// bursts — essential over a TDD uplink that batches ACKs into
    /// 2.5 ms clumps (and a Prague *requirement*).
    fn pacing_rate(&self) -> Option<f64> {
        self.cc.pacing_rate().or_else(|| {
            self.srtt
                .map(|s| 2.0 * self.cc.cwnd() as f64 / s.as_secs_f64().max(1e-4))
        })
    }

    /// Emit new data while the window, application limit, and pacer
    /// allow, appending to the caller's buffer (the per-event hot path,
    /// so no allocation here).
    fn emit_data_into(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        if self.state != SenderState::Established {
            return;
        }
        loop {
            let inflight = self.inflight_bytes();
            let cwnd = self.cc.cwnd().min(self.cfg.snd_buf);
            if inflight + self.cfg.mss > cwnd {
                break;
            }
            let len = match self.cfg.app_limit {
                Some(limit) => {
                    if self.snd_nxt >= limit {
                        break;
                    }
                    ((limit - self.snd_nxt) as usize).min(self.cfg.mss)
                }
                None => self.cfg.mss,
            };
            let pacing = self.pacing_rate();
            if pacing.is_some() && now < self.next_send_at {
                break;
            }
            let seq = self.snd_nxt;
            self.snd_nxt += len as u64;
            out.push(self.make_data_segment(seq, len, false, now));
            if let Some(rate) = pacing {
                if rate > 0.0 {
                    let gap = Duration::from_secs_f64(len as f64 / rate);
                    self.next_send_at = self.next_send_at.max(now) + gap;
                }
            }
        }
    }

    /// Handle an uplink packet from the client (SYN or ACK). Returns
    /// packets to transmit now.
    pub fn on_packet(&mut self, pkt: &PacketBuf, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        self.on_packet_into(pkt, now, &mut out);
        out
    }

    /// Allocation-free form of [`TcpSender::on_packet`]: transmissions
    /// are appended to `out`.
    pub fn on_packet_into(&mut self, pkt: &PacketBuf, now: Instant, out: &mut Vec<PacketBuf>) {
        let Some(hdr) = pkt.tcp_header() else {
            return;
        };
        match self.state {
            SenderState::Listen => {
                if hdr.flags.contains(TcpFlags::SYN) {
                    self.state = SenderState::SynAckSent;
                    let mut flags = TcpFlags::new().with(TcpFlags::SYN).with(TcpFlags::ACK);
                    if self.cc.ecn_mode() == EcnMode::Classic {
                        flags.set(TcpFlags::ECE); // RFC 3168 negotiation
                    }
                    let synack = TcpHeader {
                        src_port: self.cfg.local_port,
                        dst_port: self.cfg.remote_port,
                        seq: 0,
                        ack: 1,
                        flags,
                        mss: Some(self.cfg.mss as u16),
                        accecn: (self.cc.ecn_mode() == EcnMode::L4s)
                            .then(AccEcnCounters::default),
                        ..TcpHeader::default()
                    };
                    let ident = self.next_ident();
                    out.push(PacketBuf::tcp(
                        self.cfg.local_ip,
                        self.cfg.remote_ip,
                        Ecn::NotEct, // control packets are not ECT (RFC 3168)
                        ident,
                        &synack,
                        0,
                    ));
                }
            }
            SenderState::SynAckSent => {
                if hdr.flags.contains(TcpFlags::ACK) && !hdr.flags.contains(TcpFlags::SYN) {
                    self.state = SenderState::Established;
                    self.snd_nxt = 0;
                    self.snd_una = 0;
                    self.emit_data_into(now, out);
                }
            }
            SenderState::Established => self.on_ack_into(&hdr, now, out),
        }
    }

    fn on_ack_into(&mut self, hdr: &TcpHeader, now: Instant, out: &mut Vec<PacketBuf>) {
        if !hdr.flags.contains(TcpFlags::ACK) {
            return;
        }
        // Reconstruct the 64-bit ack from the 32-bit field near snd_una.
        let ack = unwrap_seq(hdr.ack, self.snd_una);
        if ack > self.snd_nxt {
            return; // acks data never sent: bogus, drop
        }
        let mut newly_acked = 0u64;
        let mut rtt_sample = None;
        if ack > self.snd_una {
            newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.dupacks = 0;
            // Remove fully-covered segments, collecting their keys into
            // the reusable scratch buffer (borrow rules forbid removing
            // while iterating a BTreeMap range).
            let mut covered = std::mem::take(&mut self.scratch_acked);
            covered.extend(
                self.inflight
                    .range(..ack)
                    .filter(|(_, s)| s.end <= ack)
                    .map(|(&k, _)| k),
            );
            let mut newest: Option<SentSeg> = None;
            for &k in &covered {
                let s = self.inflight.remove(&k).expect("listed");
                self.bytes_in_flight -= (s.end - k) as usize;
                if !s.is_retx {
                    newest = Some(match newest {
                        Some(n) if n.sent_at >= s.sent_at => n,
                        _ => s,
                    });
                }
            }
            covered.clear();
            self.scratch_acked = covered;
            self.delivered += newly_acked;
            if let Some(s) = newest {
                let rtt = now.saturating_since(s.sent_at);
                rtt_sample = Some(rtt);
                self.update_rtt(rtt);
            }
            self.rto_backoff = 0;
            self.rto_deadline = if self.inflight.is_empty() {
                None
            } else {
                Some(now + self.rto)
            };
            if self.in_recovery && ack >= self.recover {
                self.in_recovery = false;
            }
        } else if ack == self.snd_una && !self.inflight.is_empty() {
            self.dupacks += 1;
        }

        let srtt = self.srtt.unwrap_or(Duration::from_millis(100));

        // --- ECN feedback ---
        let mut ce_bytes = 0usize;
        let mut ect_bytes = None;
        match self.cc.ecn_mode() {
            EcnMode::L4s => {
                if let Some(acc) = hdr.accecn {
                    let delta = acc.ce_bytes.wrapping_sub(self.acc_last.ce_bytes) & 0x00FF_FFFF;
                    // Serial-number arithmetic on the 24-bit counter: a
                    // "delta" in the upper half of the space is a stale
                    // (reordered) ACK whose counter is older than ours —
                    // ignore it entirely, including for `acc_last`.
                    // Deltas larger than newly_acked are legitimate here:
                    // an in-network bookkeeper (L4Span §4.4) may account
                    // CE for bytes that entered the RAN ahead of what
                    // this ACK covers.
                    if delta < (1 << 23) {
                        ce_bytes = delta as usize;
                        // The per-codepoint counters advance together, so
                        // the CE freshness test covers all three; their
                        // summed delta is the "bytes that arrived with
                        // any ECN codepoint" signal bleach detection
                        // compares against newly-acked bytes.
                        let d0 = acc.ect0_bytes.wrapping_sub(self.acc_last.ect0_bytes)
                            & 0x00FF_FFFF;
                        let d1 = acc.ect1_bytes.wrapping_sub(self.acc_last.ect1_bytes)
                            & 0x00FF_FFFF;
                        ect_bytes = Some((delta + d0 + d1) as usize);
                        self.acc_last = acc;
                    }
                }
            }
            EcnMode::Classic => {
                if hdr.flags.contains(TcpFlags::ECE) && now >= self.ece_gate {
                    // RFC 3168: respond like a loss, once per RTT, and set
                    // CWR on the next data segment.
                    self.cc.on_loss(now);
                    self.cwr_pending = true;
                    self.ece_gate = now + srtt;
                }
            }
            EcnMode::None => {}
        }

        // --- Loss detection: three duplicate ACKs ---
        if self.dupacks >= 3 && !self.in_recovery {
            self.in_recovery = true;
            self.recover = self.snd_nxt;
            self.cc.on_loss(now);
            self.fast_retx += 1;
            // Retransmit the first unacked segment.
            if let Some((&seq, seg)) = self.inflight.iter().next() {
                let len = (seg.end - seq) as usize;
                self.inflight.remove(&seq);
                self.bytes_in_flight -= len;
                out.push(self.make_data_segment(seq, len, true, now));
            }
        }

        if newly_acked > 0 {
            // Delivery-rate sample over the smoothed RTT window.
            let rate = Some(self.delivered_rate_sample(now, srtt));
            let sample = AckSample {
                now,
                newly_acked: newly_acked as usize,
                ce_bytes,
                ect_bytes,
                ece: hdr.flags.contains(TcpFlags::ECE),
                rtt: rtt_sample,
                srtt,
                inflight: self.inflight_bytes(),
                delivery_rate: rate,
                app_limited: self.cfg.app_limit.is_some(),
            };
            self.cc.on_ack(&sample);
        }

        self.emit_data_into(now, out);
    }

    /// Rate sample: bytes delivered over the last smoothed RTT.
    fn delivered_rate_sample(&self, _now: Instant, srtt: Duration) -> f64 {
        // Approximation: one cwnd of data delivered per srtt when the
        // window is full. Using acked bytes over the RTT avoids keeping a
        // full rate-sample history and is accurate once flows saturate.
        let inflight = self.inflight_bytes() as f64;
        let w = (self.cc.cwnd() as f64).min(inflight.max(self.cfg.mss as f64));
        w / srtt.as_secs_f64().max(1e-4)
    }

    fn update_rtt(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + delta) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar * 4).max(MIN_RTO).min(MAX_RTO);
    }

    /// Timer poll: fires RTO retransmissions and releases paced segments.
    pub fn poll(&mut self, now: Instant) -> Vec<PacketBuf> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Allocation-free form of [`TcpSender::poll`]: transmissions are
    /// appended to `out`. This fires once per pacing/RTO timer event, so
    /// the harness reuses one scratch buffer across all flows.
    pub fn poll_into(&mut self, now: Instant, out: &mut Vec<PacketBuf>) {
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && !self.inflight.is_empty() {
                self.rto_retx += 1;
                self.cc.on_rto(now);
                self.rto_backoff = (self.rto_backoff + 1).min(8);
                self.rto = (self.rto * 2).min(MAX_RTO);
                self.dupacks = 0;
                self.in_recovery = false;
                // Retransmit the oldest outstanding segment.
                if let Some((&seq, seg)) = self.inflight.iter().next() {
                    let len = (seg.end - seq) as usize;
                    self.inflight.remove(&seq);
                    self.bytes_in_flight -= len;
                    out.push(self.make_data_segment(seq, len, true, now));
                }
                self.rto_deadline = Some(now + self.rto);
            }
        }
        self.emit_data_into(now, out);
    }

    /// Next instant this sender needs a `poll` (RTO deadline or pacing
    /// release), if any.
    pub fn next_activity(&self) -> Option<Instant> {
        let mut next = self.rto_deadline;
        // If pacing currently gates sendable data, wake at the release.
        if self.state == SenderState::Established
            && self.pacing_rate().is_some()
            && self.inflight_bytes() + self.cfg.mss <= self.cc.cwnd().min(self.cfg.snd_buf)
            && self.cfg.app_limit.is_none_or(|l| self.snd_nxt < l)
        {
            next = Some(match next {
                Some(n) => n.min(self.next_send_at),
                None => self.next_send_at,
            });
        }
        next
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReceiverState {
    Closed,
    SynSent,
    Established,
}

/// The client-side (UE) TCP endpoint: initiates the connection and
/// acknowledges data with the configured ECN feedback format.
#[derive(Debug)]
pub struct TcpReceiver {
    cfg: TcpConfig,
    mode: EcnMode,
    state: ReceiverState,
    rcv_nxt: u64,
    /// Out-of-order byte ranges received ahead of `rcv_nxt`.
    ooo: BTreeMap<u64, u64>,
    /// Classic ECN: ECE latched until CWR observed.
    ece_latch: bool,
    /// AccECN cumulative counters.
    acc: AccEcnCounters,
    ce_packets: u32,
    ident: u16,
    /// Total payload bytes received in order.
    pub received: u64,
    /// CE-marked payload bytes observed (diagnostics).
    pub ce_bytes_seen: u64,
}

impl TcpReceiver {
    /// Create a receiver; `mode` must match the sender's ECN mode.
    pub fn new(cfg: TcpConfig, mode: EcnMode) -> TcpReceiver {
        TcpReceiver {
            cfg,
            mode,
            state: ReceiverState::Closed,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            ece_latch: false,
            acc: AccEcnCounters::default(),
            ce_packets: 0,
            ident: 0,
            received: 0,
            ce_bytes_seen: 0,
        }
    }

    /// Established yet?
    pub fn established(&self) -> bool {
        self.state == ReceiverState::Established
    }

    fn next_ident(&mut self) -> u16 {
        self.ident = self.ident.wrapping_add(1);
        self.ident
    }

    /// Begin the handshake: returns the SYN to send uplink.
    pub fn start(&mut self, _now: Instant) -> PacketBuf {
        self.state = ReceiverState::SynSent;
        let syn = TcpHeader {
            src_port: self.cfg.remote_port,
            dst_port: self.cfg.local_port,
            seq: 0,
            ack: 0,
            flags: match self.mode {
                // RFC 3168 negotiation: SYN carries ECE+CWR.
                EcnMode::Classic => TcpFlags::new()
                    .with(TcpFlags::SYN)
                    .with(TcpFlags::ECE)
                    .with(TcpFlags::CWR),
                _ => TcpFlags::new().with(TcpFlags::SYN),
            },
            mss: Some(self.cfg.mss as u16),
            accecn: (self.mode == EcnMode::L4s).then(AccEcnCounters::default),
            ..TcpHeader::default()
        };
        let ident = self.next_ident();
        PacketBuf::tcp(
            self.cfg.remote_ip,
            self.cfg.local_ip,
            Ecn::NotEct,
            ident,
            &syn,
            0,
        )
    }

    fn make_ack(&mut self) -> PacketBuf {
        let mut flags = TcpFlags::new().with(TcpFlags::ACK);
        let mut accecn = None;
        match self.mode {
            EcnMode::Classic => {
                if self.ece_latch {
                    flags.set(TcpFlags::ECE);
                }
            }
            EcnMode::L4s => {
                flags.set_ace((self.ce_packets & 0b111) as u8);
                accecn = Some(self.acc.wrapped());
            }
            EcnMode::None => {}
        }
        let hdr = TcpHeader {
            src_port: self.cfg.remote_port,
            dst_port: self.cfg.local_port,
            seq: 1, // client sends no data after its SYN
            ack: self.rcv_nxt as u32,
            flags,
            accecn,
            ..TcpHeader::default()
        };
        let ident = self.next_ident();
        PacketBuf::tcp(
            self.cfg.remote_ip,
            self.cfg.local_ip,
            Ecn::NotEct, // pure ACKs are not ECT
            ident,
            &hdr,
            0,
        )
    }

    /// Handle a downlink packet; returns the ACK to send, if any.
    pub fn on_packet(&mut self, pkt: &PacketBuf, _now: Instant) -> Option<PacketBuf> {
        let hdr = pkt.tcp_header()?;
        match self.state {
            ReceiverState::Closed => None,
            ReceiverState::SynSent => {
                if hdr.flags.contains(TcpFlags::SYN) && hdr.flags.contains(TcpFlags::ACK) {
                    self.state = ReceiverState::Established;
                    // Final handshake ACK.
                    let ack = TcpHeader {
                        src_port: self.cfg.remote_port,
                        dst_port: self.cfg.local_port,
                        seq: 1,
                        ack: 1,
                        flags: TcpFlags::new().with(TcpFlags::ACK),
                        ..TcpHeader::default()
                    };
                    let ident = self.next_ident();
                    Some(PacketBuf::tcp(
                        self.cfg.remote_ip,
                        self.cfg.local_ip,
                        Ecn::NotEct,
                        ident,
                        &ack,
                        0,
                    ))
                } else {
                    None
                }
            }
            ReceiverState::Established => {
                let len = pkt.payload_len() as u64;
                if len == 0 {
                    return None; // pure control packet
                }
                // ECN accounting happens per data packet received.
                let ecn = pkt.ecn();
                match ecn {
                    Ecn::Ce => {
                        self.ce_packets = self.ce_packets.wrapping_add(1);
                        self.acc.ce_bytes =
                            (self.acc.ce_bytes + len as u32) & 0x00FF_FFFF;
                        self.ce_bytes_seen += len;
                        if self.mode == EcnMode::Classic {
                            self.ece_latch = true;
                        }
                    }
                    Ecn::Ect0 => {
                        self.acc.ect0_bytes =
                            (self.acc.ect0_bytes + len as u32) & 0x00FF_FFFF;
                    }
                    Ecn::Ect1 => {
                        self.acc.ect1_bytes =
                            (self.acc.ect1_bytes + len as u32) & 0x00FF_FFFF;
                    }
                    Ecn::NotEct => {}
                }
                if self.mode == EcnMode::Classic && hdr.flags.contains(TcpFlags::CWR) {
                    self.ece_latch = false;
                }
                let seq = unwrap_seq(hdr.seq, self.rcv_nxt);
                let end = seq + len;
                if end > self.rcv_nxt {
                    if seq <= self.rcv_nxt {
                        self.rcv_nxt = end;
                        // Drain contiguous out-of-order data.
                        while let Some((&s, &e)) = self.ooo.iter().next() {
                            if s <= self.rcv_nxt {
                                self.ooo.remove(&s);
                                self.rcv_nxt = self.rcv_nxt.max(e);
                            } else {
                                break;
                            }
                        }
                    } else {
                        self.ooo.insert(seq, end);
                    }
                }
                self.received = self.rcv_nxt;
                Some(self.make_ack())
            }
        }
    }
}

/// Reconstruct a 64-bit sequence value from a 32-bit wire field, choosing
/// the candidate nearest `reference`.
fn unwrap_seq(wire: u32, reference: u64) -> u64 {
    let base = reference & !0xFFFF_FFFFu64;
    let cand = base | u64::from(wire);
    // Pick among cand - 2^32, cand, cand + 2^32 whichever is closest.
    let mut best = cand;
    let mut best_d = cand.abs_diff(reference);
    if cand >= 1 << 32 {
        let lo = cand - (1 << 32);
        if lo.abs_diff(reference) < best_d {
            best = lo;
            best_d = lo.abs_diff(reference);
        }
    }
    let hi = cand + (1 << 32);
    if hi.abs_diff(reference) < best_d {
        best = hi;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cubic::Cubic;
    use crate::prague::Prague;
    use crate::reno::Reno;

    fn pair(cc: Box<dyn CongestionControl>) -> (TcpSender, TcpReceiver) {
        let cfg = TcpConfig::new(0x0A00_0001, 0x0A00_0002, 443, 50_000);
        let mode = cc.ecn_mode();
        (TcpSender::new(cfg, cc), TcpReceiver::new(cfg, mode))
    }

    /// Run the handshake; returns the initial data burst.
    fn handshake(s: &mut TcpSender, r: &mut TcpReceiver, now: Instant) -> Vec<PacketBuf> {
        let syn = r.start(now);
        let synack = s.on_packet(&syn, now);
        assert_eq!(synack.len(), 1);
        let ack = r.on_packet(&synack[0], now).expect("handshake ack");
        let burst = s.on_packet(&ack, now);
        assert!(s.established() && r.established());
        burst
    }

    #[test]
    fn handshake_then_initial_window() {
        let (mut s, mut r) = pair(Box::new(Reno::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        assert_eq!(burst.len(), 10, "IW10");
        assert!(burst.iter().all(|p| p.payload_len() == 1400));
        assert!(burst.iter().all(|p| p.ecn() == Ecn::Ect0), "classic ECT(0)");
    }

    #[test]
    fn prague_data_is_ect1_with_accecn_acks() {
        let (mut s, mut r) = pair(Box::new(Prague::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        assert!(burst.iter().all(|p| p.ecn() == Ecn::Ect1));
        let ack = r
            .on_packet(&burst[0], Instant::from_millis(20))
            .expect("ack");
        let h = ack.tcp_header().unwrap();
        assert!(h.accecn.is_some(), "AccECN option present");
        assert_eq!(h.accecn.unwrap().ect1_bytes, 1400);
    }

    #[test]
    fn ack_clock_advances_window() {
        let (mut s, mut r) = pair(Box::new(Reno::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        let mut t = Instant::from_millis(40);
        let mut total_sent = burst.len();
        let mut queue = burst;
        // One RTT of acks: slow start should roughly double inflight.
        // (Pacing gates bursts, so pump `poll` as virtual time passes.)
        let mut new_pkts = Vec::new();
        for p in queue.drain(..) {
            if let Some(ack) = r.on_packet(&p, t) {
                new_pkts.extend(s.on_packet(&ack, t));
            }
            t += Duration::from_millis(2);
            new_pkts.extend(s.poll(t));
        }
        for _ in 0..50 {
            t += Duration::from_millis(2);
            new_pkts.extend(s.poll(t));
        }
        total_sent += new_pkts.len();
        assert!(total_sent >= 18, "slow start growth, sent {total_sent}");
        assert!(s.srtt().is_some());
    }

    #[test]
    fn ce_mark_reaches_classic_sender_as_ece_and_halves() {
        let (mut s, mut r) = pair(Box::new(Cubic::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        let mut t = Instant::from_millis(40);
        // Grow the window a bit first (pump poll so pacing releases).
        let mut pkts = Vec::new();
        for p in &burst {
            if let Some(ack) = r.on_packet(p, t) {
                pkts.extend(s.on_packet(&ack, t));
            }
            t += Duration::from_millis(1);
            pkts.extend(s.poll(t));
        }
        assert!(!pkts.is_empty(), "new data flowed after the acks");
        let w = s.cc().cwnd();
        // Mark one downlink packet CE.
        let mut marked = pkts[0];
        marked.set_ecn(Ecn::Ce);
        let t2 = Instant::from_millis(80);
        let ack = r.on_packet(&marked, t2).expect("ack");
        let h = ack.tcp_header().unwrap();
        assert!(h.flags.contains(TcpFlags::ECE), "ECE latched");
        // The reacting call may already emit the CWR-carrying segment.
        let mut sent_after = s.on_packet(&ack, t2);
        assert!(
            (s.cc().cwnd() as f64) < 0.8 * w as f64,
            "cubic must back off: {} vs {w}",
            s.cc().cwnd()
        );
        // Keep acking the remaining flight until the (reduced) window
        // opens; the first new data segment must carry CWR. Pump `poll`
        // so the pacer releases segments as time advances.
        let mut t3 = Instant::from_millis(81);
        for p in pkts.iter().skip(1) {
            if let Some(a) = r.on_packet(p, t3) {
                sent_after.extend(s.on_packet(&a, t3));
            }
            t3 += Duration::from_millis(2);
            sent_after.extend(s.poll(t3));
        }
        for _ in 0..100 {
            t3 += Duration::from_millis(2);
            sent_after.extend(s.poll(t3));
        }
        let cwr_seg = sent_after
            .iter()
            .find(|p| p.tcp_header().unwrap().flags.contains(TcpFlags::CWR));
        assert!(cwr_seg.is_some(), "CWR must be set after ECE reaction");
        let ack2 = r.on_packet(cwr_seg.unwrap(), t3);
        assert!(
            !ack2.unwrap().tcp_header().unwrap().flags.contains(TcpFlags::ECE),
            "CWR clears the ECE latch"
        );
    }

    #[test]
    fn ece_reaction_is_once_per_rtt() {
        let (mut s, mut r) = pair(Box::new(Cubic::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        let t = Instant::from_millis(40);
        let mut marked1 = burst[0];
        marked1.set_ecn(Ecn::Ce);
        let ack1 = r.on_packet(&marked1, t).unwrap();
        s.on_packet(&ack1, t);
        let w = s.cc().cwnd();
        // A second ECE ack a moment later must not halve again.
        let mut marked2 = burst[1];
        marked2.set_ecn(Ecn::Ce);
        let ack2 = r.on_packet(&marked2, t + Duration::from_millis(1)).unwrap();
        s.on_packet(&ack2, t + Duration::from_millis(1));
        assert!(
            s.cc().cwnd() >= w && s.cc().cwnd() < w + 2 * 1400,
            "gated for one RTT: {} vs {w}",
            s.cc().cwnd()
        );
    }

    #[test]
    fn accecn_ce_bytes_flow_to_prague() {
        let (mut s, mut r) = pair(Box::new(Prague::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        let t = Instant::from_millis(40);
        let mut marked = burst[0];
        marked.set_ecn(Ecn::Ce);
        let w = s.cc().cwnd();
        let ack = r.on_packet(&marked, t).unwrap();
        s.on_packet(&ack, t);
        let cut = w - s.cc().cwnd();
        assert!(cut > 0, "prague reduces on CE bytes");
        assert!(
            (cut as f64) < 0.2 * w as f64,
            "but only slightly (alpha small): cut {cut} of {w}"
        );
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let (mut s, mut r) = pair(Box::new(Reno::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        assert!(burst.len() >= 5);
        let t = Instant::from_millis(40);
        // Drop burst[0]; deliver 1..5 -> four dupacks for seq 0.
        let mut retx = Vec::new();
        for p in &burst[1..6] {
            if let Some(ack) = r.on_packet(p, t) {
                retx.extend(s.on_packet(&ack, t));
            }
        }
        assert_eq!(s.fast_retx, 1, "one fast retransmit episode");
        let retx_seg = retx
            .iter()
            .find(|p| p.tcp_header().unwrap().seq == 0)
            .expect("seq 0 retransmitted");
        // Receiver fills the hole and acks everything.
        let ack = r.on_packet(retx_seg, t + Duration::from_millis(1)).unwrap();
        assert_eq!(
            unwrap_seq(ack.tcp_header().unwrap().ack, 0),
            6 * 1400,
            "cumulative ack covers the ooo data"
        );
    }

    #[test]
    fn rto_fires_and_retransmits() {
        let (mut s, mut r) = pair(Box::new(Reno::new(1400)));
        let burst = handshake(&mut s, &mut r, Instant::ZERO);
        assert!(!burst.is_empty());
        // No acks arrive at all; poll past the RTO deadline.
        let deadline = s.next_activity().expect("rto armed");
        let out = s.poll(deadline + Duration::from_millis(1));
        assert_eq!(s.rto_retx, 1);
        assert!(out.iter().any(|p| p.tcp_header().unwrap().seq == 0));
        assert_eq!(s.cc().cwnd(), 1400, "reno collapses to 1 MSS");
        let _ = r;
    }

    #[test]
    fn app_limited_flow_finishes() {
        let mut cfg = TcpConfig::new(1, 2, 443, 50_000);
        cfg.app_limit = Some(14_000); // the paper's 14 kB short flow
        let mut s = TcpSender::new(cfg, Box::new(Cubic::new(1400)));
        let mut r = TcpReceiver::new(cfg, EcnMode::Classic);
        let syn = r.start(Instant::ZERO);
        let synack = s.on_packet(&syn, Instant::ZERO);
        let ack = r.on_packet(&synack[0], Instant::ZERO).unwrap();
        let burst = s.on_packet(&ack, Instant::ZERO);
        assert_eq!(burst.len(), 10, "14000/1400 = 10 segments fit IW");
        assert!(!s.finished());
        let t = Instant::from_millis(40);
        for p in &burst {
            if let Some(a) = r.on_packet(p, t) {
                s.on_packet(&a, t);
            }
        }
        assert!(s.finished());
        assert_eq!(r.received, 14_000);
    }

    #[test]
    fn app_driven_sender_sends_only_offered_bytes_and_finishes_on_close() {
        let cfg = TcpConfig::new(1, 2, 443, 50_000);
        let mut s = TcpSender::app_driven(cfg, Box::new(Cubic::new(1400)));
        let mut r = TcpReceiver::new(cfg, EcnMode::Classic);
        let syn = r.start(Instant::ZERO);
        let synack = s.on_packet(&syn, Instant::ZERO);
        let ack = r.on_packet(&synack[0], Instant::ZERO).unwrap();
        let burst = s.on_packet(&ack, Instant::ZERO);
        assert!(burst.is_empty(), "nothing offered yet, nothing sent");
        assert!(!s.finished(), "drained but the app is still open");

        s.offer(2800);
        let out = s.poll(Instant::from_millis(1));
        assert_eq!(out.len(), 2, "exactly the offered two segments");
        let t = Instant::from_millis(40);
        for p in &out {
            if let Some(a) = r.on_packet(p, t) {
                s.on_packet(&a, t);
            }
        }
        assert!(!s.finished(), "acked, but more bursts may come");
        s.offer(1400);
        s.close_app();
        let out2 = s.poll(Instant::from_millis(41));
        assert_eq!(out2.len(), 1);
        assert!(!s.finished());
        let t2 = Instant::from_millis(80);
        for p in &out2 {
            if let Some(a) = r.on_packet(p, t2) {
                s.on_packet(&a, t2);
            }
        }
        assert!(s.finished(), "closed and fully acked");
        assert_eq!(r.received, 4200);
        assert!(s.rate_estimate_bps().unwrap() > 0.0);
    }

    #[test]
    fn unwrap_seq_handles_wraparound() {
        assert_eq!(unwrap_seq(5, 3), 5);
        assert_eq!(unwrap_seq(5, (1 << 32) - 10), (1 << 32) + 5);
        assert_eq!(unwrap_seq(u32::MAX - 1, 1 << 32), (1 << 33) - 2 - (1 << 32));
        assert_eq!(unwrap_seq(0, 0), 0);
    }
}

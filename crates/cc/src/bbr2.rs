//! BBRv2: BBR with loss/ECN-bounded inflight (Cardwell et al., IETF 2019).
//!
//! The addition over v1 that matters to L4Span is the DCTCP/L4S-style CE
//! response (paper §6.1: "BBRv2 includes the DCTCP (or L4S)-like
//! congestion window adjustments upon receiving the AccECN signal"): an
//! `ecn_alpha` EWMA of the per-round CE fraction shrinks `inflight_hi`
//! multiplicatively, bounding the cwnd BBR's model would otherwise use.

use l4span_sim::Instant;

use crate::bbr::Bbr;
use crate::cc::{AckSample, CongestionControl, EcnMode};

/// EWMA gain for the CE fraction.
const ECN_ALPHA_GAIN: f64 = 1.0 / 16.0;
/// Multiplier applied to `inflight_hi` per marked round: hi ← hi·(1−αβ).
const BETA_ECN: f64 = 0.3;
/// Loss response multiplier for `inflight_hi`.
const BETA_LOSS: f64 = 0.7;
/// CE fraction below which a round is considered unmarked.
const ECN_THRESH: f64 = 0.01;

/// BBRv2 congestion control: v1 core plus inflight bounds.
#[derive(Debug)]
pub struct Bbr2 {
    core: Bbr,
    mss: usize,
    ecn_alpha: f64,
    inflight_hi: f64,
    /// Per-round CE accounting.
    round_acked: usize,
    round_ce: usize,
    round_end: Instant,
}

impl Bbr2 {
    /// New BBRv2 controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Bbr2 {
        Bbr2 {
            core: Bbr::new(mss),
            mss,
            ecn_alpha: 0.0,
            inflight_hi: f64::INFINITY,
            round_acked: 0,
            round_ce: 0,
            round_end: Instant::ZERO,
        }
    }

    /// The EWMA CE fraction (diagnostics).
    pub fn ecn_alpha(&self) -> f64 {
        self.ecn_alpha
    }

    /// Current upper inflight bound in bytes (∞ until first congestion).
    pub fn inflight_hi(&self) -> f64 {
        self.inflight_hi
    }
}

impl CongestionControl for Bbr2 {
    fn on_ack(&mut self, ack: &AckSample) {
        self.core.on_ack(ack);
        self.round_acked += ack.newly_acked;
        self.round_ce += ack.ce_bytes;
        if ack.now >= self.round_end {
            let frac = if self.round_acked > 0 {
                self.round_ce as f64 / self.round_acked as f64
            } else {
                0.0
            };
            self.ecn_alpha += ECN_ALPHA_GAIN * (frac - self.ecn_alpha);
            if frac > ECN_THRESH {
                let hi = if self.inflight_hi.is_finite() {
                    self.inflight_hi
                } else {
                    self.core.cwnd() as f64
                };
                self.inflight_hi =
                    (hi * (1.0 - BETA_ECN * self.ecn_alpha)).max((4 * self.mss) as f64);
            } else if self.inflight_hi.is_finite() {
                // Probe upward slowly when unmarked.
                self.inflight_hi += self.mss as f64;
            }
            self.round_acked = 0;
            self.round_ce = 0;
            self.round_end = ack.now + ack.srtt;
        }
    }

    fn on_loss(&mut self, now: Instant) {
        self.core.on_loss(now);
        let hi = if self.inflight_hi.is_finite() {
            self.inflight_hi
        } else {
            self.core.cwnd() as f64
        };
        self.inflight_hi = (hi * BETA_LOSS).max((4 * self.mss) as f64);
    }

    fn on_rto(&mut self, now: Instant) {
        self.core.on_rto(now);
    }

    fn cwnd(&self) -> usize {
        let base = self.core.cwnd() as f64;
        base.min(self.inflight_hi) as usize
    }

    fn pacing_rate(&self) -> Option<f64> {
        self.core.pacing_rate()
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::L4s
    }

    fn name(&self) -> &'static str {
        "bbr2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_sim::Duration;

    fn ack(now_ms: u64, bytes: usize, ce: usize) -> AckSample {
        AckSample {
            now: Instant::from_millis(now_ms),
            newly_acked: bytes,
            ce_bytes: ce,
            ect_bytes: None,
            ece: false,
            rtt: Some(Duration::from_millis(40)),
            srtt: Duration::from_millis(40),
            inflight: 10_000,
            delivery_rate: Some(5e6),
            app_limited: false,
        }
    }

    #[test]
    fn ce_marks_shrink_inflight_hi() {
        let mut b = Bbr2::new(1000);
        let mut t = 0;
        for _ in 0..10 {
            b.on_ack(&ack(t, 10_000, 0));
            t += 50;
        }
        assert!(b.inflight_hi().is_infinite());
        for _ in 0..20 {
            b.on_ack(&ack(t, 10_000, 5_000)); // 50% marked rounds
            t += 50;
        }
        assert!(b.inflight_hi().is_finite());
        assert!(b.ecn_alpha() > 0.2, "alpha {}", b.ecn_alpha());
        assert!(b.cwnd() as f64 <= b.inflight_hi());
    }

    #[test]
    fn unmarked_rounds_probe_hi_back_up() {
        let mut b = Bbr2::new(1000);
        let mut t = 0;
        for _ in 0..20 {
            b.on_ack(&ack(t, 10_000, 5_000));
            t += 50;
        }
        let hi = b.inflight_hi();
        for _ in 0..5 {
            b.on_ack(&ack(t, 10_000, 0));
            t += 50;
        }
        assert!(b.inflight_hi() > hi, "hi must creep up when unmarked");
    }

    #[test]
    fn loss_shrinks_hi_by_beta() {
        let mut b = Bbr2::new(1000);
        let mut t = 0;
        for _ in 0..10 {
            b.on_ack(&ack(t, 10_000, 0));
            t += 50;
        }
        let w = b.core.cwnd() as f64;
        b.on_loss(Instant::from_millis(t));
        assert!((b.inflight_hi() - w * BETA_LOSS).abs() < 1.0);
    }

    #[test]
    fn is_l4s() {
        assert_eq!(Bbr2::new(1000).ecn_mode(), EcnMode::L4s);
    }
}

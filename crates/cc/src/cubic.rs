//! CUBIC (RFC 9438): cubic window growth with Reno-friendly region.
//! Classic ECN: CE-echo ⇒ the β=0.7 multiplicative decrease, once per RTT.

use l4span_sim::Instant;

use crate::cc::{AckSample, CongestionControl, EcnMode};
use crate::reno::INITIAL_WINDOW_SEGS;

/// RFC 9438 constants.
const C: f64 = 0.4;
/// Multiplicative-decrease factor.
pub const BETA_CUBIC: f64 = 0.7;

/// CUBIC congestion control. Window arithmetic is done in segments
/// (floating point) as in the RFC, converted to bytes at the edge.
#[derive(Debug)]
pub struct Cubic {
    mss: usize,
    /// cwnd in segments.
    cwnd: f64,
    ssthresh: f64,
    /// Window size before the last reduction (segments).
    w_max: f64,
    /// Time of the last congestion event.
    epoch_start: Option<Instant>,
    /// Cubic inflection delay K (seconds).
    k: f64,
    /// Reno-friendly estimate (segments).
    w_est: f64,
}

impl Cubic {
    /// New CUBIC controller with `mss`-byte segments.
    pub fn new(mss: usize) -> Cubic {
        Cubic {
            mss,
            cwnd: INITIAL_WINDOW_SEGS as f64,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
        }
    }

    fn enter_epoch(&mut self, now: Instant) {
        self.epoch_start = Some(now);
        self.k = if self.cwnd < self.w_max {
            ((self.w_max - self.cwnd) / C).cbrt()
        } else {
            0.0
        };
        self.w_est = self.cwnd;
    }

    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }

    fn reduce(&mut self, now: Instant) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * BETA_CUBIC).max(2.0);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        let _ = now;
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, ack: &AckSample) {
        let acked_segs = ack.newly_acked as f64 / self.mss as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked_segs;
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(ack.now);
        }
        let t = ack
            .now
            .saturating_since(self.epoch_start.expect("set above"))
            .as_secs_f64();
        let rtt = ack.srtt.as_secs_f64().max(1e-4);
        // Reno-friendly region estimate (RFC 9438 §4.3).
        self.w_est += 3.0 * (1.0 - BETA_CUBIC) / (1.0 + BETA_CUBIC) * acked_segs / self.cwnd;
        let target = self.w_cubic(t + rtt).clamp(self.cwnd, 1.5 * self.cwnd);
        let cubic_cwnd = self.cwnd + (target - self.cwnd) / self.cwnd * acked_segs;
        self.cwnd = cubic_cwnd.max(self.w_est);
    }

    fn on_loss(&mut self, now: Instant) {
        self.reduce(now);
    }

    fn on_rto(&mut self, now: Instant) {
        self.reduce(now);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> usize {
        (self.cwnd * self.mss as f64) as usize
    }

    fn ecn_mode(&self) -> EcnMode {
        EcnMode::Classic
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use l4span_sim::Duration;

    fn ack_at(now_ms: u64, bytes: usize) -> AckSample {
        AckSample {
            now: Instant::from_millis(now_ms),
            newly_acked: bytes,
            ce_bytes: 0,
            ect_bytes: None,
            ece: false,
            rtt: Some(Duration::from_millis(40)),
            srtt: Duration::from_millis(40),
            inflight: 0,
            delivery_rate: None,
            app_limited: false,
        }
    }

    #[test]
    fn slow_start_grows_with_acked_bytes() {
        let mut c = Cubic::new(1000);
        let w0 = c.cwnd();
        c.on_ack(&ack_at(10, w0));
        assert_eq!(c.cwnd(), 2 * w0);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = Cubic::new(1000);
        c.on_ack(&ack_at(10, 40_000));
        let w = c.cwnd() as f64;
        c.on_loss(Instant::from_millis(20));
        let got = c.cwnd() as f64;
        assert!((got / w - BETA_CUBIC).abs() < 0.01, "{got} vs {w}");
    }

    #[test]
    fn window_recovers_toward_w_max() {
        let mut c = Cubic::new(1000);
        // Grow to 100 segments, lose, then ack steadily for a while.
        c.on_ack(&ack_at(0, 90_000));
        c.on_loss(Instant::from_millis(1));
        let after_loss = c.cwnd();
        let mut t = 10;
        for _ in 0..2000 {
            let w = c.cwnd();
            c.on_ack(&ack_at(t, w.min(64_000)));
            t += 40;
        }
        assert!(c.cwnd() > after_loss, "cubic must grow back");
        // And it should eventually exceed w_max (probing beyond).
        assert!(
            c.cwnd() > 100_000,
            "after 80 s cubic should pass w_max: {}",
            c.cwnd()
        );
    }

    #[test]
    fn concave_region_stays_below_w_max() {
        // For the K seconds after a reduction the cubic curve is concave:
        // the window approaches but does not exceed w_max.
        let mut c = Cubic::new(1000);
        c.on_ack(&ack_at(0, 200_000)); // slow start to 210 segments
        let w_max = c.cwnd();
        c.on_loss(Instant::from_millis(1));
        let mut t = 41;
        for _ in 0..50 {
            // 2 s of steady acking (< K for this w_max)
            let w = c.cwnd();
            c.on_ack(&ack_at(t, w.min(64_000)));
            t += 40;
            assert!(
                c.cwnd() <= w_max + 1000,
                "cwnd {} exceeded w_max {w_max} during concave phase",
                c.cwnd()
            );
        }
        assert!(c.cwnd() > (w_max as f64 * BETA_CUBIC) as usize, "but it grew");
    }

    #[test]
    fn rto_collapses() {
        let mut c = Cubic::new(1000);
        c.on_ack(&ack_at(0, 50_000));
        c.on_rto(Instant::from_millis(5));
        assert_eq!(c.cwnd(), 1000);
    }

    #[test]
    fn is_classic_ecn() {
        assert_eq!(Cubic::new(1000).ecn_mode(), EcnMode::Classic);
    }
}

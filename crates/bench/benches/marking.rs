//! Criterion benchmarks of the marking math: Eq. 1's Gaussian tail,
//! Eq. 2's Padhye inversion, the coupled rule, and the checksum-fixing
//! header edits they trigger.

use criterion::{criterion_group, criterion_main, Criterion};
use l4span_core::marking;
use l4span_net::{Ecn, PacketBuf, TcpFlags, TcpHeader};
use l4span_sim::Duration;

fn bench_marking(c: &mut Criterion) {
    let mut g = c.benchmark_group("marking");
    let tau = Duration::from_millis(10);

    g.bench_function("p_l4s_eq1", |b| {
        let mut n = 0usize;
        b.iter(|| {
            n = (n + 1440) % 1_000_000;
            std::hint::black_box(marking::p_l4s(n, tau, 2.5e6, 0.3e6));
        });
    });

    g.bench_function("p_classic_eq2", |b| {
        b.iter(|| {
            std::hint::black_box(marking::p_classic(
                1400,
                1.2247,
                Duration::from_millis(50),
                2.5e6,
            ));
        });
    });

    g.bench_function("p_coupled", |b| {
        b.iter(|| std::hint::black_box(marking::p_l4s_coupled(0.04, 1.2247)));
    });

    g.bench_function("ip_ecn_rewrite_with_checksum", |b| {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        let pkt = PacketBuf::tcp(10, 20, Ecn::Ect1, 7, &hdr, 1400);
        b.iter(|| {
            let mut p = pkt;
            p.set_ecn(Ecn::Ce);
            std::hint::black_box(&p);
        });
    });

    g.bench_function("tcp_ack_rewrite_with_checksum", |b| {
        let hdr = TcpHeader {
            src_port: 50_000,
            dst_port: 443,
            ack: 123_456,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            accecn: Some(Default::default()),
            ..TcpHeader::default()
        };
        let pkt = PacketBuf::tcp(20, 10, Ecn::NotEct, 7, &hdr, 0);
        b.iter(|| {
            let mut p = pkt;
            p.update_tcp(|h| {
                h.flags.set(TcpFlags::ECE);
            });
            std::hint::black_box(&p);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_marking);
criterion_main!(benches);

//! Criterion benchmarks of the egress-rate estimator (Eq. 3–5): the
//! per-feedback update and the rate/sojourn queries.

use criterion::{criterion_group, criterion_main, Criterion};
use l4span_core::estimator::EgressEstimator;
use l4span_sim::{Duration, Instant};

fn bench_estimator(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator");
    let window = Duration::from_micros(12_450);

    g.bench_function("on_txed", |b| {
        let mut e = EgressEstimator::new(window);
        let mut t = 0u64;
        b.iter(|| {
            t += 500;
            e.on_txed(Instant::from_micros(t), 1500);
        });
    });

    g.bench_function("rate_and_sojourn", |b| {
        let mut e = EgressEstimator::new(window);
        for k in 0..200u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        b.iter(|| {
            let r = e.attainable_rate();
            let s = e.predict_sojourn(30_000);
            std::hint::black_box((r, s));
        });
    });

    g.bench_function("rate_std", |b| {
        let mut e = EgressEstimator::new(window);
        for k in 0..200u64 {
            e.on_txed(Instant::from_micros(500 * k), 1500);
        }
        b.iter(|| std::hint::black_box(e.rate_std()));
    });

    g.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);

//! Criterion micro-benchmarks of L4Span's three event handlers — the
//! rigorous version of Fig. 21's processing-time claim.

use criterion::{criterion_group, criterion_main, Criterion};
use l4span_core::{L4SpanConfig, L4SpanLayer};
use l4span_net::{AccEcnCounters, Ecn, PacketBuf, TcpFlags, TcpHeader};
use l4span_ran::f1u::DlDataDeliveryStatus;
use l4span_ran::{DrbId, UeId};
use l4span_sim::{Instant, SimRng};

fn warmed_layer() -> L4SpanLayer {
    let mut l = L4SpanLayer::new(L4SpanConfig::default(), SimRng::new(1));
    for i in 0..2000u64 {
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        let mut p = PacketBuf::tcp(10, 20, Ecn::Ect1, i as u16, &hdr, 1400);
        l.on_dl_packet(UeId(0), DrbId(0), &mut p, Instant::from_micros(i * 500));
        l.on_ran_feedback(
            &DlDataDeliveryStatus {
                ue: UeId(0),
                drb: DrbId(0),
                highest_txed_sn: Some(i),
                highest_delivered_sn: Some(i.saturating_sub(10)),
                timestamp: Instant::from_micros(i * 500 + 100),
                desired_buffer_size: 0,
            },
            Instant::from_micros(i * 500 + 100),
        );
    }
    l
}

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("l4span_events");

    g.bench_function("on_dl_packet", |b| {
        let mut l = warmed_layer();
        let hdr = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            ..TcpHeader::default()
        };
        let mut t = 1_000_000u64;
        b.iter(|| {
            let mut p = PacketBuf::tcp(10, 20, Ecn::Ect1, t as u16, &hdr, 1400);
            t += 500;
            l.on_dl_packet(UeId(0), DrbId(0), &mut p, Instant::from_micros(t));
            std::hint::black_box(&p);
        });
    });

    g.bench_function("on_ul_packet_accecn", |b| {
        let mut l = warmed_layer();
        // Register an AccECN flow via a SYN-ACK.
        let synack = TcpHeader {
            src_port: 443,
            dst_port: 50_000,
            flags: TcpFlags::new().with(TcpFlags::SYN).with(TcpFlags::ACK),
            accecn: Some(AccEcnCounters::default()),
            ..TcpHeader::default()
        };
        let mut sp = PacketBuf::tcp(10, 20, Ecn::Ect1, 0, &synack, 0);
        l.on_dl_packet(UeId(0), DrbId(0), &mut sp, Instant::from_secs(2));
        let ack_hdr = TcpHeader {
            src_port: 50_000,
            dst_port: 443,
            ack: 1400,
            flags: TcpFlags::new().with(TcpFlags::ACK),
            accecn: Some(AccEcnCounters::default()),
            ..TcpHeader::default()
        };
        let ack = PacketBuf::tcp(20, 10, Ecn::NotEct, 0, &ack_hdr, 0);
        b.iter(|| {
            let mut a = ack;
            l.on_ul_packet(&mut a, Instant::from_secs(3));
            std::hint::black_box(&a);
        });
    });

    g.bench_function("on_ran_feedback", |b| {
        let mut l = warmed_layer();
        let mut sn = 2000u64;
        b.iter(|| {
            // Keep the profile table fed so feedback has work to do.
            let hdr = TcpHeader {
                src_port: 443,
                dst_port: 50_000,
                flags: TcpFlags::new().with(TcpFlags::ACK),
                ..TcpHeader::default()
            };
            let mut p = PacketBuf::tcp(10, 20, Ecn::Ect1, sn as u16, &hdr, 1400);
            l.on_dl_packet(UeId(0), DrbId(0), &mut p, Instant::from_micros(sn * 500));
            l.on_ran_feedback(
                &DlDataDeliveryStatus {
                    ue: UeId(0),
                    drb: DrbId(0),
                    highest_txed_sn: Some(sn),
                    highest_delivered_sn: None,
                    timestamp: Instant::from_micros(sn * 500 + 100),
                    desired_buffer_size: 0,
                },
                Instant::from_micros(sn * 500 + 100),
            );
            sn += 1;
        });
    });

    g.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);

//! Criterion benchmark for Table 1: end-to-end simulation cost of one
//! busy cell second with and without L4Span — the wall-clock delta *is*
//! the CPU overhead the paper reports from `top`.

use criterion::{criterion_group, criterion_main, Criterion};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::{run, MarkerKind};
use l4span_sim::Duration;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell_second");
    g.sample_size(10);

    for (name, marker) in [
        ("bare_ran", MarkerKind::None),
        ("with_l4span", l4span_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = congested_cell(
                    4,
                    "prague",
                    ChannelMix::Static,
                    16_384,
                    WanLink::east(),
                    marker.clone(),
                    1,
                    Duration::from_secs(1),
                );
                std::hint::black_box(run(cfg));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

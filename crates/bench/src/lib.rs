//! Shared plumbing for the figure/table runner binaries.
//!
//! Every runner accepts:
//!
//! * `--seed N`    — RNG seed (default 1);
//! * `--secs N`    — per-run simulated seconds (default per figure);
//! * `--full`      — run the complete parameter grid of the paper
//!   instead of the quick subset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use l4span_sim::stats::{BoxStats, Cdf};

/// Command-line arguments shared by all runners.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// RNG seed.
    pub seed: u64,
    /// Simulated seconds per run (0 = use the figure's default).
    pub secs: u64,
    /// Run the full paper grid.
    pub full: bool,
}

impl Args {
    /// Parse from `std::env::args`.
    pub fn parse() -> Args {
        let mut out = Args {
            seed: 1,
            secs: 0,
            full: false,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--seed" => {
                    out.seed = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed N");
                    i += 2;
                }
                "--secs" => {
                    out.secs = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .expect("--secs N");
                    i += 2;
                }
                "--full" => {
                    out.full = true;
                    i += 1;
                }
                other => panic!("unknown argument {other:?} (try --seed/--secs/--full)"),
            }
        }
        out
    }

    /// Seconds to simulate, with a per-figure default.
    pub fn secs_or(&self, default: u64) -> u64 {
        if self.secs == 0 {
            default
        } else {
            self.secs
        }
    }
}

/// Format a box-stat as `median [p25,p75] (p10,p90)`.
pub fn fmt_box(b: &BoxStats) -> String {
    format!(
        "{:9.2} [{:9.2},{:9.2}] ({:9.2},{:9.2})",
        b.median, b.p25, b.p75, b.p10, b.p90
    )
}

/// Print an n-point CDF as `value fraction` rows under a header.
pub fn print_cdf(label: &str, samples: &[f64], points: usize) {
    let cdf = Cdf::from_samples(samples);
    println!("# CDF: {label}  (n={})", cdf.len());
    if cdf.is_empty() {
        println!("  (no samples)");
        return;
    }
    for (v, q) in cdf.points(points) {
        println!("  {v:12.3} {q:6.3}");
    }
}

/// Print the standard figure banner.
pub fn banner(id: &str, what: &str, args: &Args) {
    println!("==================================================================");
    println!("{id}: {what}");
    println!(
        "seed={} {}  (pass --full for the complete paper grid)",
        args.seed,
        if args.full { "FULL GRID" } else { "quick subset" }
    );
    println!("==================================================================");
}

/// Run a labelled grid of scenarios on the parallel runner
/// ([`l4span_harness::runner`]), preserving input order: returns each
/// label paired with its report. Fig-bin grids are independent seeded
/// simulations, so they parallelise perfectly; determinism is unaffected
/// (per-scenario seeds, ordered collection).
pub fn run_grid<L>(
    cells: Vec<(L, l4span_harness::ScenarioConfig)>,
) -> Vec<(L, l4span_harness::Report)> {
    let (labels, cfgs): (Vec<L>, Vec<l4span_harness::ScenarioConfig>) =
        cells.into_iter().unzip();
    labels.into_iter().zip(l4span_harness::run_batch(cfgs)).collect()
}

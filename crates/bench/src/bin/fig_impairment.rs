//! The deployment question — what does an *impaired* Internet path do
//! to L4S flows behind a 5G RAN, and does Prague's classic fallback
//! repair coexistence?
//!
//! Two panels:
//!
//! 1. **Per-CC sweep**: impairment policy × {cubic, prague, bbr2} ×
//!    marker {off, L4Span} — one greedy download, goodput and median
//!    RTT per cell of the grid, plus the pipeline's own counters.
//! 2. **Coexistence**: Prague vs CUBIC sharing an RFC 3168 classic
//!    single-queue hop (the Briscoe hazard: the queue marks ECT(1)
//!    like ECT(0), so scalable Prague out-competes classic CUBIC).
//!    Run once with vanilla `prague` and once with `prague-fallback`;
//!    the fallback sender must detect the classic marking pattern,
//!    switch to Reno-friendly dynamics, and stop starving CUBIC.
//!
//! `cargo run --release -p l4span-bench --bin fig_impairment`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{
    impaired_path_cell, l4span_default, FlowSpec, ScenarioConfig, TransportSpec, UeSpec,
};
use l4span_harness::{ImpairmentSpec, MarkerKind, Report};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

/// The classic-queue hop's service rate: below what the cell can carry
/// (~38 Mbit/s at these SNRs), so the wired hop — not the RAN — is the
/// bottleneck and its RFC 3168 AQM is the congestion signal that
/// matters.
const HOP_BPS: f64 = 20e6;

/// The swept impairment policies, worst habits of real access networks.
fn policies() -> Vec<(&'static str, Option<ImpairmentSpec>)> {
    vec![
        ("clean", None),
        ("bleach", Some(ImpairmentSpec::bleaching(1.0))),
        ("classic-hop", Some(ImpairmentSpec::classic_hop(HOP_BPS))),
        (
            "bleach+hop",
            Some(ImpairmentSpec::bleaching(1.0).then_classic_hop(HOP_BPS)),
        ),
    ]
}

fn sweep_cfg(
    cc: &str,
    imp: &Option<ImpairmentSpec>,
    marker: MarkerKind,
    seed: u64,
    secs: u64,
) -> ScenarioConfig {
    let dur = Duration::from_secs(secs);
    let mut cfg = match imp {
        Some(spec) => impaired_path_cell(1, cc, spec.clone(), marker, seed, dur),
        None => {
            // Same shape as `impaired_path_cell`, pipeline absent.
            let mut c =
                impaired_path_cell(1, cc, ImpairmentSpec::default(), marker, seed, dur);
            c.impairment = None;
            c
        }
    };
    // One UE on a static good channel: with the hop policies the wired
    // queue is the bottleneck, on clean/bleach runs the RAN is.
    cfg.ues[0] = UeSpec::simple(ChannelProfile::Static, 26.0);
    cfg
}

/// Prague (flow 0) and CUBIC (flow 1) through one shared pipeline.
fn coexist_cfg(prague: &str, imp: ImpairmentSpec, seed: u64, secs: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = l4span_default();
    cfg.impairment = Some(imp);
    for (i, cc) in [prague, "cubic"].into_iter().enumerate() {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 26.0));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::bulk(),
            TransportSpec::tcp(cc.parse().expect("known cc")),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
        ));
    }
    cfg
}

fn imp_summary(r: &Report) -> String {
    match &r.impairment {
        None => "-".into(),
        Some(c) => format!(
            "bleached {} qmarks {} qdrops {}",
            c.bleached, c.queue_marks, c.queue_drops
        ),
    }
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    banner(
        "fig_impairment",
        "Internet-path impairments: bleaching, RFC 3168 hop, Prague fallback",
        &args,
    );

    println!("\n--- (1) per-CC sweep: policy x cc x marker ---");
    let mut cells = Vec::new();
    for (pname, imp) in policies() {
        for cc in ["cubic", "prague", "bbr2"] {
            for (mname, marker) in [("off", MarkerKind::None), ("l4span", l4span_default())] {
                cells.push((
                    (pname, cc, mname),
                    sweep_cfg(cc, &imp, marker, args.seed, secs),
                ));
            }
        }
    }
    let results = run_grid(cells);
    println!(
        "{:<12} {:<8} {:<8} {:>14} {:>12}   pipeline",
        "policy", "cc", "marker", "goodput(Mbps)", "rtt p50(ms)"
    );
    for ((pname, cc, mname), r) in &results {
        println!(
            "{:<12} {:<8} {:<8} {:>14.2} {:>12.1}   {}",
            pname,
            cc,
            mname,
            r.goodput_total_mbps(0),
            r.rtt_stats(0).median,
            imp_summary(r),
        );
    }

    println!("\n--- (2) coexistence on a shared RFC 3168 classic queue ---");
    let hop = ImpairmentSpec::classic_hop(HOP_BPS);
    let pairs = run_grid(vec![
        ("prague", coexist_cfg("prague", hop.clone(), args.seed, secs)),
        (
            "prague-fallback",
            coexist_cfg("prague-fallback", hop, args.seed, secs),
        ),
    ]);
    println!(
        "{:<18} {:>14} {:>14} {:>8} {:>10}   fallback",
        "l4s sender", "l4s(Mbps)", "cubic(Mbps)", "ratio", "tail-ratio"
    );
    // The fallback fires mid-run, so the whole-run ratio dilutes the
    // repaired regime; the tail window (last quarter) shows it clean.
    let tail_from = Instant::ZERO + Duration::from_secs(secs * 3 / 4);
    let tail_to = Instant::ZERO + Duration::from_secs(secs);
    for (name, r) in &pairs {
        let l4s = r.goodput_total_mbps(0);
        let cubic = r.goodput_total_mbps(1);
        let tail = r.goodput_mbps(0, tail_from, tail_to)
            / r.goodput_mbps(1, tail_from, tail_to).max(0.01);
        let fb = if r.fallbacks.is_empty() {
            "-".to_string()
        } else {
            r.fallbacks
                .iter()
                .map(|f| format!("flow{} @{:.0}ms ({})", f.flow, f.at_ms, f.reason))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>8.2} {:>10.2}   {}",
            name,
            l4s,
            cubic,
            l4s / cubic.max(0.01),
            tail,
            fb
        );
    }
    println!(
        "\nPaper shape: the classic queue marks ECT(1) like ECT(0), so vanilla\n\
         Prague's shallow per-mark response out-competes CUBIC (ratio >> 1);\n\
         prague-fallback detects the classic pattern, halves on CE like Reno,\n\
         and the ratio returns toward 1."
    );
}

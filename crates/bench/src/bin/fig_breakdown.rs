//! Per-subsystem cycle breakdown of the canonical perf scenarios: the
//! attribution companion to `perf_gate`. Each scenario runs once with
//! the harness's `CycleScope` instrumentation enabled; the table says
//! where the wall-clock went — gNB slot machinery, the L4Span marker,
//! UE stacks, the UL grant/BSR/status path, the wired core, transport
//! endpoints, metrics/QoE bookkeeping, and the event queue itself —
//! plus the untracked remainder (dispatch glue, scheduling, map
//! lookups).
//!
//! `cargo run --release -p l4span-bench --bin fig_breakdown [--secs N]`
//!
//! Enabling the instrumentation costs two monotonic-clock reads per
//! span, so the events/sec printed here sits below `perf_gate`'s
//! (uninstrumented) number; use this binary to decide *what* to
//! optimise and `perf_gate` to verify *that* it worked. The simulation
//! itself never observes the instrumentation: fingerprints are
//! identical with it on or off (asserted by a harness test).

use std::time::Instant as WallInstant;

use l4span_bench::gate::{canonical_scenarios, CANONICAL_SECS};
use l4span_bench::Args;
use l4span_harness::run_sharded;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(CANONICAL_SECS);
    println!("fig_breakdown: per-subsystem cycle accounting, {secs} simulated seconds per scenario");
    println!("(instrumented run: absolute events/sec is lower than perf_gate's)");
    for c in canonical_scenarios(secs) {
        let name = c.name;
        let mut cfg = c.cfg;
        cfg.measure_cycles = true;
        let t0 = WallInstant::now();
        let report = run_sharded(cfg, c.shards);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        // A sharded run's merged `cycles` only carries the primary
        // replica's attribution; sum across the per-shard snapshots so
        // the subsystem table covers the whole shard set.
        let mut stats = if report.shards.len() > 1 {
            let mut acc: Vec<l4span_sim::CycleStat> = Vec::new();
            for s in &report.shards {
                for cy in &s.cycles {
                    match acc.iter_mut().find(|a| a.label == cy.label) {
                        Some(a) => {
                            a.nanos += cy.nanos;
                            a.calls += cy.calls;
                        }
                        None => acc.push(*cy),
                    }
                }
            }
            acc
        } else {
            report.cycles.clone()
        };
        let tracked: u64 = stats.iter().map(|c| c.nanos).sum();
        let events_per_sec = report.events as f64 / (wall_ns as f64 / 1e9);
        println!(
            "\n== {name}: {} events, {:.2} wall s, {:.0} events/sec ==",
            report.events,
            wall_ns as f64 / 1e9,
            events_per_sec
        );
        println!(
            "{:<12} {:>10} {:>7} {:>12} {:>10}",
            "subsystem", "ms", "%wall", "calls", "ns/call"
        );
        stats.sort_by_key(|c| std::cmp::Reverse(c.nanos));
        for c in &stats {
            println!(
                "{:<12} {:>10.1} {:>6.1}% {:>12} {:>10.0}",
                c.label,
                c.nanos as f64 / 1e6,
                c.nanos as f64 * 100.0 / wall_ns as f64,
                c.calls,
                c.mean_ns()
            );
        }
        let untracked = wall_ns.saturating_sub(tracked);
        println!(
            "{:<12} {:>10.1} {:>6.1}%",
            "(untracked)",
            untracked as f64 / 1e6,
            untracked as f64 * 100.0 / wall_ns as f64
        );
        // Sharded scenarios: where each shard's epoch time went. The
        // idle column is the barrier wait a shard would see under
        // fully parallel epochs — 1 − busy/longest-shard-busy — i.e.
        // the load-balance figure of the cell assignment.
        if report.shards.len() > 1 {
            let busy_max = report.shards.iter().map(|s| s.busy_ns).max().unwrap_or(1);
            println!(
                "{:<6} {:>6} {:>12} {:>10} {:>10} {:>8} {:>7}",
                "shard", "cells", "events", "busy ms", "drain ms", "mailed", "idle"
            );
            for s in &report.shards {
                println!(
                    "{:<6} {:>6} {:>12} {:>10.1} {:>10.2} {:>8} {:>6.1}%",
                    s.shard,
                    s.cells,
                    s.events,
                    s.busy_ns as f64 / 1e6,
                    s.drain_ns as f64 / 1e6,
                    s.mailed,
                    (1.0 - s.busy_ns as f64 / busy_max as f64) * 100.0,
                );
            }
        }
    }
}

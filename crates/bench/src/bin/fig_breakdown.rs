//! Per-subsystem cycle breakdown of the canonical perf scenarios: the
//! attribution companion to `perf_gate`. Each scenario runs once with
//! the harness's `CycleScope` instrumentation enabled; the table says
//! where the wall-clock went — gNB slot machinery, the L4Span marker,
//! UE stacks, the UL grant/BSR/status path, the wired core, transport
//! endpoints, metrics/QoE bookkeeping, and the event queue itself —
//! plus the untracked remainder (dispatch glue, scheduling, map
//! lookups).
//!
//! `cargo run --release -p l4span-bench --bin fig_breakdown [--secs N]`
//!
//! Enabling the instrumentation costs two monotonic-clock reads per
//! span, so the events/sec printed here sits below `perf_gate`'s
//! (uninstrumented) number; use this binary to decide *what* to
//! optimise and `perf_gate` to verify *that* it worked. The simulation
//! itself never observes the instrumentation: fingerprints are
//! identical with it on or off (asserted by a harness test).

use std::time::Instant as WallInstant;

use l4span_bench::gate::{canonical_scenarios, CANONICAL_SECS};
use l4span_bench::Args;
use l4span_harness::run;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(CANONICAL_SECS);
    println!("fig_breakdown: per-subsystem cycle accounting, {secs} simulated seconds per scenario");
    println!("(instrumented run: absolute events/sec is lower than perf_gate's)");
    for (name, mut cfg) in canonical_scenarios(secs) {
        cfg.measure_cycles = true;
        let t0 = WallInstant::now();
        let report = run(cfg);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let tracked: u64 = report.cycles.iter().map(|c| c.nanos).sum();
        let events_per_sec = report.events as f64 / (wall_ns as f64 / 1e9);
        println!(
            "\n== {name}: {} events, {:.2} wall s, {:.0} events/sec ==",
            report.events,
            wall_ns as f64 / 1e9,
            events_per_sec
        );
        println!(
            "{:<12} {:>10} {:>7} {:>12} {:>10}",
            "subsystem", "ms", "%wall", "calls", "ns/call"
        );
        let mut stats = report.cycles.clone();
        stats.sort_by_key(|c| std::cmp::Reverse(c.nanos));
        for c in &stats {
            println!(
                "{:<12} {:>10.1} {:>6.1}% {:>12} {:>10.0}",
                c.label,
                c.nanos as f64 / 1e6,
                c.nanos as f64 * 100.0 / wall_ns as f64,
                c.calls,
                c.mean_ns()
            );
        }
        let untracked = wall_ns.saturating_sub(tracked);
        println!(
            "{:<12} {:>10.1} {:>6.1}%",
            "(untracked)",
            untracked as f64 / 1e6,
            untracked as f64 * 100.0 / wall_ns as f64
        );
    }
}

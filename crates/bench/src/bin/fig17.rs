//! Fig. 17 — RLC queue-length CDFs under L4Span: Prague and CUBIC,
//! static and mobile channels, 16-UE (and with `--full` 64-UE) cells.
//! The classic queue should rarely touch zero (no under-utilisation)
//! while the L4S queue stays shallow.
//!
//! `cargo run --release -p l4span-bench --bin fig17`

use l4span_bench::{banner, print_cdf, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(15);
    banner("Fig. 17", "RLC queue-length CDFs under L4Span", &args);

    let ue_counts: Vec<usize> = if args.full { vec![16, 64] } else { vec![16] };
    let mut cells = Vec::new();
    for &n in &ue_counts {
        for cc in ["prague", "cubic"] {
            for (chan, mix) in [("S", ChannelMix::Static), ("M", ChannelMix::Mobile)] {
                cells.push((
                    (n, cc, chan),
                    congested_cell(
                        n,
                        cc,
                        mix,
                        16_384,
                        WanLink::east(),
                        l4span_default(),
                        args.seed,
                        Duration::from_secs(secs),
                    ),
                ));
            }
        }
    }
    let mut last_n = 0;
    for ((n, cc, chan), r) in run_grid(cells) {
        if n != last_n {
            println!("\n--- {n} UE cell ---");
            last_n = n;
        }
        let mut samples = Vec::new();
        for q in r.queue_series.values() {
            samples.extend(q.iter().map(|&v| v as f64));
        }
        let zero_frac = samples.iter().filter(|&&v| v == 0.0).count() as f64
            / samples.len().max(1) as f64;
        println!(
            "\n{cc} {chan}: zero-queue fraction {:.1}%",
            zero_frac * 100.0
        );
        print_cdf(&format!("{cc} {chan} RLC queue (SDUs)"), &samples, 11);
    }
    println!("\nPaper shape: CUBIC's queue never collapses to zero; Prague's");
    println!("stays an order of magnitude shallower than CUBIC's.");
}

//! Fig. 11 — short-lived-flow finish time and long-lived-flow rate: one
//! UE carries a greedy download (LLF) plus repeated 14 kB short flows
//! (SLF), with and without L4Span, for Prague / BBRv2 / CUBIC.
//!
//! `cargo run --release -p l4span-bench --bin fig11`

use l4span_bench::{banner, fmt_box, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{
    l4span_default, FlowSpec, ScenarioConfig, TransportSpec, UeSpec,
};
use l4span_harness::MarkerKind;
use l4span_ran::ChannelProfile;
use l4span_sim::stats::BoxStats;
use l4span_sim::{Duration, Instant};

fn scenario(
    cc: &str,
    marker: MarkerKind,
    seed: u64,
    secs: u64,
) -> (ScenarioConfig, Vec<usize>) {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = marker;
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    let transport = TransportSpec::tcp_named(cc).expect("known cc");
    // Flow 0: the long-lived download.
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::bulk(),
        transport.clone(),
        WanLink::east(),
        Instant::ZERO,
    ));
    // Repeated 14 kB SLFs, one every 2 s starting at t=3 s.
    let mut slf = Vec::new();
    let mut t = 3;
    while t + 2 <= secs {
        slf.push(cfg.flows.len());
        cfg.flows.push(FlowSpec::new(
            0,
            AppProfile::sized(14_000),
            transport.clone(),
            WanLink::east(),
            Instant::from_secs(t),
        ));
        t += 2;
    }
    (cfg, slf)
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(25);
    banner("Fig. 11", "short-flow finish time vs long-flow rate", &args);

    println!(
        "\n{:<8} {:<3} {:>14} {:>54}",
        "cc", "+", "LLF Mbit/s", "SLF finish time ms: med [p25,p75] (p10,p90)"
    );
    let mut cells = Vec::new();
    for cc in ["prague", "bbr2", "cubic"] {
        for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
            let (cfg, slf) = scenario(cc, marker, args.seed, secs);
            cells.push(((cc, mark, slf), cfg));
        }
    }
    for ((cc, mark, slf), r) in run_grid(cells) {
        let llf = r.goodput_total_mbps(0);
        let finishes: Vec<f64> = slf.iter().filter_map(|&f| r.finish_ms[f]).collect();
        let fin = BoxStats::from_samples(&finishes);
        println!(
            "{cc:<8} {mark:<3} {llf:>14.2} {}   ({}/{} SLFs finished)",
            fmt_box(&fin),
            finishes.len(),
            slf.len()
        );
    }
    println!("\nPaper shape: L4Span cuts the SLF finish time several-fold");
    println!("(94.6% for Prague) while the LLF keeps most of its rate.");
}

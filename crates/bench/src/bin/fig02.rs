//! Fig. 2 — Prague (L4S) and CUBIC in (a) a wired L4S network, (b) a 5G
//! network without L4Span, (c) 5G + L4Span. In (b) and (c) a wired
//! middlebox drops to 20 Mbit/s between 10 s and 20 s, shifting the
//! bottleneck out of the RAN and back, as in the paper.
//!
//! `cargo run --release -p l4span-bench --bin fig02`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::{CcKind, WanLink};
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{
    l4span_default, BottleneckSpec, FlowSpec, ScenarioConfig, TransportSpec, UeSpec,
};
use l4span_harness::wired::{run_wired, WiredConfig};
use l4span_harness::{MarkerKind, Report};
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn print_series(r: &Report, names: &[&str], queue_keys: &[(u16, u8)]) {
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "t(s)", "rtt0(ms)", "rtt1(ms)", "thr0(Mbps)", "thr1(Mbps)", "rlcQ(SDU)"
    );
    let rtt0 = r.rtt_series(0, 1.0);
    let rtt1 = r.rtt_series(1, 1.0);
    let th0 = r.throughput_series_mbps(0, 10);
    let th1 = r.throughput_series_mbps(1, 10);
    let lookup = |s: &Vec<(f64, f64)>, t: f64| -> f64 {
        s.iter()
            .find(|&&(x, _)| (x - t).abs() < 0.51)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let max_t = th0.last().map(|&(t, _)| t).unwrap_or(0.0) as u64;
    for t in 0..=max_t {
        let tq = t as f64;
        // RLC queue: max over the sampled second across the listed DRBs.
        let q: usize = queue_keys
            .iter()
            .filter_map(|k| r.queue_series.get(k))
            .flat_map(|v| {
                let lo = (tq * 100.0) as usize;
                v.iter().skip(lo).take(100).copied().collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0);
        println!(
            "{tq:<6.0} {:>12.1} {:>12.1} {:>12.2} {:>12.2} {q:>10}",
            lookup(&rtt0, tq),
            lookup(&rtt1, tq),
            lookup(&th0, tq),
            lookup(&th1, tq),
        );
    }
    println!("(flows: 0 = {}, 1 = {})", names[0], names[1]);
}

fn ran_scenario(seed: u64, secs: u64, marker: MarkerKind) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = marker;
    // Middlebox: transparent 1 Gbit/s normally (even paced slow-start
    // bursts never queue a millisecond); 20 Mbit/s during 10–20 s.
    cfg.bottleneck = Some(BottleneckSpec {
        rate_bps: 1e9,
        schedule: vec![
            (Instant::from_secs(10), 20e6),
            (Instant::from_secs(20), 1e9),
        ],
        l4s_aqm: true,
    });
    for (i, cc) in [CcKind::Prague, CcKind::Cubic].into_iter().enumerate() {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
        cfg.flows.push(FlowSpec::new(
            i,
            AppProfile::bulk(),
            TransportSpec::tcp(cc),
            WanLink::east(),
            Instant::from_millis(10 * i as u64),
        ));
    }
    cfg
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(30);
    banner("Fig. 2", "L4S status quo: wired vs 5G vs 5G+L4Span", &args);

    println!("\n--- (a) wired network with a DualPi2 router (40 Mbit/s) ---");
    let wired = run_wired(WiredConfig {
        seed: args.seed,
        duration: Duration::from_secs(secs.min(20)),
        rate_bps: 40e6,
        one_way: Duration::from_millis(5),
        flows: vec![
            (CcKind::Prague, Instant::from_millis(0)),
            (CcKind::Cubic, Instant::from_millis(100)),
        ],
        thr_bin: Duration::from_millis(100),
    });
    for (f, name) in ["prague", "cubic"].iter().enumerate() {
        let rtt = wired.rtt_stats(f);
        println!(
            "{name:<8} rtt median {:>7.1} ms   goodput {:>6.2} Mbit/s",
            rtt.median,
            wired.goodput_total_mbps(f)
        );
    }

    // Run panels (b) and (c) concurrently on the scenario runner.
    let panels = run_grid(vec![
        (
            "(b) 5G network, no L4S signaling; bottleneck shifts at 10/20 s",
            ran_scenario(args.seed, secs, MarkerKind::None),
        ),
        (
            "(c) 5G + L4Span; bottleneck shifts at 10/20 s",
            ran_scenario(args.seed, secs, l4span_default()),
        ),
    ]);
    for (title, r) in &panels {
        println!("\n--- {title} ---");
        print_series(r, &["prague", "cubic"], &[(0, 0), (1, 0)]);
    }

    println!("\nPaper shape: (a) Prague ≈ base RTT, CUBIC ≈ +15-20 ms; (b) both");
    println!("suffer RLC bufferbloat (100s-1000s ms); (c) both low again, line rate.");
}

//! Simulator performance gate: runs the canonical scenarios, reports
//! events/sec and wall-ms per simulated second, writes `BENCH_PR10.json`
//! at the repo root, and (with `--check`) fails when events/sec on any
//! scenario regresses more than 10 % below the **best prior baseline** —
//! the maximum of the committed constants and the *second-highest*
//! earlier-PR `BENCH_PR*.json` value tracked at the repo root, so a
//! regression can never hide behind a single stale artifact and one
//! lucky recording window can never ratchet the bar above what a
//! clean run reproduces (PR 10 fix; see `gate::fold_best`). Scenarios
//! with no prior
//! baseline (their first appearance) are explicitly skipped, not
//! silently passed at 0. `--check` never rewrites the artifact: the
//! recording run and the gate run are separate concerns.
//!
//! `cargo run --release -p l4span-bench --bin perf_gate [--check]`
//!
//! The committed `BASELINES` constants are the numbers this gate produced
//! on the reference machine at the end of each PR; `PRE_PR2_BASELINE` is
//! the same measurement taken immediately *before* PR 2's allocation-free
//! packet path landed, kept so the speedup trajectory stays on record.
//! Both the table and the artifact also carry each scenario's delta vs
//! the previous PR's `BENCH_PR*.json`, so the per-PR trajectory is
//! visible at a glance.
//!
//! Sharded scenarios (the PR 8 metro world) additionally report the
//! **aggregate** rate — total shard events over the *longest* single
//! shard's busy time, i.e. the throughput the shard set sustains when
//! every shard has its own core — and the per-core rate (aggregate /
//! shards). Both derive from per-shard busy clocks, so they are
//! meaningful on a single-core runner too, where the epochs execute
//! sequentially. The regression band for those rows gates on the
//! aggregate rate (their `events_per_sec` is wall-based and would
//! conflate machine core count with simulator speed); `--check` also
//! enforces the absolute `MIN_METRO_AGGREGATE` floor on the metro row.

use std::time::Instant as WallInstant;

use l4span_bench::gate::{
    baseline_for, canonical_scenarios, check_scenario, delta_pct, fold_best, parse_bench_json,
    parse_bench_pr, BenchEntry, GateVerdict, CANONICAL_SECS, METRO_SECS,
};
use l4span_harness::{run_sharded, ScenarioConfig};

/// The PR this gate's artifact belongs to.
const PR: u32 = 10;

/// Allowed events/sec regression vs the best prior baseline before
/// `--check` fails (fraction). Tightened from 30 % (PR 2–5) to 10 %:
/// the wide band let three PRs of ~5 % erosion each land unchallenged.
const MAX_REGRESSION: f64 = 0.10;

/// Committed baselines: (scenario name, events/sec) measured on the
/// reference machine (single-core container; a clean run — the box is
/// shared, so these sit slightly below the best observed so the 10 %
/// `--check` band absorbs scheduler noise rather than real
/// regressions). `--check` compares against the max of these and the
/// second-highest per-scenario value across the `BENCH_PR*.json`
/// artifacts at the repo root (see `gate::fold_best`).
const BASELINES: &[(&str, f64)] = &[
    ("congested_cubic_16ue", 1_850_000.0),
    ("prague_l4span_16ue", 1_900_000.0),
    ("bbr2_mobile_8ue", 1_050_000.0),
    ("handover_2cell_cubic_4ue", 2_000_000.0),
    // New in PR 4: the mixed interactive-apps workload (FramedVideo +
    // RequestResponse + Bulk over TCP, with per-unit QoE tracking).
    ("interactive_apps_mixed", 1_500_000.0),
    // New in PR 5: the bidirectional-call workload (paired DL+UL video
    // legs with BSR/grant-driven uplink data and a UE-side marker).
    ("video_call_bidir", 1_500_000.0),
    // New in PR 8: the sharded metro world. Its gated rate is the
    // *aggregate* events/sec across 8 shards (see module docs), so the
    // baseline sits in a different regime than the wall-based rows.
    ("metro_1000ue_50cell", 18_000_000.0),
    // New in PR 10: the bonded XR world (8 devices × 2 legs of
    // FEC/ARQ media under NADA across two cells). The gate requests 2
    // shards and the planner must refuse — bonded legs couple the
    // cells — so this row gates on the classic wall-based rate.
    ("bonded_xr_8ue", 950_000.0),
];

/// Absolute floor on the metro world's aggregate rate — the PR 8
/// acceptance bar (">10M aggregate events/sec on 4+ cores"). Enforced
/// under `--check` in addition to the relative regression band.
const MIN_METRO_AGGREGATE: f64 = 10_000_000.0;

/// The pre-PR-2 measurement (Vec-backed `PacketBuf`, ~112-byte inline
/// heap entries, per-slot Jakes evaluation, SipHash maps): the "pre"
/// numbers of the 2× acceptance bar. Later scenarios did not exist
/// then, and their artifact rows simply omit the pre-PR2 fields.
const PRE_PR2_BASELINE: &[(&str, f64)] = &[
    ("congested_cubic_16ue", 955_942.0),
    ("prague_l4span_16ue", 999_551.0),
    ("bbr2_mobile_8ue", 952_620.0),
];

/// Committed-artifact values are one clean run's *raw* numbers, whereas
/// the `BASELINES` constants are deliberately set slightly below the
/// best observed so the `--check` band absorbs scheduler noise. Folding
/// raw artifact numbers in undiscounted would ratchet the bar tighter
/// every time a lucky fast run lands; this haircut restores the same
/// headroom convention for JSON-derived baselines.
const ARTIFACT_HEADROOM: f64 = 0.90;

/// Shard-derived rates for a multi-shard row. Absent on classic rows,
/// whose JSON stays byte-compatible with the PR 6 artifact format.
struct ShardRates {
    shards: usize,
    /// Longest single shard's busy time — the critical path when every
    /// shard has its own core.
    busy_max_s: f64,
    /// Total shard events / `busy_max_s`.
    aggregate_events_per_sec: f64,
    /// `aggregate_events_per_sec` / `shards`.
    per_core_events_per_sec: f64,
}

struct Row {
    name: &'static str,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    wall_ms_per_sim_s: f64,
    shard_rates: Option<ShardRates>,
    /// Why a requested multi-shard run fell back to the classic path
    /// (`Report::shard_reject`) — printed so a scenario silently losing
    /// its parallel speedup is visible in the gate table.
    shard_reject: Option<&'static str>,
}

impl Row {
    /// The rate the regression band gates on: aggregate for sharded
    /// rows (machine-core-count independent), wall-based otherwise.
    fn gate_rate(&self) -> f64 {
        self.shard_rates
            .as_ref()
            .map(|s| s.aggregate_events_per_sec)
            .unwrap_or(self.events_per_sec)
    }
}

fn measure(name: &'static str, cfg: ScenarioConfig, shards: usize) -> Row {
    let sim_secs = cfg.duration.as_secs_f64();
    let t0 = WallInstant::now();
    let report = run_sharded(cfg, shards);
    let wall_s = t0.elapsed().as_secs_f64();
    let shard_rates = (report.shards.len() > 1).then(|| {
        let total: u64 = report.shards.iter().map(|s| s.events).sum();
        let busy_max_s = report
            .shards
            .iter()
            .map(|s| s.busy_ns)
            .max()
            .unwrap_or(0)
            .max(1) as f64
            / 1e9;
        let aggregate = total as f64 / busy_max_s;
        ShardRates {
            shards: report.shards.len(),
            busy_max_s,
            aggregate_events_per_sec: aggregate,
            per_core_events_per_sec: aggregate / report.shards.len() as f64,
        }
    });
    Row {
        name,
        events: report.events,
        wall_s,
        events_per_sec: report.events as f64 / wall_s,
        wall_ms_per_sim_s: wall_s * 1e3 / sim_secs,
        shard_rates,
        shard_reject: report.shard_reject,
    }
}

fn pre_pr2_for(name: &str) -> Option<f64> {
    PRE_PR2_BASELINE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
}

/// Read every `BENCH_PR*.json` at the repo root as `(pr, entries)`.
fn read_bench_artifacts(root: &std::path::Path) -> Vec<(Option<u32>, Vec<BenchEntry>)> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let fname = e.file_name();
            let fname = fname.to_string_lossy();
            if !(fname.starts_with("BENCH_PR") && fname.ends_with(".json")) {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(e.path()) {
                out.push((parse_bench_pr(&text), parse_bench_json(&text)));
            }
        }
    }
    out
}

fn write_json(
    rows: &[Row],
    prev: &[(String, f64)],
    prev_pr: Option<u32>,
    path: &std::path::Path,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{{\n  \"pr\": {PR},\n  \"sim_secs_per_scenario\": {CANONICAL_SECS}");
    if let Some(p) = prev_pr {
        let _ = write!(s, ",\n  \"delta_vs_pr\": {p}");
    }
    s.push_str(",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_s\": {:.3}, \
             \"events_per_sec\": {:.0}, \"wall_ms_per_sim_s\": {:.1}",
            r.name, r.events, r.wall_s, r.events_per_sec, r.wall_ms_per_sim_s,
        );
        // Sharded rows append their shard-derived rates; the aggregate
        // is what `parse_bench_json` will fold as this row's baseline.
        if let Some(sr) = &r.shard_rates {
            let _ = write!(
                s,
                ", \"shards\": {}, \"busy_max_s\": {:.3}, \
                 \"aggregate_events_per_sec\": {:.0}, \"per_core_events_per_sec\": {:.0}",
                sr.shards,
                sr.busy_max_s,
                sr.aggregate_events_per_sec,
                sr.per_core_events_per_sec,
            );
        }
        // A scenario that predates PR 2 carries its speedup-trajectory
        // fields; anything newer omits them entirely (a `0` here used
        // to read as "this scenario got infinitely slower").
        if let Some(pre) = pre_pr2_for(r.name) {
            let _ = write!(
                s,
                ", \"pre_pr2_events_per_sec\": {:.0}, \"speedup_vs_pre_pr2\": {:.2}",
                pre,
                r.events_per_sec / pre,
            );
        }
        if let Some(d) = delta_pct(baseline_for(prev, r.name), r.gate_rate()) {
            let _ = write!(s, ", \"delta_vs_prev_pct\": {d:.1}");
        }
        s.push('}');
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    // BENCH_PR*.json live at the repo root regardless of the cwd the
    // gate was launched from.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    // This PR's own artifact (a previous local run) must not enter the
    // baseline fold: checking a run against its own predecessor would
    // ratchet the bar upward on every lucky fast run.
    let artifacts: Vec<_> = read_bench_artifacts(&root)
        .into_iter()
        .filter(|(pr, _)| pr.is_none_or(|p| p < PR))
        .collect();
    let best = fold_best(
        BASELINES,
        &artifacts.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
        ARTIFACT_HEADROOM,
    );
    // The previous PR's artifact (highest PR number below this one)
    // anchors the per-scenario delta column.
    let prev_pr = artifacts
        .iter()
        .filter_map(|(pr, _)| *pr)
        .filter(|&p| p < PR)
        .max();
    let prev: Vec<(String, f64)> = prev_pr
        .and_then(|p| {
            artifacts
                .iter()
                .find(|(pr, _)| *pr == Some(p))
                .map(|(_, e)| e.iter().map(|b| (b.name.clone(), b.events_per_sec)).collect())
        })
        .unwrap_or_default();

    println!(
        "perf_gate: {CANONICAL_SECS} simulated seconds per scenario \
         ({METRO_SECS} for the metro world)\n"
    );
    println!(
        "{:<26} {:>12} {:>9} {:>14} {:>12} {:>10} {:>10}",
        "scenario", "events", "wall s", "events/sec", "ms/sim-s", "vs pre-PR2", "vs prev PR"
    );

    // In `--check` mode a scenario that lands under the bar is re-run
    // (best of 3) before being declared a regression: shared CI runners
    // see noisy-neighbor slowdowns that a real code regression survives
    // but a scheduling hiccup does not.
    let mut rows: Vec<Row> = Vec::new();
    for c in canonical_scenarios(CANONICAL_SECS) {
        let mut best_row = measure(c.name, c.cfg.clone(), c.shards);
        if check {
            if let Some(base) = baseline_for(&best, c.name) {
                let bar = base * (1.0 - MAX_REGRESSION);
                for _ in 0..2 {
                    if best_row.gate_rate() >= bar {
                        break;
                    }
                    let retry = measure(c.name, c.cfg.clone(), c.shards);
                    if retry.gate_rate() > best_row.gate_rate() {
                        best_row = retry;
                    }
                }
            }
        }
        rows.push(best_row);
    }

    let mut failed = Vec::new();
    for r in &rows {
        let speedup = pre_pr2_for(r.name)
            .map(|pre| format!("{:.2}x", r.events_per_sec / pre))
            .unwrap_or_else(|| "-".into());
        let delta = delta_pct(baseline_for(&prev, r.name), r.gate_rate())
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<26} {:>12} {:>9.2} {:>14.0} {:>12.1} {:>10} {:>10}",
            r.name, r.events, r.wall_s, r.events_per_sec, r.wall_ms_per_sim_s, speedup, delta
        );
        if let Some(sr) = &r.shard_rates {
            println!(
                "  └ {} shards: aggregate {:.2}M ev/s, per-core {:.2}M ev/s \
                 (longest shard busy {:.2} s)",
                sr.shards,
                sr.aggregate_events_per_sec / 1e6,
                sr.per_core_events_per_sec / 1e6,
                sr.busy_max_s,
            );
        }
        if let Some(why) = r.shard_reject {
            println!("  └ sharding rejected ({why}) — classic whole-world path");
        }
        if check {
            match check_scenario(&best, r.name, r.gate_rate(), MAX_REGRESSION) {
                GateVerdict::Pass => {}
                GateVerdict::NoBaseline => {
                    println!(
                        "  (no prior baseline for {} — first appearance, check skipped)",
                        r.name
                    );
                }
                GateVerdict::Fail { bar, baseline } => {
                    failed.push(format!(
                        "{}: {:.0} events/sec is below the {:.0}% bar {:.0} \
                         (best prior baseline {:.0}, best of 3)",
                        r.name,
                        r.gate_rate(),
                        MAX_REGRESSION * 100.0,
                        bar,
                        baseline
                    ));
                }
            }
            if let Some(sr) = &r.shard_rates {
                if r.name == "metro_1000ue_50cell"
                    && sr.aggregate_events_per_sec < MIN_METRO_AGGREGATE
                {
                    failed.push(format!(
                        "{}: aggregate {:.0} events/sec is below the absolute \
                         {:.0} floor",
                        r.name, sr.aggregate_events_per_sec, MIN_METRO_AGGREGATE
                    ));
                }
            }
        }
    }

    if check {
        // A gate check must not overwrite the recorded artifact with
        // whatever (possibly retried-under-noise) numbers it measured.
        println!("\ncheck mode: BENCH_PR{PR}.json left untouched");
    } else {
        let path = root.join(format!("BENCH_PR{PR}.json"));
        write_json(&rows, &prev, prev_pr, &path).expect("write BENCH_PR json");
        println!("\nwrote {}", path.display());
    }

    if !failed.is_empty() {
        for f in &failed {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

//! Simulator performance gate: runs the canonical scenarios, reports
//! events/sec and wall-ms per simulated second, writes `BENCH_PR4.json`
//! at the repo root, and (with `--check`) fails when events/sec on any
//! scenario regresses more than 30 % below the **best prior baseline** —
//! the maximum of the committed constants and every `BENCH_PR*.json`
//! tracked at the repo root, so a regression can never hide behind a
//! single stale artifact.
//!
//! `cargo run --release -p l4span-bench --bin perf_gate [--check]`
//!
//! The committed `BASELINES` constants are the numbers this gate produced
//! on the reference machine at the end of each PR; `PRE_PR2_BASELINE` is
//! the same measurement taken immediately *before* PR 2's allocation-free
//! packet path landed, kept so the speedup trajectory stays on record.

use std::time::Instant as WallInstant;

use l4span_cc::WanLink;
use l4span_core::HandoverPolicy;
use l4span_harness::scenario::{
    congested_cell, handover_cell, interactive_apps_mixed, l4span_default, video_call_bidir,
    ChannelMix,
};
use l4span_harness::{run, ScenarioConfig};
use l4span_sim::Duration;

/// The PR this gate's artifact belongs to.
const PR: u32 = 5;

/// Simulated seconds per scenario (long enough to reach steady state,
/// short enough for CI).
const SECS: u64 = 8;

/// Allowed events/sec regression vs the best prior baseline before
/// `--check` fails (fraction).
const MAX_REGRESSION: f64 = 0.30;

/// Committed baselines: (scenario name, events/sec) measured on the
/// reference machine (single-core container; a clean run — the box is
/// shared, so these sit slightly below the best observed so the 30 %
/// `--check` band absorbs scheduler noise rather than real
/// regressions). `--check` compares against the max of these and every
/// `BENCH_PR*.json` at the repo root.
const BASELINES: &[(&str, f64)] = &[
    ("congested_cubic_16ue", 1_850_000.0),
    ("prague_l4span_16ue", 1_900_000.0),
    ("bbr2_mobile_8ue", 1_050_000.0),
    ("handover_2cell_cubic_4ue", 2_000_000.0),
    // New in PR 4: the mixed interactive-apps workload (FramedVideo +
    // RequestResponse + Bulk over TCP, with per-unit QoE tracking).
    ("interactive_apps_mixed", 1_500_000.0),
    // New in PR 5: the bidirectional-call workload (paired DL+UL video
    // legs with BSR/grant-driven uplink data and a UE-side marker).
    ("video_call_bidir", 1_500_000.0),
];

/// The pre-PR-2 measurement (Vec-backed `PacketBuf`, ~112-byte inline
/// heap entries, per-slot Jakes evaluation, SipHash maps): the "pre"
/// numbers of the 2× acceptance bar. The handover scenario did not
/// exist then.
const PRE_PR2_BASELINE: &[(&str, f64)] = &[
    ("congested_cubic_16ue", 955_942.0),
    ("prague_l4span_16ue", 999_551.0),
    ("bbr2_mobile_8ue", 952_620.0),
];

fn scenarios() -> Vec<(&'static str, ScenarioConfig)> {
    vec![
        (
            "congested_cubic_16ue",
            congested_cell(
                16,
                "cubic",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                Duration::from_secs(SECS),
            ),
        ),
        (
            "prague_l4span_16ue",
            congested_cell(
                16,
                "prague",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                Duration::from_secs(SECS),
            ),
        ),
        (
            "bbr2_mobile_8ue",
            congested_cell(
                8,
                "bbr2",
                ChannelMix::Mobile,
                16_384,
                WanLink::east(),
                l4span_default(),
                7,
                Duration::from_secs(SECS),
            ),
        ),
        (
            "handover_2cell_cubic_4ue",
            handover_cell(
                4,
                "cubic",
                Duration::from_secs(1),
                HandoverPolicy::MigrateState,
                l4span_default(),
                7,
                Duration::from_secs(SECS),
            ),
        ),
        (
            "interactive_apps_mixed",
            interactive_apps_mixed(4, "prague", l4span_default(), 7, Duration::from_secs(SECS)),
        ),
        (
            "video_call_bidir",
            video_call_bidir(3, "prague", l4span_default(), 7, Duration::from_secs(SECS)),
        ),
    ]
}

struct Row {
    name: &'static str,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    wall_ms_per_sim_s: f64,
}

fn measure(name: &'static str, cfg: ScenarioConfig) -> Row {
    let sim_secs = cfg.duration.as_secs_f64();
    let t0 = WallInstant::now();
    let report = run(cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    Row {
        name,
        events: report.events,
        wall_s,
        events_per_sec: report.events as f64 / wall_s,
        wall_ms_per_sim_s: wall_s * 1e3 / sim_secs,
    }
}

fn baseline_for(table: &[(&str, f64)], name: &str) -> Option<f64> {
    table.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Extract `(name, events_per_sec)` pairs from one of our own
/// `BENCH_PR*.json` artifacts. The files are written by this binary in a
/// fixed shape, so a line-oriented scan is exact (no JSON dependency in
/// the offline workspace).
fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(npos) = line.find("\"name\": \"") else {
            continue;
        };
        let rest = &line[npos + 9..];
        let Some(nend) = rest.find('"') else { continue };
        let name = rest[..nend].to_string();
        let Some(epos) = line.find("\"events_per_sec\": ") else {
            continue;
        };
        let tail = &line[epos + 18..];
        let num: String = tail
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Committed-artifact values are one clean run's *raw* numbers, whereas
/// the `BASELINES` constants are deliberately set slightly below the
/// best observed so the 30 % `--check` band absorbs scheduler noise.
/// Folding raw artifact numbers in undiscounted would ratchet the bar
/// tighter every time a lucky fast run lands; this haircut restores the
/// same headroom convention for JSON-derived baselines.
const ARTIFACT_HEADROOM: f64 = 0.90;

/// The bar each scenario must clear: the best events/sec ever recorded
/// for it, across the committed constants and every `BENCH_PR*.json`
/// tracked at the repo root, with artifact values discounted by
/// [`ARTIFACT_HEADROOM`]. This PR's own artifact is included too: the
/// baselines are read *before* this run rewrites it, so what's folded in
/// is the committed (tracked) measurement — which is exactly the ratchet
/// that keeps a later regression from hiding behind a conservative
/// constant.
fn best_prior_baselines(root: &std::path::Path) -> Vec<(String, f64)> {
    let mut best: Vec<(String, f64)> = BASELINES
        .iter()
        .map(|&(n, v)| (n.to_string(), v))
        .collect();
    let mut fold = |name: String, v: f64| {
        match best.iter_mut().find(|(n, _)| *n == name) {
            Some((_, b)) => *b = b.max(v),
            None => best.push((name, v)),
        }
    };
    if let Ok(entries) = std::fs::read_dir(root) {
        for e in entries.flatten() {
            let fname = e.file_name();
            let fname = fname.to_string_lossy();
            if !(fname.starts_with("BENCH_PR") && fname.ends_with(".json")) {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(e.path()) {
                for (n, v) in parse_bench_json(&text) {
                    fold(n, v * ARTIFACT_HEADROOM);
                }
            }
        }
    }
    best
}

fn write_json(rows: &[Row], path: &std::path::Path) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(s, "{{\n  \"pr\": {PR},\n  \"sim_secs_per_scenario\": {SECS}");
    s.push_str(",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let pre = baseline_for(PRE_PR2_BASELINE, r.name).unwrap_or(0.0);
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"events\": {}, \"wall_s\": {:.3}, \
             \"events_per_sec\": {:.0}, \"wall_ms_per_sim_s\": {:.1}, \
             \"pre_pr2_events_per_sec\": {:.0}, \"speedup_vs_pre_pr2\": {:.2}}}",
            r.name,
            r.events,
            r.wall_s,
            r.events_per_sec,
            r.wall_ms_per_sim_s,
            pre,
            if pre > 0.0 { r.events_per_sec / pre } else { 0.0 },
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    // BENCH_PR*.json live at the repo root regardless of the cwd the
    // gate was launched from.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let prior = best_prior_baselines(&root);
    let prior_for = |name: &str| {
        prior
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    };
    println!("perf_gate: {SECS} simulated seconds per scenario\n");
    println!(
        "{:<26} {:>12} {:>9} {:>14} {:>14} {:>10}",
        "scenario", "events", "wall s", "events/sec", "ms/sim-s", "vs pre-PR2"
    );

    // In `--check` mode a scenario that lands under the bar is re-run
    // (best of 3) before being declared a regression: shared CI runners
    // see noisy-neighbor slowdowns that a real code regression survives
    // but a scheduling hiccup does not.
    let mut rows: Vec<Row> = Vec::new();
    for (name, cfg) in scenarios() {
        let mut best = measure(name, cfg.clone());
        if check {
            if let Some(base) = prior_for(name) {
                let bar = base * (1.0 - MAX_REGRESSION);
                for _ in 0..2 {
                    if best.events_per_sec >= bar {
                        break;
                    }
                    let retry = measure(name, cfg.clone());
                    if retry.events_per_sec > best.events_per_sec {
                        best = retry;
                    }
                }
            }
        }
        rows.push(best);
    }

    let mut failed = Vec::new();
    for r in &rows {
        let pre = baseline_for(PRE_PR2_BASELINE, r.name).unwrap_or(0.0);
        let speedup = if pre > 0.0 { r.events_per_sec / pre } else { 0.0 };
        println!(
            "{:<26} {:>12} {:>9.2} {:>14.0} {:>14.1} {:>9.2}x",
            r.name, r.events, r.wall_s, r.events_per_sec, r.wall_ms_per_sim_s, speedup
        );
        if check {
            if let Some(base) = prior_for(r.name) {
                if r.events_per_sec < base * (1.0 - MAX_REGRESSION) {
                    failed.push(format!(
                        "{}: {:.0} events/sec is more than {:.0}% below best prior baseline {:.0} (best of 3)",
                        r.name,
                        r.events_per_sec,
                        MAX_REGRESSION * 100.0,
                        base
                    ));
                }
            }
        }
    }

    let path = root.join(format!("BENCH_PR{PR}.json"));
    write_json(&rows, &path).expect("write BENCH_PR json");
    println!("\nwrote {}", path.display());

    if !failed.is_empty() {
        for f in &failed {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}

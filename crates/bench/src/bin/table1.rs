//! Table 1 — CPU and memory overhead of L4Span relative to the bare
//! RAN, in idle (no traffic) and busy (many concurrent downloads)
//! states. On the paper's testbed this is `top` output; here we measure
//! the same delta as (i) wall-clock simulation cost per simulated
//! second, (ii) the share of wall time spent inside L4Span's handlers,
//! and (iii) the resident size of L4Span's tables.
//!
//! `cargo run --release -p l4span-bench --bin table1`

use l4span_bench::{banner, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::{run, MarkerKind, ScenarioConfig};
use l4span_sim::Duration;

fn measure(cfg: ScenarioConfig) -> (f64, u64, usize) {
    let t0 = std::time::Instant::now();
    let r = run(cfg);
    let wall = t0.elapsed().as_secs_f64();
    let marker_ns: u64 = r.marker_time_ns.0.iter().sum::<u64>()
        + r.marker_time_ns.1.iter().sum::<u64>()
        + r.marker_time_ns.2.iter().sum::<u64>();
    (wall, marker_ns, r.marker_memory)
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    let n_busy = if args.full { 64 } else { 16 };
    banner("Table 1", "CPU and memory overhead of L4Span", &args);

    println!(
        "\n{:<28} {:>14} {:>16} {:>14}",
        "configuration", "wall s/sim s", "L4Span CPU %", "tables (kB)"
    );
    for (state, n) in [("idle", 0usize), ("busy", n_busy)] {
        for (label, marker) in [
            ("srsRAN-sim", MarkerKind::None),
            ("srsRAN-sim+L4Span", l4span_default()),
        ] {
            let mut cfg = congested_cell(
                n.max(1),
                "prague",
                ChannelMix::Static,
                16_384,
                WanLink::east(),
                marker,
                args.seed,
                Duration::from_secs(secs),
            );
            if n == 0 {
                cfg.flows.clear(); // idle: cell up, no traffic
            }
            cfg.measure_marker_time = true;
            let (wall, marker_ns, mem) = measure(cfg);
            let cpu_pct = 100.0 * marker_ns as f64 / 1e9 / wall;
            println!(
                "{:<28} {:>14.3} {:>15.2}% {:>14.1}",
                format!("{label} ({state})"),
                wall / secs as f64,
                cpu_pct,
                mem as f64 / 1024.0
            );
        }
    }
    println!("\nPaper shape: L4Span adds <2% CPU and <0.02% memory over the");
    println!("bare srsRAN in both states; the analogue here is a single-digit");
    println!("percent wall-time delta and kilobyte-scale tables.");
}

//! Fig. 13 — SCReAM and UDP Prague (interactive video) under static /
//! pedestrian / vehicular channels, 8 concurrent UEs, ±L4Span. UDP
//! feedback rides the payload, so L4Span uses downlink IP marking only.
//!
//! `cargo run --release -p l4span-bench --bin fig13`

use l4span_bench::{banner, fmt_box, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{
    l4span_default, ChannelMix, FlowSpec, ScenarioConfig, TransportSpec, UeSpec,
};
use l4span_harness::MarkerKind;
use l4span_sim::stats::BoxStats;
use l4span_sim::{Duration, Instant};

fn video_cell(
    n: usize,
    workload: &(AppProfile, TransportSpec),
    mix: ChannelMix,
    marker: MarkerKind,
    seed: u64,
    secs: u64,
) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = marker;
    for i in 0..n {
        let snr = 20.0 + 5.0 * (i as f64 * 0.618).fract();
        cfg.ues.push(UeSpec::simple(mix.profile(i), snr));
        cfg.flows.push(FlowSpec::new(
            i,
            workload.0.clone(),
            workload.1.clone(),
            WanLink::east(),
            Instant::from_millis(20 * i as u64),
        ));
    }
    cfg
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(15);
    banner("Fig. 13", "interactive video congestion control ±L4Span", &args);

    let n = 8;
    let scream = (
        AppProfile::video(25.0, 0.5e6, 2.0e6, 20.0e6),
        TransportSpec::scream(),
    );
    let udp_prague = (
        AppProfile::bulk(),
        TransportSpec::udp_prague(6.25e4, 2.5e5, 2.5e6),
    );
    println!(
        "\n{:<12} {:<12} {:<3} {:>52} {:>12}",
        "app", "channel", "+", "RTT ms: med [p25,p75] (p10,p90)", "Mbit/s/UE"
    );
    let mut cells = Vec::new();
    for (app, traffic) in [("scream", &scream), ("udp-prague", &udp_prague)] {
        for (chan, mix) in [
            ("static", ChannelMix::Static),
            ("pedestrian", ChannelMix::Pedestrian),
            ("vehicular", ChannelMix::Vehicular),
        ] {
            for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
                cells.push((
                    (app, chan, mark),
                    video_cell(n, traffic, mix, marker, args.seed, secs),
                ));
            }
        }
    }
    for ((app, chan, mark), r) in run_grid(cells) {
        let mut rtts = Vec::new();
        for f in 0..n {
            rtts.extend_from_slice(&r.rtt_ms[f]);
        }
        let rtt = BoxStats::from_samples(&rtts);
        let per_ue: f64 = (0..n).map(|f| r.goodput_total_mbps(f)).sum::<f64>() / n as f64;
        println!(
            "{app:<12} {chan:<12} {mark:<3} {} {per_ue:>12.2}",
            fmt_box(&rtt)
        );
    }
    println!("\nPaper shape: L4Span reduces RTT for both apps in all channels");
    println!("(76/38/45% for UDP Prague; 13/11/38% for SCReAM) with a small");
    println!("throughput cost.");
}

//! Fig. 20 — egress-rate estimation error CDF: L4Span's Eq. 4 estimate
//! vs the ground-truth RLC dequeue log, 16 UEs, three channel profiles.
//!
//! `cargo run --release -p l4span-bench --bin fig20`

use l4span_bench::{banner, print_cdf, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(15);
    banner("Fig. 20", "egress-rate estimation error", &args);

    let cells = [
        ("static", ChannelMix::Static),
        ("pedestrian", ChannelMix::Pedestrian),
        ("vehicular", ChannelMix::Vehicular),
    ]
    .into_iter()
    .map(|(name, mix)| {
        (
            name,
            congested_cell(
                16,
                "prague",
                mix,
                16_384,
                WanLink::east(),
                l4span_default(),
                args.seed,
                Duration::from_secs(secs),
            ),
        )
    })
    .collect();
    for (name, r) in run_grid(cells) {
        let med = l4span_sim::stats::percentile(&r.rate_err_pct, 50.0);
        let mean = l4span_sim::stats::mean(&r.rate_err_pct);
        println!(
            "\n{name}: {} samples, median error {med:+.1}%, mean {mean:+.1}%",
            r.rate_err_pct.len()
        );
        print_cdf(&format!("{name} rate estimation error (%)"), &r.rate_err_pct, 11);
    }
    println!("\nPaper shape: errors concentrate near 0% in all three channels,");
    println!("approximately zero-mean Gaussian (the Eq. 1 modelling assumption).");
}

//! Fig. 14 — throughput fairness among UEs under L4Span: (a) three
//! Prague flows with equal RTT, (b) distinct RTTs, (c) two Prague + one
//! CUBIC, (d) two Prague + one BBRv2. Flows start at 0/10/20 s and stop
//! at 60/50/40 s; prints 1-second throughput series.
//!
//! `cargo run --release -p l4span-bench --bin fig14`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{l4span_default, FlowSpec, ScenarioConfig, TransportSpec, UeSpec};
use l4span_harness::Report;
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn staggered(ccs: &[&str], wans: &[WanLink], seed: u64, secs: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = l4span_default();
    for (i, cc) in ccs.iter().enumerate() {
        cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
        cfg.flows.push(
            FlowSpec::new(
                i,
                AppProfile::bulk(),
                TransportSpec::tcp_named(cc).expect("known cc"),
                wans[i % wans.len()],
                Instant::from_secs(secs * i as u64 / 6),
            )
            .stop_at(Instant::from_secs(secs - secs * i as u64 / 6)),
        );
    }
    cfg
}

fn show(title: &str, ccs: &[&str], r: &Report, secs: u64) {
    println!("\n--- {title} ---");
    println!(
        "{:<6} {:>10} {:>10} {:>10}",
        "t(s)", ccs[0], ccs[1], ccs[2]
    );
    let series: Vec<Vec<(f64, f64)>> =
        (0..3).map(|f| r.throughput_series_mbps(f, 10)).collect();
    let len = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for i in (0..len).step_by(2) {
        let at = |f: usize| series[f].get(i).map(|&(_, m)| m).unwrap_or(0.0);
        println!(
            "{:<6.0} {:>10.1} {:>10.1} {:>10.1}",
            i as f64, at(0), at(1), at(2)
        );
    }
    // Shares in the fully-overlapped middle window.
    let from = Instant::from_secs(secs * 2 / 6 + 3);
    let to = Instant::from_secs(secs - secs * 2 / 6);
    let shares: Vec<f64> = (0..3).map(|f| r.goodput_mbps(f, from, to)).collect();
    println!(
        "overlap shares: {:.1} / {:.1} / {:.1} Mbit/s",
        shares[0], shares[1], shares[2]
    );
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(60);
    banner("Fig. 14", "fairness among staggered flows under L4Span", &args);
    let east = vec![WanLink::east()];
    let distinct = vec![
        WanLink::east(),
        WanLink::west(),
        WanLink {
            one_way: Duration::from_millis(6),
        },
    ];
    let panels: Vec<(&str, Vec<&str>, &Vec<WanLink>)> = vec![
        (
            "(a) three Prague, equal RTT",
            vec!["prague", "prague", "prague"],
            &east,
        ),
        (
            "(b) three Prague, distinct RTTs (38/106/12 ms)",
            vec!["prague", "prague", "prague"],
            &distinct,
        ),
        ("(c) two Prague + CUBIC", vec!["prague", "cubic", "prague"], &east),
        ("(d) two Prague + BBRv2", vec!["prague", "bbr2", "prague"], &east),
    ];
    let cells = panels
        .into_iter()
        .map(|(title, ccs, wans)| {
            let cfg = staggered(&ccs, wans, args.seed, secs);
            ((title, ccs), cfg)
        })
        .collect();
    for ((title, ccs), r) in run_grid(cells) {
        show(title, &ccs, &r, secs);
    }
    println!("\nPaper shape: flows converge to the fair share during overlap;");
    println!("higher-RTT Prague converges slower; CUBIC/BBRv2 coexist without");
    println!("starving the Prague flows (per-UE isolation + MAC scheduler).");
}

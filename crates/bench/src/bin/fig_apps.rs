//! Application-level QoE sweep: the interactive app mix (FramedVideo +
//! RequestResponse + Bulk per group) × {cubic, prague, bbr2} × marker
//! on/off, reporting what the marker buys the *applications* — frame
//! deadline-miss rate, frame one-way delay, playback stall, request
//! completion time — next to the packet-level numbers. This is the
//! 5G-Advanced-style comparison (frame delay and stalls, not just OWD)
//! that the pluggable workload API exists to reproduce.
//!
//! `cargo run --release -p l4span-bench --bin fig_apps`

use l4span_bench::{banner, fmt_box, run_grid, Args};
use l4span_harness::scenario::{interactive_apps_mixed, l4span_default};
use l4span_harness::{MarkerKind, Report};
use l4span_sim::Duration;

/// Flows of one kind in the mixed scenario (groups of three: video,
/// web, bulk).
fn flows_of(r: &Report, offset: usize) -> Vec<usize> {
    (0..r.thr_bins.len()).filter(|f| f % 3 == offset).collect()
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    let groups = if args.full { 4 } else { 2 };
    banner(
        "Apps",
        "interactive application mix: frame/request QoE ±L4Span",
        &args,
    );
    println!(
        "\n{} groups × (video 30fps + web 256kB + bulk), {} s each",
        groups, secs
    );
    println!(
        "\n{:<7} {:<3} {:>8} {:>10} {:>10} {:>11} {:>52}",
        "cc", "+", "miss %", "fOWD med", "stall ms", "bulk Mb/s",
        "request ms: med [p25,p75] (p10,p90)"
    );

    let mut cells = Vec::new();
    for cc in ["cubic", "prague", "bbr2"] {
        for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
            cells.push((
                (cc, mark),
                interactive_apps_mixed(
                    groups,
                    cc,
                    marker,
                    args.seed,
                    Duration::from_secs(secs),
                ),
            ));
        }
    }
    for ((cc, mark), r) in run_grid(cells) {
        let video = flows_of(&r, 0);
        let web = flows_of(&r, 1);
        let bulk = flows_of(&r, 2);
        let generated: u64 = video.iter().map(|&f| r.frames_generated[f]).sum();
        let missed: u64 = video.iter().map(|&f| r.frames_missed[f]).sum();
        let miss_pct = 100.0 * missed as f64 / generated.max(1) as f64;
        let fowd = r.frame_owd_stats_pooled(&video);
        let stall: f64 = video.iter().map(|&f| r.stall_time_ms(f)).sum::<f64>()
            / video.len().max(1) as f64;
        let bulk_mbps: f64 =
            bulk.iter().map(|&f| r.goodput_total_mbps(f)).sum::<f64>()
                / bulk.len().max(1) as f64;
        let mut req = Vec::new();
        for &f in &web {
            req.extend_from_slice(&r.request_ms[f]);
        }
        let req = l4span_sim::stats::BoxStats::from_samples(&req);
        println!(
            "{cc:<7} {mark:<3} {miss_pct:>8.1} {:>10.1} {stall:>10.0} {bulk_mbps:>11.2} {}",
            fowd.median,
            fmt_box(&req),
        );
    }
    println!("\nExpected shape: with the marker on, the L4S-capable stacks");
    println!("(prague, bbr2) cut the frame deadline-miss rate and request");
    println!("completion tails sharply; cubic improves via the coupled");
    println!("classic response; bulk goodput stays within a few percent.");
}

//! Fig. 10 — average one-way-delay breakdown (propagation / scheduling /
//! queuing / other) for round-robin and proportional-fair scheduling,
//! 16 and 64 UEs, with and without L4Span.
//!
//! `cargo run --release -p l4span-bench --bin fig10`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::MarkerKind;
use l4span_ran::config::SchedulerKind;
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(12);
    banner("Fig. 10", "delay breakdown by scheduler and cell load", &args);

    println!(
        "\n{:<14} {:<3} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "scheduler/UEs", "+", "prop (ms)", "sched (ms)", "queuing (ms)", "other (ms)", "total"
    );
    let ue_counts: Vec<usize> = if args.full { vec![16, 64] } else { vec![16] };
    let mut cells = Vec::new();
    for &n in &ue_counts {
        for (sname, sched) in [
            ("RR", SchedulerKind::RoundRobin),
            ("PF", SchedulerKind::ProportionalFair),
        ] {
            for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
                let mut cfg = congested_cell(
                    n,
                    "prague",
                    ChannelMix::Mobile,
                    16_384,
                    WanLink::east(),
                    marker,
                    args.seed,
                    Duration::from_secs(secs),
                );
                cfg.scheduler = sched;
                cells.push(((sname, n, mark), cfg));
            }
        }
    }
    for ((sname, n, mark), r) in run_grid(cells) {
        // Pool the per-flow breakdown means weighted by count.
        let (mut p, mut s, mut q, mut o, mut cnt) = (0.0, 0.0, 0.0, 0.0, 0u64);
        for b in &r.breakdown {
            let m = b.mean();
            let k = b.count();
            p += m.propagation * k as f64;
            s += m.scheduling * k as f64;
            q += m.queuing * k as f64;
            o += m.other * k as f64;
            cnt += k;
        }
        let k = cnt.max(1) as f64;
        let (p, s, q, o) = (p / k, s / k, q / k, o / k);
        println!(
            "{:<14} {mark:<3} {p:>12.2} {s:>12.2} {q:>12.2} {o:>12.2} {:>12.2}",
            format!("{sname} {n}ue"),
            p + s + q + o
        );
    }
    println!("\nPaper shape: queuing dominates without L4Span; with it the");
    println!("queuing bar collapses and propagation dominates, for both schedulers.");
}

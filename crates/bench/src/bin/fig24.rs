//! Fig. 24 (Appendix B) — the Fig. 9 grid for BBR (v1) and Reno. BBR
//! ignores ECN entirely, so its medians barely move under L4Span; Reno
//! behaves like a sharper CUBIC.
//!
//! `cargo run --release -p l4span-bench --bin fig24 [--full]`

use l4span_bench::{banner, fmt_box, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::scenario::{congested_cell, l4span_default, ChannelMix};
use l4span_harness::MarkerKind;
use l4span_sim::Duration;

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(15);
    banner("Fig. 24", "BBR and Reno under the congested cell", &args);

    let panels: Vec<(usize, usize, WanLink, &str)> = if args.full {
        vec![
            (16, 16_384, WanLink::east(), "(a) 16 UE, default queue, 38 ms"),
            (64, 16_384, WanLink::east(), "(b) 64 UE, default queue, 38 ms"),
            (16, 256, WanLink::east(), "(c) 16 UE, queue 256, 38 ms"),
            (64, 256, WanLink::east(), "(d) 64 UE, queue 256, 38 ms"),
            (16, 16_384, WanLink::west(), "(e) 16 UE, default queue, 106 ms"),
            (64, 16_384, WanLink::west(), "(f) 64 UE, default queue, 106 ms"),
            (16, 256, WanLink::west(), "(g) 16 UE, queue 256, 106 ms"),
            (64, 256, WanLink::west(), "(h) 64 UE, queue 256, 106 ms"),
        ]
    } else {
        vec![(16, 16_384, WanLink::east(), "(a) 16 UE, default queue, 38 ms")]
    };

    let mut cells = Vec::new();
    for &(n, queue, wan, title) in &panels {
        for cc in ["bbr", "reno"] {
            for (chan, mix) in [("S", ChannelMix::Static), ("M", ChannelMix::Mobile)] {
                for (mark, marker) in [(" ", MarkerKind::None), ("+", l4span_default())] {
                    cells.push((
                        (title, n, cc, chan, mark),
                        congested_cell(
                            n,
                            cc,
                            mix,
                            queue,
                            wan,
                            marker,
                            args.seed,
                            Duration::from_secs(secs),
                        ),
                    ));
                }
            }
        }
    }
    let mut last_title = "";
    for ((title, n, cc, chan, mark), r) in run_grid(cells) {
        if title != last_title {
            println!("\n--- {title} ---");
            println!(
                "{:<8} {:<4} {:<3} {:>52} {:>52}",
                "cc", "chan", "+", "one-way delay ms: med [p25,p75] (p10,p90)",
                "per-UE throughput Mbit/s"
            );
            last_title = title;
        }
        let flows: Vec<usize> = (0..n).collect();
        let owd = r.owd_stats_pooled(&flows);
        let thr = r.throughput_stats_pooled(&flows);
        println!(
            "{cc:<8} {chan:<4} {mark:<3} {} {}",
            fmt_box(&owd),
            fmt_box(&thr)
        );
    }
    println!("\nPaper shape: Reno's OWD falls >97% under L4Span; BBR's medians");
    println!("barely move (it ignores marks) but variance grows.");
}

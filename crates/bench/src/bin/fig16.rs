//! Fig. 16 — a DRB shared by one L4S (Prague) and one classic (CUBIC)
//! flow on the same UE, under the four marking methods: Original,
//! all-L4S, all-classic, and the paper's coupled rule. Reports the L4S
//! share of throughput and RTT.
//!
//! `cargo run --release -p l4span-bench --bin fig16`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_core::{L4SpanConfig, SharedDrbStrategy};
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{FlowSpec, ScenarioConfig, TransportSpec, UeSpec};
use l4span_harness::MarkerKind;
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn shared_drb(strategy: SharedDrbStrategy, seed: u64, secs: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    let l4 = L4SpanConfig {
        shared_strategy: strategy,
        ..L4SpanConfig::default()
    };
    cfg.marker = MarkerKind::L4Span(l4);
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 24.0));
    for cc in ["prague", "cubic"] {
        // Same DRB 0: the lower-end-UE case of §4.2.3.
        cfg.flows.push(FlowSpec::new(
            0,
            AppProfile::bulk(),
            TransportSpec::tcp_named(cc).expect("known cc"),
            WanLink::east(),
            Instant::from_millis(if cc == "prague" { 0 } else { 50 }),
        ));
    }
    cfg
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(20);
    banner("Fig. 16", "L4S + classic sharing one DRB", &args);

    println!(
        "\n{:<10} {:>14} {:>14} {:>12} {:>12}",
        "strategy", "thr L4S Mb/s", "thr CUBIC", "L4S thr %", "L4S RTT %"
    );
    let cells = [
        ("original", SharedDrbStrategy::Original),
        ("l4s", SharedDrbStrategy::AllL4s),
        ("classic", SharedDrbStrategy::AllClassic),
        ("l4span", SharedDrbStrategy::Coupled),
    ]
    .into_iter()
    .map(|(name, strat)| (name, shared_drb(strat, args.seed, secs)))
    .collect();
    for (name, r) in run_grid(cells) {
        let t0 = r.goodput_total_mbps(0);
        let t1 = r.goodput_total_mbps(1);
        let thr_ratio = 100.0 * t0 / (t0 + t1).max(1e-9);
        let r0 = r.rtt_stats(0).median;
        let r1 = r.rtt_stats(1).median;
        let rtt_ratio = 100.0 * r0 / (r0 + r1).max(1e-9);
        println!(
            "{name:<10} {t0:>14.2} {t1:>14.2} {thr_ratio:>11.1}% {rtt_ratio:>11.1}%"
        );
    }
    println!("\nPaper shape: 'original' starves the L4S flow, 'l4s' starves the");
    println!("classic flow (~25% share), 'classic' has high variance, and the");
    println!("coupled rule lands both ratios near 50%.");
}

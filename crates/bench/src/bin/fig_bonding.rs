//! The media-transport question — when the sender *repairs* losses
//! (sliding-window FEC + NACK/ARQ under NADA) instead of deferring to
//! an in-order bytestream, does the RAN-side marker still help, and
//! what does striping the flow across two cells buy?
//!
//! One grid: {fec-media, nada, prague, cubic} × marker {off, L4Span}
//! × {single, bonded} on the two-cell XR topology
//! ([`xr_bonding_cell`]). Every variant carries the same 1.2–20
//! Mbit/s @ 60 fps uplink envelope; the TCP-family rows use the
//! framed-video app over an ordered bytestream, the fec-media rows
//! the loss-resilient datagram endpoint. Bonded rows add a secondary
//! radio per device on the *other* cell and stripe by bytes.
//!
//! Columns: per-device goodput, pooled uplink OWD p50/p90, the FEC
//! ledger (residual loss after repair, repair traffic share), and the
//! bond's leg split + shared-bottleneck verdicts.
//!
//! `cargo run --release -p l4span-bench --bin fig_bonding`

use l4span_bench::{banner, run_grid, Args};
use l4span_harness::scenario::{l4span_default, xr_bonding_cell};
use l4span_harness::{MarkerKind, Report};
use l4span_sim::Duration;

/// Mean per-device goodput across the grid's flows, Mbit/s.
fn per_device_goodput(r: &Report, n: usize) -> f64 {
    (0..n).map(|f| r.goodput_total_mbps(f)).sum::<f64>() / n as f64
}

/// FEC-ledger summary: residual loss after repair and the repair
/// share of offered source traffic. `-` for bytestream transports.
fn fec_summary(r: &Report) -> String {
    if r.fec.is_empty() {
        return format!("{:>9} {:>9}", "-", "-");
    }
    let (mut offered, mut abandoned, mut repairs) = (0u64, 0u64, 0u64);
    for f in &r.fec {
        offered += f.offered;
        abandoned += f.abandoned;
        repairs += f.repairs;
    }
    format!(
        "{:>8.3}% {:>8.1}%",
        100.0 * abandoned as f64 / offered.max(1) as f64,
        100.0 * repairs as f64 / offered.max(1) as f64,
    )
}

/// Bond summary: secondary-leg byte share and how many devices'
/// shared-bottleneck detectors ended the run coupled. `-` single-leg.
fn bond_summary(r: &Report) -> String {
    if r.bonds.is_empty() {
        return format!("{:>8} {:>9}", "-", "-");
    }
    let (mut p0, mut p1, mut coupled) = (0u64, 0u64, 0usize);
    for b in &r.bonds {
        p0 += b.leg_pkts[0];
        p1 += b.leg_pkts[1];
        coupled += usize::from(b.coupled);
    }
    format!(
        "{:>7.1}% {:>6}/{:<2}",
        100.0 * p1 as f64 / (p0 + p1).max(1) as f64,
        coupled,
        r.bonds.len()
    )
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(10);
    let n = if args.full { 8 } else { 4 };
    banner(
        "fig_bonding",
        "Loss-resilient media + dual-cell bonding: cc x marker x legs",
        &args,
    );

    let mut cells = Vec::new();
    for cc in ["fec-media", "nada", "prague", "cubic"] {
        for (mname, marker) in [("off", MarkerKind::None), ("l4span", l4span_default())] {
            for (lname, bonded) in [("single", false), ("bonded", true)] {
                cells.push((
                    (cc, mname, lname),
                    xr_bonding_cell(
                        n,
                        cc,
                        marker.clone(),
                        bonded,
                        args.seed,
                        Duration::from_secs(secs),
                    ),
                ));
            }
        }
    }
    let results = run_grid(cells);

    println!(
        "\n{:<10} {:<8} {:<8} {:>12} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9}",
        "cc",
        "marker",
        "legs",
        "gput(Mbps)",
        "owd p50",
        "owd p90",
        "residual",
        "repairs",
        "leg2",
        "coupled"
    );
    for ((cc, mname, lname), r) in &results {
        let flows: Vec<usize> = (0..n).collect();
        let owd = r.ul_owd_stats_pooled(&flows);
        println!(
            "{:<10} {:<8} {:<8} {:>12.2} {:>10.1} {:>10.1} {} {}",
            cc,
            mname,
            lname,
            per_device_goodput(r, n),
            owd.median,
            owd.p90,
            fec_summary(r),
            bond_summary(r),
        );
    }
    println!(
        "\nPaper shape: the marker's early ECN collapses the OWD tail for\n\
         every transport — the repair-based sender benefits just like the\n\
         bytestream ones, so the RAN-side marker still wins when loss is\n\
         handled end-to-end. Single-leg fec-media absorbs the cell's losses\n\
         as repair traffic and holds residual loss under 1%. Byte-balanced\n\
         bonding halves what each cell carries but inherits the weaker\n\
         secondary leg's loss (leg2 share < 50% because lost packets never\n\
         reach the server); the SBD detector keeps the legs decoupled —\n\
         different cells — so per-leg NACK deadlines stay independent."
    );
}

//! Fig. 4 — the design walkthrough: L4Span, an L4S (or classic) sender,
//! and the RAN through a channel that sharply degrades and recovers.
//! Prints the per-100 ms time series of throughput, RTT, RLC queue, and
//! L4Span's current Eq. 1 marking probability, so the sawtooth →
//! channel-dip → recovery narrative of the figure is visible in numbers.
//!
//! `cargo run --release -p l4span-bench --bin fig04`

use l4span_bench::{banner, run_grid, Args};
use l4span_cc::WanLink;
use l4span_harness::app::AppProfile;
use l4span_harness::scenario::{l4span_default, FlowSpec, ScenarioConfig, TransportSpec, UeSpec};
use l4span_harness::Report;
use l4span_ran::ChannelProfile;
use l4span_sim::{Duration, Instant};

fn walkthrough_cfg(cc: &str, seed: u64, secs: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::new(seed, Duration::from_secs(secs));
    cfg.marker = l4span_default();
    cfg.ues.push(UeSpec::simple(ChannelProfile::Static, 25.0));
    cfg.flows.push(FlowSpec::new(
        0,
        AppProfile::bulk(),
        TransportSpec::tcp_named(cc).expect("known cc"),
        WanLink::east(),
        Instant::ZERO,
    ));
    // The Fig. 4 storyline: stable channel, sharp degradation at 40% of
    // the run ("channel sharply turns bad"), recovery at 70%.
    cfg.channel_events = vec![
        (
            Instant::from_secs(secs * 2 / 5),
            0,
            ChannelProfile::Static,
            10.0,
        ),
        (
            Instant::from_secs(secs * 7 / 10),
            0,
            ChannelProfile::Static,
            25.0,
        ),
    ];
    cfg
}

fn print_walkthrough(cc: &str, r: &Report, secs: u64) {
    println!("\n--- {cc}: stable → bad channel at {}s → recovery at {}s ---", secs * 2 / 5, secs * 7 / 10);
    println!(
        "{:<7} {:>11} {:>10} {:>11}",
        "t(s)", "thr(Mbps)", "rtt(ms)", "rlcQ(SDU)"
    );
    let thr = r.throughput_series_mbps(0, 5);
    let rtt = r.rtt_series(0, 0.5);
    let lookup = |s: &Vec<(f64, f64)>, t: f64| {
        s.iter()
            .find(|&&(x, _)| (x - t).abs() < 0.26)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    let q = r.queue_series.get(&(0, 0)).cloned().unwrap_or_default();
    let mut t = 0.0;
    while t < secs as f64 {
        let qi = ((t * 100.0) as usize).min(q.len().saturating_sub(1));
        let qv = q.get(qi).copied().unwrap_or(0);
        println!(
            "{t:<7.1} {:>11.2} {:>10.1} {qv:>11}",
            lookup(&thr, t),
            lookup(&rtt, t),
        );
        t += 0.5;
    }
}

fn main() {
    let args = Args::parse();
    let secs = args.secs_or(15);
    banner(
        "Fig. 4",
        "running example: marking behaviour through a channel dip",
        &args,
    );
    let results = run_grid(vec![
        ("prague", walkthrough_cfg("prague", args.seed, secs)),
        ("cubic", walkthrough_cfg("cubic", args.seed, secs)),
    ]);
    for (cc, r) in &results {
        print_walkthrough(cc, r, secs);
    }
    println!("\nPaper shape: the L4S flow rides a small sawtooth near the");
    println!("threshold, dips briefly when the channel collapses, and refills");
    println!("via AI on recovery; the classic flow keeps a standing buffer");
    println!("with sparse marking episodes.");
}
